//! Uneven placement of MoE experts (paper Sec. 7.6 / Fig. 17).
//!
//! Expert-parallel systems that assign the same number of experts to every
//! device must pad the expert count to a multiple of the device count. HAP's
//! integer shard rounding instead places *more experts on faster devices* —
//! e.g. 6 experts over 2xA100 + 2xP100 become [2, 2, 1, 1].
//!
//! Run with: `cargo run --release --example moe_uneven_experts`

use hap::prelude::*;
use hap_balancer::round_shards;
use hap_collectives::{GroundTruthNet, NetworkParams};
use hap_models::{bert_moe, MoeConfig};
use hap_simulator::SimOptions;

fn main() {
    let cluster = ClusterSpec::fig17_cluster();
    let net = GroundTruthNet::new(NetworkParams::paper_cloud());

    for experts in [4usize, 6, 10] {
        // Two encoder layers, one MoE layer, tokens proportional to experts.
        let cfg = MoeConfig {
            bert: hap_models::BertConfig {
                batch: experts * 2,
                seq: 128,
                layers: 2,
                ..hap_models::BertConfig::paper()
            },
            experts,
            expert_hidden: 1024,
            moe_every: 2,
        };
        let graph = bert_moe(&cfg);
        let plan = hap::parallelize(&graph, &cluster, &HapOptions::default()).expect("HAP plan");
        let sim = plan.simulate(&net, &SimOptions::default());

        // How does the plan split the expert dimension? Apply the plan's
        // ratios to the expert count the way the runtime shards parameters.
        let expert_param = plan
            .graph
            .nodes()
            .iter()
            .find(|n| n.name.contains("expert_w1"))
            .expect("expert weights");
        let seg = expert_param.segment.min(plan.ratios.len() - 1);
        let split = round_shards(experts, &plan.ratios[seg]);
        println!(
            "{experts} experts on [A100, A100, P100, P100] -> {split:?}  \
             (per-iteration {:.2} ms)",
            sim.iteration_time * 1e3
        );
    }
    println!(
        "\nAn even-placement system would pad to a multiple of 4 experts and waste \
         the padded experts' compute; HAP shards any expert count and skews the \
         assignment toward the A100s."
    );
}
