//! Quickstart: parallelize a small model on a heterogeneous cluster.
//!
//! Mirrors the paper's user API (Sec. 6): hand HAP a single-device training
//! graph and a cluster description, get back a distributed SPMD program with
//! per-device sharding ratios — then verify on real tensors that the
//! distributed program computes exactly what the single-device program does.
//!
//! Run with: `cargo run --release --example quickstart`

use std::collections::HashMap;

use hap::prelude::*;
use hap_collectives::{GroundTruthNet, NetworkParams};
use hap_graph::Tensor;
use hap_models::{mlp, MlpConfig};
use hap_simulator::SimOptions;

fn main() {
    // A 3-layer MLP classifier; batch 8192 across the cluster.
    let graph = mlp(&MlpConfig { batch: 8192, input: 256, hidden: vec![512, 512], classes: 32 });
    println!(
        "single-device graph: {} nodes, {:.1} M parameters, {:.2} GFLOP/iteration",
        graph.len(),
        graph.parameter_count() as f64 / 1e6,
        graph.total_flops() / 1e9
    );

    // One machine with 2x A100, one with 2x P100 (the paper's Fig. 17 testbed).
    let cluster = ClusterSpec::fig17_cluster();
    let plan =
        hap::parallelize(&graph, &cluster, &HapOptions::default()).expect("synthesis succeeds");

    println!("\nsynthesized distributed program (paper Fig. 11 style):");
    print!("{}", plan.listing());
    println!("sharding ratios per device: {:?}", plan.ratios[0]);
    println!("estimated per-iteration time: {:.3} ms", plan.estimated_time * 1e3);
    println!("optimization took {:?} over {} round(s)", plan.synthesis_time, plan.rounds);

    // Simulate the "actual" run on the ground-truth network model.
    let net = GroundTruthNet::new(NetworkParams::paper_cloud());
    let sim = plan.simulate(&net, &SimOptions::default());
    println!("simulated per-iteration time: {:.3} ms", sim.iteration_time * 1e3);

    // Functional check: run both programs on real tensors.
    let mut feeds = HashMap::new();
    for n in plan.graph.nodes() {
        match n.role {
            Role::Input | Role::Param => {
                feeds.insert(n.id, Tensor::randn(n.shape.dims().to_vec(), n.id as u64));
            }
            Role::Label => {
                let t = Tensor::randn(n.shape.dims().to_vec(), n.id as u64)
                    .map(|v| ((v + 0.5) * 32.0).floor().clamp(0.0, 31.0));
                feeds.insert(n.id, t);
            }
            _ => {}
        }
    }
    let report = plan.verify(&feeds).expect("functional execution succeeds");
    println!(
        "\nfunctional equivalence vs single-device execution: max |error| = {:.2e}",
        report.max_error
    );
    assert!(report.max_error < 1e-2, "distributed program must match");
    println!("OK: the distributed program is semantically equivalent.");
}
