//! BERT on a heterogeneous cluster: HAP vs the DP baselines.
//!
//! A scaled-down version of the paper's Fig. 13 comparison: train a small
//! BERT on the 2x(8xV100) + 6x(8xP100) cluster and compare the simulated
//! per-iteration time of HAP against DP-EV, DP-CP, DeepSpeed-like and
//! TAG-like strategies.
//!
//! Run with: `cargo run --release --example heterogeneous_bert`

use hap::prelude::*;
use hap_baselines::{build_baseline, Baseline};
use hap_collectives::{GroundTruthNet, NetworkParams};
use hap_models::{bert_base, BertConfig};
use hap_simulator::{memory_footprint, simulate_time, SimOptions};

fn main() {
    // A 4-layer BERT so the example finishes in seconds.
    let graph = bert_base(&BertConfig { batch: 8 * 64, layers: 4, ..BertConfig::paper() });
    let cluster = ClusterSpec::paper_heterogeneous(8);
    let devices = cluster.virtual_devices(Granularity::PerMachine);
    let net = GroundTruthNet::new(NetworkParams::paper_cloud());
    let opts = SimOptions::default();

    println!(
        "BERT ({} nodes, {:.0} M params) on {} machines / {} GPUs\n",
        graph.len(),
        graph.parameter_count() as f64 / 1e6,
        cluster.machines.len(),
        cluster.total_gpus()
    );
    println!("{:<12} {:>16} {:>12}", "system", "per-iter (ms)", "collectives");

    let hap_opts = HapOptions { granularity: Granularity::PerMachine, ..HapOptions::default() };
    let plan = hap::parallelize(&graph, &cluster, &hap_opts).expect("HAP plan");
    let hap_sim = plan.simulate(&net, &opts);
    println!(
        "{:<12} {:>16.2} {:>12}",
        "HAP",
        hap_sim.iteration_time * 1e3,
        plan.program.collective_count()
    );

    for b in Baseline::all() {
        let bp =
            build_baseline(b, &graph, &cluster, Granularity::PerMachine).expect("baseline builds");
        let mem = memory_footprint(&graph, &bp.program, &devices, &bp.ratios);
        if !mem.fits() {
            println!("{:<12} {:>16} {:>12}", b.name(), "OOM", "-");
            continue;
        }
        let sim = simulate_time(&graph, &bp.program, &devices, &net, &bp.ratios, &opts);
        println!(
            "{:<12} {:>16.2} {:>12}",
            b.name(),
            sim.iteration_time * 1e3,
            bp.program.collective_count()
        );
    }
    println!(
        "\nHAP ratios across machines (V100 machines first): {:?}",
        plan.ratios[0].iter().map(|b| (b * 1000.0).round() / 1000.0).collect::<Vec<_>>()
    );
}
