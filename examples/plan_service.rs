//! End-to-end tour of the plan service: start a daemon on a loopback
//! port, submit plans over the wire, watch the cache and single-flight
//! machinery work, and survive a restart from the persistence log.
//!
//! Run with `cargo run --release --example plan_service`.

use hap::HapOptions;
use hap_cluster::ClusterSpec;
use hap_models::{mlp, transformer_layer, MlpConfig, TransformerConfig};
use hap_service::{Client, Server, ServiceConfig};

fn main() {
    let cache_dir = std::env::temp_dir().join(format!("hap-plan-service-{}", std::process::id()));
    std::fs::create_dir_all(&cache_dir).expect("temp dir");
    let cache_path = cache_dir.join("plans.jsonl");
    let config =
        || ServiceConfig { cache_path: Some(cache_path.clone()), ..ServiceConfig::default() };

    let server = Server::start(config()).expect("bind loopback");
    println!("daemon listening on {}", server.addr());

    let graph = mlp(&MlpConfig::tiny());
    let cluster = ClusterSpec::fig17_cluster();
    let opts = HapOptions::default();

    // Cold: this request pays for the synthesis.
    let mut client = Client::connect(server.addr()).expect("connect");
    let t0 = std::time::Instant::now();
    let cold = client.plan(&graph, &cluster, &opts).expect("plan");
    println!(
        "cold  : {:>11} in {:>10.2?}  plan 0x{:016x}  est {:.6}s",
        cold.source,
        t0.elapsed(),
        cold.program.fingerprint(),
        cold.estimated_time
    );

    // Hot: same request, answered from the content-addressed cache.
    let t1 = std::time::Instant::now();
    let hot = client.plan(&graph, &cluster, &opts).expect("plan");
    println!(
        "hot   : {:>11} in {:>10.2?}  plan 0x{:016x}  est {:.6}s",
        hot.source,
        t1.elapsed(),
        hot.program.fingerprint(),
        hot.estimated_time
    );
    assert_eq!(hot.program.fingerprint(), cold.program.fingerprint());
    assert_eq!(hot.estimated_time.to_bits(), cold.estimated_time.to_bits());

    // Four concurrent identical requests for a *new* model: single-flight
    // coalesces them into one synthesis.
    let transformer = transformer_layer(&TransformerConfig::fig2(64));
    std::thread::scope(|scope| {
        for i in 0..4 {
            let (transformer, cluster, opts) = (&transformer, &cluster, &opts);
            let addr = server.addr();
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let reply = c.plan(transformer, cluster, opts).expect("plan");
                println!(
                    "worker {i}: {:>11}  plan 0x{:016x}",
                    reply.source,
                    reply.program.fingerprint()
                );
            });
        }
    });

    let stats = client.stats().expect("stats");
    println!(
        "stats : entries={} hits={} misses={} coalesced={} synthesized={} warm_seeded={}",
        stats.entries,
        stats.hits,
        stats.misses,
        stats.coalesced,
        stats.synthesized,
        stats.warm_seeded
    );
    assert_eq!(stats.synthesized, 2, "one synthesis per distinct request");
    drop(server);

    // Restart: the cache reloads from the persistence log, so the same
    // request is a disk-warm hit in the new daemon.
    let server = Server::start(config()).expect("restart");
    let mut client = Client::connect(server.addr()).expect("connect");
    let t2 = std::time::Instant::now();
    let disk = client.plan(&graph, &cluster, &opts).expect("plan");
    println!(
        "disk  : {:>11} in {:>10.2?}  plan 0x{:016x} (after restart)",
        disk.source,
        t2.elapsed(),
        disk.program.fingerprint()
    );
    assert_eq!(disk.source, "cache");
    assert_eq!(disk.program.fingerprint(), cold.program.fingerprint());

    let _ = std::fs::remove_dir_all(&cache_dir);
    println!("done: cached plans are bit-identical to cold synthesis, across restarts too");
}
