//! Sharding-ratio exploration (paper Sec. 2.4 / Fig. 2).
//!
//! Reproduces the paper's motivating observation: with compute-proportional
//! ratios (CP) the fast devices finish at the same time, but uneven shards
//! slow every All-Gather/Reduce-Scatter down; with even ratios (EV) the
//! collectives are fast but the slow devices straggle. The optimum moves
//! with the computation-to-communication ratio — and HAP's LP finds it.
//!
//! Run with: `cargo run --release --example sharding_explorer`

use hap::prelude::*;
use hap_balancer::{estimate_time, optimize_ratios};
use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
use hap_models::{transformer_layer, TransformerConfig};

fn main() {
    let cluster = ClusterSpec::fig2_cluster(); // 2x P100 + 2x A100
    let devices = cluster.virtual_devices(Granularity::PerGpu);
    let net = GroundTruthNet::new(NetworkParams::paper_cloud());
    let profile = profile_collectives(&net, devices.len());

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>28}",
        "hidden", "CP (ms)", "EV (ms)", "LP (ms)", "LP ratios"
    );
    for hidden in [256usize, 512, 1024, 2048] {
        let graph = transformer_layer(&TransformerConfig::fig2(hidden));
        let cp = vec![cluster.proportional_ratios(Granularity::PerGpu); graph.segment_count()];
        let plan = hap::parallelize(
            &graph,
            &cluster,
            &HapOptions { balance: false, max_rounds: 1, ..HapOptions::default() },
        )
        .expect("HAP plan");
        let q = &plan.program;

        let ev = vec![cluster.even_ratios(Granularity::PerGpu); graph.segment_count()];
        let t_cp = estimate_time(&graph, q, &devices, &profile, &cp);
        let t_ev = estimate_time(&graph, q, &devices, &profile, &ev);
        let lp = optimize_ratios(&graph, q, &devices, &profile).expect("LP solves");
        let t_lp = estimate_time(&graph, q, &devices, &profile, &lp);
        let row: Vec<f64> = lp[1].iter().map(|b| (b * 100.0).round() / 100.0).collect();
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12.2} {:>28}",
            hidden,
            t_cp * 1e3,
            t_ev * 1e3,
            t_lp * 1e3,
            format!("{row:?}")
        );
    }
    println!(
        "\nThe LP never does worse than either heuristic, and its ratios move from \
         compute-proportional toward even as communication starts to dominate."
    );
}
