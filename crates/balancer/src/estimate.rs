//! Whole-program cost estimation `t(Q, B)` (paper Sec. 3.2).

use hap_cluster::VirtualDevice;
use hap_collectives::CommProfile;
use hap_graph::Graph;
use hap_synthesis::{CostModel, DistInstr, DistProgram, ShardingRatios};

/// Cost breakdown of one synchronization stage.
#[derive(Clone, Debug)]
pub struct StageCost {
    /// Model segment the stage belongs to.
    pub segment: usize,
    /// Communication time of the stage-opening collective (0 for stage 0).
    pub comm: f64,
    /// Per-device computation seconds.
    pub comp: Vec<f64>,
}

impl StageCost {
    /// The stage's contribution to the iteration time.
    pub fn total(&self) -> f64 {
        self.comm + self.comp.iter().cloned().fold(0.0, f64::max)
    }
}

/// Computes the per-stage cost breakdown of a program under ratios `B`.
pub fn stage_breakdown(
    graph: &Graph,
    program: &DistProgram,
    devices: &[VirtualDevice],
    profile: &CommProfile,
    ratios: &ShardingRatios,
) -> Vec<StageCost> {
    let cm = CostModel::new(graph, devices, profile, ratios);
    // Same code path that fills the synthesizer's dense cost tables
    // (`CostModel::compute_seconds_into`), driven through one reused
    // scratch row: per-instruction costs agree with the search to the last
    // bit and the walk never allocates per instruction. A full
    // `CostTables::build` would also work but prices every `(node, rule)`
    // pair — wasteful when each program instruction is visited exactly
    // once.
    let m = devices.len();
    let mut row = vec![0.0; m];
    let mut stages: Vec<StageCost> = Vec::new();
    let mut cur = StageCost { segment: 0, comm: 0.0, comp: vec![0.0; m] };
    let mut cur_has_segment = false;
    for instr in &program.instrs {
        match instr {
            DistInstr::Leaf { .. } => {}
            DistInstr::Compute { node, rule } => {
                cm.compute_seconds_into(*node, rule.comp_scaling(), &mut row);
                for (s, d) in cur.comp.iter_mut().zip(row.iter()) {
                    *s += d;
                }
                if !cur_has_segment {
                    cur.segment = graph.node(*node).segment;
                    cur_has_segment = true;
                }
            }
            DistInstr::Collective { node, kind } => {
                stages.push(cur);
                cur = StageCost {
                    segment: graph.node(*node).segment,
                    comm: cm.collective_seconds(*node, kind),
                    comp: vec![0.0; m],
                };
                cur_has_segment = true;
            }
        }
    }
    stages.push(cur);
    stages
}

/// The estimated per-iteration time `t(Q, B)`: the sum over stages of
/// communication plus the per-stage computation makespan.
pub fn estimate_time(
    graph: &Graph,
    program: &DistProgram,
    devices: &[VirtualDevice],
    profile: &CommProfile,
    ratios: &ShardingRatios,
) -> f64 {
    stage_breakdown(graph, program, devices, profile, ratios).iter().map(StageCost::total).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_cluster::{ClusterSpec, Granularity};
    use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
    use hap_graph::GraphBuilder;
    use hap_synthesis::{synthesize, SynthConfig};

    fn setup() -> (Graph, DistProgram, Vec<VirtualDevice>, CommProfile, ShardingRatios) {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![65536, 512]);
        let w = g.parameter("w", vec![512, 512]);
        let labels = g.label("y", vec![65536]);
        let h = g.matmul(x, w);
        let loss = g.cross_entropy(h, labels);
        let graph = g.build_training(loss).unwrap();
        let cluster = ClusterSpec::fig17_cluster();
        let devices = cluster.virtual_devices(Granularity::PerGpu);
        let profile =
            profile_collectives(&GroundTruthNet::new(NetworkParams::paper_cloud()), devices.len());
        let ratios = vec![cluster.proportional_ratios(Granularity::PerGpu)];
        let q = synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        (graph, q, devices, profile, ratios)
    }

    #[test]
    fn estimate_matches_synthesizer_cost() {
        let (graph, q, devices, profile, ratios) = setup();
        let t = estimate_time(&graph, &q, &devices, &profile, &ratios);
        let rel = (t - q.estimated_time).abs() / q.estimated_time;
        assert!(rel < 1e-9, "estimate {t} vs synthesizer {}", q.estimated_time);
    }

    #[test]
    fn stage_count_matches_collectives() {
        let (graph, q, devices, profile, ratios) = setup();
        let stages = stage_breakdown(&graph, &q, &devices, &profile, &ratios);
        assert_eq!(stages.len(), q.collective_count() + 1);
        assert_eq!(stages[0].comm, 0.0);
    }

    #[test]
    fn even_ratios_change_the_estimate() {
        let (graph, q, devices, profile, ratios) = setup();
        let even = vec![vec![0.25; 4]];
        let t_prop = estimate_time(&graph, &q, &devices, &profile, &ratios);
        let t_even = estimate_time(&graph, &q, &devices, &profile, &even);
        assert!((t_prop - t_even).abs() > 1e-12, "ratios must matter");
    }
}
