//! Integer rounding of fractional shard sizes (paper Sec. 5.1).

/// Rounds fractional shard sizes `ratio * extent` to integers summing to
/// `extent`.
///
/// "We first set the sharded sizes to their nearest integers. If the sum is
/// larger or smaller than the original size, we repeatedly reduce/increase
/// the size by one for a shard that introduces smallest rounding errors,
/// until the sizes of the sharded tensors sum to the original tensor."
///
/// Zero-sized shards are allowed (a slow device can receive nothing, as in
/// the uneven expert placement of Fig. 17).
pub fn round_shards(extent: usize, ratios: &[f64]) -> Vec<usize> {
    if ratios.is_empty() {
        return Vec::new();
    }
    let targets: Vec<f64> = ratios.iter().map(|&r| r.max(0.0) * extent as f64).collect();
    let mut sizes: Vec<usize> = targets.iter().map(|&t| t.round() as usize).collect();
    let mut sum: i64 = sizes.iter().map(|&s| s as i64).sum();
    let extent_i = extent as i64;
    while sum > extent_i {
        // Decrement the shard whose decrement introduces the smallest error:
        // the one with the largest (size - target) and size > 0.
        let j = (0..sizes.len())
            .filter(|&j| sizes[j] > 0)
            .max_by(|&a, &b| {
                let ea = sizes[a] as f64 - targets[a];
                let eb = sizes[b] as f64 - targets[b];
                // total_cmp keeps NaN targets (degenerate LP output) from
                // panicking; they sort above every finite error.
                ea.total_cmp(&eb)
            })
            .expect("sum > extent implies some shard > 0");
        sizes[j] -= 1;
        sum -= 1;
    }
    while sum < extent_i {
        let j = (0..sizes.len())
            .min_by(|&a, &b| {
                let ea = sizes[a] as f64 - targets[a];
                let eb = sizes[b] as f64 - targets[b];
                ea.total_cmp(&eb)
            })
            .expect("non-empty ratios");
        sizes[j] += 1;
        sum += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_ratios_round_exactly() {
        assert_eq!(round_shards(8, &[0.5, 0.25, 0.25]), vec![4, 2, 2]);
    }

    #[test]
    fn sums_always_match() {
        for extent in [1usize, 5, 7, 100, 2048] {
            for ratios in [
                vec![0.33, 0.33, 0.34],
                vec![0.9, 0.05, 0.05],
                vec![0.25; 4],
                vec![1.0],
                vec![0.5, 0.5, 0.0],
            ] {
                let sizes = round_shards(extent, &ratios);
                assert_eq!(sizes.iter().sum::<usize>(), extent, "{extent} {ratios:?}");
            }
        }
    }

    #[test]
    fn skewed_small_extents_allow_zero_shards() {
        // 6 experts over 4 devices with A100-heavy ratios (the Fig. 17 case).
        let sizes = round_shards(6, &[0.35, 0.35, 0.15, 0.15]);
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert!(sizes[0] >= sizes[2]);
        // 1 unit over many devices: exactly one gets it.
        let one = round_shards(1, &[0.3, 0.3, 0.2, 0.2]);
        assert_eq!(one.iter().sum::<usize>(), 1);
        assert_eq!(one.iter().filter(|&&s| s > 0).count(), 1);
    }

    #[test]
    fn empty_ratios() {
        assert!(round_shards(10, &[]).is_empty());
    }

    #[test]
    fn rounding_error_is_minimal() {
        let ratios = [0.4, 0.3, 0.3];
        let sizes = round_shards(10, &ratios);
        assert_eq!(sizes, vec![4, 3, 3]);
    }
}
