//! LP formulation of the sharding-ratio optimization (paper Sec. 5).

use hap_cluster::VirtualDevice;
use hap_collectives::{CollKind, CommProfile};
use hap_graph::{CompScaling, Graph};
use hap_lp::{LpError, Problem, Relation};
use hap_synthesis::{CollectiveInstr, DistInstr, DistProgram, ShardingRatios};

/// Balancer failures.
#[derive(Debug, Clone, PartialEq)]
pub enum BalanceError {
    /// The underlying LP failed (infeasible LPs indicate a bug; unbounded
    /// cannot happen because ratios live on the probability simplex).
    Lp(LpError),
}

impl std::fmt::Display for BalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BalanceError::Lp(e) => write!(f, "sharding-ratio LP failed: {e}"),
        }
    }
}

impl std::error::Error for BalanceError {}

impl From<LpError> for BalanceError {
    fn from(e: LpError) -> Self {
        BalanceError::Lp(e)
    }
}

/// Per-stage linear data extracted from the program.
struct StageData {
    segment: usize,
    /// Per-device coefficient of `B_j` in the stage's computation time.
    sharded: Vec<f64>,
    /// Per-device constant computation time (replicated ops).
    replicated: Vec<f64>,
    /// Coefficient of the segment's max-ratio variable `u` in the stage's
    /// communication time (the constant part of comm time does not affect
    /// the argmin and is dropped).
    comm_u: f64,
}

/// Computes the optimal sharding ratios `B` for a fixed program `Q`
/// (Eqn. (2) / problem (3) of the paper), one LP per model segment.
///
/// Returns a `g x m` ratio matrix where `g = graph.segment_count()`.
pub fn optimize_ratios(
    graph: &Graph,
    program: &DistProgram,
    devices: &[VirtualDevice],
    profile: &CommProfile,
) -> Result<ShardingRatios, BalanceError> {
    let m = devices.len();
    let segments = graph.segment_count().max(1);
    let stages = collect_stages(graph, program, devices, profile, segments);

    let mut ratios = Vec::with_capacity(segments);
    for seg in 0..segments {
        let seg_stages: Vec<&StageData> = stages.iter().filter(|s| s.segment == seg).collect();
        if seg_stages.iter().all(|s| s.sharded.iter().all(|&a| a == 0.0)) {
            // Nothing sharded in this segment: ratios are irrelevant; use
            // compute-proportional as a neutral choice.
            let total: f64 = devices.iter().map(|d| d.flops).sum();
            ratios.push(devices.iter().map(|d| d.flops / total).collect());
            continue;
        }
        ratios.push(solve_segment(&seg_stages, m)?);
    }
    Ok(ratios)
}

/// Builds and solves one segment's LP.
///
/// Variables: `[B_0..B_{m-1}, u, t_0..t_{k-1}]`; minimize
/// `Σ_i w_i t_i + (Σ_i comm_u_i) · u` subject to `Σ B = 1`, `u ≥ B_j`, and
/// `t_i ≥ Σ_j a_ij B_j + c_ij` per stage and device. Stages with identical
/// coefficient vectors (repeated layers) are merged into one variable with
/// weight `w_i`, which keeps the tableau small and non-degenerate.
fn solve_segment(all_stages: &[&StageData], m: usize) -> Result<Vec<f64>, BalanceError> {
    // Merge identical stages.
    let mut stages: Vec<&StageData> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut comm_u_total = 0.0;
    'outer: for s in all_stages {
        comm_u_total += s.comm_u;
        for (i, existing) in stages.iter().enumerate() {
            let same =
                existing.sharded.iter().zip(s.sharded.iter()).all(|(a, b)| (a - b).abs() < 1e-12)
                    && existing
                        .replicated
                        .iter()
                        .zip(s.replicated.iter())
                        .all(|(a, b)| (a - b).abs() < 1e-12);
            if same {
                weights[i] += 1.0;
                continue 'outer;
            }
        }
        stages.push(s);
        weights.push(1.0);
    }

    let k = stages.len();
    let n = m + 1 + k;
    let mut objective = vec![0.0; n];
    for (i, _) in stages.iter().enumerate() {
        objective[m + 1 + i] = weights[i];
    }
    objective[m] = comm_u_total;
    let mut p = Problem::minimize(objective);

    // Ratios form a probability simplex.
    let mut simplex = vec![0.0; n];
    simplex[..m].fill(1.0);
    p.constrain(simplex, Relation::Eq, 1.0);

    // u >= B_j.
    for j in 0..m {
        let mut row = vec![0.0; n];
        row[j] = 1.0;
        row[m] = -1.0;
        p.constrain(row, Relation::Le, 0.0);
    }

    // t_i >= a_ij * B_j + c_ij. The constant is homogenized through the
    // simplex constraint (c_ij * Σ_k B_k == c_ij), which keeps every row's
    // right-hand side at zero — no artificial variables, no phase-1
    // degeneracy.
    for (i, s) in stages.iter().enumerate() {
        for j in 0..m {
            if s.sharded[j] == 0.0 && s.replicated[j] == 0.0 {
                continue;
            }
            let mut row = vec![s.replicated[j]; n];
            row[j] += s.sharded[j];
            for cell in row.iter_mut().skip(m) {
                *cell = 0.0;
            }
            row[m + 1 + i] = -1.0;
            p.constrain(row, Relation::Le, 0.0);
        }
    }

    let sol = p.solve()?;
    Ok(sol.x[..m].to_vec())
}

/// Extracts per-stage linear coefficients from the program, attributing the
/// All-To-All re-sharding at segment boundaries (Sec. 5.2) to the consuming
/// segment.
fn collect_stages(
    graph: &Graph,
    program: &DistProgram,
    devices: &[VirtualDevice],
    profile: &CommProfile,
    segments: usize,
) -> Vec<StageData> {
    let m = devices.len();
    let mut stages: Vec<StageData> = Vec::new();
    let mut cur =
        StageData { segment: 0, sharded: vec![0.0; m], replicated: vec![0.0; m], comm_u: 0.0 };
    let mut cur_has_segment = false;
    for instr in &program.instrs {
        match instr {
            DistInstr::Leaf { .. } => {}
            DistInstr::Compute { node, rule } => {
                let flops = graph.node_flops(*node);
                match rule.comp_scaling() {
                    CompScaling::Sharded => {
                        for (j, d) in devices.iter().enumerate() {
                            cur.sharded[j] += flops / d.flops;
                            cur.replicated[j] += hap_synthesis::LAUNCH_OVERHEAD;
                        }
                    }
                    CompScaling::Replicated => {
                        for (j, d) in devices.iter().enumerate() {
                            cur.replicated[j] += flops / d.flops + hap_synthesis::LAUNCH_OVERHEAD;
                        }
                    }
                }
                if !cur_has_segment {
                    cur.segment = graph.node(*node).segment;
                    cur_has_segment = true;
                }
            }
            DistInstr::Collective { node, kind } => {
                stages.push(cur);
                let bytes = graph.node_bytes(*node) as f64;
                let (comm_u, _const) = linearize_collective(kind, bytes, profile);
                cur = StageData {
                    segment: graph.node(*node).segment,
                    sharded: vec![0.0; m],
                    replicated: vec![0.0; m],
                    comm_u,
                };
                cur_has_segment = true;
            }
        }
    }
    stages.push(cur);

    // Segment-boundary All-To-Alls: tensors produced sharded in one segment
    // and consumed in another get an A2A charged to the consuming segment.
    if segments > 1 {
        let mut boundary_bytes = vec![0f64; segments];
        let mut produced_sharded = vec![false; graph.len()];
        for instr in &program.instrs {
            if let DistInstr::Compute { node, rule } = instr {
                if rule.output.shard_dim().is_some() {
                    produced_sharded[*node] = true;
                }
            }
        }
        for node in graph.nodes() {
            for &input in &node.inputs {
                let (sa, sb) = (graph.node(input).segment, node.segment);
                if sa != sb && produced_sharded[input] {
                    boundary_bytes[sb.min(segments - 1)] += graph.node_bytes(input) as f64;
                }
            }
        }
        if let Some(model) = profile.model(CollKind::AllToAll) {
            for (seg, &bytes) in boundary_bytes.iter().enumerate() {
                if bytes > 0.0 {
                    stages.push(StageData {
                        segment: seg,
                        sharded: vec![0.0; m],
                        replicated: vec![0.0; m],
                        comm_u: model.sec_per_byte * bytes,
                    });
                }
            }
        }
    }
    stages
}

/// Decomposes a collective's estimated time into `coef_u * u + const` where
/// `u = max_j B_j` (the largest shard carries `bytes * u`).
fn linearize_collective(kind: &CollectiveInstr, bytes: f64, profile: &CommProfile) -> (f64, f64) {
    match kind {
        CollectiveInstr::AllReduce => (0.0, profile.estimate(CollKind::AllReduce, bytes, bytes)),
        CollectiveInstr::AllGather { grouped: true, .. } => {
            (0.0, profile.estimate(CollKind::GroupedBroadcast, bytes, bytes))
        }
        CollectiveInstr::AllGather { grouped: false, .. } => {
            linear_of(profile, CollKind::AllGatherPadded, bytes)
        }
        CollectiveInstr::ReduceScatter { .. } => linear_of(profile, CollKind::ReduceScatter, bytes),
        CollectiveInstr::AllToAll { .. } => linear_of(profile, CollKind::AllToAll, bytes),
    }
}

fn linear_of(profile: &CommProfile, kind: CollKind, bytes: f64) -> (f64, f64) {
    match profile.model(kind) {
        Some(model) => (model.sec_per_byte * bytes, model.latency),
        None => (0.0, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate_time;
    use hap_cluster::{ClusterSpec, Granularity};
    use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
    use hap_graph::GraphBuilder;
    use hap_synthesis::{synthesize, SynthConfig};

    fn setup(
        batch: usize,
        width: usize,
    ) -> (Graph, DistProgram, Vec<VirtualDevice>, CommProfile, ShardingRatios) {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![batch, width]);
        let w = g.parameter("w", vec![width, width]);
        let labels = g.label("y", vec![batch]);
        let h = g.matmul(x, w);
        let loss = g.cross_entropy(h, labels);
        let graph = g.build_training(loss).unwrap();
        let cluster = ClusterSpec::fig17_cluster();
        let devices = cluster.virtual_devices(Granularity::PerGpu);
        let profile =
            profile_collectives(&GroundTruthNet::new(NetworkParams::paper_cloud()), devices.len());
        let ratios = vec![cluster.proportional_ratios(Granularity::PerGpu)];
        let q = synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        (graph, q, devices, profile, ratios)
    }

    #[test]
    fn optimized_ratios_never_worse() {
        let (graph, q, devices, profile, initial) = setup(262144, 256);
        let before = estimate_time(&graph, &q, &devices, &profile, &initial);
        let ratios = optimize_ratios(&graph, &q, &devices, &profile).unwrap();
        let after = estimate_time(&graph, &q, &devices, &profile, &ratios);
        assert!(after <= before + 1e-9, "LP must not worsen: {after} vs {before}");
        let sum: f64 = ratios[0].iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn compute_bound_ratios_track_device_speed() {
        // Huge compute, trivial communication: the optimum approaches
        // compute-proportional ratios (the CP end of Fig. 2).
        let (graph, q, devices, profile, _) = setup(1 << 20, 128);
        let ratios = optimize_ratios(&graph, &q, &devices, &profile).unwrap();
        let r = &ratios[0];
        // A100s (0,1) must receive more than P100s (2,3).
        assert!(r[0] > r[2], "ratios {r:?}");
        assert!(r[1] > r[3], "ratios {r:?}");
    }

    #[test]
    fn ratios_are_nonnegative_and_normalized() {
        let (graph, q, devices, profile, _) = setup(65536, 512);
        let ratios = optimize_ratios(&graph, &q, &devices, &profile).unwrap();
        for row in &ratios {
            assert_eq!(row.len(), devices.len());
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            for &b in row {
                assert!(b >= -1e-9);
            }
        }
    }
}
