//! The load balancer: optimal sharding ratios via linear programming
//! (paper Sec. 5).
//!
//! For a fixed distributed program `Q`, the balancer solves
//! `argmin_B t(Q, B)` where
//!
//! ```text
//! t(Q, B) = Σ_i  comm_i(B) + max_j comp_ij(B_j)
//! ```
//!
//! per synchronization stage `i` and device `j` (paper Sec. 3.2). Because
//! every `comp_ij` is linear in `B_j` and every `comm_i` is linear in
//! `max_j B_j`, the problem linearizes with one auxiliary variable per stage
//! plus one max-ratio variable, and is solved exactly with the `hap-lp`
//! simplex (the paper uses CBC).
//!
//! With `g > 1` model segments the balancer solves one LP per segment
//! (Sec. 5.2), accounting for the All-To-All re-sharding inserted at segment
//! boundaries. Fractional ratios are rounded to integer shard sizes with the
//! smallest-rounding-error correction loop of Sec. 5.1.

mod estimate;
mod optimize;
mod rounding;

pub use estimate::{estimate_time, stage_breakdown, StageCost};
pub use optimize::{optimize_ratios, BalanceError};
pub use rounding::round_shards;
