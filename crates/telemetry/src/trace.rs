//! Per-request traces: span timelines, a builder, and the fixed-capacity
//! ring that retains the most recent completed traces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;

/// A phase of a request's lifetime. Spans appear in a trace in this
/// order; phases that did not occur (e.g. no synthesis on a cache hit)
/// are simply absent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Connection accepted (async path only; a zero-width marker).
    Accept,
    /// The request line accumulating in the framer, first byte → newline.
    Frame,
    /// Parsing the request JSON and validating its fields.
    Decode,
    /// Probing the plan cache (and the in-flight table).
    CacheLookup,
    /// Waiting in the synthesis queue for a worker.
    QueueWait,
    /// Synthesis itself, on a worker thread.
    Synthesis,
    /// Rendering the response frame.
    Encode,
    /// Response bytes queued → fully written to the socket (async path).
    Flush,
}

impl SpanKind {
    pub const ALL: [SpanKind; 8] = [
        SpanKind::Accept,
        SpanKind::Frame,
        SpanKind::Decode,
        SpanKind::CacheLookup,
        SpanKind::QueueWait,
        SpanKind::Synthesis,
        SpanKind::Encode,
        SpanKind::Flush,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Accept => "accept",
            SpanKind::Frame => "frame",
            SpanKind::Decode => "decode",
            SpanKind::CacheLookup => "cache_lookup",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Synthesis => "synthesis",
            SpanKind::Encode => "encode",
            SpanKind::Flush => "flush",
        }
    }

    pub fn parse(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

/// The wire verb a request carried.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verb {
    Plan,
    Replan,
    Stats,
    Metrics,
    Trace,
    /// Cluster ring membership: query or install (`hap-cluster` mode).
    Ring,
    /// Peer-to-peer plan replication in `hap-cluster` mode.
    Replicate,
    Shutdown,
    /// The line failed to parse far enough to name a verb.
    Invalid,
}

impl Verb {
    pub const ALL: [Verb; 9] = [
        Verb::Plan,
        Verb::Replan,
        Verb::Stats,
        Verb::Metrics,
        Verb::Trace,
        Verb::Ring,
        Verb::Replicate,
        Verb::Shutdown,
        Verb::Invalid,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            Verb::Plan => "plan",
            Verb::Replan => "replan",
            Verb::Stats => "stats",
            Verb::Metrics => "metrics",
            Verb::Trace => "trace",
            Verb::Ring => "ring",
            Verb::Replicate => "replicate",
            Verb::Shutdown => "shutdown",
            Verb::Invalid => "invalid",
        }
    }

    pub fn parse(s: &str) -> Option<Verb> {
        Verb::ALL.into_iter().find(|v| v.as_str() == s)
    }

    /// Dense index for verb × outcome histogram matrices.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// How a request concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Plan served from the cache.
    Hit,
    /// Plan synthesized on a worker (a cache miss this request led).
    Miss,
    /// Plan obtained by joining another request's in-flight synthesis.
    Coalesced,
    /// Replan request answered (from cache or fresh synthesis).
    Replan,
    /// Shed with a `busy` frame under queue-depth overload.
    Shed,
    /// An internal fault (synthesis panic) answered with a typed error.
    Internal,
    /// Any other typed error frame (decode, validation, unknown verb…).
    Error,
    /// Admin verbs (`stats`, `metrics`, `trace`, `shutdown`) answered
    /// normally.
    Ok,
}

impl Outcome {
    pub const ALL: [Outcome; 8] = [
        Outcome::Hit,
        Outcome::Miss,
        Outcome::Coalesced,
        Outcome::Replan,
        Outcome::Shed,
        Outcome::Internal,
        Outcome::Error,
        Outcome::Ok,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Hit => "hit",
            Outcome::Miss => "miss",
            Outcome::Coalesced => "coalesced",
            Outcome::Replan => "replan",
            Outcome::Shed => "shed",
            Outcome::Internal => "internal",
            Outcome::Error => "error",
            Outcome::Ok => "ok",
        }
    }

    pub fn parse(s: &str) -> Option<Outcome> {
        Outcome::ALL.into_iter().find(|o| o.as_str() == s)
    }

    /// Dense index for verb × outcome histogram matrices.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One timed phase inside a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub kind: SpanKind,
    pub start_nanos: u64,
    pub end_nanos: u64,
}

impl Span {
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

/// A completed request trace: the span timeline plus identity and
/// outcome. Annotations carry counters from layers the telemetry crate
/// does not depend on (e.g. synthesis profiling).
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Ring-global completion sequence number (1-based, dense).
    pub trace_id: u64,
    /// The wire `id` the client sent (0 if the line never parsed).
    pub request_id: u64,
    pub verb: Verb,
    pub outcome: Outcome,
    /// Service latency: first processing span start → last span end.
    /// Excludes `Accept`/`Frame` (connection/network time), so sync and
    /// async paths measure the same thing and histograms stay comparable.
    pub total_nanos: u64,
    pub spans: Vec<Span>,
    pub annotations: Vec<(String, u64)>,
}

/// Accumulates spans for one in-flight request.
///
/// `begin` closes any open span at the current clock reading and opens
/// the next, so the common sequential path reads the clock once per
/// phase boundary. Out-of-band phases measured elsewhere (queue wait,
/// synthesis, flush) are attached with `span`.
#[derive(Debug)]
pub struct TraceBuilder {
    clock: Clock,
    request_id: u64,
    verb: Verb,
    spans: Vec<Span>,
    open: Option<(SpanKind, u64)>,
    annotations: Vec<(String, u64)>,
}

impl TraceBuilder {
    pub fn new(clock: Clock) -> TraceBuilder {
        TraceBuilder {
            clock,
            request_id: 0,
            verb: Verb::Invalid,
            spans: Vec::with_capacity(6),
            open: None,
            annotations: Vec::new(),
        }
    }

    /// Identity becomes known only once decode succeeds.
    pub fn set_request(&mut self, request_id: u64, verb: Verb) {
        self.request_id = request_id;
        self.verb = verb;
    }

    pub fn verb(&self) -> Verb {
        self.verb
    }

    pub fn now(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Closes the open span (if any) and opens `kind`, both at one clock
    /// reading.
    pub fn begin(&mut self, kind: SpanKind) {
        let now = self.now();
        self.close_open(now);
        self.open = Some((kind, now));
    }

    /// Closes the open span at the current clock reading.
    pub fn end(&mut self) {
        let now = self.now();
        self.close_open(now);
    }

    /// Attaches a phase measured elsewhere (worker-side timestamps).
    pub fn span(&mut self, kind: SpanKind, start_nanos: u64, end_nanos: u64) {
        self.spans.push(Span { kind, start_nanos, end_nanos });
    }

    pub fn annotate(&mut self, key: &str, value: u64) {
        self.annotations.push((key.to_string(), value));
    }

    fn close_open(&mut self, now: u64) {
        if let Some((kind, start)) = self.open.take() {
            self.spans.push(Span { kind, start_nanos: start, end_nanos: now });
        }
    }

    /// Seals the trace. Spans are ordered by start time; total latency is
    /// measured from the first span after `Accept`/`Frame`.
    pub fn finish(mut self, trace_id: u64, outcome: Outcome) -> RequestTrace {
        let now = self.now();
        self.close_open(now);
        self.spans.sort_by_key(|s| (s.start_nanos, s.end_nanos));
        let served_start = self
            .spans
            .iter()
            .find(|s| !matches!(s.kind, SpanKind::Accept | SpanKind::Frame))
            .or(self.spans.first())
            .map(|s| s.start_nanos)
            .unwrap_or(now);
        let last_end = self.spans.iter().map(|s| s.end_nanos).max().unwrap_or(now);
        RequestTrace {
            trace_id,
            request_id: self.request_id,
            verb: self.verb,
            outcome,
            total_nanos: last_end.saturating_sub(served_start),
            spans: self.spans,
            annotations: self.annotations,
        }
    }
}

/// Fixed-capacity ring retaining the most recent completed traces.
///
/// Writers claim a slot with one atomic `fetch_add` and publish the
/// `Arc` under that slot's (uncontended) mutex — completion never waits
/// on readers or other writers beyond a single slot handoff. `last`
/// snapshots without stopping writers.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Mutex<Option<Arc<RequestTrace>>>>,
    head: AtomicU64,
}

impl TraceRing {
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever pushed (not just retained).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Claims the next completion sequence number (1-based) and retains
    /// the trace, overwriting the oldest once full. Returns the sequence
    /// number, which callers stamp into the trace as its `trace_id`.
    pub fn push(&self, trace: Arc<RequestTrace>) -> u64 {
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (claim % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(trace);
        claim + 1
    }

    /// The retained traces, oldest first. Best-effort under concurrent
    /// pushes: each slot is read under its own lock, and the result is
    /// ordered by `trace_id`.
    pub fn snapshot(&self) -> Vec<Arc<RequestTrace>> {
        let mut out: Vec<Arc<RequestTrace>> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        out.sort_by_key(|t| t.trace_id);
        out
    }

    /// The most recent `n` retained traces, newest first.
    pub fn last(&self, n: usize) -> Vec<Arc<RequestTrace>> {
        let mut all = self.snapshot();
        all.reverse();
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace(clock: &Clock, trace_id: u64) -> Arc<RequestTrace> {
        let mut b = TraceBuilder::new(clock.clone());
        b.set_request(trace_id, Verb::Plan);
        b.begin(SpanKind::Decode);
        b.begin(SpanKind::CacheLookup);
        b.begin(SpanKind::Encode);
        Arc::new(b.finish(trace_id, Outcome::Hit))
    }

    #[test]
    fn builder_produces_contiguous_spans_under_step_clock() {
        let clock = Clock::step(1_000, 100);
        let mut b = TraceBuilder::new(clock);
        b.set_request(7, Verb::Plan);
        b.begin(SpanKind::Decode); // reads 1000
        b.begin(SpanKind::CacheLookup); // reads 1100
        b.begin(SpanKind::Encode); // reads 1200
        let t = b.finish(42, Outcome::Hit); // reads 1300
        assert_eq!(t.trace_id, 42);
        assert_eq!(t.request_id, 7);
        assert_eq!(t.verb, Verb::Plan);
        assert_eq!(t.outcome, Outcome::Hit);
        let kinds: Vec<SpanKind> = t.spans.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SpanKind::Decode, SpanKind::CacheLookup, SpanKind::Encode]);
        assert_eq!(t.spans[0].start_nanos, 1_000);
        assert_eq!(t.spans[0].end_nanos, 1_100);
        assert_eq!(t.spans[2].end_nanos, 1_300);
        assert_eq!(t.total_nanos, 300);
    }

    #[test]
    fn total_excludes_accept_and_frame() {
        let clock = Clock::step(0, 10);
        let mut b = TraceBuilder::new(clock);
        b.span(SpanKind::Accept, 0, 0);
        b.span(SpanKind::Frame, 0, 50);
        b.span(SpanKind::Decode, 50, 60);
        b.span(SpanKind::Flush, 60, 90);
        let t = b.finish(1, Outcome::Ok);
        assert_eq!(t.total_nanos, 40, "50 (decode start) -> 90 (flush end)");
    }

    #[test]
    fn ring_retains_last_capacity_traces_in_order() {
        let clock = Clock::step(0, 1);
        let ring = TraceRing::new(4);
        for i in 1..=10u64 {
            let id = ring.push(toy_trace(&clock, i));
            assert_eq!(id, i);
        }
        assert_eq!(ring.recorded(), 10);
        let kept: Vec<u64> = ring.snapshot().iter().map(|t| t.request_id).collect();
        assert_eq!(kept, vec![7, 8, 9, 10]);
        let last2: Vec<u64> = ring.last(2).iter().map(|t| t.request_id).collect();
        assert_eq!(last2, vec![10, 9]);
    }

    #[test]
    fn span_kind_and_verb_round_trip_their_names() {
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::parse(k.as_str()), Some(k));
        }
        for v in Verb::ALL {
            assert_eq!(Verb::parse(v.as_str()), Some(v));
        }
        for o in Outcome::ALL {
            assert_eq!(Outcome::parse(o.as_str()), Some(o));
        }
    }
}
