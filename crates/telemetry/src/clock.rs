//! The injectable time source behind every span and histogram sample.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A nanosecond clock the telemetry layer reads instead of calling
/// [`Instant::now`] directly, so tests can pin time and assert exact span
/// structure deterministically.
///
/// * [`Clock::Monotonic`] — production: nanoseconds since the clock was
///   created.
/// * [`Clock::Manual`] — tests: a shared counter the test advances
///   explicitly; reads never move it.
/// * [`Clock::Step`] — tests: every read returns the current value and
///   then advances the counter by a fixed step, so a sequential request
///   path yields strictly increasing, reproducible timestamps without the
///   test having to interleave with service internals.
#[derive(Clone, Debug)]
pub enum Clock {
    /// Real time, measured from the wrapped epoch.
    Monotonic(Instant),
    /// A shared counter advanced only by the test.
    Manual(Arc<AtomicU64>),
    /// A shared counter that auto-advances by the step on every read.
    Step(Arc<AtomicU64>, u64),
}

impl Default for Clock {
    fn default() -> Self {
        Clock::monotonic()
    }
}

impl Clock {
    /// The production clock: nanoseconds since now.
    pub fn monotonic() -> Clock {
        Clock::Monotonic(Instant::now())
    }

    /// A manually advanced clock sharing `nanos` with the test.
    pub fn manual(nanos: Arc<AtomicU64>) -> Clock {
        Clock::Manual(nanos)
    }

    /// A self-advancing clock: the first read returns `start`, and each
    /// read advances the counter by `step` nanoseconds.
    pub fn step(start: u64, step: u64) -> Clock {
        Clock::Step(Arc::new(AtomicU64::new(start)), step)
    }

    /// The current reading, in nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        match self {
            Clock::Monotonic(epoch) => epoch.elapsed().as_nanos() as u64,
            Clock::Manual(nanos) => nanos.load(Ordering::Relaxed),
            Clock::Step(nanos, step) => nanos.fetch_add(*step, Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let nanos = Arc::new(AtomicU64::new(5));
        let clock = Clock::manual(nanos.clone());
        assert_eq!(clock.now_nanos(), 5);
        assert_eq!(clock.now_nanos(), 5);
        nanos.store(17, Ordering::Relaxed);
        assert_eq!(clock.now_nanos(), 17);
    }

    #[test]
    fn step_clock_advances_per_read_and_clones_share_state() {
        let clock = Clock::step(100, 10);
        let alias = clock.clone();
        assert_eq!(clock.now_nanos(), 100);
        assert_eq!(alias.now_nanos(), 110);
        assert_eq!(clock.now_nanos(), 120);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = Clock::monotonic();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }
}
