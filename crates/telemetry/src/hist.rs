//! Log-bucketed latency histograms: HDR-style, constant-size, mergeable.
//!
//! Values are nanoseconds. Each power-of-two octave splits into
//! `1 << SUB_BITS` sub-buckets, bounding relative quantile error at
//! ~`1 / (1 << SUB_BITS)` (6.25%) while keeping the whole histogram a
//! fixed array of atomics — recording is one relaxed `fetch_add`, so the
//! hot path pays a few atomics and nothing else.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 16 buckets per octave.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Bucket count covering the full `u64` range: values below `SUB` get
/// exact unit buckets, then 60 octaves of `SUB` sub-buckets each.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS as usize) + SUB as usize;

/// The bucket index holding `v`.
fn index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64;
        let base = (msb - SUB_BITS as u64 + 1) << SUB_BITS;
        let sub = (v >> (msb - SUB_BITS as u64)) - SUB;
        (base + sub) as usize
    }
}

/// The inclusive `[lo, hi]` value range of bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUB {
        (idx, idx)
    } else {
        let msb = (idx >> SUB_BITS) + SUB_BITS as u64 - 1;
        let sub = idx & (SUB - 1);
        let width = 1u64 << (msb - SUB_BITS as u64);
        let lo = (SUB + sub) << (msb - SUB_BITS as u64);
        (lo, lo + (width - 1))
    }
}

/// A fixed-size, thread-safe, mergeable latency histogram.
///
/// Quantiles are reported as the *upper bound* of the bucket containing
/// the requested rank, so `quantile(q)` ≥ the true q-quantile and never
/// exceeds it by more than one sub-bucket width (~6.25% relative).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        // `AtomicU64` is not Copy; build the array through a Vec.
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets = buckets.into_boxed_slice().try_into().expect("length matches NUM_BUCKETS");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. One relaxed `fetch_add` per aggregate — safe
    /// to call from any thread, never blocks.
    pub fn record(&self, v: u64) {
        self.buckets[index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (exact, not bucketed).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the sample of rank `ceil(q · count)`. Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bounds(idx).1;
            }
        }
        // Racing recorders can leave `count` ahead of the bucket sums for
        // a moment; fall back to the largest non-empty bucket.
        self.max()
    }

    /// Folds `other` into `self`. Merging two histograms is exactly
    /// equivalent to having recorded both sample streams into one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// The upper bucket bound a raw sample maps to — the value
    /// `quantile` would report for a rank landing on this sample. Lets a
    /// reference computation reproduce histogram quantiles exactly.
    pub fn bucket_upper_bound(v: u64) -> u64 {
        bucket_bounds(index(v)).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB {
            assert_eq!(bucket_bounds(index(v)), (v, v));
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Adjacent octave boundaries map to adjacent buckets.
        let mut prev = index(0);
        for v in 1..4096u64 {
            let idx = index(v);
            assert!(idx == prev || idx == prev + 1, "gap at {v}: {prev} -> {idx}");
            prev = idx;
        }
        assert!(index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn quantiles_of_known_stream() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 100_000);
        // p50 covers the 50th sample (50_000ns), reported as its bucket's
        // upper bound.
        assert_eq!(h.quantile(0.5), Histogram::bucket_upper_bound(50_000));
        assert_eq!(h.quantile(0.99), Histogram::bucket_upper_bound(99_000));
        assert_eq!(h.quantile(1.0), Histogram::bucket_upper_bound(100_000));
        assert_eq!(h.quantile(0.0), Histogram::bucket_upper_bound(1000));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }
}
