//! Telemetry primitives for the HAP plan service.
//!
//! Dependency-free building blocks the service layer threads through its
//! request path:
//!
//! * [`Clock`] — an injectable nanosecond time source ([`Clock::Manual`]
//!   and [`Clock::Step`] make span timelines deterministic in tests).
//! * [`Histogram`] — HDR-style log-bucketed latency histogram: constant
//!   size, mergeable, one relaxed atomic increment per sample.
//! * [`HistMatrix`] — a dense verb × outcome grid of histograms backing
//!   the `metrics` wire verb.
//! * [`TraceBuilder`] / [`RequestTrace`] / [`TraceRing`] — per-request
//!   span timelines retained in a fixed-capacity ring for the `trace`
//!   wire verb.
//!
//! The crate knows nothing about the wire protocol or synthesis: traces
//! carry generic `(name, value)` annotations so upper layers can fold in
//! their own counters (synthesis profiles) without a dependency edge.

mod clock;
mod hist;
mod trace;

pub use clock::Clock;
pub use hist::{bucket_bounds, Histogram, NUM_BUCKETS};
pub use trace::{Outcome, RequestTrace, Span, SpanKind, TraceBuilder, TraceRing, Verb};

/// A dense verb × outcome grid of [`Histogram`]s.
///
/// Built once at service startup; recording into a cell is one bucket
/// index computation plus four relaxed atomic adds.
#[derive(Debug)]
pub struct HistMatrix {
    cells: Vec<Histogram>,
}

impl Default for HistMatrix {
    fn default() -> Self {
        HistMatrix::new()
    }
}

impl HistMatrix {
    pub fn new() -> HistMatrix {
        let cells = (0..Verb::ALL.len() * Outcome::ALL.len()).map(|_| Histogram::new()).collect();
        HistMatrix { cells }
    }

    fn cell(&self, verb: Verb, outcome: Outcome) -> &Histogram {
        &self.cells[verb.index() * Outcome::ALL.len() + outcome.index()]
    }

    /// Records one request latency under its verb × outcome cell.
    pub fn record(&self, verb: Verb, outcome: Outcome, nanos: u64) {
        self.cell(verb, outcome).record(nanos);
    }

    /// The histogram for one verb × outcome cell.
    pub fn get(&self, verb: Verb, outcome: Outcome) -> &Histogram {
        self.cell(verb, outcome)
    }

    /// Total samples across every cell.
    pub fn total_count(&self) -> u64 {
        self.cells.iter().map(|h| h.count()).sum()
    }

    /// Visits every non-empty cell in deterministic (verb, outcome)
    /// order.
    pub fn for_each_nonempty(&self, mut f: impl FnMut(Verb, Outcome, &Histogram)) {
        for verb in Verb::ALL {
            for outcome in Outcome::ALL {
                let h = self.cell(verb, outcome);
                if h.count() > 0 {
                    f(verb, outcome, h);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_cells_are_independent() {
        let m = HistMatrix::new();
        m.record(Verb::Plan, Outcome::Hit, 100);
        m.record(Verb::Plan, Outcome::Miss, 2_000);
        m.record(Verb::Replan, Outcome::Replan, 30_000);
        assert_eq!(m.get(Verb::Plan, Outcome::Hit).count(), 1);
        assert_eq!(m.get(Verb::Plan, Outcome::Miss).count(), 1);
        assert_eq!(m.get(Verb::Plan, Outcome::Shed).count(), 0);
        assert_eq!(m.total_count(), 3);
        let mut seen = Vec::new();
        m.for_each_nonempty(|v, o, h| seen.push((v, o, h.count())));
        assert_eq!(
            seen,
            vec![
                (Verb::Plan, Outcome::Hit, 1),
                (Verb::Plan, Outcome::Miss, 1),
                (Verb::Replan, Outcome::Replan, 1),
            ]
        );
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every sample lands in a bucket whose bounds contain it.
        #[test]
        fn bucket_bounds_contain_every_sample(v in 0u64..=u64::MAX) {
            let h = Histogram::new();
            h.record(v);
            let upper = Histogram::bucket_upper_bound(v);
            prop_assert!(upper >= v);
            // The reported quantile for the single sample is that bound.
            prop_assert_eq!(h.quantile(1.0), upper);
            // The bound overshoots by at most one sub-bucket width
            // (~6.25% relative) above the exact-bucket range.
            if v >= 16 {
                prop_assert!(upper - v < v / 8 + 1);
            } else {
                prop_assert_eq!(upper, v);
            }
        }

        /// Quantiles never decrease as q increases.
        #[test]
        fn quantiles_are_monotone(
            samples in prop::collection::vec(0u64..1 << 40, 1..200),
            qs in prop::collection::vec(0.0f64..=1.0, 2..8),
        ) {
            let h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let mut qs = qs;
            qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let values: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
            for w in values.windows(2) {
                prop_assert!(w[0] <= w[1], "quantiles regressed: {:?}", values);
            }
        }

        /// Merging two histograms is indistinguishable from recording
        /// both streams into one.
        #[test]
        fn merge_equals_concat(
            xs in prop::collection::vec(0u64..=u64::MAX, 0..100),
            ys in prop::collection::vec(0u64..=u64::MAX, 0..100),
        ) {
            let a = Histogram::new();
            let b = Histogram::new();
            let c = Histogram::new();
            for &x in &xs {
                a.record(x);
                c.record(x);
            }
            for &y in &ys {
                b.record(y);
                c.record(y);
            }
            a.merge(&b);
            prop_assert_eq!(a.count(), c.count());
            prop_assert_eq!(a.sum(), c.sum());
            prop_assert_eq!(a.max(), c.max());
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(a.quantile(q), c.quantile(q));
            }
        }

        /// The reported quantile matches a reference computation over the
        /// raw samples mapped through the same bucket bounds.
        #[test]
        fn quantile_matches_reference(
            samples in prop::collection::vec(0u64..1 << 48, 1..150),
            q in 0.0f64..=1.0,
        ) {
            let h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let mut reference: Vec<u64> =
                samples.iter().map(|&s| Histogram::bucket_upper_bound(s)).collect();
            reference.sort_unstable();
            let rank = ((q * reference.len() as f64).ceil() as usize).clamp(1, reference.len());
            prop_assert_eq!(h.quantile(q), reference[rank - 1]);
        }
    }
}
