//! # HAP: SPMD DNN training on heterogeneous GPU clusters
//!
//! A from-scratch Rust reproduction of *HAP: SPMD DNN Training on
//! Heterogeneous GPU Clusters with Automated Program Synthesis* (EuroSys
//! 2024). HAP takes a single-device training graph and a heterogeneous
//! cluster specification, and jointly optimizes:
//!
//! * the **tensor sharding strategy**, by synthesizing a distributed program
//!   from scratch on a distributed instruction set with an A\*-guided
//!   syntax-guided synthesis (paper Sec. 4);
//! * the **sharding ratios** across devices of different speeds, with an
//!   exact linear program per model segment (Sec. 5);
//! * the **communication methods** — padded All-Gather vs grouped
//!   Broadcast, and sufficient factor broadcasting — folded into the same
//!   search (Sec. 4.4).
//!
//! The two optimizations alternate until convergence or oscillation
//! (Sec. 3.1); the best `(Q, B)` pair becomes the [`Plan`].
//!
//! The user API mirrors the spirit of the paper's PyTorch-DDP-like entry
//! point: one call, [`parallelize`], returns an executable plan.
//!
//! # Examples
//!
//! ```
//! use hap::prelude::*;
//!
//! // A toy model on the paper's A100+P100 cluster.
//! let graph = hap_models::mlp(&hap_models::MlpConfig {
//!     batch: 4096,
//!     input: 64,
//!     hidden: vec![128, 128],
//!     classes: 10,
//! });
//! let cluster = ClusterSpec::fig17_cluster();
//! let plan = hap::parallelize(&graph, &cluster, &HapOptions::default()).unwrap();
//! assert!(plan.program.is_complete(&graph));
//! assert!(plan.estimated_time > 0.0);
//! ```

mod optimizer;
mod plan;

pub use hap_synthesis::SynthProfile;
pub use optimizer::{
    parallelize, parallelize_with_warm, parallelize_with_warm_profiled, HapError, HapOptions,
};
pub use plan::Plan;

/// Convenient re-exports for building models, clusters and plans.
pub mod prelude {
    pub use crate::{parallelize, parallelize_with_warm, HapError, HapOptions, Plan};
    pub use hap_cluster::{ClusterSpec, DeviceType, Granularity, Machine, VirtualDevice};
    pub use hap_graph::{Graph, GraphBuilder, NodeId, Op, Placement, Role};
    pub use hap_synthesis::{DistInstr, DistProgram, SynthConfig};
}

pub use hap_balancer as balancer;
pub use hap_baselines as baselines;
pub use hap_cluster as cluster;
pub use hap_collectives as collectives;
pub use hap_graph as graph;
pub use hap_lp as lp;
pub use hap_models as models;
pub use hap_partition as partition;
pub use hap_simulator as simulator;
pub use hap_synthesis as synthesis;
pub use hap_tensor as tensor;
