//! The alternating Q/B optimization loop (paper Sec. 3.1).

use std::time::Instant;

use hap_balancer::{estimate_time, optimize_ratios, BalanceError};
use hap_baselines::{propagate, GradSync, WalkOptions};
use hap_cluster::{ClusterSpec, Granularity};
use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
use hap_graph::Graph;
use hap_partition::{apply_partition, chain_partition};
use hap_simulator::memory_footprint;
use hap_synthesis::{
    synthesize_with_theory_profiled, DistProgram, ShardingRatios, SynthConfig, SynthError,
    SynthProfile, Theory,
};

use crate::plan::Plan;

/// Top-level options for [`parallelize`].
#[derive(Clone, Debug)]
pub struct HapOptions {
    /// Virtual-device granularity (paper Sec. 3: per GPU or per machine).
    pub granularity: Granularity,
    /// Maximum alternating-optimization rounds (each round = one program
    /// synthesis + one load-balancing LP).
    pub max_rounds: usize,
    /// Synthesis configuration. `synth.threads` controls the wave-parallel
    /// A\* worker count (`0` = all cores); plans are bit-for-bit identical
    /// for every value, so it is purely a wall-clock knob.
    pub synth: SynthConfig,
    /// When set and the graph has no user segments, auto-partition it into
    /// this many segments (paper Sec. 5.2's METIS alternative).
    pub auto_segments: Option<usize>,
    /// Use the load balancer at all (disabled by the Fig. 15 "Q"-only
    /// ablation, which keeps compute-proportional ratios).
    pub balance: bool,
    /// Seed each round's synthesis with the previous round's program,
    /// re-costed under the freshly balanced ratios, as the A\* incumbent.
    /// The warm incumbent is an upper bound that prunes the frontier
    /// aggressively. Plans are preserved up to exact cost ties: any program
    /// strictly cheaper (beyond the search epsilon) than the warm seed is
    /// still found, so warm and cold runs can only differ when the warm
    /// program ties the cold optimum to within `1e-12` seconds — the
    /// determinism suite pins bit-for-bit equality with the warm start on
    /// and off for every benchmark model and thread count.
    pub warm_start: bool,
}

impl Default for HapOptions {
    fn default() -> Self {
        HapOptions {
            granularity: Granularity::PerGpu,
            max_rounds: 4,
            synth: SynthConfig::default(),
            auto_segments: None,
            balance: true,
            warm_start: true,
        }
    }
}

/// Failures of the end-to-end pipeline.
#[derive(Debug)]
pub enum HapError {
    /// Program synthesis failed.
    Synth(SynthError),
    /// The sharding-ratio LP failed.
    Balance(BalanceError),
}

impl std::fmt::Display for HapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HapError::Synth(e) => write!(f, "synthesis failed: {e}"),
            HapError::Balance(e) => write!(f, "load balancing failed: {e}"),
        }
    }
}

impl std::error::Error for HapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HapError::Synth(e) => Some(e),
            HapError::Balance(e) => Some(e),
        }
    }
}

impl From<SynthError> for HapError {
    fn from(e: SynthError) -> Self {
        HapError::Synth(e)
    }
}

impl From<BalanceError> for HapError {
    fn from(e: BalanceError) -> Self {
        HapError::Balance(e)
    }
}

/// Runs HAP end to end: profile, then alternate program synthesis (Eqn. 1)
/// and sharding-ratio optimization (Eqn. 2) until the solution converges or
/// oscillates, returning the best plan found.
pub fn parallelize(
    graph: &Graph,
    cluster: &ClusterSpec,
    opts: &HapOptions,
) -> Result<Plan, HapError> {
    parallelize_with_warm(graph, cluster, opts, None)
}

/// [`parallelize`] with an externally supplied warm-start program.
///
/// The plan service uses this to seed a cache miss with the cached plan of
/// the *nearest* cluster spec for the same graph: the program is
/// device-count independent (SPMD — the same instruction list is valid on
/// any cluster), so re-costed under the new cluster it becomes round 0's
/// A\* incumbent exactly like round *s−1*'s program seeds round *s*. The
/// seed is only an upper bound — any strictly cheaper program is still
/// found — and it is ignored entirely when `opts.warm_start` is off.
///
/// The warm program must target the same graph (same node ids); programs
/// cached under the request's graph fingerprint satisfy this by
/// construction.
pub fn parallelize_with_warm(
    graph: &Graph,
    cluster: &ClusterSpec,
    opts: &HapOptions,
    warm: Option<&DistProgram>,
) -> Result<Plan, HapError> {
    parallelize_with_warm_profiled(graph, cluster, opts, warm).map(|(plan, _)| plan)
}

/// [`parallelize_with_warm`] that also returns the aggregated
/// [`SynthProfile`] across every synthesis round — the per-wave counters
/// the plan service surfaces on `"profile": true` requests. The profile
/// is merged over rounds ([`SynthProfile::merge`]); collecting it does
/// not change the search, so the returned plan is bit-identical to the
/// unprofiled call's.
pub fn parallelize_with_warm_profiled(
    graph: &Graph,
    cluster: &ClusterSpec,
    opts: &HapOptions,
    warm: Option<&DistProgram>,
) -> Result<(Plan, SynthProfile), HapError> {
    let mut graph = graph.clone();
    if let Some(g) = opts.auto_segments {
        if graph.segment_count() <= 1 && g > 1 {
            let assignment = chain_partition(&graph, g);
            apply_partition(&mut graph, &assignment);
        }
    }
    let devices = cluster.virtual_devices(opts.granularity);
    let m = devices.len();
    let net = GroundTruthNet::new(NetworkParams {
        latency: cluster.inter_latency,
        bandwidth: cluster.inter_bandwidth,
        ..NetworkParams::paper_cloud()
    });
    let profile = profile_collectives(&net, m);
    let segments = graph.segment_count().max(1);

    // B(0): proportional to computation power (Sec. 3.1).
    let row = cluster.proportional_ratios(opts.granularity);
    let mut ratios: ShardingRatios = vec![row; segments];

    let theory = Theory::build_with(
        &graph,
        hap_synthesis::TheoryOptions {
            grouped_broadcast: opts.synth.grouped_broadcast,
            sfb: opts.synth.sfb,
        },
    );

    let start = Instant::now();

    // Portfolio warm start: the search space subsumes the classic rule-based
    // strategies (DP, ZeRO-style sharded updates, expert parallelism, SFB),
    // so their programs are valid synthesis outcomes. Evaluating them up
    // front guarantees the returned plan never loses to a strategy HAP is
    // supposed to subsume, even when the A* budget is tight.
    let portfolio: Vec<_> = [
        WalkOptions::default(),
        WalkOptions { grad_sync: GradSync::ReduceScatter, ..WalkOptions::default() },
        WalkOptions {
            grad_sync: GradSync::ReduceScatter,
            expert_parallel: Some("expert_w".into()),
            ..WalkOptions::default()
        },
        WalkOptions {
            sfb_flop_cost: Some(
                cluster.inter_bandwidth / {
                    let slowest = devices.iter().map(|d| d.flops).fold(f64::INFINITY, f64::min);
                    slowest
                },
            ),
            ..WalkOptions::default()
        },
    ]
    .into_iter()
    .filter_map(|w| propagate(&graph, &w).ok())
    .collect();

    let mut best: Option<(f64, Plan)> = None;
    let mut synth_profile = SynthProfile::default();
    let mut seen: Vec<Vec<u64>> = vec![quantize(&ratios)];
    // Round s-1's chosen program, the warm-start seed for round s: re-costed
    // under round s's ratios it upper-bounds the A* from the first wave.
    // Round 0 can be seeded externally (plan-service neighbor warm start);
    // a seed that references nodes outside this graph is silently dropped —
    // the caller matched on a graph fingerprint, not on this exact clone.
    let mut prev_q: Option<DistProgram> =
        warm.filter(|q| q.instrs.iter().all(|i| i.node() < graph.len())).cloned();
    for round in 0..opts.max_rounds.max(1) {
        // Q(s) = argmin_Q t(Q, B(s-1)) — the synthesized program, or a
        // portfolio program when one evaluates cheaper under B(s-1).
        let warm = if opts.warm_start { prev_q.as_ref() } else { None };
        let (mut q, round_profile) = synthesize_with_theory_profiled(
            &graph,
            &theory,
            &devices,
            &profile,
            &ratios,
            &opts.synth,
            warm,
        )?;
        synth_profile.merge(&round_profile);
        let mut q_cost = estimate_time(&graph, &q, &devices, &profile, &ratios);
        for cand in &portfolio {
            let c = estimate_time(&graph, cand, &devices, &profile, &ratios);
            if c < q_cost {
                q_cost = c;
                q = cand.clone();
                q.estimated_time = c;
            }
        }
        prev_q = Some(q.clone());
        // B(s) = argmin_B t(Q(s), B).
        let next = if opts.balance {
            optimize_ratios(&graph, &q, &devices, &profile)?
        } else {
            ratios.clone()
        };
        // Candidate ratio matrices for this round's program: the LP optimum
        // plus an even-ratio rescue (memory-sensitive models can exceed
        // per-GPU capacity under skewed ratios; even ratios minimize the
        // largest shard). Prefer plans that fit in memory, then by time.
        let even_row = cluster.even_ratios(opts.granularity);
        let candidates = [next.clone(), vec![even_row; segments]];
        for cand in candidates {
            let t = estimate_time(&graph, &q, &devices, &profile, &cand);
            let fits = memory_footprint(&graph, &q, &devices, &cand).fits();
            let better = match &best {
                None => true,
                Some((bt, bp)) => {
                    let best_fits =
                        memory_footprint(&graph, &bp.program, &devices, &bp.ratios).fits();
                    (fits && !best_fits) || (fits == best_fits && t < *bt)
                }
            };
            if better {
                best = Some((
                    t,
                    Plan {
                        program: q.clone(),
                        ratios: cand,
                        estimated_time: t,
                        rounds: round + 1,
                        synthesis_time: start.elapsed(),
                        devices: devices.clone(),
                        graph: graph.clone(),
                    },
                ));
            }
        }
        let key = quantize(&next);
        let converged = max_delta(&ratios, &next) < 1e-6;
        let oscillating = seen.contains(&key);
        ratios = next;
        if converged || oscillating {
            // "until convergence or oscillation of the solutions is attained.
            // In the case of oscillation, we use the pair ... achieving the
            // lowest cost" (Sec. 3.1).
            break;
        }
        seen.push(key);
    }

    let (_, mut plan) = best.expect("at least one round ran");
    plan.synthesis_time = start.elapsed();
    Ok((plan, synth_profile))
}

/// Quantizes a ratio matrix for oscillation detection.
fn quantize(ratios: &ShardingRatios) -> Vec<u64> {
    ratios.iter().flat_map(|row| row.iter().map(|&b| (b * 1e9).round() as u64)).collect()
}

/// Largest absolute difference between two ratio matrices.
fn max_delta(a: &ShardingRatios, b: &ShardingRatios) -> f64 {
    a.iter()
        .zip(b.iter())
        .flat_map(|(ra, rb)| ra.iter().zip(rb.iter()).map(|(x, y)| (x - y).abs()))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_models::{mlp, transformer_layer, MlpConfig, TransformerConfig};

    #[test]
    fn parallelize_mlp_on_heterogeneous_cluster() {
        let graph =
            mlp(&MlpConfig { batch: 8192, input: 128, hidden: vec![256, 256], classes: 16 });
        let cluster = ClusterSpec::fig17_cluster();
        let plan = parallelize(&graph, &cluster, &HapOptions::default()).unwrap();
        assert!(plan.program.is_complete(&graph));
        assert!(plan.estimated_time > 0.0);
        assert!(plan.rounds >= 1);
        for row in &plan.ratios {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn balanced_plan_is_no_worse_than_proportional() {
        let graph = transformer_layer(&TransformerConfig::fig2(256));
        let cluster = ClusterSpec::fig2_cluster();
        let with = parallelize(&graph, &cluster, &HapOptions::default()).unwrap();
        let without = parallelize(
            &graph,
            &cluster,
            &HapOptions { balance: false, max_rounds: 1, ..HapOptions::default() },
        )
        .unwrap();
        assert!(with.estimated_time <= without.estimated_time + 1e-9);
    }

    #[test]
    fn auto_segmentation_is_applied() {
        let graph =
            mlp(&MlpConfig { batch: 4096, input: 64, hidden: vec![64, 64, 64], classes: 8 });
        assert_eq!(graph.segment_count(), 1);
        let cluster = ClusterSpec::fig17_cluster();
        let plan = parallelize(
            &graph,
            &cluster,
            &HapOptions { auto_segments: Some(3), ..HapOptions::default() },
        )
        .unwrap();
        assert_eq!(plan.ratios.len(), 3);
    }

    #[test]
    fn thread_knob_does_not_change_the_plan() {
        // End-to-end determinism: the whole alternating loop (synthesis,
        // portfolio, LP, memory rescue) must yield the same plan for any
        // synthesis thread count.
        let graph = mlp(&MlpConfig::tiny());
        let cluster = ClusterSpec::fig17_cluster();
        let opts = |threads: usize| HapOptions {
            synth: SynthConfig {
                threads,
                time_budget_secs: 60.0,
                max_expansions: 2_000,
                ..SynthConfig::default()
            },
            ..HapOptions::default()
        };
        let a = parallelize(&graph, &cluster, &opts(1)).unwrap();
        let b = parallelize(&graph, &cluster, &opts(8)).unwrap();
        assert_eq!(a.program.fingerprint(), b.program.fingerprint());
        assert_eq!(a.ratios, b.ratios);
        assert_eq!(a.estimated_time.to_bits(), b.estimated_time.to_bits());
    }

    #[test]
    fn external_warm_seed_does_not_change_the_plan() {
        // The neighbor warm start is an incumbent upper bound, never a
        // result override: seeding with the plan of a *different* cluster
        // must still return the same plan a cold run finds (up to exact
        // cost ties, which this model does not have).
        let graph = mlp(&MlpConfig::tiny());
        let cluster = ClusterSpec::fig17_cluster();
        let neighbor = ClusterSpec::fig2_cluster();
        let opts = HapOptions::default();
        let seed = parallelize(&graph, &neighbor, &opts).unwrap();
        let cold = parallelize(&graph, &cluster, &opts).unwrap();
        let warm = parallelize_with_warm(&graph, &cluster, &opts, Some(&seed.program)).unwrap();
        assert_eq!(cold.program.fingerprint(), warm.program.fingerprint());
        assert_eq!(cold.estimated_time.to_bits(), warm.estimated_time.to_bits());
        assert_eq!(cold.ratios, warm.ratios);
    }

    #[test]
    fn foreign_warm_seed_is_dropped_not_fatal() {
        // A warm program referencing nodes outside the graph (a cache
        // mixup) must be ignored, not crash the daemon.
        let graph = mlp(&MlpConfig { batch: 2048, input: 32, hidden: vec![64], classes: 8 });
        let big = mlp(&MlpConfig { batch: 2048, input: 32, hidden: vec![64, 64, 64], classes: 8 });
        let cluster = ClusterSpec::fig17_cluster();
        let opts = HapOptions::default();
        let foreign = parallelize(&big, &cluster, &opts).unwrap();
        let plan = parallelize_with_warm(&graph, &cluster, &opts, Some(&foreign.program)).unwrap();
        assert!(plan.program.is_complete(&graph));
    }

    #[test]
    fn loop_terminates_within_round_budget() {
        let graph = mlp(&MlpConfig { batch: 2048, input: 32, hidden: vec![64], classes: 8 });
        let cluster = ClusterSpec::paper_heterogeneous(1);
        let plan =
            parallelize(&graph, &cluster, &HapOptions { max_rounds: 8, ..HapOptions::default() })
                .unwrap();
        assert!(plan.rounds <= 8);
    }
}
