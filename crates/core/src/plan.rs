//! The output of HAP: a distributed plan ready to execute.

use std::collections::HashMap;
use std::time::Duration;

use hap_cluster::VirtualDevice;
use hap_collectives::GroundTruthNet;
use hap_graph::{Graph, NodeId, Tensor};
use hap_simulator::{
    memory_footprint, simulate_time, verify_equivalence, EquivReport, ExecError, MemoryReport,
    SimOptions, SimResult,
};
use hap_synthesis::{DistProgram, ShardingRatios};

/// A complete HAP plan: the synthesized SPMD program plus per-segment
/// sharding ratios, with helpers to inspect, simulate and verify it.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The synthesized distributed program `Q`.
    pub program: DistProgram,
    /// Per-segment, per-device sharding ratios `B`.
    pub ratios: ShardingRatios,
    /// Cost-model estimate of the per-iteration time (seconds).
    pub estimated_time: f64,
    /// Alternating-optimization rounds performed.
    pub rounds: usize,
    /// Wall-clock time spent in the optimization loop.
    pub synthesis_time: Duration,
    /// The virtual devices the plan targets.
    pub devices: Vec<VirtualDevice>,
    /// The (possibly auto-segmented) graph the plan was built for.
    pub graph: Graph,
}

impl Plan {
    /// Number of virtual devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Renders the program as a paper-Fig.-11-style listing.
    pub fn listing(&self) -> String {
        self.program.listing(&self.graph)
    }

    /// Simulates the "actual" per-iteration time on the ground-truth
    /// network model (the reproduction's stand-in for a real run).
    pub fn simulate(&self, net: &GroundTruthNet, opts: &SimOptions) -> SimResult {
        simulate_time(&self.graph, &self.program, &self.devices, net, &self.ratios, opts)
    }

    /// Computes the per-device memory footprint.
    pub fn memory(&self) -> MemoryReport {
        memory_footprint(&self.graph, &self.program, &self.devices, &self.ratios)
    }

    /// Functionally executes the plan on real tensors and compares every
    /// required output with the single-device program.
    pub fn verify(&self, feeds: &HashMap<NodeId, Tensor>) -> Result<EquivReport, ExecError> {
        verify_equivalence(&self.graph, &self.program, feeds, &self.ratios, self.devices.len())
    }
}

#[cfg(test)]
mod tests {
    use crate::{parallelize, HapOptions};
    use hap_cluster::ClusterSpec;
    use hap_collectives::{GroundTruthNet, NetworkParams};
    use hap_graph::{Role, Tensor};
    use hap_models::{mlp, MlpConfig};
    use hap_simulator::SimOptions;
    use std::collections::HashMap;

    #[test]
    fn plan_end_to_end_simulate_memory_verify() {
        let graph = mlp(&MlpConfig { batch: 64, input: 16, hidden: vec![32], classes: 8 });
        let cluster = ClusterSpec::fig17_cluster();
        let plan = parallelize(&graph, &cluster, &HapOptions::default()).unwrap();

        let net = GroundTruthNet::new(NetworkParams::paper_cloud());
        let sim = plan.simulate(&net, &SimOptions::default());
        assert!(sim.iteration_time > 0.0);

        let mem = plan.memory();
        assert!(mem.fits(), "toy model must fit: {:?}", mem.per_device);

        let mut feeds = HashMap::new();
        for n in plan.graph.nodes() {
            match n.role {
                Role::Input | Role::Param => {
                    feeds.insert(n.id, Tensor::randn(n.shape.dims().to_vec(), n.id as u64));
                }
                Role::Label => {
                    let t = Tensor::randn(n.shape.dims().to_vec(), n.id as u64)
                        .map(|v| ((v + 0.5) * 8.0).floor().clamp(0.0, 7.0));
                    feeds.insert(n.id, t);
                }
                _ => {}
            }
        }
        let report = plan.verify(&feeds).unwrap();
        assert!(
            report.max_error < 1e-3,
            "plan must be semantically equivalent, max error {}\n{}",
            report.max_error,
            plan.listing()
        );
    }
}
