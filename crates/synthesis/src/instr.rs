//! The distributed instruction set and programs (paper Sec. 4.1, Fig. 8).

use std::fmt;
use std::sync::Arc;

use hap_graph::{Graph, NodeId, Placement, Role, Rule};

/// A collective communication instruction on a distributed tensor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CollectiveInstr {
    /// Sums partial replicas: `e | All-Reduce  ->  e | Identity`.
    AllReduce,
    /// Concatenates shards: `e | All-Gather(d)  ->  e | Identity`.
    ///
    /// `grouped` selects the grouped-Broadcast implementation for uneven
    /// shards (paper Sec. 2.5.1); `false` is the NCCL-style padded one.
    AllGather {
        /// Sharding dimension being gathered.
        dim: usize,
        /// Use grouped Broadcast instead of padded All-Gather.
        grouped: bool,
    },
    /// Sums partial replicas and shards the result:
    /// `e | All-Reduce  ->  e | All-Gather(d)`.
    ReduceScatter {
        /// Output sharding dimension.
        dim: usize,
    },
    /// Re-shards: `e | All-Gather(d1)  ->  e | All-Gather(d2)`.
    AllToAll {
        /// Current sharding dimension.
        from: usize,
        /// Target sharding dimension.
        to: usize,
    },
}

impl CollectiveInstr {
    /// The placement this collective consumes.
    pub fn input_placement(&self) -> Placement {
        match self {
            CollectiveInstr::AllReduce | CollectiveInstr::ReduceScatter { .. } => {
                Placement::PartialSum
            }
            CollectiveInstr::AllGather { dim, .. } => Placement::Shard(*dim),
            CollectiveInstr::AllToAll { from, .. } => Placement::Shard(*from),
        }
    }

    /// The placement this collective produces.
    pub fn output_placement(&self) -> Placement {
        match self {
            CollectiveInstr::AllReduce | CollectiveInstr::AllGather { .. } => Placement::Replicated,
            CollectiveInstr::ReduceScatter { dim } => Placement::Shard(*dim),
            CollectiveInstr::AllToAll { to, .. } => Placement::Shard(*to),
        }
    }
}

impl fmt::Display for CollectiveInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveInstr::AllReduce => write!(f, "all-reduce"),
            CollectiveInstr::AllGather { dim, grouped: false } => {
                write!(f, "all-gather({dim})")
            }
            CollectiveInstr::AllGather { dim, grouped: true } => {
                write!(f, "grouped-broadcast({dim})")
            }
            CollectiveInstr::ReduceScatter { dim } => write!(f, "reduce-scatter({dim})"),
            CollectiveInstr::AllToAll { from, to } => write!(f, "all-to-all({from},{to})"),
        }
    }
}

/// One instruction of a distributed program.
#[derive(Clone, PartialEq, Debug)]
pub enum DistInstr {
    /// Materializes a leaf tensor (`Placeholder`, `Parameter`, `Label`,
    /// `Ones`) replicated or directly sharded — the specialized
    /// `Placeholder-Shard` / `Parameter-Shard` instructions of Sec. 4.1.
    Leaf {
        /// The graph leaf being materialized.
        node: NodeId,
        /// Replicated or `Shard(d)`.
        placement: Placement,
    },
    /// Executes a compute op on all devices under one of its rules.
    Compute {
        /// The graph node whose op runs.
        node: NodeId,
        /// The placement rule it runs under.
        rule: Rule,
    },
    /// Communicates the distributed tensor of a reference node.
    Collective {
        /// The reference tensor.
        node: NodeId,
        /// Which collective.
        kind: CollectiveInstr,
    },
}

impl DistInstr {
    /// The reference node this instruction produces or communicates.
    pub fn node(&self) -> NodeId {
        match self {
            DistInstr::Leaf { node, .. }
            | DistInstr::Compute { node, .. }
            | DistInstr::Collective { node, .. } => *node,
        }
    }

    /// True for collectives (stage boundaries, paper Fig. 6).
    pub fn is_collective(&self) -> bool {
        matches!(self, DistInstr::Collective { .. })
    }

    /// Folds this instruction into a running FNV-1a fingerprint.
    ///
    /// The encoding is purely structural (discriminant tags plus field
    /// values), so the hash is stable across runs, processes, and thread
    /// counts — the parallel search uses it as a deterministic tie-break.
    fn mix_fingerprint(&self, h: u64) -> u64 {
        match self {
            DistInstr::Leaf { node, placement } => {
                mix_placement(fnv1a(fnv1a(h, 1), *node as u64), *placement)
            }
            DistInstr::Compute { node, rule } => {
                let mut h = fnv1a(fnv1a(h, 2), *node as u64);
                h = fnv1a(h, rule.inputs.len() as u64);
                for &p in &rule.inputs {
                    h = mix_placement(h, p);
                }
                mix_placement(h, rule.output)
            }
            DistInstr::Collective { node, kind } => {
                let h = fnv1a(fnv1a(h, 3), *node as u64);
                match kind {
                    CollectiveInstr::AllReduce => fnv1a(h, 10),
                    CollectiveInstr::AllGather { dim, grouped } => {
                        fnv1a(fnv1a(fnv1a(h, 11), *dim as u64), *grouped as u64)
                    }
                    CollectiveInstr::ReduceScatter { dim } => fnv1a(fnv1a(h, 12), *dim as u64),
                    CollectiveInstr::AllToAll { from, to } => {
                        fnv1a(fnv1a(fnv1a(h, 13), *from as u64), *to as u64)
                    }
                }
            }
        }
    }
}

pub(crate) use fingerprint::{fnv1a, FNV_OFFSET};

/// The FNV-1a primitive behind every determinism-critical hash in this
/// crate: program fingerprints, `PropSet::stable_hash` dominance sharding.
///
/// Exposed publicly so downstream consumers that need *the same* stable
/// hash — the wire codec's content-addressed request fingerprints, cache
/// keys in the plan service — share one primitive instead of growing
/// subtly different copies.
pub mod fingerprint {
    /// The FNV-1a 64-bit offset basis (the empty-input hash).
    pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// One FNV-1a step over the little-endian bytes of `v`.
    pub fn fnv1a(mut h: u64, v: u64) -> u64 {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Folds a byte slice into a running FNV-1a hash, byte by byte.
    ///
    /// `fnv1a_bytes(FNV_OFFSET, b"...")` is the classic FNV-1a digest of
    /// the slice; content fingerprints of canonical wire encodings use
    /// exactly this.
    pub fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        h
    }
}

/// Folds a placement into a running FNV-1a hash (stable encoding).
pub(crate) fn mix_placement(h: u64, p: Placement) -> u64 {
    match p {
        Placement::Replicated => fnv1a(h, 0),
        Placement::Shard(d) => fnv1a(fnv1a(h, 1), d as u64),
        Placement::PartialSum => fnv1a(h, 2),
    }
}

/// A persistent, thread-shareable program list (paper programs are built
/// instruction by instruction; siblings in the search tree share their
/// common prefix).
///
/// Each node carries the fingerprint of the whole prefix ending at it, so
/// fingerprints of partial programs cost O(1) to read — the parallel A\*
/// merge sorts candidate states by `(score, fingerprint)` every wave.
#[derive(Clone, Debug, Default)]
pub struct ProgChain {
    head: Option<Arc<ChainNode>>,
}

#[derive(Debug)]
struct ChainNode {
    instr: DistInstr,
    fingerprint: u64,
    parent: Option<Arc<ChainNode>>,
}

impl ProgChain {
    /// The empty program.
    pub fn new() -> Self {
        ProgChain::default()
    }

    /// True when no instruction has been appended.
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// Number of instructions in the chain (walks the spine).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self.head.as_ref();
        while let Some(node) = cur {
            n += 1;
            cur = node.parent.as_ref();
        }
        n
    }

    /// Returns a new chain with `instr` appended; `self` is untouched and
    /// the prefix is shared (O(1), an `Arc` bump).
    pub fn push(&self, instr: DistInstr) -> ProgChain {
        let fingerprint = instr.mix_fingerprint(self.fingerprint());
        ProgChain {
            head: Some(Arc::new(ChainNode { instr, fingerprint, parent: self.head.clone() })),
        }
    }

    /// Stable fingerprint of the instruction sequence; equals
    /// [`DistProgram::fingerprint`] of the materialized program.
    pub fn fingerprint(&self) -> u64 {
        self.head.as_ref().map_or(FNV_OFFSET, |n| n.fingerprint)
    }

    /// Rebuilds a chain from a materialized program (the warm-start path:
    /// a previous round's program becomes the next round's incumbent).
    /// Round-trips exactly: the chain's fingerprint equals the program's.
    pub fn from_program(program: &DistProgram) -> ProgChain {
        program.instrs.iter().fold(ProgChain::new(), |chain, instr| chain.push(instr.clone()))
    }

    /// The most recently appended instruction, if any (O(1)).
    pub fn last(&self) -> Option<&DistInstr> {
        self.head.as_ref().map(|n| &n.instr)
    }

    /// Materializes the chain into a [`DistProgram`] in execution order.
    pub fn to_program(&self, estimated_time: f64) -> DistProgram {
        let mut instrs = Vec::new();
        let mut cur = self.head.as_ref();
        while let Some(node) = cur {
            instrs.push(node.instr.clone());
            cur = node.parent.as_ref();
        }
        instrs.reverse();
        DistProgram { instrs, estimated_time }
    }
}

/// A synthesized SPMD program: the same instruction sequence runs on every
/// device (paper Fig. 7).
#[derive(Clone, Debug, Default)]
pub struct DistProgram {
    /// Instructions in execution order.
    pub instrs: Vec<DistInstr>,
    /// The synthesizer's estimated per-iteration time in seconds.
    pub estimated_time: f64,
}

/// One synchronization stage: a leading collective (absent for the first
/// stage) followed by computation (paper Fig. 6).
#[derive(Clone, Debug)]
pub struct Stage<'p> {
    /// The collective that opens the stage, if any.
    pub collective: Option<&'p DistInstr>,
    /// Compute/leaf instructions in the stage.
    pub computes: Vec<&'p DistInstr>,
}

impl DistProgram {
    /// Stable 64-bit fingerprint of the instruction sequence.
    ///
    /// Two programs have the same fingerprint iff they contain the same
    /// instructions in the same order (modulo hash collision); the value is
    /// identical across runs, platforms, and synthesis thread counts, so
    /// determinism tests compare it directly.
    pub fn fingerprint(&self) -> u64 {
        self.instrs.iter().fold(FNV_OFFSET, |h, i| i.mix_fingerprint(h))
    }

    /// Splits the program into synchronization stages.
    pub fn stages(&self) -> Vec<Stage<'_>> {
        let mut stages = vec![Stage { collective: None, computes: Vec::new() }];
        for instr in &self.instrs {
            if instr.is_collective() {
                stages.push(Stage { collective: Some(instr), computes: Vec::new() });
            } else {
                stages.last_mut().expect("at least one stage").computes.push(instr);
            }
        }
        stages
    }

    /// Number of collective instructions.
    pub fn collective_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_collective()).count()
    }

    /// True when every required output of the graph is produced by some
    /// instruction (the semantic-constraint check; see paper Sec. 4.2).
    pub fn is_complete(&self, graph: &Graph) -> bool {
        graph.required_outputs().iter().all(|&o| {
            self.instrs.iter().any(|i| match i {
                DistInstr::Compute { node, .. } => *node == o,
                _ => false,
            })
        })
    }

    /// Renders the program like the listings in paper Fig. 11.
    pub fn listing(&self, graph: &Graph) -> String {
        let mut out = String::new();
        for instr in &self.instrs {
            let line = match instr {
                DistInstr::Leaf { node, placement } => {
                    let n = graph.node(*node);
                    let base = match n.role {
                        Role::Input => "placeholder",
                        Role::Label => "label",
                        Role::Param => "parameter",
                        _ => "ones",
                    };
                    match placement {
                        Placement::Shard(d) => format!("{} = {base}-shard({d})", n.name),
                        _ => format!("{} = {base}()", n.name),
                    }
                }
                DistInstr::Compute { node, rule } => {
                    let n = graph.node(*node);
                    format!("{} = {}()  # out: {}", n.name, n.op.name(), rule.output)
                }
                DistInstr::Collective { node, kind } => {
                    let n = graph.node(*node);
                    format!("{} = {kind}({})", n.name, n.name)
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_graph::GraphBuilder;

    fn fig11_program() -> (Graph, DistProgram) {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("e1", vec![8, 4]);
        let w = g.parameter("e2", vec![4, 2]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_forward();
        let prog = DistProgram {
            instrs: vec![
                DistInstr::Leaf { node: x, placement: Placement::Shard(0) },
                DistInstr::Leaf { node: w, placement: Placement::Replicated },
                DistInstr::Compute {
                    node: y,
                    rule: Rule::new(
                        vec![Placement::Shard(0), Placement::Replicated],
                        Placement::Shard(0),
                    ),
                },
                DistInstr::Collective {
                    node: y,
                    kind: CollectiveInstr::AllGather { dim: 0, grouped: false },
                },
                DistInstr::Compute {
                    node: l,
                    rule: Rule::new(vec![Placement::Replicated], Placement::Replicated),
                },
            ],
            estimated_time: 0.0,
        };
        (graph, prog)
    }

    #[test]
    fn stages_split_on_collectives() {
        let (_, prog) = fig11_program();
        let stages = prog.stages();
        assert_eq!(stages.len(), 2);
        assert!(stages[0].collective.is_none());
        assert_eq!(stages[0].computes.len(), 3);
        assert!(stages[1].collective.is_some());
        assert_eq!(stages[1].computes.len(), 1);
    }

    #[test]
    fn collective_placements() {
        let c = CollectiveInstr::ReduceScatter { dim: 1 };
        assert_eq!(c.input_placement(), Placement::PartialSum);
        assert_eq!(c.output_placement(), Placement::Shard(1));
        let a = CollectiveInstr::AllToAll { from: 0, to: 2 };
        assert_eq!(a.input_placement(), Placement::Shard(0));
        assert_eq!(a.output_placement(), Placement::Shard(2));
    }

    #[test]
    fn chain_fingerprint_matches_program_fingerprint() {
        let (_, prog) = fig11_program();
        let mut chain = ProgChain::new();
        assert!(chain.is_empty());
        assert_eq!(chain.fingerprint(), ProgChain::new().fingerprint());
        for instr in &prog.instrs {
            chain = chain.push(instr.clone());
        }
        assert_eq!(chain.len(), prog.instrs.len());
        assert_eq!(chain.fingerprint(), prog.fingerprint());
        let rebuilt = chain.to_program(prog.estimated_time);
        assert_eq!(rebuilt.instrs, prog.instrs);
    }

    #[test]
    fn fingerprint_distinguishes_order_and_content() {
        let (_, prog) = fig11_program();
        let mut reversed = prog.clone();
        reversed.instrs.reverse();
        assert_ne!(prog.fingerprint(), reversed.fingerprint());
        let mut truncated = prog.clone();
        truncated.instrs.pop();
        assert_ne!(prog.fingerprint(), truncated.fingerprint());
        assert_eq!(prog.fingerprint(), prog.clone().fingerprint());
    }

    #[test]
    fn chains_share_prefixes() {
        let (_, prog) = fig11_program();
        let base = ProgChain::new().push(prog.instrs[0].clone());
        let a = base.push(prog.instrs[1].clone());
        let b = base.push(prog.instrs[2].clone());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.to_program(0.0).instrs[0], prog.instrs[0]);
        assert_eq!(b.to_program(0.0).instrs[0], prog.instrs[0]);
    }

    #[test]
    fn listing_mentions_shard_instructions() {
        let (graph, prog) = fig11_program();
        let listing = prog.listing(&graph);
        assert!(listing.contains("placeholder-shard(0)"));
        assert!(listing.contains("parameter()"));
        assert!(listing.contains("all-gather(0)"));
    }
}
