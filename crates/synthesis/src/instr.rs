//! The distributed instruction set and programs (paper Sec. 4.1, Fig. 8).

use std::fmt;

use hap_graph::{Graph, NodeId, Placement, Role, Rule};

/// A collective communication instruction on a distributed tensor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CollectiveInstr {
    /// Sums partial replicas: `e | All-Reduce  ->  e | Identity`.
    AllReduce,
    /// Concatenates shards: `e | All-Gather(d)  ->  e | Identity`.
    ///
    /// `grouped` selects the grouped-Broadcast implementation for uneven
    /// shards (paper Sec. 2.5.1); `false` is the NCCL-style padded one.
    AllGather {
        /// Sharding dimension being gathered.
        dim: usize,
        /// Use grouped Broadcast instead of padded All-Gather.
        grouped: bool,
    },
    /// Sums partial replicas and shards the result:
    /// `e | All-Reduce  ->  e | All-Gather(d)`.
    ReduceScatter {
        /// Output sharding dimension.
        dim: usize,
    },
    /// Re-shards: `e | All-Gather(d1)  ->  e | All-Gather(d2)`.
    AllToAll {
        /// Current sharding dimension.
        from: usize,
        /// Target sharding dimension.
        to: usize,
    },
}

impl CollectiveInstr {
    /// The placement this collective consumes.
    pub fn input_placement(&self) -> Placement {
        match self {
            CollectiveInstr::AllReduce | CollectiveInstr::ReduceScatter { .. } => {
                Placement::PartialSum
            }
            CollectiveInstr::AllGather { dim, .. } => Placement::Shard(*dim),
            CollectiveInstr::AllToAll { from, .. } => Placement::Shard(*from),
        }
    }

    /// The placement this collective produces.
    pub fn output_placement(&self) -> Placement {
        match self {
            CollectiveInstr::AllReduce | CollectiveInstr::AllGather { .. } => Placement::Replicated,
            CollectiveInstr::ReduceScatter { dim } => Placement::Shard(*dim),
            CollectiveInstr::AllToAll { to, .. } => Placement::Shard(*to),
        }
    }
}

impl fmt::Display for CollectiveInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveInstr::AllReduce => write!(f, "all-reduce"),
            CollectiveInstr::AllGather { dim, grouped: false } => {
                write!(f, "all-gather({dim})")
            }
            CollectiveInstr::AllGather { dim, grouped: true } => {
                write!(f, "grouped-broadcast({dim})")
            }
            CollectiveInstr::ReduceScatter { dim } => write!(f, "reduce-scatter({dim})"),
            CollectiveInstr::AllToAll { from, to } => write!(f, "all-to-all({from},{to})"),
        }
    }
}

/// One instruction of a distributed program.
#[derive(Clone, PartialEq, Debug)]
pub enum DistInstr {
    /// Materializes a leaf tensor (`Placeholder`, `Parameter`, `Label`,
    /// `Ones`) replicated or directly sharded — the specialized
    /// `Placeholder-Shard` / `Parameter-Shard` instructions of Sec. 4.1.
    Leaf {
        /// The graph leaf being materialized.
        node: NodeId,
        /// Replicated or `Shard(d)`.
        placement: Placement,
    },
    /// Executes a compute op on all devices under one of its rules.
    Compute {
        /// The graph node whose op runs.
        node: NodeId,
        /// The placement rule it runs under.
        rule: Rule,
    },
    /// Communicates the distributed tensor of a reference node.
    Collective {
        /// The reference tensor.
        node: NodeId,
        /// Which collective.
        kind: CollectiveInstr,
    },
}

impl DistInstr {
    /// The reference node this instruction produces or communicates.
    pub fn node(&self) -> NodeId {
        match self {
            DistInstr::Leaf { node, .. }
            | DistInstr::Compute { node, .. }
            | DistInstr::Collective { node, .. } => *node,
        }
    }

    /// True for collectives (stage boundaries, paper Fig. 6).
    pub fn is_collective(&self) -> bool {
        matches!(self, DistInstr::Collective { .. })
    }
}

/// A synthesized SPMD program: the same instruction sequence runs on every
/// device (paper Fig. 7).
#[derive(Clone, Debug, Default)]
pub struct DistProgram {
    /// Instructions in execution order.
    pub instrs: Vec<DistInstr>,
    /// The synthesizer's estimated per-iteration time in seconds.
    pub estimated_time: f64,
}

/// One synchronization stage: a leading collective (absent for the first
/// stage) followed by computation (paper Fig. 6).
#[derive(Clone, Debug)]
pub struct Stage<'p> {
    /// The collective that opens the stage, if any.
    pub collective: Option<&'p DistInstr>,
    /// Compute/leaf instructions in the stage.
    pub computes: Vec<&'p DistInstr>,
}

impl DistProgram {
    /// Splits the program into synchronization stages.
    pub fn stages(&self) -> Vec<Stage<'_>> {
        let mut stages = vec![Stage { collective: None, computes: Vec::new() }];
        for instr in &self.instrs {
            if instr.is_collective() {
                stages.push(Stage { collective: Some(instr), computes: Vec::new() });
            } else {
                stages.last_mut().expect("at least one stage").computes.push(instr);
            }
        }
        stages
    }

    /// Number of collective instructions.
    pub fn collective_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_collective()).count()
    }

    /// True when every required output of the graph is produced by some
    /// instruction (the semantic-constraint check; see paper Sec. 4.2).
    pub fn is_complete(&self, graph: &Graph) -> bool {
        graph.required_outputs().iter().all(|&o| {
            self.instrs.iter().any(|i| match i {
                DistInstr::Compute { node, .. } => *node == o,
                _ => false,
            })
        })
    }

    /// Renders the program like the listings in paper Fig. 11.
    pub fn listing(&self, graph: &Graph) -> String {
        let mut out = String::new();
        for instr in &self.instrs {
            let line = match instr {
                DistInstr::Leaf { node, placement } => {
                    let n = graph.node(*node);
                    let base = match n.role {
                        Role::Input => "placeholder",
                        Role::Label => "label",
                        Role::Param => "parameter",
                        _ => "ones",
                    };
                    match placement {
                        Placement::Shard(d) => format!("{} = {base}-shard({d})", n.name),
                        _ => format!("{} = {base}()", n.name),
                    }
                }
                DistInstr::Compute { node, rule } => {
                    let n = graph.node(*node);
                    format!("{} = {}()  # out: {}", n.name, n.op.name(), rule.output)
                }
                DistInstr::Collective { node, kind } => {
                    let n = graph.node(*node);
                    format!("{} = {kind}({})", n.name, n.name)
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_graph::GraphBuilder;

    fn fig11_program() -> (Graph, DistProgram) {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("e1", vec![8, 4]);
        let w = g.parameter("e2", vec![4, 2]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_forward();
        let prog = DistProgram {
            instrs: vec![
                DistInstr::Leaf { node: x, placement: Placement::Shard(0) },
                DistInstr::Leaf { node: w, placement: Placement::Replicated },
                DistInstr::Compute {
                    node: y,
                    rule: Rule::new(
                        vec![Placement::Shard(0), Placement::Replicated],
                        Placement::Shard(0),
                    ),
                },
                DistInstr::Collective {
                    node: y,
                    kind: CollectiveInstr::AllGather { dim: 0, grouped: false },
                },
                DistInstr::Compute {
                    node: l,
                    rule: Rule::new(vec![Placement::Replicated], Placement::Replicated),
                },
            ],
            estimated_time: 0.0,
        };
        (graph, prog)
    }

    #[test]
    fn stages_split_on_collectives() {
        let (_, prog) = fig11_program();
        let stages = prog.stages();
        assert_eq!(stages.len(), 2);
        assert!(stages[0].collective.is_none());
        assert_eq!(stages[0].computes.len(), 3);
        assert!(stages[1].collective.is_some());
        assert_eq!(stages[1].computes.len(), 1);
    }

    #[test]
    fn collective_placements() {
        let c = CollectiveInstr::ReduceScatter { dim: 1 };
        assert_eq!(c.input_placement(), Placement::PartialSum);
        assert_eq!(c.output_placement(), Placement::Shard(1));
        let a = CollectiveInstr::AllToAll { from: 0, to: 2 };
        assert_eq!(a.input_placement(), Placement::Shard(0));
        assert_eq!(a.output_placement(), Placement::Shard(2));
    }

    #[test]
    fn listing_mentions_shard_instructions() {
        let (graph, prog) = fig11_program();
        let listing = prog.listing(&graph);
        assert!(listing.contains("placeholder-shard(0)"));
        assert!(listing.contains("parameter()"));
        assert!(listing.contains("all-gather(0)"));
    }
}
