//! Wave-parallel A\*-based distributed program search (paper Sec. 4.3,
//! Fig. 10).
//!
//! States are canonical property sets; the score of a partial program is
//! `cost + ecost`, where `cost` is the time of all closed stages plus the
//! running stage's per-device computation, and `ecost` is the admissible
//! remaining-work bound assuming infinite bandwidth and perfect balance.
//! Dominance pruning keeps, per property set, only the cheapest program
//! (the hash-map realization of Fig. 10 lines 9–14), realized as a sharded
//! map so expansion workers can consult it concurrently.
//!
//! # Parallel waves, deterministic results
//!
//! The search proceeds in *waves*: each wave pops the best
//! [`WAVE_WIDTH`] states from a sharded frontier, expands them across a
//! scoped thread pool ([`mini_rayon`] scatter/gather), then merges the
//! candidate successors **sequentially in a stable order** — sorted by
//! `(score, cost, program fingerprint)` — before committing any of them to
//! the dominance map, the incumbent, or the frontier. During a wave the
//! dominance map and the incumbent are frozen, so workers only perform
//! deterministic reads; all writes happen in the deterministic merge. The
//! result is bit-for-bit identical for every `threads` value whenever the
//! search terminates structurally (optimality bound, expansion budget, or
//! stall cutoff). Only the wall-clock budget ([`SynthConfig::time_budget_secs`])
//! is inherently timing-dependent: when it fires, the incumbent of the last
//! completed wave — itself a deterministic function of the wave count — is
//! returned.
//!
//! # The zero-allocation hot path
//!
//! The expansion inner loop (one iteration per `(state, triple)` pair) is
//! O(1)-lookup and allocation-free until a successor survives the bounds:
//! costs come from dense precomputed [`CostTables`], previews run through a
//! per-worker scratch buffer with fused add+max passes, and states carry
//! hash-consed [`InternedProps`] whose content hash is maintained
//! incrementally — so dominance probes hash a `u32` id, not a whole set.
//! [`HotPathBench`] freezes this loop into a micro-benchmarkable workload
//! (`synthesis/expand_hot_path`), with a `Direct` cost oracle preserving
//! the pre-table behavior for comparison.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

use hap_cluster::VirtualDevice;
use hap_collectives::CommProfile;
use hap_graph::{Graph, NodeId, Rule};
use mini_rayon::ThreadPool;

use crate::cost::{CostModel, CostTables, ShardingRatios};
use crate::instr::{CollectiveInstr, DistInstr, DistProgram, ProgChain};
use crate::property::{InternedProps, PropInterner, PropSet};
use crate::theory::{Theory, TheoryOptions, Triple};

/// Synthesis options.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Maximum number of A\* expansions before giving up.
    pub max_expansions: usize,
    /// Optional beam width: when set, the open list is pruned to the best
    /// `N` states whenever it doubles past `N` (trades optimality for time).
    pub beam_width: Option<usize>,
    /// Wall-clock budget in seconds for the A\* refinement; when it runs
    /// out the best complete program found so far (at least the greedy
    /// incumbent) is returned. Workers observe the deadline cooperatively
    /// through a shared atomic flag, so a `0.0` budget returns the greedy
    /// incumbent without expanding a single state.
    pub time_budget_secs: f64,
    /// Stop refining after this many expansions without improving the
    /// incumbent (diminishing-returns cutoff).
    pub stall_expansions: usize,
    /// Include grouped-Broadcast rules (ablation toggle "C", Fig. 15).
    pub grouped_broadcast: bool,
    /// Include the SFB-enabling replicated gradient rules (Sec. 4.4).
    pub sfb: bool,
    /// Worker threads for the wave-parallel expansion; `0` (the default)
    /// uses all available cores, `1` runs fully sequentially with no thread
    /// spawns. The synthesized program is bit-for-bit identical for every
    /// value — the knob only trades wall-clock time.
    pub threads: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            max_expansions: 2_000_000,
            beam_width: Some(20_000),
            time_budget_secs: 5.0,
            stall_expansions: 5_000,
            grouped_broadcast: true,
            sfb: true,
            threads: 0,
        }
    }
}

/// Synthesis failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// The search space was exhausted without a complete program.
    NoProgram,
    /// The expansion budget ran out before completion.
    ExpansionLimit(usize),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::NoProgram => write!(f, "no semantically equivalent program exists"),
            SynthError::ExpansionLimit(n) => {
                write!(f, "expansion limit of {n} reached without a complete program")
            }
        }
    }
}

impl std::error::Error for SynthError {}

/// States expanded per wave. Fixed — never derived from the thread count —
/// so the pop order, and with it every downstream decision, is identical
/// whether the wave is expanded by 1 worker or 64.
const WAVE_WIDTH: usize = 64;

/// Shards of the frontier (keeps per-heap sifts short).
const FRONTIER_SHARDS: usize = 16;

/// Shards of the dominance map (power of two; masks the state hash).
const DOMINANCE_SHARDS: usize = 64;

/// Workers re-check the shared deadline flag every this many triples.
const DEADLINE_STRIDE: usize = 256;

/// Recycled state boxes a worker takes per `expand` call (one lock
/// round-trip per call, not per successor).
const RECYCLE_BATCH: usize = 16;

/// Boxes the recycling pool retains between waves. Beyond this the
/// surplus is freed: a single candidate-heavy wave must not pin its peak
/// footprint for the rest of the search.
const RECYCLE_CAP: usize = 4096;

/// A bump-style recycling arena for wave states. Every wave discards far
/// more `State` boxes than it commits — spent wave states, bound-rejected
/// candidates, dominated successors — and the next wave immediately
/// re-allocates boxes of the same shape. The pool closes that loop:
/// discarded boxes (with their `stage` buffers) come back through
/// [`apply_into`], so the steady-state expansion loop stops hitting the
/// allocator for short-lived successors. Purely a storage cache — recycled
/// slots are fully overwritten, so search results stay bit-identical.
// `Vec<Box<State>>` is the point, not an accident (clippy::vec_box): the
// boxes are the recycled resource — they move into `Candidate`/`Entry`
// (both hold `Box<State>`) without re-allocating, which unboxed storage
// would forfeit.
#[allow(clippy::vec_box)]
struct StatePool {
    pool: Mutex<Vec<Box<State>>>,
}

#[allow(clippy::vec_box)]
impl StatePool {
    fn new() -> StatePool {
        StatePool { pool: Mutex::new(Vec::new()) }
    }

    /// Moves up to [`RECYCLE_BATCH`] recycled boxes into `local`.
    fn take(&self, local: &mut Vec<Box<State>>) {
        let mut pool = self.pool.lock().unwrap();
        let keep = pool.len().saturating_sub(RECYCLE_BATCH);
        local.extend(pool.drain(keep..));
    }

    /// Returns `local`'s boxes to the pool, freeing any beyond
    /// [`RECYCLE_CAP`].
    fn give(&self, local: &mut Vec<Box<State>>) {
        if local.is_empty() {
            return;
        }
        let mut pool = self.pool.lock().unwrap();
        pool.append(local);
        pool.truncate(RECYCLE_CAP);
    }
}

struct State {
    /// Hash-consed property set: cloning a state copies the id and bumps a
    /// refcount; the owned set is cloned only at genuine mutation points
    /// (inside [`apply`], which then re-interns the successor).
    props: InternedProps,
    /// Time of closed stages plus nothing of the running stage.
    closed: f64,
    /// Per-device computation accumulated in the running stage.
    stage: Vec<f64>,
    /// Single-device flops of not-yet-produced compute nodes.
    remaining_flops: f64,
    /// Required outputs not yet produced.
    remaining_required: usize,
    program: ProgChain,
}

impl State {
    fn cost(&self) -> f64 {
        self.closed + self.stage.iter().cloned().fold(0.0, f64::max)
    }
}

/// A frontier entry: a live state plus its cached admissible score.
struct Entry {
    score: f64,
    /// Commit sequence number: unique, assigned in deterministic merge
    /// order, and used both as the heap tie-break (newer first — the
    /// depth-first bias that reaches complete programs quickly) and as the
    /// frontier shard selector.
    seq: u64,
    state: Box<State>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap pops the maximum, so "greater" must mean "expand
        // first": smaller score wins, ties go to the newer state.
        other.score.total_cmp(&self.score).then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The open list, sharded into independent binary heaps. Pops scan the
/// shard heads for the global best — O(shards) per pop, with each push and
/// sift staying local to one small heap. All mutation happens between
/// waves on the coordinating thread, so no locking is needed; the sharding
/// keeps the door open for concurrent in-wave pushes later.
struct ShardedFrontier {
    shards: Vec<BinaryHeap<Entry>>,
}

impl ShardedFrontier {
    fn new(shards: usize) -> Self {
        ShardedFrontier { shards: (0..shards).map(|_| BinaryHeap::new()).collect() }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(BinaryHeap::len).sum()
    }

    fn push(&mut self, entry: Entry) {
        let shard = (entry.seq % self.shards.len() as u64) as usize;
        self.shards[shard].push(entry);
    }

    /// Pops the globally best entry (smallest score, newest on ties).
    fn pop_best(&mut self) -> Option<Entry> {
        let best = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, heap)| heap.peek().map(|e| (i, e)))
            .max_by(|(_, a), (_, b)| a.cmp(b))?
            .0;
        self.shards[best].pop()
    }

    fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }

    /// Keeps only the best `beam` entries (deterministic: the entry order
    /// `(score, seq)` is a total order).
    fn prune_to(&mut self, beam: usize) {
        let mut all: Vec<Entry> = Vec::with_capacity(self.len());
        for shard in &mut self.shards {
            all.extend(std::mem::take(shard).into_vec());
        }
        all.sort_unstable_by(|a, b| b.cmp(a)); // best first
        all.truncate(beam);
        for entry in all {
            self.push(entry);
        }
    }
}

/// Per-property-set best-cost map (Fig. 10 lines 9–14). Keys are interner
/// ids — a `u32` copy instead of a heap-allocated set clone per entry, and
/// a 4-byte hash per probe instead of re-hashing the whole set. Shards are
/// still picked by the memoized *content* hash, so the shard population
/// (irrelevant to results, but kept reproducible anyway) is identical run
/// to run even though id values are assigned in thread-timing order.
/// During a wave, expansion workers take uncontended read locks; every
/// write happens in the sequential merge between waves, so lookups are
/// deterministic.
struct DominanceMap {
    shards: Vec<RwLock<HashMap<u32, f64>>>,
}

impl DominanceMap {
    fn new(shards: usize) -> Self {
        debug_assert!(shards.is_power_of_two());
        DominanceMap { shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect() }
    }

    fn shard(&self, key: &InternedProps) -> &RwLock<HashMap<u32, f64>> {
        &self.shards[(key.stable_hash() as usize) & (self.shards.len() - 1)]
    }

    /// The best known cost of `key`, if any (read lock).
    fn bound(&self, key: &InternedProps) -> Option<f64> {
        self.shard(key).read().expect("dominance shard poisoned").get(&key.id()).copied()
    }

    /// Records `cost` for `key` unless an existing entry already dominates
    /// it; returns whether the entry was inserted (write lock).
    fn try_commit(&self, key: &InternedProps, cost: f64) -> bool {
        let mut map = self.shard(key).write().expect("dominance shard poisoned");
        match map.get(&key.id()) {
            Some(&c) if c <= cost + EPS => false,
            _ => {
                map.insert(key.id(), cost);
                true
            }
        }
    }
}

/// The search's cost oracle.
///
/// Production synthesis always runs on [`CostTables`] — O(1) slice reads,
/// no allocation, no division. The `Direct` variant routes the identical
/// control flow through the original allocating [`CostModel`] calls; it
/// exists for the `synthesis/expand_hot_path` micro-bench and the
/// equivalence tests, which assert both variants produce bit-identical
/// costs on the same workload.
pub(crate) enum CostSource<'a> {
    /// Precomputed dense tables (the production hot path).
    Tables(&'a CostTables),
    /// Direct per-call evaluation (the pre-table baseline).
    Direct(&'a CostModel<'a>),
}

impl CostSource<'_> {
    /// Adds the per-device seconds of computing `node` under `rule` to
    /// `stage`.
    #[inline]
    fn add_compute(&self, stage: &mut [f64], node: NodeId, rule: &Rule) {
        match self {
            CostSource::Tables(t) => {
                for (s, d) in stage.iter_mut().zip(t.compute_row_for(node, rule)) {
                    *s += d;
                }
            }
            CostSource::Direct(cm) => {
                // The pre-table behavior: a fresh Vec per evaluation.
                let per_dev = cm.compute_seconds(node, rule);
                for (s, d) in stage.iter_mut().zip(per_dev.iter()) {
                    *s += d;
                }
            }
        }
    }

    /// Fused `stage += compute; max(stage)` in one pass (the preview inner
    /// loop). The running maximum folds in element order from `0.0`,
    /// exactly like a separate `fold(0.0, f64::max)` pass would.
    #[inline]
    fn add_compute_max(&self, stage: &mut [f64], node: NodeId, rule: &Rule) -> f64 {
        let mut max = 0.0f64;
        match self {
            CostSource::Tables(t) => {
                for (s, d) in stage.iter_mut().zip(t.compute_row_for(node, rule)) {
                    *s += d;
                    max = max.max(*s);
                }
            }
            CostSource::Direct(cm) => {
                let per_dev = cm.compute_seconds(node, rule);
                for (s, d) in stage.iter_mut().zip(per_dev.iter()) {
                    *s += d;
                    max = max.max(*s);
                }
            }
        }
        max
    }

    /// Fused `stage = base + compute; max(stage)` in one pass (the first
    /// compute of a preview, replacing a copy + add + fold triple pass).
    #[inline]
    fn set_compute_max(&self, stage: &mut [f64], base: &[f64], node: NodeId, rule: &Rule) -> f64 {
        let mut max = 0.0f64;
        match self {
            CostSource::Tables(t) => {
                let row = t.compute_row_for(node, rule);
                for ((s, &b), d) in stage.iter_mut().zip(base.iter()).zip(row) {
                    *s = b + d;
                    max = max.max(*s);
                }
            }
            CostSource::Direct(cm) => {
                let per_dev = cm.compute_seconds(node, rule);
                for ((s, &b), d) in stage.iter_mut().zip(base.iter()).zip(per_dev.iter()) {
                    *s = b + d;
                    max = max.max(*s);
                }
            }
        }
        max
    }

    #[inline]
    fn collective_secs(&self, node: NodeId, kind: &CollectiveInstr) -> f64 {
        match self {
            CostSource::Tables(t) => t.collective_secs(node, kind),
            CostSource::Direct(cm) => cm.collective_seconds(node, kind),
        }
    }

    #[inline]
    fn best_case_seconds(&self, flops: f64) -> f64 {
        match self {
            CostSource::Tables(t) => t.best_case_seconds(flops),
            CostSource::Direct(cm) => cm.best_case_seconds(flops),
        }
    }

    #[inline]
    fn node_flops(&self, node: NodeId) -> f64 {
        match self {
            CostSource::Tables(t) => t.node_flops(node),
            CostSource::Direct(cm) => cm.node_flops(node),
        }
    }
}

/// Per-synthesis search counters, collected by the wave coordinator.
///
/// Every counter is maintained in the *sequential* phases of the search —
/// the wave pop loop and the commit loop — never inside the parallel
/// `expand` calls, so profiling adds no atomics to the scatter path and
/// the numbers are bit-identical across thread counts (wave composition
/// and merge order are already thread-count independent).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SynthProfile {
    /// Waves popped from the frontier.
    pub waves: u64,
    /// States expanded (the budget the search spends).
    pub expansions: u64,
    /// Successors produced by expansion, before commit filtering.
    pub candidates: u64,
    /// Candidates that survived every bound and entered the frontier.
    pub committed: u64,
    /// Times a complete program improved the incumbent.
    pub improvements: u64,
    /// Popped entries skipped because a cheaper path to the same property
    /// set had already been committed (lazy-deletion hits).
    pub dominance_stale: u64,
    /// Candidates rejected by the dominance map at commit time.
    pub dominance_pruned: u64,
    /// Candidates rejected because their score could not beat the
    /// incumbent (branch-and-bound prunes).
    pub incumbent_pruned: u64,
    /// Largest frontier observed at a wave boundary.
    pub frontier_peak: u64,
    /// State boxes retired into the recycling arena.
    pub recycled: u64,
    /// 1 if a warm-start program was accepted as the initial incumbent
    /// (summed across rounds when profiles are merged).
    pub warm_seeded: u64,
}

impl SynthProfile {
    /// Folds another synthesis run (e.g. a later round of the alternating
    /// optimization) into this profile.
    pub fn merge(&mut self, other: &SynthProfile) {
        self.waves += other.waves;
        self.expansions += other.expansions;
        self.candidates += other.candidates;
        self.committed += other.committed;
        self.improvements += other.improvements;
        self.dominance_stale += other.dominance_stale;
        self.dominance_pruned += other.dominance_pruned;
        self.incumbent_pruned += other.incumbent_pruned;
        self.frontier_peak = self.frontier_peak.max(other.frontier_peak);
        self.recycled += other.recycled;
        self.warm_seeded += other.warm_seeded;
    }

    /// The counters as `(name, value)` pairs, in a stable order — the
    /// shape upper layers use for wire encoding and trace annotations.
    pub fn entries(&self) -> [(&'static str, u64); 11] {
        [
            ("waves", self.waves),
            ("expansions", self.expansions),
            ("candidates", self.candidates),
            ("committed", self.committed),
            ("improvements", self.improvements),
            ("dominance_stale", self.dominance_stale),
            ("dominance_pruned", self.dominance_pruned),
            ("incumbent_pruned", self.incumbent_pruned),
            ("frontier_peak", self.frontier_peak),
            ("recycled", self.recycled),
            ("warm_seeded", self.warm_seeded),
        ]
    }
}

/// The best complete program found so far.
struct Incumbent {
    cost: f64,
    program: ProgChain,
}

/// A successor produced by a wave expansion, not yet committed.
struct Candidate {
    score: f64,
    cost: f64,
    /// Stable program fingerprint — the cross-thread-count tie-break.
    fingerprint: u64,
    state: Box<State>,
}

const EPS: f64 = 1e-12;

/// Synthesizes the optimal distributed program for `graph` under sharding
/// ratios `ratios` on the given devices.
pub fn synthesize(
    graph: &Graph,
    devices: &[VirtualDevice],
    profile: &CommProfile,
    ratios: &ShardingRatios,
    config: &SynthConfig,
) -> Result<DistProgram, SynthError> {
    let theory = Theory::build_with(
        graph,
        TheoryOptions { grouped_broadcast: config.grouped_broadcast, sfb: config.sfb },
    );
    synthesize_with_theory(graph, &theory, devices, profile, ratios, config)
}

/// Synthesizes against a pre-built theory (lets callers reuse the theory
/// across iterations of the alternating optimization).
pub fn synthesize_with_theory(
    graph: &Graph,
    theory: &Theory,
    devices: &[VirtualDevice],
    profile: &CommProfile,
    ratios: &ShardingRatios,
    config: &SynthConfig,
) -> Result<DistProgram, SynthError> {
    synthesize_with_theory_warm(graph, theory, devices, profile, ratios, config, None)
}

/// [`synthesize_with_theory`] with an optional warm-start program.
///
/// The alternating Q/B loop re-synthesizes under freshly balanced ratios
/// every round; `warm_start` lets round *s* seed the A\* incumbent with
/// round *s−1*'s program, re-costed under the new ratio matrix via the same
/// table arithmetic the search uses. A warm incumbent is an upper bound
/// that prunes every state whose admissible score cannot beat it, which
/// typically cuts later rounds to a fraction of round 0's expansions. The
/// warm program only replaces the greedy seed when it is strictly cheaper,
/// and any strictly better program found by the search replaces it in turn.
///
/// Results are preserved up to exact cost ties: a warm incumbent only
/// suppresses programs that cannot beat it by more than [`EPS`], so warm
/// and cold runs can diverge only when the warm program ties the cold
/// optimum within that epsilon (in which case the warm run returns the
/// warm program itself — an equal-cost plan). The determinism suite pins
/// bit-for-bit equality on every benchmark model.
#[allow(clippy::too_many_arguments)]
pub fn synthesize_with_theory_warm(
    graph: &Graph,
    theory: &Theory,
    devices: &[VirtualDevice],
    profile: &CommProfile,
    ratios: &ShardingRatios,
    config: &SynthConfig,
    warm_start: Option<&DistProgram>,
) -> Result<DistProgram, SynthError> {
    let mut prof = SynthProfile::default();
    synthesize_core(graph, theory, devices, profile, ratios, config, warm_start, &mut prof)
}

/// [`synthesize_with_theory_warm`] that also returns the search's
/// [`SynthProfile`]. Profiling is collected unconditionally (it is a
/// handful of coordinator-side counter bumps); this variant merely keeps
/// the counters instead of dropping them, so profiled and unprofiled
/// calls run the identical search.
#[allow(clippy::too_many_arguments)]
pub fn synthesize_with_theory_profiled(
    graph: &Graph,
    theory: &Theory,
    devices: &[VirtualDevice],
    profile: &CommProfile,
    ratios: &ShardingRatios,
    config: &SynthConfig,
    warm_start: Option<&DistProgram>,
) -> Result<(DistProgram, SynthProfile), SynthError> {
    let mut prof = SynthProfile::default();
    let program =
        synthesize_core(graph, theory, devices, profile, ratios, config, warm_start, &mut prof)?;
    Ok((program, prof))
}

#[allow(clippy::too_many_arguments)]
fn synthesize_core(
    graph: &Graph,
    theory: &Theory,
    devices: &[VirtualDevice],
    profile: &CommProfile,
    ratios: &ShardingRatios,
    config: &SynthConfig,
    warm_start: Option<&DistProgram>,
    prof: &mut SynthProfile,
) -> Result<DistProgram, SynthError> {
    let cm = CostModel::new(graph, devices, profile, ratios);
    let tables = CostTables::build(&cm);
    let costs = CostSource::Tables(&tables);
    let interner = PropInterner::new();
    let m = cm.num_devices();
    let pool = ThreadPool::new(config.threads);

    let total_remaining: f64 = graph
        .nodes()
        .iter()
        .filter(|n| !n.op.is_leaf() && theory.live[n.id])
        .map(|n| graph.node_flops(n.id))
        .sum();
    let required_count = theory.required.len();

    let initial = State {
        props: interner.intern(PropSet::new()),
        closed: 0.0,
        stage: vec![0.0; m],
        remaining_flops: total_remaining,
        remaining_required: required_count,
        program: ProgChain::new(),
    };

    // Seed the incumbent with a greedy descent: every later state whose
    // score cannot beat it is pruned, which bounds the exploration
    // (branch-and-bound on top of A*).
    let greedy_t0 = Instant::now();
    let mut incumbent: Option<Incumbent> = greedy_seed(&initial, theory, &costs, &interner, graph)
        .map(|(cost, program)| Incumbent { cost, program });
    if std::env::var_os("HAP_SYNTH_DEBUG").is_some() {
        eprintln!(
            "greedy: {:?}, incumbent = {:?}",
            greedy_t0.elapsed(),
            incumbent.as_ref().map(|i| i.cost)
        );
    }

    // Warm start: a previous round's program, re-costed under the current
    // ratios with the exact arithmetic `apply` uses, becomes the incumbent
    // when it strictly beats the greedy seed.
    if let Some(warm) = warm_start {
        let warm_cost = replay_cost(warm, &costs, m);
        if incumbent.as_ref().is_none_or(|inc| warm_cost < inc.cost - EPS) {
            incumbent = Some(Incumbent { cost: warm_cost, program: ProgChain::from_program(warm) });
            prof.warm_seeded = 1;
        }
    }

    let dominance = DominanceMap::new(DOMINANCE_SHARDS);
    dominance.try_commit(&initial.props, 0.0);

    let mut frontier = ShardedFrontier::new(FRONTIER_SHARDS);
    frontier.push(Entry {
        score: costs.best_case_seconds(total_remaining),
        seq: 0,
        state: Box::new(initial),
    });
    let mut seq = 1u64;

    // The cooperative deadline: the coordinator checks it between waves and
    // workers poll the flag (and the clock, every DEADLINE_STRIDE triples)
    // inside a wave, so even a single oversized wave cannot spin past the
    // budget. A zero budget trips before the first wave is popped.
    let deadline = Instant::now() + Duration::from_secs_f64(config.time_budget_secs.max(0.0));
    let out_of_time = AtomicBool::new(false);

    let mut expansions = 0usize;
    let mut last_improvement = 0usize;

    // Recycling arena: each wave's discarded state boxes feed the next
    // wave's allocations. Shared across workers (batched, so the lock is
    // touched twice per expand call, not per successor).
    let recycle = StatePool::new();

    loop {
        if out_of_time.load(AtomicOrdering::Relaxed) || Instant::now() >= deadline {
            // Budget exhausted: fall back to the incumbent (paper-style
            // "seconds of overhead" guarantee).
            return budget_fallback(incumbent, expansions);
        }
        if incumbent.is_some()
            && expansions.saturating_sub(last_improvement) > config.stall_expansions
        {
            break; // diminishing returns: keep the incumbent
        }
        let budget_left = config.max_expansions.saturating_sub(expansions);
        if budget_left == 0 {
            if std::env::var_os("HAP_SYNTH_DEBUG").is_some() {
                eprintln!(
                    "astar: expansion budget {} exhausted over {} threads, frontier {}",
                    config.max_expansions,
                    pool.threads(),
                    frontier.len()
                );
            }
            return incumbent
                .map(|inc| inc.program.to_program(inc.cost))
                .ok_or(SynthError::ExpansionLimit(config.max_expansions));
        }

        // Pop the wave: the globally best states, skipping entries that a
        // cheaper path to the same property set has made stale.
        let mut wave: Vec<Box<State>> = Vec::with_capacity(WAVE_WIDTH.min(budget_left));
        while wave.len() < WAVE_WIDTH.min(budget_left) {
            let Some(entry) = frontier.pop_best() else { break };
            if let Some(inc) = &incumbent {
                if entry.score >= inc.cost - EPS {
                    // A* optimality: this is the frontier's minimum score,
                    // so no open state can beat the incumbent.
                    frontier.clear();
                    break;
                }
            }
            match dominance.bound(&entry.state.props) {
                Some(c) if c < entry.state.cost() - EPS => {
                    prof.dominance_stale += 1;
                    continue; // stale
                }
                _ => {}
            }
            wave.push(entry.state);
        }
        if wave.is_empty() {
            break; // frontier exhausted or optimality proven
        }
        expansions += wave.len();
        prof.waves += 1;
        prof.expansions += wave.len() as u64;

        // Scatter: expand every wave state in parallel. The dominance map
        // and incumbent are frozen for the duration, so workers only do
        // deterministic reads.
        let incumbent_cost = incumbent.as_ref().map(|i| i.cost);
        let expanded: Vec<Vec<Candidate>> = pool.scatter_map(&wave, |_, state| {
            expand(
                state,
                theory,
                &costs,
                &interner,
                graph,
                incumbent_cost,
                &dominance,
                &recycle,
                &out_of_time,
                deadline,
            )
        });
        if out_of_time.load(AtomicOrdering::Relaxed) {
            // The wave was abandoned mid-expansion; its partial candidates
            // are discarded so the result is the last wave's incumbent.
            return budget_fallback(incumbent, expansions);
        }
        // The wave is spent: its boxes seed the next wave's successors.
        prof.recycled += wave.len() as u64;
        recycle.give(&mut wave);

        // Gather: merge the wave's candidates in a stable, thread-count
        // independent order before any of them takes effect.
        let mut candidates: Vec<Candidate> = expanded.into_iter().flatten().collect();
        prof.candidates += candidates.len() as u64;
        candidates.sort_by(|a, b| {
            a.score
                .total_cmp(&b.score)
                .then_with(|| a.cost.total_cmp(&b.cost))
                .then_with(|| a.fingerprint.cmp(&b.fingerprint))
        });

        // Commit sequentially in merge order. Rejected candidates retire
        // their boxes to the arena in one batch at the end.
        let mut retired: Vec<Box<State>> = Vec::new();
        for cand in candidates {
            if let Some(inc) = &incumbent {
                if cand.score >= inc.cost - EPS {
                    prof.incumbent_pruned += 1;
                    retired.push(cand.state); // cannot beat the incumbent
                    continue;
                }
            }
            if cand.state.remaining_required == 0 {
                // Complete and strictly better (score == cost passed the
                // bound above). Equal-cost ties resolve to the candidate
                // with the smaller fingerprint: it commits first in merge
                // order and the bound then filters the rest.
                let mut state = cand.state;
                let program = std::mem::replace(&mut state.program, ProgChain::new());
                incumbent = Some(Incumbent { cost: cand.cost, program });
                retired.push(state);
                last_improvement = expansions;
                prof.improvements += 1;
                continue;
            }
            if !dominance.try_commit(&cand.state.props, cand.cost) {
                prof.dominance_pruned += 1;
                retired.push(cand.state);
                continue;
            }
            frontier.push(Entry { score: cand.score, seq, state: cand.state });
            seq += 1;
            prof.committed += 1;
        }
        prof.recycled += retired.len() as u64;
        recycle.give(&mut retired);

        if let Some(beam) = config.beam_width {
            if frontier.len() > beam * 2 {
                frontier.prune_to(beam);
            }
        }
        prof.frontier_peak = prof.frontier_peak.max(frontier.len() as u64);
    }

    if std::env::var_os("HAP_SYNTH_DEBUG").is_some() {
        eprintln!(
            "astar: {expansions} expansions over {} threads, frontier {} at exit",
            pool.threads(),
            frontier.len()
        );
    }
    match incumbent {
        Some(inc) => Ok(inc.program.to_program(inc.cost)),
        None => Err(SynthError::NoProgram),
    }
}

/// The time-budget exit: the incumbent if one exists, else an error.
fn budget_fallback(
    incumbent: Option<Incumbent>,
    expansions: usize,
) -> Result<DistProgram, SynthError> {
    incumbent
        .map(|inc| inc.program.to_program(inc.cost))
        .ok_or(SynthError::ExpansionLimit(expansions))
}

/// Expands one state against the whole theory, returning its surviving
/// successors. Runs on worker threads: reads the frozen dominance map and
/// incumbent bound, writes nothing (the interner is append-only and
/// content-addressed), and polls the shared deadline flag. The whole triple
/// scan is allocation-free — cost lookups are table reads, previews reuse
/// one scratch buffer — until a successor actually survives the bounds.
#[allow(clippy::too_many_arguments)]
fn expand(
    cur: &State,
    theory: &Theory,
    costs: &CostSource,
    interner: &PropInterner,
    graph: &Graph,
    incumbent_cost: Option<f64>,
    dominance: &DominanceMap,
    recycle: &StatePool,
    out_of_time: &AtomicBool,
    deadline: Instant,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    let mut scratch = vec![0.0; cur.stage.len()];
    // Local freelist of recycled boxes: successors are built into these
    // when available, and bound-rejected successors go straight back on.
    let mut local: Vec<Box<State>> = Vec::new();
    recycle.take(&mut local);
    let cur_stage_max = cur.stage.iter().cloned().fold(0.0, f64::max);
    for (k, triple) in theory.triples.iter().enumerate() {
        if k % DEADLINE_STRIDE == 0 {
            if out_of_time.load(AtomicOrdering::Relaxed) {
                recycle.give(&mut local);
                return out;
            }
            if Instant::now() >= deadline {
                out_of_time.store(true, AtomicOrdering::Relaxed);
                recycle.give(&mut local);
                return out;
            }
        }
        if !triple_applicable(&cur.props, triple) {
            continue;
        }
        if let Some(bound) = incumbent_cost {
            let (pcost, premaining) =
                preview(cur, cur_stage_max, triple, costs, theory, &mut scratch);
            if pcost + costs.best_case_seconds(premaining) >= bound - EPS {
                continue; // cannot beat the incumbent: skip without allocating
            }
        }
        let succ = match local.pop() {
            Some(mut slot) => {
                apply_into(cur, triple, costs, interner, theory, graph, &mut slot);
                slot
            }
            None => Box::new(apply(cur, triple, costs, interner, theory, graph)),
        };
        let cost = succ.cost();
        if let Some(bound) = incumbent_cost {
            if cost >= bound - EPS {
                local.push(succ);
                continue;
            }
        }
        if succ.remaining_required == 0 {
            let fingerprint = succ.program.fingerprint();
            out.push(Candidate { score: cost, cost, fingerprint, state: succ });
            continue;
        }
        if let Some(c) = dominance.bound(&succ.props) {
            if c <= cost + EPS {
                local.push(succ); // dominated by a previous wave
                continue;
            }
        }
        let score = cost + costs.best_case_seconds(succ.remaining_flops);
        if let Some(bound) = incumbent_cost {
            if score >= bound - EPS {
                local.push(succ); // admissible score cannot beat the incumbent
                continue;
            }
        }
        let fingerprint = succ.program.fingerprint();
        out.push(Candidate { score, cost, fingerprint, state: succ });
    }
    recycle.give(&mut local);
    out
}

/// Greedy descent to an initial complete program: from the empty state,
/// repeatedly apply the successor with the best score. Returns `None` when
/// the descent stalls (the A\* then runs unseeded).
fn greedy_seed(
    initial: &State,
    theory: &Theory,
    costs: &CostSource,
    interner: &PropInterner,
    graph: &Graph,
) -> Option<(f64, ProgChain)> {
    let mut cur = clone_state(initial);
    // Been-here check: stable-hash buckets with exact compare inside, so
    // wide graphs don't pay the old linear scan over every seen set.
    let mut seen_keys: HashMap<u64, Vec<PropSet>> = HashMap::new();
    let mut scratch = vec![0.0; initial.stage.len()];
    let debug = std::env::var_os("HAP_SYNTH_DEBUG").is_some();
    let mut trace: Vec<String> = Vec::new();
    for _ in 0..graph.len().saturating_mul(8).max(64) {
        if cur.remaining_required == 0 {
            return Some((cur.cost(), cur.program));
        }
        // Progress-first: prefer the cheapest successor that produces a
        // node not yet computed; only when none applies fall back to
        // "filler" moves (collectives and alternative placements) that can
        // unblock one. Candidates are scored with the cheap preview; only
        // the winner's state is constructed.
        let mut best_progress: Option<(f64, &Triple)> = None;
        let mut best_filler: Option<(f64, &Triple)> = None;
        let cur_stage_max = cur.stage.iter().cloned().fold(0.0, f64::max);
        for triple in &theory.triples {
            if !triple_applicable(&cur.props, triple) {
                continue;
            }
            let progress = theory.live[triple.output] && !cur.props.has_node(triple.output);
            if !progress && best_progress.is_some() {
                continue; // filler can't win once progress exists
            }
            let (pcost, premaining) =
                preview(&cur, cur_stage_max, triple, costs, theory, &mut scratch);
            let score = pcost + costs.best_case_seconds(premaining);
            if progress {
                if best_progress.as_ref().is_none_or(|(bs, _)| score < *bs) {
                    best_progress = Some((score, triple));
                }
            } else {
                let cheaper = best_filler.as_ref().is_none_or(|(bs, _)| score < *bs);
                if cheaper {
                    // One-step lookahead: a filler is only useful if it
                    // unblocks the computation of an unproduced node. Only
                    // the successor's property set matters here, so the
                    // full state (stage costs, program chain, interning) is
                    // never constructed.
                    let succ_props = apply_props(&cur.props, triple);
                    let unseen = !seen_keys
                        .get(&succ_props.stable_hash())
                        .is_some_and(|bucket| bucket.contains(&succ_props));
                    if unseen && enables_progress(&succ_props, theory) {
                        best_filler = Some((score, triple));
                    }
                }
            }
        }
        let next = match best_progress.or(best_filler) {
            Some((_, triple)) => apply(&cur, triple, costs, interner, theory, graph),
            None => {
                if debug {
                    eprintln!(
                        "greedy stalled: {} required outputs missing; props = {:?}",
                        cur.remaining_required,
                        cur.props.props()
                    );
                }
                return None;
            }
        };
        if debug {
            if let Some(instr) = next.program.last() {
                trace.push(format!("{instr:?}"));
            }
        }
        seen_keys.entry(next.props.stable_hash()).or_default().push(PropSet::clone(&next.props));
        cur = next;
    }
    if debug {
        eprintln!(
            "greedy ran out of steps: {} required missing, {} props",
            cur.remaining_required,
            cur.props.len()
        );
        eprintln!(
            "missing required: {:?}",
            theory.required.iter().filter(|&&r| !cur.props.has_node(r)).collect::<Vec<_>>()
        );
        for (i, line) in trace.iter().enumerate() {
            eprintln!("  step {i}: {line}");
        }
    }
    None
}

/// True if some not-yet-produced node's triple becomes applicable under
/// `props`.
fn enables_progress(props: &PropSet, theory: &Theory) -> bool {
    theory.triples.iter().any(|t| {
        theory.live[t.output]
            && !props.has_node(t.output)
            && t.comm_node.is_none_or(|e| !props.is_communicated(e))
            && props.contains_all(&t.pre)
    })
}

/// True when `triple` can fire on `props`: its communication (if any) has
/// not already happened, its precondition holds, and it establishes at
/// least one new property. The one applicability predicate shared by
/// [`expand`], the greedy seed, and the hot-path workload builder, so the
/// three can never drift apart.
fn triple_applicable(props: &PropSet, triple: &Triple) -> bool {
    if let Some(e) = triple.comm_node {
        if props.is_communicated(e) {
            return false;
        }
    }
    props.contains_all(&triple.pre) && !triple.post.iter().all(|p| props.contains(p))
}

/// Applies the property-set effect of a triple to `props` — communicated
/// markers of its collectives, then its postcondition — invoking
/// `on_new_node` for every graph node that first becomes produced. The one
/// source of truth for set effects: [`apply`] layers cost, program, and
/// remaining-work bookkeeping on top, [`apply_props`] uses it bare.
fn apply_props_into(props: &mut PropSet, triple: &Triple, mut on_new_node: impl FnMut(NodeId)) {
    for instr in &triple.instrs {
        if let DistInstr::Collective { node, .. } = instr {
            props.mark_communicated(*node);
        }
    }
    for &p in &triple.post {
        let newly_produced = !props.has_node(p.0);
        if props.insert(p) && newly_produced {
            on_new_node(p.0);
        }
    }
}

/// Applies only the property-set effect of a triple — the greedy one-step
/// lookahead needs the successor's identity, not its cost or program.
fn apply_props(cur: &PropSet, triple: &Triple) -> PropSet {
    let mut props = cur.clone();
    apply_props_into(&mut props, triple, |_| {});
    props
}

fn clone_state(s: &State) -> State {
    State {
        props: s.props.clone(),
        closed: s.closed,
        stage: s.stage.clone(),
        remaining_flops: s.remaining_flops,
        remaining_required: s.remaining_required,
        program: s.program.clone(),
    }
}

/// Cheaply previews the cost and remaining-work bound of applying a triple,
/// without constructing the successor state or allocating: `scratch` (one
/// per expanding worker, reused across the whole triple scan) holds the
/// in-progress stage vector whenever the triple touches it, and
/// `cur_stage_max` is the precomputed makespan of the state's running stage
/// (invariant across the scan, so callers hoist it out of the loop).
fn preview(
    cur: &State,
    cur_stage_max: f64,
    triple: &Triple,
    costs: &CostSource,
    theory: &Theory,
    scratch: &mut [f64],
) -> (f64, f64) {
    let mut closed = cur.closed;
    let mut stage_max = cur_stage_max;
    // True once `scratch` holds the running stage (after the first compute
    // or collective of this triple); until then the state's own stage is
    // authoritative and nothing is copied.
    let mut scratch_live = false;
    for instr in &triple.instrs {
        match instr {
            DistInstr::Leaf { .. } => {}
            DistInstr::Compute { node, rule } => {
                stage_max = if scratch_live {
                    costs.add_compute_max(scratch, *node, rule)
                } else {
                    scratch_live = true;
                    costs.set_compute_max(scratch, &cur.stage, *node, rule)
                };
            }
            DistInstr::Collective { node, kind } => {
                closed += stage_max + costs.collective_secs(*node, kind);
                scratch.fill(0.0);
                scratch_live = true;
                stage_max = 0.0;
            }
        }
    }
    let mut remaining = cur.remaining_flops;
    for &(n, _) in &triple.post {
        if !cur.props.has_node(n) && theory.live[n] {
            remaining = (remaining - costs.node_flops(n)).max(0.0);
        }
    }
    (closed + stage_max, remaining)
}

/// Applies a triple to a state, producing the successor. This is the one
/// genuine mutation point of a state's property set: callers only reach it
/// for triples that change the set, so the copy-on-write clone of the
/// interned set (and the re-intern of the result) happens exactly here.
fn apply(
    cur: &State,
    triple: &Triple,
    costs: &CostSource,
    interner: &PropInterner,
    theory: &Theory,
    graph: &Graph,
) -> State {
    let mut out = State {
        props: cur.props.clone(),
        closed: 0.0,
        stage: Vec::with_capacity(cur.stage.len()),
        remaining_flops: 0.0,
        remaining_required: 0,
        program: ProgChain::new(),
    };
    apply_into(cur, triple, costs, interner, theory, graph, &mut out);
    out
}

/// [`apply`] into a recycled slot: identical arithmetic operation for
/// operation, but the successor overwrites `slot`, reusing its `stage`
/// buffer's capacity instead of allocating a fresh one. This is the
/// [`StatePool`] fast path; `slot`'s prior contents are irrelevant.
#[allow(clippy::too_many_arguments)]
fn apply_into(
    cur: &State,
    triple: &Triple,
    costs: &CostSource,
    interner: &PropInterner,
    theory: &Theory,
    graph: &Graph,
    slot: &mut State,
) {
    let mut props = PropSet::clone(&cur.props);
    let mut closed = cur.closed;
    let stage = &mut slot.stage;
    stage.clear();
    stage.extend_from_slice(&cur.stage);
    let mut remaining_flops = cur.remaining_flops;
    let mut remaining_required = cur.remaining_required;
    let mut program = cur.program.clone();

    for instr in &triple.instrs {
        match instr {
            DistInstr::Leaf { node, placement } => {
                // Re-materializing an already-available leaf is skipped.
                // Postconditions (including this leaf's property) are
                // applied after the loop, so `props` still reflects the
                // predecessor here.
                if props.contains(&(*node, *placement)) {
                    continue;
                }
                program = program.push(instr.clone());
            }
            DistInstr::Compute { node, rule } => {
                costs.add_compute(stage, *node, rule);
                program = program.push(instr.clone());
            }
            DistInstr::Collective { node, kind } => {
                // A collective closes the running stage (paper Fig. 6).
                closed += stage.iter().cloned().fold(0.0, f64::max);
                stage.iter_mut().for_each(|s| *s = 0.0);
                closed += costs.collective_secs(*node, kind);
                program = program.push(instr.clone());
            }
        }
    }

    apply_props_into(&mut props, triple, |node| {
        if !graph.node(node).op.is_leaf() && theory.live[node] {
            remaining_flops = (remaining_flops - costs.node_flops(node)).max(0.0);
        }
        if theory.required.contains(&node) {
            remaining_required = remaining_required.saturating_sub(1);
        }
    });

    slot.props = interner.intern(props);
    slot.closed = closed;
    slot.remaining_flops = remaining_flops;
    slot.remaining_required = remaining_required;
    slot.program = program;
}

/// Re-costs an existing program, mirroring [`apply`]'s stage arithmetic
/// operation for operation so a warm-start incumbent's cost is bit-identical
/// to the cost the search would assign the same program.
fn replay_cost(program: &DistProgram, costs: &CostSource, m: usize) -> f64 {
    let mut closed = 0.0;
    let mut stage = vec![0.0; m];
    for instr in &program.instrs {
        match instr {
            DistInstr::Leaf { .. } => {}
            DistInstr::Compute { node, rule } => costs.add_compute(&mut stage, *node, rule),
            DistInstr::Collective { node, kind } => {
                closed += stage.iter().cloned().fold(0.0, f64::max);
                stage.iter_mut().for_each(|s| *s = 0.0);
                closed += costs.collective_secs(*node, kind);
            }
        }
    }
    closed + stage.iter().cloned().fold(0.0, f64::max)
}

/// A frozen expand-hot-path workload: reachable search states with
/// precomputed applicable-triple lists, isolated from the frontier, the
/// dominance map, and the thread pool.
///
/// [`HotPathBench::run`] replays exactly the cost-lookup + candidate-
/// generation inner loop of [`expand`] over the workload — preview each
/// `(state, triple)` pair, apply the ones whose admissible score clears the
/// stored bound — through either cost oracle. States are fully constructed
/// (and interned) up front, like the wave states `expand` receives, so the
/// timed region contains only the inner loop. The
/// `synthesis/expand_hot_path` micro-bench times the two variants; the
/// equivalence tests assert their checksums (cost and score bits, successor
/// fingerprints) are identical.
pub struct HotPathBench {
    graph: Graph,
    devices: Vec<VirtualDevice>,
    profile: CommProfile,
    ratios: ShardingRatios,
    theory: Theory,
    /// Built once here, not per run: production builds tables once per
    /// `synthesize_with_theory` call and amortizes them over the whole
    /// search, so the timed region must not re-pay the build.
    tables: CostTables,
    /// Shared across runs; content-addressed, so repeat runs hit.
    interner: PropInterner,
    /// `(state, hoisted stage max, applicable triple indices)`.
    states: Vec<(State, f64, Vec<usize>)>,
    /// 2nd-percentile preview score of the workload: applications below it
    /// construct the successor, the rest are preview-pruned — mirroring a
    /// late-search wave under a tight incumbent, where almost every triple
    /// dies at preview time (pure cost lookup) and only the promising few
    /// materialize states.
    bound: f64,
    applications: usize,
}

impl HotPathBench {
    /// Collects up to `max_states` reachable states by breadth-first
    /// expansion from the empty state (deterministic: FIFO order, no
    /// pruning other than property-set dedup).
    pub fn new(
        graph: Graph,
        devices: Vec<VirtualDevice>,
        profile: CommProfile,
        ratios: ShardingRatios,
        max_states: usize,
    ) -> Self {
        let theory = Theory::build(&graph);
        let interner = PropInterner::new();
        let tables = CostTables::build(&CostModel::new(&graph, &devices, &profile, &ratios));
        let mut states: Vec<(State, f64, Vec<usize>)> = Vec::with_capacity(max_states);
        let mut scores: Vec<f64> = Vec::new();
        {
            let costs = CostSource::Tables(&tables);
            let m = devices.len();
            let total_remaining: f64 = graph
                .nodes()
                .iter()
                .filter(|n| !n.op.is_leaf() && theory.live[n.id])
                .map(|n| graph.node_flops(n.id))
                .sum();
            let initial = State {
                props: interner.intern(PropSet::new()),
                closed: 0.0,
                stage: vec![0.0; m],
                remaining_flops: total_remaining,
                remaining_required: theory.required.len(),
                program: ProgChain::new(),
            };
            let mut scratch = vec![0.0; m];
            let mut seen: HashSet<u32> = HashSet::new();
            seen.insert(initial.props.id());
            let mut queue: VecDeque<State> = VecDeque::new();
            queue.push_back(initial);
            while let Some(state) = queue.pop_front() {
                if states.len() >= max_states {
                    break;
                }
                let mut matched = Vec::new();
                for (k, triple) in theory.triples.iter().enumerate() {
                    if triple_applicable(&state.props, triple) {
                        matched.push(k);
                    }
                }
                let stage_max = state.stage.iter().cloned().fold(0.0, f64::max);
                for &k in &matched {
                    let triple = &theory.triples[k];
                    let (pcost, premaining) =
                        preview(&state, stage_max, triple, &costs, &theory, &mut scratch);
                    scores.push(pcost + costs.best_case_seconds(premaining));
                    let succ = apply(&state, triple, &costs, &interner, &theory, &graph);
                    if seen.insert(succ.props.id()) && queue.len() + states.len() < max_states {
                        queue.push_back(succ);
                    }
                }
                states.push((state, stage_max, matched));
            }
        }
        scores.sort_unstable_by(f64::total_cmp);
        let bound = scores.get(scores.len() / 50).copied().unwrap_or(f64::INFINITY);
        let applications = states.iter().map(|(_, _, matched)| matched.len()).sum();
        HotPathBench {
            graph,
            devices,
            profile,
            ratios,
            theory,
            tables,
            interner,
            states,
            bound,
            applications,
        }
    }

    /// Number of `(state, triple)` applications one [`HotPathBench::run`]
    /// performs (the throughput unit of the micro-bench).
    pub fn applications(&self) -> usize {
        self.applications
    }

    /// Replays the workload through the table (`use_tables`) or direct cost
    /// oracle, returning `(applications, checksum)`. The checksum folds
    /// every preview score, surviving successor cost, and successor program
    /// fingerprint, so two runs agree iff their costs are bit-identical.
    pub fn run(&self, use_tables: bool) -> (usize, u64) {
        // The CostModel is rebuilt for both variants (cheap: one flops
        // vec); the tables come prebuilt, mirroring production's
        // once-per-search amortization.
        let cm = CostModel::new(&self.graph, &self.devices, &self.profile, &self.ratios);
        let costs =
            if use_tables { CostSource::Tables(&self.tables) } else { CostSource::Direct(&cm) };
        let mut scratch = vec![0.0; self.devices.len()];
        let mut applications = 0usize;
        let mut checksum = 0u64;
        for (state, stage_max, matched) in &self.states {
            for &k in matched {
                let triple = &self.theory.triples[k];
                let (pcost, premaining) =
                    preview(state, *stage_max, triple, &costs, &self.theory, &mut scratch);
                let score = pcost + costs.best_case_seconds(premaining);
                applications += 1;
                checksum = checksum.rotate_left(1) ^ score.to_bits();
                if score < self.bound {
                    let succ =
                        apply(state, triple, &costs, &self.interner, &self.theory, &self.graph);
                    checksum = checksum.rotate_left(1)
                        ^ succ.cost().to_bits()
                        ^ succ.program.fingerprint();
                }
            }
        }
        (applications, checksum)
    }

    /// [`HotPathBench::run`] through the table oracle, but with the
    /// production recycling arena: every surviving successor is built by
    /// [`apply_into`] into a box drawn from a local freelist and returned
    /// to it, exactly the steady state `expand` reaches against a
    /// [`StatePool`]. The checksum must match [`HotPathBench::run`] bit
    /// for bit (asserted by the micro-bench and the equivalence test);
    /// the `synthesis/expand_hot_path_arena` series gates the recycled
    /// path's throughput against the allocating one.
    pub fn run_arena(&self) -> (usize, u64) {
        // Same per-run setup as `run`, so the gated ratio compares only
        // the inner loop.
        let _cm = CostModel::new(&self.graph, &self.devices, &self.profile, &self.ratios);
        let costs = CostSource::Tables(&self.tables);
        let mut scratch = vec![0.0; self.devices.len()];
        let mut freelist: Vec<Box<State>> = Vec::new();
        let mut applications = 0usize;
        let mut checksum = 0u64;
        for (state, stage_max, matched) in &self.states {
            for &k in matched {
                let triple = &self.theory.triples[k];
                let (pcost, premaining) =
                    preview(state, *stage_max, triple, &costs, &self.theory, &mut scratch);
                let score = pcost + costs.best_case_seconds(premaining);
                applications += 1;
                checksum = checksum.rotate_left(1) ^ score.to_bits();
                if score < self.bound {
                    let succ = match freelist.pop() {
                        Some(mut slot) => {
                            apply_into(
                                state,
                                triple,
                                &costs,
                                &self.interner,
                                &self.theory,
                                &self.graph,
                                &mut slot,
                            );
                            slot
                        }
                        None => Box::new(apply(
                            state,
                            triple,
                            &costs,
                            &self.interner,
                            &self.theory,
                            &self.graph,
                        )),
                    };
                    checksum = checksum.rotate_left(1)
                        ^ succ.cost().to_bits()
                        ^ succ.program.fingerprint();
                    freelist.push(succ);
                }
            }
        }
        (applications, checksum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_cluster::{ClusterSpec, Granularity};
    use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
    use hap_graph::{GraphBuilder, Placement, Role};

    fn cluster_setup(m: usize) -> (Vec<VirtualDevice>, CommProfile, ShardingRatios) {
        let cluster = match m {
            4 => ClusterSpec::fig17_cluster(),
            _ => ClusterSpec::paper_heterogeneous(1),
        };
        let devices = cluster.virtual_devices(Granularity::PerGpu);
        let profile =
            profile_collectives(&GroundTruthNet::new(NetworkParams::paper_cloud()), devices.len());
        let ratios = vec![cluster.proportional_ratios(Granularity::PerGpu)];
        (devices, profile, ratios)
    }

    #[test]
    fn fig11_example_synthesizes_data_parallelism() {
        // loss = sum(x . w): the classic result is x sharded on batch, w
        // replicated, no communication at all (loss stays partial).
        let mut g = GraphBuilder::new();
        let x = g.placeholder("e1", vec![4096, 1024]);
        let w = g.parameter("e2", vec![1024, 512]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_forward();
        let (devices, profile, ratios) = cluster_setup(4);
        let q = synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        assert!(q.is_complete(&graph));
        assert_eq!(q.collective_count(), 0, "program: {}", q.listing(&graph));
        // x must be shard-materialized on its batch dimension.
        assert!(q.instrs.iter().any(|i| matches!(
            i,
            DistInstr::Leaf { node, placement: Placement::Shard(0) } if *node == x
        )));
        let _ = (y, l);
    }

    #[test]
    fn training_iteration_synchronizes_gradients() {
        // With a big batch and a small model, replicating the forward pass is
        // far too expensive, so the optimal program shards the batch — and
        // then the weight gradient must be aggregated: expect at least one
        // collective (all-reduce or reduce-scatter).
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![262144, 256]);
        let w = g.parameter("w", vec![256, 256]);
        let labels = g.label("y", vec![262144]);
        let h = g.matmul(x, w);
        let loss = g.cross_entropy(h, labels);
        let _ = x;
        let graph = g.build_training(loss).unwrap();
        let (devices, profile, ratios) = cluster_setup(4);
        let q = synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        assert!(q.is_complete(&graph), "program:\n{}", q.listing(&graph));
        assert!(
            q.collective_count() >= 1,
            "gradient sync requires communication:\n{}",
            q.listing(&graph)
        );
        // Every required output is produced.
        for o in graph.required_outputs() {
            assert!(q
                .instrs
                .iter()
                .any(|i| matches!(i, DistInstr::Compute { node, .. } if *node == o)));
        }
    }

    #[test]
    fn tiny_batch_prefers_sfb() {
        // Fig. 5: with a small global batch, gathering the sufficient factors
        // (activations + output grads) is cheaper than all-reducing the
        // f x h gradient. Make f, h huge and b tiny.
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![8, 4096]);
        let w = g.parameter("w", vec![4096, 4096]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_training(l).unwrap();
        let (devices, profile, ratios) = cluster_setup(4);
        let q = synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        // The gradient of w must NOT be all-reduced; instead the factors are
        // gathered and the gradient computed replicated.
        let grad_w_node = graph
            .nodes()
            .iter()
            .find(|n| {
                n.role == Role::Grad && matches!(n.op, hap_graph::Op::MatMul2 { ta: true, .. })
            })
            .map(|n| n.id)
            .expect("weight gradient node");
        let allreduced_grad = q.instrs.iter().any(|i| {
            matches!(i, DistInstr::Collective { node, kind: crate::CollectiveInstr::AllReduce } if *node == grad_w_node)
        });
        assert!(
            !allreduced_grad,
            "SFB should avoid all-reducing the huge gradient:\n{}",
            q.listing(&graph)
        );
        let _ = (x, w, y, l);
    }

    #[test]
    fn disabling_sfb_changes_the_plan() {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![8, 4096]);
        let w = g.parameter("w", vec![4096, 4096]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_training(l).unwrap();
        let (devices, profile, ratios) = cluster_setup(4);
        let with =
            synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        let without = synthesize(
            &graph,
            &devices,
            &profile,
            &ratios,
            &SynthConfig { sfb: false, ..SynthConfig::default() },
        )
        .unwrap();
        assert!(with.estimated_time <= without.estimated_time + 1e-12);
    }

    #[test]
    fn zero_budget_still_returns_the_greedy_incumbent() {
        // With a zero expansion budget the A* cannot refine, but the greedy
        // descent still seeds a complete (if suboptimal) program.
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![64, 8]);
        let w = g.parameter("w", vec![8, 8]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_forward();
        let _ = (x, w, y, l);
        let (devices, profile, ratios) = cluster_setup(4);
        let q = synthesize(
            &graph,
            &devices,
            &profile,
            &ratios,
            &SynthConfig { max_expansions: 0, ..SynthConfig::default() },
        )
        .expect("greedy incumbent");
        assert!(q.is_complete(&graph));
    }

    #[test]
    fn zero_time_budget_returns_the_greedy_incumbent_without_spinning() {
        // Regression: the cooperative deadline flag must trip before the
        // first wave, so a 0-second budget degrades to the greedy program
        // instead of panicking or expanding states. Exercised at several
        // thread counts since the flag is shared across workers.
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![4096, 64]);
        let w = g.parameter("w", vec![64, 64]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_training(l).unwrap();
        let _ = (x, w, y, l);
        let (devices, profile, ratios) = cluster_setup(4);
        for threads in [1usize, 2, 8] {
            let t0 = Instant::now();
            let q = synthesize(
                &graph,
                &devices,
                &profile,
                &ratios,
                &SynthConfig { time_budget_secs: 0.0, threads, ..SynthConfig::default() },
            )
            .expect("greedy incumbent under zero budget");
            assert!(q.is_complete(&graph));
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "zero budget must not spin (threads={threads})"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_the_program() {
        // The full benchmark-suite determinism check lives in
        // tests/synthesis_determinism.rs; this is the fast unit-level gate.
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![8192, 128]);
        let w1 = g.parameter("w1", vec![128, 256]);
        let w2 = g.parameter("w2", vec![256, 64]);
        let labels = g.label("y", vec![8192]);
        let h = g.matmul(x, w1);
        let h = g.relu(h);
        let h = g.matmul(h, w2);
        let loss = g.cross_entropy(h, labels);
        let graph = g.build_training(loss).unwrap();
        let _ = (x, w1, w2, labels);
        let (devices, profile, ratios) = cluster_setup(4);
        let cfg = |threads: usize| SynthConfig {
            threads,
            time_budget_secs: 60.0,
            max_expansions: 1_500,
            ..SynthConfig::default()
        };
        let reference = synthesize(&graph, &devices, &profile, &ratios, &cfg(1)).unwrap();
        for threads in [2usize, 8] {
            let q = synthesize(&graph, &devices, &profile, &ratios, &cfg(threads)).unwrap();
            assert_eq!(q.fingerprint(), reference.fingerprint(), "threads={threads}");
            assert_eq!(
                q.estimated_time.to_bits(),
                reference.estimated_time.to_bits(),
                "threads={threads}"
            );
        }
    }
}
