//! A\*-based distributed program search (paper Sec. 4.3, Fig. 10).
//!
//! States are canonical property sets; the score of a partial program is
//! `cost + ecost`, where `cost` is the time of all closed stages plus the
//! running stage's per-device computation, and `ecost` is the admissible
//! remaining-work bound assuming infinite bandwidth and perfect balance.
//! Dominance pruning keeps, per property set, only the cheapest program
//! (the hash-map realization of Fig. 10 lines 9–14), and redundant
//! properties are dropped from states as soon as no live triple can use
//! them (Sec. 4.5, optimization 3).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

use hap_cluster::VirtualDevice;
use hap_collectives::CommProfile;
use hap_graph::Graph;

use crate::cost::{CostModel, ShardingRatios};
use crate::instr::{DistInstr, DistProgram};
use crate::property::PropSet;
use crate::theory::{Theory, TheoryOptions, Triple};

/// Synthesis options.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Maximum number of A\* expansions before giving up.
    pub max_expansions: usize,
    /// Optional beam width: when set, the open list is pruned to the best
    /// `N` states whenever it doubles past `N` (trades optimality for time).
    pub beam_width: Option<usize>,
    /// Wall-clock budget in seconds for the A\* refinement; when it runs
    /// out the best complete program found so far (at least the greedy
    /// incumbent) is returned.
    pub time_budget_secs: f64,
    /// Stop refining after this many expansions without improving the
    /// incumbent (diminishing-returns cutoff).
    pub stall_expansions: usize,
    /// Include grouped-Broadcast rules (ablation toggle "C", Fig. 15).
    pub grouped_broadcast: bool,
    /// Include the SFB-enabling replicated gradient rules (Sec. 4.4).
    pub sfb: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            max_expansions: 2_000_000,
            beam_width: Some(20_000),
            time_budget_secs: 5.0,
            stall_expansions: 5_000,
            grouped_broadcast: true,
            sfb: true,
        }
    }
}

/// Synthesis failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// The search space was exhausted without a complete program.
    NoProgram,
    /// The expansion budget ran out before completion.
    ExpansionLimit(usize),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::NoProgram => write!(f, "no semantically equivalent program exists"),
            SynthError::ExpansionLimit(n) => {
                write!(f, "expansion limit of {n} reached without a complete program")
            }
        }
    }
}

impl std::error::Error for SynthError {}

/// Persistent program list node (programs share prefixes).
struct ProgNode {
    instr: DistInstr,
    parent: Option<Rc<ProgNode>>,
}

struct State {
    props: PropSet,
    /// Time of closed stages plus nothing of the running stage.
    closed: f64,
    /// Per-device computation accumulated in the running stage.
    stage: Vec<f64>,
    /// Single-device flops of not-yet-produced compute nodes.
    remaining_flops: f64,
    /// Required outputs not yet produced.
    remaining_required: usize,
    program: Option<Rc<ProgNode>>,
}

impl State {
    fn cost(&self) -> f64 {
        self.closed + self.stage.iter().cloned().fold(0.0, f64::max)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    score: f64,
    seq: u64,
    idx: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on score (BinaryHeap is a max-heap, so reverse); ties go
        // to the newer state — a depth-first bias that reaches complete
        // programs (and therefore pruning bounds) quickly.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

const EPS: f64 = 1e-12;

/// Synthesizes the optimal distributed program for `graph` under sharding
/// ratios `ratios` on the given devices.
pub fn synthesize(
    graph: &Graph,
    devices: &[VirtualDevice],
    profile: &CommProfile,
    ratios: &ShardingRatios,
    config: &SynthConfig,
) -> Result<DistProgram, SynthError> {
    let theory = Theory::build_with(
        graph,
        TheoryOptions { grouped_broadcast: config.grouped_broadcast, sfb: config.sfb },
    );
    synthesize_with_theory(graph, &theory, devices, profile, ratios, config)
}

/// Synthesizes against a pre-built theory (lets callers reuse the theory
/// across iterations of the alternating optimization).
pub fn synthesize_with_theory(
    graph: &Graph,
    theory: &Theory,
    devices: &[VirtualDevice],
    profile: &CommProfile,
    ratios: &ShardingRatios,
    config: &SynthConfig,
) -> Result<DistProgram, SynthError> {
    let cm = CostModel::new(graph, devices, profile, ratios);
    let m = cm.num_devices();

    let total_remaining: f64 = graph
        .nodes()
        .iter()
        .filter(|n| !n.op.is_leaf() && theory.live[n.id])
        .map(|n| graph.node_flops(n.id))
        .sum();
    let required_count = theory.required.len();

    let mut states: Vec<State> = vec![State {
        props: PropSet::new(),
        closed: 0.0,
        stage: vec![0.0; m],
        remaining_flops: total_remaining,
        remaining_required: required_count,
        program: None,
    }];
    let mut best_by_key: HashMap<PropSet, f64> = HashMap::new();
    best_by_key.insert(states[0].props.clone(), 0.0);

    let mut open = BinaryHeap::new();
    open.push(HeapEntry { score: cm.best_case_seconds(total_remaining), seq: 0, idx: 0 });
    let mut seq = 1u64;

    // Seed the incumbent with a greedy descent: every later state whose
    // score cannot beat it is pruned, which bounds the exploration
    // (branch-and-bound on top of A*).
    let greedy_t0 = std::time::Instant::now();
    let mut best_complete: Option<(f64, Option<Rc<ProgNode>>)> =
        greedy_seed(&states[0], theory, &cm, graph);
    if std::env::var_os("HAP_SYNTH_DEBUG").is_some() {
        eprintln!(
            "greedy: {:?}, incumbent = {:?}",
            greedy_t0.elapsed(),
            best_complete.as_ref().map(|(c, _)| *c)
        );
    }
    let mut last_improvement = 0usize;
    let mut expansions = 0usize;
    let deadline = std::time::Instant::now()
        + std::time::Duration::from_secs_f64(config.time_budget_secs.max(0.0));

    let mut pops = 0usize;
    while let Some(entry) = open.pop() {
        pops += 1;
        if pops.is_multiple_of(256) && std::time::Instant::now() >= deadline {
            // Budget exhausted: fall back to the incumbent (paper-style
            // "seconds of overhead" guarantee).
            if let Some(done) = finish(best_complete.clone(), graph) {
                return Ok(done);
            }
            return Err(SynthError::ExpansionLimit(expansions));
        }
        if let Some((best_cost, _)) = &best_complete {
            if entry.score >= *best_cost - EPS {
                break; // A* optimality: no open state can beat the incumbent.
            }
            if expansions.saturating_sub(last_improvement) > config.stall_expansions {
                break; // diminishing returns: keep the incumbent
            }
        }
        // Stale check against the dominance map.
        {
            let s = &states[entry.idx];
            match best_by_key.get(&s.props) {
                Some(&c) if c < s.cost() - EPS => continue,
                _ => {}
            }
        }
        expansions += 1;
        if expansions > config.max_expansions {
            return finish(best_complete, graph)
                .ok_or(SynthError::ExpansionLimit(config.max_expansions));
        }

        for triple in &theory.triples {
            let cur = &states[entry.idx];
            if let Some(e) = triple.comm_node {
                if cur.props.is_communicated(e) {
                    continue;
                }
            }
            if !cur.props.contains_all(&triple.pre) {
                continue;
            }
            if triple.post.iter().all(|p| cur.props.contains(p)) {
                continue;
            }
            if let Some((best_cost, _)) = &best_complete {
                let (pcost, premaining) = preview(cur, triple, &cm, theory);
                if pcost + cm.best_case_seconds(premaining) >= *best_cost - EPS {
                    continue; // cannot beat the incumbent: skip without allocating
                }
            }
            let succ = apply(cur, triple, &cm, theory, graph);
            let cost = succ.cost();
            if let Some((best_cost, _)) = &best_complete {
                if cost >= *best_cost - EPS {
                    continue;
                }
            }
            if succ.remaining_required == 0 {
                best_complete = Some((cost, succ.program.clone()));
                last_improvement = expansions;
                continue;
            }
            match best_by_key.get(&succ.props) {
                Some(&c) if c <= cost + EPS => continue,
                _ => {}
            }
            let score = cost + cm.best_case_seconds(succ.remaining_flops);
            if let Some((best_cost, _)) = &best_complete {
                if score >= *best_cost - EPS {
                    continue; // admissible score cannot beat the incumbent
                }
            }
            best_by_key.insert(succ.props.clone(), cost);
            let idx = states.len();
            states.push(succ);
            open.push(HeapEntry { score, seq, idx });
            seq += 1;
        }

        if let Some(beam) = config.beam_width {
            if open.len() > beam * 2 {
                let mut kept: Vec<HeapEntry> = Vec::with_capacity(beam);
                for _ in 0..beam {
                    match open.pop() {
                        Some(e) => kept.push(e),
                        None => break,
                    }
                }
                open = BinaryHeap::from(kept);
            }
        }
    }

    finish(best_complete, graph).ok_or(SynthError::NoProgram)
}

/// Greedy descent to an initial complete program: from the empty state,
/// repeatedly apply the successor with the best score. Returns `None` when
/// the descent stalls (the A\* then runs unseeded).
fn greedy_seed(
    initial: &State,
    theory: &Theory,
    cm: &CostModel,
    graph: &Graph,
) -> Option<(f64, Option<Rc<ProgNode>>)> {
    let mut cur = clone_state(initial);
    let mut seen_keys: Vec<PropSet> = Vec::new();
    let debug = std::env::var_os("HAP_SYNTH_DEBUG").is_some();
    let mut trace: Vec<String> = Vec::new();
    for _ in 0..graph.len().saturating_mul(8).max(64) {
        if cur.remaining_required == 0 {
            return Some((cur.cost(), cur.program));
        }
        // Progress-first: prefer the cheapest successor that produces a
        // node not yet computed; only when none applies fall back to
        // "filler" moves (collectives and alternative placements) that can
        // unblock one. Candidates are scored with the cheap preview; only
        // the winner's state is constructed.
        let mut best_progress: Option<(f64, &Triple)> = None;
        let mut best_filler: Option<(f64, &Triple)> = None;
        for triple in &theory.triples {
            if let Some(e) = triple.comm_node {
                if cur.props.is_communicated(e) {
                    continue;
                }
            }
            if !cur.props.contains_all(&triple.pre) {
                continue;
            }
            if triple.post.iter().all(|p| cur.props.contains(p)) {
                continue;
            }
            let progress = theory.live[triple.output] && !cur.props.has_node(triple.output);
            if !progress && best_progress.is_some() {
                continue; // filler can't win once progress exists
            }
            let (pcost, premaining) = preview(&cur, triple, cm, theory);
            let score = pcost + cm.best_case_seconds(premaining);
            if progress {
                if best_progress.as_ref().is_none_or(|(bs, _)| score < *bs) {
                    best_progress = Some((score, triple));
                }
            } else {
                let cheaper = best_filler.as_ref().is_none_or(|(bs, _)| score < *bs);
                if cheaper {
                    let succ = apply(&cur, triple, cm, theory, graph);
                    // One-step lookahead: a filler is only useful if it
                    // unblocks the computation of an unproduced node.
                    if !seen_keys.contains(&succ.props) && enables_progress(&succ, theory) {
                        best_filler = Some((score, triple));
                    }
                }
            }
        }
        let next = match best_progress.or(best_filler) {
            Some((_, triple)) => apply(&cur, triple, cm, theory, graph),
            None => {
                if debug {
                    eprintln!(
                        "greedy stalled: {} required outputs missing; props = {:?}",
                        cur.remaining_required,
                        cur.props.props()
                    );
                }
                return None;
            }
        };
        if debug {
            if let Some(pn) = &next.program {
                trace.push(format!("{:?}", pn.instr));
            }
        }
        seen_keys.push(next.props.clone());
        cur = next;
    }
    if debug {
        eprintln!(
            "greedy ran out of steps: {} required missing, {} props",
            cur.remaining_required,
            cur.props.len()
        );
        eprintln!(
            "missing required: {:?}",
            theory.required.iter().filter(|&&r| !cur.props.has_node(r)).collect::<Vec<_>>()
        );
        for (i, line) in trace.iter().enumerate() {
            eprintln!("  step {i}: {line}");
        }
    }
    None
}

/// True if some not-yet-produced node's triple becomes applicable in `s`.
fn enables_progress(s: &State, theory: &Theory) -> bool {
    theory.triples.iter().any(|t| {
        theory.live[t.output]
            && !s.props.has_node(t.output)
            && t.comm_node.is_none_or(|e| !s.props.is_communicated(e))
            && s.props.contains_all(&t.pre)
    })
}

fn clone_state(s: &State) -> State {
    State {
        props: s.props.clone(),
        closed: s.closed,
        stage: s.stage.clone(),
        remaining_flops: s.remaining_flops,
        remaining_required: s.remaining_required,
        program: s.program.clone(),
    }
}

/// Cheaply previews the cost and remaining-work bound of applying a triple,
/// without constructing the successor state.
fn preview(cur: &State, triple: &Triple, cm: &CostModel, theory: &Theory) -> (f64, f64) {
    let mut closed = cur.closed;
    let mut stage_max = cur.stage.iter().cloned().fold(0.0, f64::max);
    // Per-device stage vector is only needed when computes follow a
    // collective inside one triple; triples hold at most one collective.
    let mut stage = None::<Vec<f64>>;
    for instr in &triple.instrs {
        match instr {
            DistInstr::Leaf { .. } => {}
            DistInstr::Compute { node, rule } => {
                let per_dev = cm.compute_seconds(*node, rule);
                let base = stage.get_or_insert_with(|| cur.stage.clone());
                for (s, d) in base.iter_mut().zip(per_dev.iter()) {
                    *s += d;
                }
                stage_max = base.iter().cloned().fold(0.0, f64::max);
            }
            DistInstr::Collective { node, kind } => {
                closed += stage_max + cm.collective_seconds(*node, kind);
                stage = Some(vec![0.0; cur.stage.len()]);
                stage_max = 0.0;
            }
        }
    }
    let mut remaining = cur.remaining_flops;
    for &(n, _) in &triple.post {
        if !cur.props.has_node(n) && theory.live[n] {
            remaining = (remaining - cm.node_flops(n)).max(0.0);
        }
    }
    (closed + stage_max, remaining)
}

/// Applies a triple to a state, producing the successor.
fn apply(cur: &State, triple: &Triple, cm: &CostModel, theory: &Theory, graph: &Graph) -> State {
    let mut props = cur.props.clone();
    let mut closed = cur.closed;
    let mut stage = cur.stage.clone();
    let mut remaining_flops = cur.remaining_flops;
    let mut remaining_required = cur.remaining_required;
    let mut program = cur.program.clone();

    for instr in &triple.instrs {
        match instr {
            DistInstr::Leaf { node, placement } => {
                // Re-materializing an already-available leaf is skipped.
                if props.contains(&(*node, *placement)) {
                    continue;
                }
                program = Some(Rc::new(ProgNode { instr: instr.clone(), parent: program }));
            }
            DistInstr::Compute { node, rule } => {
                let per_dev = cm.compute_seconds(*node, rule);
                for (s, d) in stage.iter_mut().zip(per_dev.iter()) {
                    *s += d;
                }
                program = Some(Rc::new(ProgNode { instr: instr.clone(), parent: program }));
            }
            DistInstr::Collective { node, kind } => {
                // A collective closes the running stage (paper Fig. 6).
                closed += stage.iter().cloned().fold(0.0, f64::max);
                stage.iter_mut().for_each(|s| *s = 0.0);
                closed += cm.collective_seconds(*node, kind);
                props.mark_communicated(*node);
                program = Some(Rc::new(ProgNode { instr: instr.clone(), parent: program }));
            }
        }
    }

    for &p in &triple.post {
        let newly_produced = !props.has_node(p.0);
        if props.insert(p) && newly_produced {
            if !graph.node(p.0).op.is_leaf() && theory.live[p.0] {
                remaining_flops = (remaining_flops - cm.node_flops(p.0)).max(0.0);
            }
            if theory.required.contains(&p.0) {
                remaining_required = remaining_required.saturating_sub(1);
            }
        }
    }

    State { props, closed, stage, remaining_flops, remaining_required, program }
}

/// Converts the winning linked program into a `DistProgram`.
fn finish(best: Option<(f64, Option<Rc<ProgNode>>)>, _graph: &Graph) -> Option<DistProgram> {
    let (cost, chain) = best?;
    let mut instrs = Vec::new();
    let mut cur = chain;
    while let Some(node) = cur {
        instrs.push(node.instr.clone());
        cur = node.parent.clone();
    }
    instrs.reverse();
    Some(DistProgram { instrs, estimated_time: cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_cluster::{ClusterSpec, Granularity};
    use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
    use hap_graph::{GraphBuilder, Placement, Role};

    fn cluster_setup(m: usize) -> (Vec<VirtualDevice>, CommProfile, ShardingRatios) {
        let cluster = match m {
            4 => ClusterSpec::fig17_cluster(),
            _ => ClusterSpec::paper_heterogeneous(1),
        };
        let devices = cluster.virtual_devices(Granularity::PerGpu);
        let profile =
            profile_collectives(&GroundTruthNet::new(NetworkParams::paper_cloud()), devices.len());
        let ratios = vec![cluster.proportional_ratios(Granularity::PerGpu)];
        (devices, profile, ratios)
    }

    #[test]
    fn fig11_example_synthesizes_data_parallelism() {
        // loss = sum(x . w): the classic result is x sharded on batch, w
        // replicated, no communication at all (loss stays partial).
        let mut g = GraphBuilder::new();
        let x = g.placeholder("e1", vec![4096, 1024]);
        let w = g.parameter("e2", vec![1024, 512]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_forward();
        let (devices, profile, ratios) = cluster_setup(4);
        let q = synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        assert!(q.is_complete(&graph));
        assert_eq!(q.collective_count(), 0, "program: {}", q.listing(&graph));
        // x must be shard-materialized on its batch dimension.
        assert!(q.instrs.iter().any(|i| matches!(
            i,
            DistInstr::Leaf { node, placement: Placement::Shard(0) } if *node == x
        )));
        let _ = (y, l);
    }

    #[test]
    fn training_iteration_synchronizes_gradients() {
        // With a big batch and a small model, replicating the forward pass is
        // far too expensive, so the optimal program shards the batch — and
        // then the weight gradient must be aggregated: expect at least one
        // collective (all-reduce or reduce-scatter).
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![262144, 256]);
        let w = g.parameter("w", vec![256, 256]);
        let labels = g.label("y", vec![262144]);
        let h = g.matmul(x, w);
        let loss = g.cross_entropy(h, labels);
        let _ = x;
        let graph = g.build_training(loss).unwrap();
        let (devices, profile, ratios) = cluster_setup(4);
        let q = synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        assert!(q.is_complete(&graph), "program:\n{}", q.listing(&graph));
        assert!(
            q.collective_count() >= 1,
            "gradient sync requires communication:\n{}",
            q.listing(&graph)
        );
        // Every required output is produced.
        for o in graph.required_outputs() {
            assert!(q
                .instrs
                .iter()
                .any(|i| matches!(i, DistInstr::Compute { node, .. } if *node == o)));
        }
    }

    #[test]
    fn tiny_batch_prefers_sfb() {
        // Fig. 5: with a small global batch, gathering the sufficient factors
        // (activations + output grads) is cheaper than all-reducing the
        // f x h gradient. Make f, h huge and b tiny.
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![8, 4096]);
        let w = g.parameter("w", vec![4096, 4096]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_training(l).unwrap();
        let (devices, profile, ratios) = cluster_setup(4);
        let q = synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        // The gradient of w must NOT be all-reduced; instead the factors are
        // gathered and the gradient computed replicated.
        let grad_w_node = graph
            .nodes()
            .iter()
            .find(|n| {
                n.role == Role::Grad && matches!(n.op, hap_graph::Op::MatMul2 { ta: true, .. })
            })
            .map(|n| n.id)
            .expect("weight gradient node");
        let allreduced_grad = q.instrs.iter().any(|i| {
            matches!(i, DistInstr::Collective { node, kind: crate::CollectiveInstr::AllReduce } if *node == grad_w_node)
        });
        assert!(
            !allreduced_grad,
            "SFB should avoid all-reducing the huge gradient:\n{}",
            q.listing(&graph)
        );
        let _ = (x, w, y, l);
    }

    #[test]
    fn disabling_sfb_changes_the_plan() {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![8, 4096]);
        let w = g.parameter("w", vec![4096, 4096]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_training(l).unwrap();
        let (devices, profile, ratios) = cluster_setup(4);
        let with =
            synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        let without = synthesize(
            &graph,
            &devices,
            &profile,
            &ratios,
            &SynthConfig { sfb: false, ..SynthConfig::default() },
        )
        .unwrap();
        assert!(with.estimated_time <= without.estimated_time + 1e-12);
    }

    #[test]
    fn zero_budget_still_returns_the_greedy_incumbent() {
        // With a zero expansion budget the A* cannot refine, but the greedy
        // descent still seeds a complete (if suboptimal) program.
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![64, 8]);
        let w = g.parameter("w", vec![8, 8]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_forward();
        let _ = (x, w, y, l);
        let (devices, profile, ratios) = cluster_setup(4);
        let q = synthesize(
            &graph,
            &devices,
            &profile,
            &ratios,
            &SynthConfig { max_expansions: 0, ..SynthConfig::default() },
        )
        .expect("greedy incumbent");
        assert!(q.is_complete(&graph));
    }
}
