//! Distributed program synthesis for HAP (paper Sec. 4).
//!
//! Given a single-device computation graph, sharding ratios `B`, and the
//! profiled cluster, this crate synthesizes — from scratch, on a distributed
//! instruction set — a program that emulates the single-device program and
//! minimizes estimated per-iteration time:
//!
//! 1. a background theory `T` of Hoare triples is derived from the graph's
//!    per-op placement rules ([`theory`], paper Sec. 4.2 / Fig. 9),
//!    including the grouped-Broadcast alternative and the replicated-compute
//!    rule that enables sufficient factor broadcasting (Sec. 4.4);
//! 2. an A\*-based search explores (possibly incomplete) programs, scoring
//!    them with `cost + ecost` and pruning dominated property sets
//!    ([`astar`], paper Sec. 4.3 / Fig. 10);
//! 3. the three search-time optimizations of Sec. 4.5 keep the search
//!    tractable: empty-precondition triple fusion, at-most-one communication
//!    per reference tensor, and redundant-property removal;
//! 4. the search itself runs in parallel waves across a scoped thread pool
//!    ([`SynthConfig::threads`]), with results guaranteed bit-for-bit
//!    identical for every thread count: each wave's candidates are merged
//!    in a stable `(score, cost, program fingerprint)` order before any
//!    state commits to the dominance map, incumbent, or frontier;
//! 5. the expansion inner loop is O(1)-lookup and allocation-free: every
//!    cost is a read from dense precomputed [`CostTables`], states carry
//!    hash-consed property sets ([`PropInterner`]) so cloning is an integer
//!    copy and dominance keys are `u32` ids, and the alternating Q/B loop
//!    can seed each round's incumbent with the previous round's program
//!    ([`synthesize_with_theory_warm`]).
//!
//! # Examples
//!
//! ```
//! use hap_graph::GraphBuilder;
//! use hap_cluster::{ClusterSpec, Granularity};
//! use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
//! use hap_synthesis::{synthesize, SynthConfig};
//!
//! // Paper Fig. 11: loss = sum(matmul(placeholder, parameter)).
//! let mut g = GraphBuilder::new();
//! let x = g.placeholder("x", vec![64, 32]);
//! let w = g.parameter("w", vec![32, 16]);
//! let y = g.matmul(x, w);
//! let loss = g.sum_all(y);
//! let graph = g.build_training(loss).unwrap();
//!
//! let cluster = ClusterSpec::fig17_cluster();
//! let devices = cluster.virtual_devices(Granularity::PerGpu);
//! let profile = profile_collectives(&GroundTruthNet::new(NetworkParams::paper_cloud()), 4);
//! let ratios = vec![cluster.proportional_ratios(Granularity::PerGpu)];
//! let q = synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
//! assert!(q.is_complete(&graph));
//! ```

mod astar;
mod cost;
mod instr;
mod property;
mod theory;

pub use astar::{
    synthesize, synthesize_with_theory, synthesize_with_theory_profiled,
    synthesize_with_theory_warm, HotPathBench, SynthConfig, SynthError, SynthProfile,
};
pub use cost::{CostModel, CostTables, ShardingRatios, LAUNCH_OVERHEAD};
pub use instr::fingerprint;
pub use instr::{CollectiveInstr, DistInstr, DistProgram, ProgChain, Stage};
pub use property::{InternedProps, Prop, PropInterner, PropSet};
pub use theory::{Theory, TheoryOptions, Triple};
