//! Instruction-level cost evaluation for the synthesizer (paper Sec. 3.2).

use hap_cluster::VirtualDevice;
use hap_collectives::{CollKind, CommProfile};
use hap_graph::{CompScaling, Graph, NodeId, Rule};

use crate::instr::CollectiveInstr;

/// Number of cost-distinct collective categories (see [`coll_variant`]).
const COLL_VARIANTS: usize = 5;

/// Dense index of the cost category a collective falls into.
///
/// [`CostModel::collective_seconds`] depends on the instruction only through
/// its category — the shard dimensions of `AllGather`/`ReduceScatter`/
/// `AllToAll` never enter the estimate (the governing byte count is the
/// node's largest shard regardless of which dimension is cut), so one table
/// cell per `(node, category)` covers every `CollectiveInstr` variant. The
/// `cost_tables_match_cost_model` property test pins this invariant.
#[inline]
fn coll_variant(kind: &CollectiveInstr) -> usize {
    match kind {
        CollectiveInstr::AllReduce => 0,
        CollectiveInstr::AllGather { grouped: false, .. } => 1,
        CollectiveInstr::AllGather { grouped: true, .. } => 2,
        CollectiveInstr::ReduceScatter { .. } => 3,
        CollectiveInstr::AllToAll { .. } => 4,
    }
}

#[inline]
fn scaling_index(scaling: CompScaling) -> usize {
    match scaling {
        CompScaling::Sharded => 0,
        CompScaling::Replicated => 1,
    }
}

/// Per-segment, per-device sharding ratios `B` (the `g x m` matrix of paper
/// Sec. 5.2; single-segment models use one row).
pub type ShardingRatios = Vec<Vec<f64>>;

/// Evaluates per-device computation times and collective times for a fixed
/// graph, cluster and sharding-ratio matrix.
pub struct CostModel<'a> {
    graph: &'a Graph,
    device_flops: Vec<f64>,
    profile: &'a CommProfile,
    ratios: &'a ShardingRatios,
    total_flops: f64,
    /// Seconds per byte for the three-step intra-machine aggregation when a
    /// virtual device is a whole machine (paper Sec. 6); zero for single-GPU
    /// virtual devices.
    intra_sec_per_byte: f64,
}

/// Per-kernel launch overhead priced into every computation (matches the
/// simulator's default; real schedulers pay this per op too).
pub const LAUNCH_OVERHEAD: f64 = 8e-6;

// Expansion workers of the wave-parallel search evaluate costs concurrently
// through a shared borrow; this guard fails to compile if the model (or the
// graph/profile it references) ever gains interior mutability.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CostModel<'static>>()
};

impl<'a> CostModel<'a> {
    /// Creates a cost model.
    ///
    /// # Panics
    ///
    /// Panics if `ratios` is empty or a row's length differs from the device
    /// count — both are programming errors in the optimization loop.
    pub fn new(
        graph: &'a Graph,
        devices: &[VirtualDevice],
        profile: &'a CommProfile,
        ratios: &'a ShardingRatios,
    ) -> Self {
        assert!(!ratios.is_empty(), "need at least one ratio row");
        for row in ratios {
            assert_eq!(row.len(), devices.len(), "ratio row width != device count");
        }
        let device_flops: Vec<f64> = devices.iter().map(|d| d.flops).collect();
        let total_flops = device_flops.iter().sum();
        // Gather/Reduce to GPU 0 before the global collective, then
        // Scatter/Broadcast back: two intra-machine traversals.
        let intra_sec_per_byte = devices
            .iter()
            .filter(|d| d.gpus > 1 && d.intra_bandwidth.is_finite())
            .map(|d| 2.0 / d.intra_bandwidth)
            .fold(0.0, f64::max);
        CostModel { graph, device_flops, profile, ratios, total_flops, intra_sec_per_byte }
    }

    /// Seconds per byte of the hierarchical intra-machine aggregation.
    pub fn intra_sec_per_byte(&self) -> f64 {
        self.intra_sec_per_byte
    }

    /// Number of virtual devices.
    pub fn num_devices(&self) -> usize {
        self.device_flops.len()
    }

    /// The ratio row governing a node (its segment, clamped to the matrix).
    pub fn ratio_row(&self, node: NodeId) -> &[f64] {
        let seg = self.graph.node(node).segment.min(self.ratios.len() - 1);
        &self.ratios[seg]
    }

    /// Per-device seconds added by computing `node` under `rule`.
    pub fn compute_seconds(&self, node: NodeId, rule: &Rule) -> Vec<f64> {
        let mut out = vec![0.0; self.device_flops.len()];
        self.compute_seconds_into(node, rule.comp_scaling(), &mut out);
        out
    }

    /// Fills `out` with the per-device seconds of computing `node` under the
    /// given scaling, without allocating. This is the single arithmetic code
    /// path shared by [`CostModel::compute_seconds`], the [`CostTables`]
    /// builder, and the balancer's whole-program estimator, so their values
    /// are bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the device count.
    pub fn compute_seconds_into(&self, node: NodeId, scaling: CompScaling, out: &mut [f64]) {
        assert_eq!(out.len(), self.device_flops.len(), "output width != device count");
        let flops = self.graph.node_flops(node);
        match scaling {
            CompScaling::Replicated => {
                for (o, &f) in out.iter_mut().zip(self.device_flops.iter()) {
                    *o = LAUNCH_OVERHEAD + flops / f;
                }
            }
            CompScaling::Sharded => {
                let row = self.ratio_row(node);
                for ((o, &f), &b) in out.iter_mut().zip(self.device_flops.iter()).zip(row.iter()) {
                    *o = LAUNCH_OVERHEAD + flops * b / f;
                }
            }
        }
    }

    /// Estimated seconds of a collective on `node`'s distributed tensor.
    pub fn collective_seconds(&self, node: NodeId, kind: &CollectiveInstr) -> f64 {
        let bytes = self.graph.node_bytes(node) as f64;
        let max_ratio =
            self.ratio_row(node).iter().cloned().fold(0.0, f64::max).max(f64::MIN_POSITIVE);
        let intra = bytes * self.intra_sec_per_byte;
        intra
            + match kind {
                CollectiveInstr::AllReduce => {
                    self.profile.estimate(CollKind::AllReduce, bytes, bytes)
                }
                CollectiveInstr::AllGather { grouped: false, .. } => {
                    self.profile.estimate(CollKind::AllGatherPadded, bytes * max_ratio, bytes)
                }
                CollectiveInstr::AllGather { grouped: true, .. } => {
                    self.profile.estimate(CollKind::GroupedBroadcast, bytes * max_ratio, bytes)
                }
                CollectiveInstr::ReduceScatter { .. } => {
                    self.profile.estimate(CollKind::ReduceScatter, bytes * max_ratio, bytes)
                }
                CollectiveInstr::AllToAll { .. } => {
                    self.profile.estimate(CollKind::AllToAll, bytes * max_ratio, bytes)
                }
            }
    }

    /// Admissible lower bound on the remaining time to compute `flops` more
    /// work: perfect load balance across the whole cluster with free
    /// communication (the paper's infinite-bandwidth `ecost`).
    pub fn best_case_seconds(&self, flops: f64) -> f64 {
        flops / self.total_flops
    }

    /// Single-device flops of a node (re-exported for the search).
    pub fn node_flops(&self, node: NodeId) -> f64 {
        self.graph.node_flops(node)
    }

    /// Number of graph nodes (the row count of [`CostTables`]).
    pub fn num_nodes(&self) -> usize {
        self.graph.len()
    }
}

/// Precomputed dense cost tables for one `(graph, cluster, ratios)` triple.
///
/// The A\* inner loop evaluates `CostModel::compute_seconds` for the same
/// handful of `(node, scaling)` pairs millions of times per synthesis call,
/// allocating a fresh `Vec<f64>` each time; collectives similarly recompute
/// the profile estimate per expansion. `CostTables` folds the whole ratio
/// matrix into two flat arrays once per [`synthesize_with_theory`] call —
/// after that, every cost the search needs is a bounds-checked slice read:
///
/// * `compute_row(node, scaling)` — the per-device seconds of computing
///   `node` under a sharded or replicated rule (`2 × nodes` rows of `m`).
/// * `collective_secs(node, kind)` — the stage-closing collective estimate
///   (`5` cost-distinct categories per node, see [`coll_variant`]).
///
/// Every cell is produced by the same `CostModel` arithmetic it replaces
/// ([`CostModel::compute_seconds_into`] / [`CostModel::collective_seconds`]),
/// so lookups are bit-identical to direct evaluation — the property tests in
/// `tests/cost_table_props.rs` assert this across random clusters, ratio
/// matrices, and every `CollectiveInstr` variant.
///
/// [`synthesize_with_theory`]: crate::synthesize_with_theory
#[derive(Debug)]
pub struct CostTables {
    /// Devices per row.
    m: usize,
    /// `[(node * 2 + scaling_index) * m ..][..m]`: per-device compute seconds.
    comp: Vec<f64>,
    /// `[node * COLL_VARIANTS + coll_variant]`: collective seconds.
    coll: Vec<f64>,
    /// Single-device flops per node.
    node_flops: Vec<f64>,
    /// Aggregate cluster flops (denominator of the admissible bound).
    total_flops: f64,
}

// Shared read-only by every expansion worker of the wave-parallel search.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CostTables>()
};

impl CostTables {
    /// Builds the dense tables by evaluating `cm` once per cell.
    pub fn build(cm: &CostModel) -> Self {
        let m = cm.num_devices();
        let nodes = cm.num_nodes();
        let mut comp = vec![0.0; nodes * 2 * m];
        for node in 0..nodes {
            for scaling in [CompScaling::Sharded, CompScaling::Replicated] {
                let start = (node * 2 + scaling_index(scaling)) * m;
                cm.compute_seconds_into(node, scaling, &mut comp[start..start + m]);
            }
        }
        // One representative instruction per category: the estimate ignores
        // shard dimensions (see `coll_variant`), so dim 0 stands for all.
        let categories = [
            CollectiveInstr::AllReduce,
            CollectiveInstr::AllGather { dim: 0, grouped: false },
            CollectiveInstr::AllGather { dim: 0, grouped: true },
            CollectiveInstr::ReduceScatter { dim: 0 },
            CollectiveInstr::AllToAll { from: 0, to: 1 },
        ];
        let mut coll = vec![0.0; nodes * COLL_VARIANTS];
        for node in 0..nodes {
            for kind in &categories {
                coll[node * COLL_VARIANTS + coll_variant(kind)] = cm.collective_seconds(node, kind);
            }
        }
        let node_flops = (0..nodes).map(|n| cm.node_flops(n)).collect();
        CostTables { m, comp, coll, node_flops, total_flops: cm.total_flops }
    }

    /// Number of virtual devices (the width of every compute row).
    pub fn num_devices(&self) -> usize {
        self.m
    }

    /// Per-device seconds of computing `node` under the given scaling.
    #[inline]
    pub fn compute_row(&self, node: NodeId, scaling: CompScaling) -> &[f64] {
        let start = (node * 2 + scaling_index(scaling)) * self.m;
        &self.comp[start..start + self.m]
    }

    /// Per-device seconds of computing `node` under `rule`.
    #[inline]
    pub fn compute_row_for(&self, node: NodeId, rule: &Rule) -> &[f64] {
        self.compute_row(node, rule.comp_scaling())
    }

    /// Seconds of running `kind` on `node`'s distributed tensor.
    #[inline]
    pub fn collective_secs(&self, node: NodeId, kind: &CollectiveInstr) -> f64 {
        self.coll[node * COLL_VARIANTS + coll_variant(kind)]
    }

    /// Admissible remaining-work bound (identical to
    /// [`CostModel::best_case_seconds`]).
    #[inline]
    pub fn best_case_seconds(&self, flops: f64) -> f64 {
        flops / self.total_flops
    }

    /// Single-device flops of a node.
    #[inline]
    pub fn node_flops(&self, node: NodeId) -> f64 {
        self.node_flops[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_cluster::{ClusterSpec, Granularity};
    use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
    use hap_graph::{GraphBuilder, Placement};

    fn setup() -> (Graph, Vec<VirtualDevice>, CommProfile) {
        // The matmul output (node 2) is 64 MB so that bandwidth, not message
        // latency, dominates the collective estimates under test.
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![16384, 32]);
        let w = g.parameter("w", vec![32, 1024]);
        let y = g.matmul(x, w);
        let _ = g.sum_all(y);
        let graph = g.build_forward();
        let cluster = ClusterSpec::fig17_cluster();
        let devices = cluster.virtual_devices(Granularity::PerGpu);
        let profile =
            profile_collectives(&GroundTruthNet::new(NetworkParams::paper_cloud()), devices.len());
        (graph, devices, profile)
    }

    #[test]
    fn sharded_compute_scales_with_ratio() {
        let (graph, devices, profile) = setup();
        let ratios = vec![vec![0.4, 0.4, 0.1, 0.1]];
        let cm = CostModel::new(&graph, &devices, &profile, &ratios);
        let rule = Rule::new(vec![Placement::Shard(0), Placement::Replicated], Placement::Shard(0));
        let secs = cm.compute_seconds(2, &rule);
        // Device 0 (A100, ratio 0.4) does 4x the flops of device 2 (P100, 0.1)
        // at ~2.6x the speed: it must take longer.
        assert!(secs[0] > secs[2]);
    }

    #[test]
    fn replicated_compute_ignores_ratios() {
        let (graph, devices, profile) = setup();
        let ratios = vec![vec![0.7, 0.1, 0.1, 0.1]];
        let cm = CostModel::new(&graph, &devices, &profile, &ratios);
        let rule =
            Rule::new(vec![Placement::Replicated, Placement::Replicated], Placement::Replicated);
        let secs = cm.compute_seconds(2, &rule);
        assert!((secs[0] - secs[1]).abs() < 1e-15, "same device type, same time");
        assert!(secs[2] > secs[0], "P100 slower than A100 on the full op");
    }

    #[test]
    fn skewed_ratios_make_grouped_broadcast_win() {
        let (graph, devices, profile) = setup();
        let even = vec![vec![0.25; 4]];
        let skewed = vec![vec![0.94, 0.02, 0.02, 0.02]];
        let cm_even = CostModel::new(&graph, &devices, &profile, &even);
        let cm_skew = CostModel::new(&graph, &devices, &profile, &skewed);
        let padded = CollectiveInstr::AllGather { dim: 0, grouped: false };
        let grouped = CollectiveInstr::AllGather { dim: 0, grouped: true };
        assert!(cm_even.collective_seconds(2, &padded) < cm_even.collective_seconds(2, &grouped));
        assert!(cm_skew.collective_seconds(2, &grouped) < cm_skew.collective_seconds(2, &padded));
    }

    #[test]
    fn tables_match_direct_evaluation_bitwise() {
        let (graph, devices, profile) = setup();
        let ratios = vec![vec![0.4, 0.3, 0.2, 0.1]];
        let cm = CostModel::new(&graph, &devices, &profile, &ratios);
        let tables = CostTables::build(&cm);
        let sharded =
            Rule::new(vec![Placement::Shard(0), Placement::Replicated], Placement::Shard(0));
        let replicated =
            Rule::new(vec![Placement::Replicated, Placement::Replicated], Placement::Replicated);
        for node in 0..graph.len() {
            for rule in [&sharded, &replicated] {
                let direct = cm.compute_seconds(node, rule);
                let row = tables.compute_row_for(node, rule);
                assert_eq!(row.len(), direct.len());
                for (a, b) in row.iter().zip(direct.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "node {node}");
                }
            }
            for kind in [
                CollectiveInstr::AllReduce,
                CollectiveInstr::AllGather { dim: 1, grouped: false },
                CollectiveInstr::AllGather { dim: 1, grouped: true },
                CollectiveInstr::ReduceScatter { dim: 1 },
                CollectiveInstr::AllToAll { from: 1, to: 0 },
            ] {
                assert_eq!(
                    tables.collective_secs(node, &kind).to_bits(),
                    cm.collective_seconds(node, &kind).to_bits(),
                    "node {node} kind {kind:?}"
                );
            }
            assert_eq!(
                tables.node_flops(node).to_bits(),
                cm.node_flops(node).to_bits(),
                "node {node}"
            );
        }
        assert_eq!(tables.best_case_seconds(1e9).to_bits(), cm.best_case_seconds(1e9).to_bits());
    }

    #[test]
    fn compute_seconds_into_matches_allocating_path() {
        let (graph, devices, profile) = setup();
        let ratios = vec![vec![0.25; 4]];
        let cm = CostModel::new(&graph, &devices, &profile, &ratios);
        let rule = Rule::new(vec![Placement::Shard(0), Placement::Replicated], Placement::Shard(0));
        let direct = cm.compute_seconds(2, &rule);
        let mut buf = vec![f64::NAN; 4];
        cm.compute_seconds_into(2, rule.comp_scaling(), &mut buf);
        assert_eq!(
            buf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn best_case_uses_aggregate_flops() {
        let (graph, devices, profile) = setup();
        let ratios = vec![vec![0.25; 4]];
        let cm = CostModel::new(&graph, &devices, &profile, &ratios);
        let total: f64 = devices.iter().map(|d| d.flops).sum();
        assert!((cm.best_case_seconds(total) - 1.0).abs() < 1e-12);
    }
}
