//! Instruction-level cost evaluation for the synthesizer (paper Sec. 3.2).

use hap_cluster::VirtualDevice;
use hap_collectives::{CollKind, CommProfile};
use hap_graph::{CompScaling, Graph, NodeId, Rule};

use crate::instr::CollectiveInstr;

/// Per-segment, per-device sharding ratios `B` (the `g x m` matrix of paper
/// Sec. 5.2; single-segment models use one row).
pub type ShardingRatios = Vec<Vec<f64>>;

/// Evaluates per-device computation times and collective times for a fixed
/// graph, cluster and sharding-ratio matrix.
pub struct CostModel<'a> {
    graph: &'a Graph,
    device_flops: Vec<f64>,
    profile: &'a CommProfile,
    ratios: &'a ShardingRatios,
    total_flops: f64,
    /// Seconds per byte for the three-step intra-machine aggregation when a
    /// virtual device is a whole machine (paper Sec. 6); zero for single-GPU
    /// virtual devices.
    intra_sec_per_byte: f64,
}

/// Per-kernel launch overhead priced into every computation (matches the
/// simulator's default; real schedulers pay this per op too).
pub const LAUNCH_OVERHEAD: f64 = 8e-6;

// Expansion workers of the wave-parallel search evaluate costs concurrently
// through a shared borrow; this guard fails to compile if the model (or the
// graph/profile it references) ever gains interior mutability.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CostModel<'static>>()
};

impl<'a> CostModel<'a> {
    /// Creates a cost model.
    ///
    /// # Panics
    ///
    /// Panics if `ratios` is empty or a row's length differs from the device
    /// count — both are programming errors in the optimization loop.
    pub fn new(
        graph: &'a Graph,
        devices: &[VirtualDevice],
        profile: &'a CommProfile,
        ratios: &'a ShardingRatios,
    ) -> Self {
        assert!(!ratios.is_empty(), "need at least one ratio row");
        for row in ratios {
            assert_eq!(row.len(), devices.len(), "ratio row width != device count");
        }
        let device_flops: Vec<f64> = devices.iter().map(|d| d.flops).collect();
        let total_flops = device_flops.iter().sum();
        // Gather/Reduce to GPU 0 before the global collective, then
        // Scatter/Broadcast back: two intra-machine traversals.
        let intra_sec_per_byte = devices
            .iter()
            .filter(|d| d.gpus > 1 && d.intra_bandwidth.is_finite())
            .map(|d| 2.0 / d.intra_bandwidth)
            .fold(0.0, f64::max);
        CostModel { graph, device_flops, profile, ratios, total_flops, intra_sec_per_byte }
    }

    /// Seconds per byte of the hierarchical intra-machine aggregation.
    pub fn intra_sec_per_byte(&self) -> f64 {
        self.intra_sec_per_byte
    }

    /// Number of virtual devices.
    pub fn num_devices(&self) -> usize {
        self.device_flops.len()
    }

    /// The ratio row governing a node (its segment, clamped to the matrix).
    pub fn ratio_row(&self, node: NodeId) -> &[f64] {
        let seg = self.graph.node(node).segment.min(self.ratios.len() - 1);
        &self.ratios[seg]
    }

    /// Per-device seconds added by computing `node` under `rule`.
    pub fn compute_seconds(&self, node: NodeId, rule: &Rule) -> Vec<f64> {
        let flops = self.graph.node_flops(node);
        match rule.comp_scaling() {
            CompScaling::Replicated => {
                self.device_flops.iter().map(|&f| LAUNCH_OVERHEAD + flops / f).collect()
            }
            CompScaling::Sharded => {
                let row = self.ratio_row(node);
                self.device_flops
                    .iter()
                    .zip(row.iter())
                    .map(|(&f, &b)| LAUNCH_OVERHEAD + flops * b / f)
                    .collect()
            }
        }
    }

    /// Estimated seconds of a collective on `node`'s distributed tensor.
    pub fn collective_seconds(&self, node: NodeId, kind: &CollectiveInstr) -> f64 {
        let bytes = self.graph.node_bytes(node) as f64;
        let max_ratio =
            self.ratio_row(node).iter().cloned().fold(0.0, f64::max).max(f64::MIN_POSITIVE);
        let intra = bytes * self.intra_sec_per_byte;
        intra
            + match kind {
                CollectiveInstr::AllReduce => {
                    self.profile.estimate(CollKind::AllReduce, bytes, bytes)
                }
                CollectiveInstr::AllGather { grouped: false, .. } => {
                    self.profile.estimate(CollKind::AllGatherPadded, bytes * max_ratio, bytes)
                }
                CollectiveInstr::AllGather { grouped: true, .. } => {
                    self.profile.estimate(CollKind::GroupedBroadcast, bytes * max_ratio, bytes)
                }
                CollectiveInstr::ReduceScatter { .. } => {
                    self.profile.estimate(CollKind::ReduceScatter, bytes * max_ratio, bytes)
                }
                CollectiveInstr::AllToAll { .. } => {
                    self.profile.estimate(CollKind::AllToAll, bytes * max_ratio, bytes)
                }
            }
    }

    /// Admissible lower bound on the remaining time to compute `flops` more
    /// work: perfect load balance across the whole cluster with free
    /// communication (the paper's infinite-bandwidth `ecost`).
    pub fn best_case_seconds(&self, flops: f64) -> f64 {
        flops / self.total_flops
    }

    /// Single-device flops of a node (re-exported for the search).
    pub fn node_flops(&self, node: NodeId) -> f64 {
        self.graph.node_flops(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_cluster::{ClusterSpec, Granularity};
    use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
    use hap_graph::{GraphBuilder, Placement};

    fn setup() -> (Graph, Vec<VirtualDevice>, CommProfile) {
        // The matmul output (node 2) is 64 MB so that bandwidth, not message
        // latency, dominates the collective estimates under test.
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![16384, 32]);
        let w = g.parameter("w", vec![32, 1024]);
        let y = g.matmul(x, w);
        let _ = g.sum_all(y);
        let graph = g.build_forward();
        let cluster = ClusterSpec::fig17_cluster();
        let devices = cluster.virtual_devices(Granularity::PerGpu);
        let profile =
            profile_collectives(&GroundTruthNet::new(NetworkParams::paper_cloud()), devices.len());
        (graph, devices, profile)
    }

    #[test]
    fn sharded_compute_scales_with_ratio() {
        let (graph, devices, profile) = setup();
        let ratios = vec![vec![0.4, 0.4, 0.1, 0.1]];
        let cm = CostModel::new(&graph, &devices, &profile, &ratios);
        let rule = Rule::new(vec![Placement::Shard(0), Placement::Replicated], Placement::Shard(0));
        let secs = cm.compute_seconds(2, &rule);
        // Device 0 (A100, ratio 0.4) does 4x the flops of device 2 (P100, 0.1)
        // at ~2.6x the speed: it must take longer.
        assert!(secs[0] > secs[2]);
    }

    #[test]
    fn replicated_compute_ignores_ratios() {
        let (graph, devices, profile) = setup();
        let ratios = vec![vec![0.7, 0.1, 0.1, 0.1]];
        let cm = CostModel::new(&graph, &devices, &profile, &ratios);
        let rule =
            Rule::new(vec![Placement::Replicated, Placement::Replicated], Placement::Replicated);
        let secs = cm.compute_seconds(2, &rule);
        assert!((secs[0] - secs[1]).abs() < 1e-15, "same device type, same time");
        assert!(secs[2] > secs[0], "P100 slower than A100 on the full op");
    }

    #[test]
    fn skewed_ratios_make_grouped_broadcast_win() {
        let (graph, devices, profile) = setup();
        let even = vec![vec![0.25; 4]];
        let skewed = vec![vec![0.94, 0.02, 0.02, 0.02]];
        let cm_even = CostModel::new(&graph, &devices, &profile, &even);
        let cm_skew = CostModel::new(&graph, &devices, &profile, &skewed);
        let padded = CollectiveInstr::AllGather { dim: 0, grouped: false };
        let grouped = CollectiveInstr::AllGather { dim: 0, grouped: true };
        assert!(cm_even.collective_seconds(2, &padded) < cm_even.collective_seconds(2, &grouped));
        assert!(cm_skew.collective_seconds(2, &grouped) < cm_skew.collective_seconds(2, &padded));
    }

    #[test]
    fn best_case_uses_aggregate_flops() {
        let (graph, devices, profile) = setup();
        let ratios = vec![vec![0.25; 4]];
        let cm = CostModel::new(&graph, &devices, &profile, &ratios);
        let total: f64 = devices.iter().map(|d| d.flops).sum();
        assert!((cm.best_case_seconds(total) - 1.0).abs() < 1e-12);
    }
}
