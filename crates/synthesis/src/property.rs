//! Tensor properties and canonical property sets (paper Sec. 4.2), plus the
//! hash-consing interner the search uses to reduce program states to ids.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, RwLock};

use hap_graph::{NodeId, Placement};

/// A property `e | I` of a distributed tensor: executing instruction `I`
/// (identity / all-gather(d) / all-reduce) on the distributed tensor of
/// reference node `e` recovers `e` on every device.
pub type Prop = (NodeId, Placement);

/// A canonical (sorted, deduplicated) set of properties plus the set of
/// already-communicated reference tensors (the `Communicated` markers of
/// paper Sec. 4.5, optimization 2).
///
/// Equality/hashing of `PropSet`s is exactly program-state identity for the
/// A\* dominance pruning. The stable content hash is maintained
/// incrementally (`hash` is a pure function of the two lists, so including
/// it in the derived equality is sound and lets mismatches bail early).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PropSet {
    props: Vec<Prop>,
    communicated: Vec<NodeId>,
    /// Commutative mix of all entries; see [`PropSet::stable_hash`].
    hash: u64,
}

/// SplitMix64 finalizer: the per-entry mixer of the incremental set hash.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Stable 64-bit hash of one property.
#[inline]
fn prop_hash(p: Prop) -> u64 {
    let placement = match p.1 {
        Placement::Replicated => 0u64,
        Placement::PartialSum => 1,
        Placement::Shard(d) => 2 + (d as u64),
    };
    mix64((p.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ placement)
}

/// Stable 64-bit hash of one communicated marker (domain-separated from
/// property hashes).
#[inline]
fn comm_hash(e: NodeId) -> u64 {
    mix64((e as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f) ^ 0x5555_5555_5555_5555)
}

impl PropSet {
    /// The empty property set.
    pub fn new() -> Self {
        PropSet::default()
    }

    /// The properties, sorted.
    pub fn props(&self) -> &[Prop] {
        &self.props
    }

    /// Nodes already communicated, sorted.
    pub fn communicated(&self) -> &[NodeId] {
        &self.communicated
    }

    /// True if the set contains `p`.
    pub fn contains(&self, p: &Prop) -> bool {
        self.props.binary_search(p).is_ok()
    }

    /// True if every property in `pre` is present.
    pub fn contains_all(&self, pre: &[Prop]) -> bool {
        pre.iter().all(|p| self.contains(p))
    }

    /// True if any property of node `e` is present (the node is "produced").
    pub fn has_node(&self, e: NodeId) -> bool {
        let idx = self.props.partition_point(|&(n, _)| n < e);
        self.props.get(idx).is_some_and(|&(n, _)| n == e)
    }

    /// True if node `e` has already been communicated.
    pub fn is_communicated(&self, e: NodeId) -> bool {
        self.communicated.binary_search(&e).is_ok()
    }

    /// The contiguous slice of properties belonging to node `e` (the set is
    /// sorted by node first, so all of a node's placements are adjacent).
    /// Empty when the node carries no property.
    pub fn node_props(&self, e: NodeId) -> &[Prop] {
        let lo = self.props.partition_point(|&(n, _)| n < e);
        let hi = lo + self.props[lo..].partition_point(|&(n, _)| n == e);
        &self.props[lo..hi]
    }

    /// Inserts a property; returns false if it was already present.
    pub fn insert(&mut self, p: Prop) -> bool {
        match self.props.binary_search(&p) {
            Ok(_) => false,
            Err(idx) => {
                self.props.insert(idx, p);
                self.hash = self.hash.wrapping_add(prop_hash(p));
                true
            }
        }
    }

    /// Marks a node as communicated.
    pub fn mark_communicated(&mut self, e: NodeId) {
        if let Err(idx) = self.communicated.binary_search(&e) {
            self.communicated.insert(idx, e);
            self.hash = self.hash.wrapping_add(comm_hash(e));
        }
    }

    /// Removes properties not satisfying `keep`, along with communicated
    /// markers of nodes that no longer carry any property.
    pub fn retain(&mut self, mut keep: impl FnMut(&Prop) -> bool) {
        self.props.retain(|p| keep(p));
        // Both lists are sorted, so each marker resolves with one binary
        // search (O(C log P)) instead of a full rescan of the props per
        // marker (the old O(P·C) path).
        let props = std::mem::take(&mut self.props);
        self.communicated.retain(|&e| {
            let idx = props.partition_point(|&(n, _)| n < e);
            props.get(idx).is_some_and(|&(n, _)| n == e)
        });
        self.props = props;
        // Removal is the cold path: recompute the commutative mix.
        self.hash = self
            .props
            .iter()
            .map(|&p| prop_hash(p))
            .chain(self.communicated.iter().map(|&e| comm_hash(e)))
            .fold(0u64, u64::wrapping_add);
    }

    /// Stable content hash of the canonical set.
    ///
    /// Unlike `Hash`-derived hashing (whose value depends on the hasher
    /// instance), this is a pure function of the contents — identical
    /// across runs, platforms, and thread counts; the parallel search uses
    /// it to pick dominance-map shards deterministically and the interner
    /// uses it as the hash-consing bucket key. The value is a commutative
    /// per-entry mix maintained incrementally on every mutation, so reading
    /// it is O(1) — the synthesis hot path interns one set per expanded
    /// candidate and would otherwise rehash `O(|set|)` bytes each time.
    pub fn stable_hash(&self) -> u64 {
        self.hash
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// True when no properties are present.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }
}

/// A hash-consed [`PropSet`]: shared storage plus the interner-assigned id.
///
/// Search states carry one of these instead of an owned `PropSet`, so
/// cloning a state copies an integer and bumps a refcount, dominance-map
/// keys shrink to a `u32`, and set equality is id equality. The content
/// hash is computed once, at intern time, and memoized here.
#[derive(Clone, Debug)]
pub struct InternedProps {
    id: u32,
    hash: u64,
    set: Arc<PropSet>,
}

impl InternedProps {
    /// The interner-assigned id. Within one [`PropInterner`], two
    /// `InternedProps` have equal ids iff their sets are equal.
    #[inline]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The memoized [`PropSet::stable_hash`] of the set.
    #[inline]
    pub fn stable_hash(&self) -> u64 {
        self.hash
    }
}

impl Deref for InternedProps {
    type Target = PropSet;

    #[inline]
    fn deref(&self) -> &PropSet {
        &self.set
    }
}

/// Shards of the intern table. Expansion workers intern successor states
/// concurrently; sharding by the stable content hash keeps lock contention
/// negligible at wave width 64.
const INTERN_SHARDS: usize = 64;

/// One intern-table shard: `stable_hash -> (set, id)` entries with that
/// hash (more than one only on a 64-bit collision).
type InternTable = HashMap<u64, Vec<(Arc<PropSet>, u32)>>;

/// A concurrent hash-consing arena for canonical property sets.
///
/// Interning is *content-addressed*: the first thread to intern a set wins
/// the id, and every later intern of an equal set returns the same id and
/// shares the same allocation. Ids are assigned in racy (thread-timing)
/// order, but nothing in the search orders by id — dominance shards are
/// picked by the stable content hash — so synthesized plans remain
/// bit-for-bit identical for every thread count.
#[derive(Debug)]
pub struct PropInterner {
    /// `stable_hash -> (set, id)` entries, sharded by the hash.
    shards: Vec<RwLock<InternTable>>,
    next_id: AtomicU32,
}

impl Default for PropInterner {
    fn default() -> Self {
        PropInterner::new()
    }
}

impl PropInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        PropInterner {
            shards: (0..INTERN_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            next_id: AtomicU32::new(0),
        }
    }

    /// Interns `set`, returning its canonical shared handle.
    pub fn intern(&self, set: PropSet) -> InternedProps {
        let hash = set.stable_hash();
        let shard = &self.shards[(hash as usize) & (INTERN_SHARDS - 1)];
        {
            let guard = shard.read().expect("intern shard poisoned");
            if let Some(found) = Self::lookup(&guard, hash, &set) {
                return found;
            }
        }
        let mut guard = shard.write().expect("intern shard poisoned");
        // Double-check: another worker may have interned it while we
        // upgraded the lock.
        if let Some(found) = Self::lookup(&guard, hash, &set) {
            return found;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        assert!(id != u32::MAX, "interner id space exhausted");
        let set = Arc::new(set);
        guard.entry(hash).or_default().push((set.clone(), id));
        InternedProps { id, hash, set }
    }

    fn lookup(table: &InternTable, hash: u64, set: &PropSet) -> Option<InternedProps> {
        let bucket = table.get(&hash)?;
        bucket.iter().find(|(s, _)| **s == *set).map(|(s, id)| InternedProps {
            id: *id,
            hash,
            set: s.clone(),
        })
    }

    /// Number of distinct sets interned so far.
    pub fn len(&self) -> usize {
        self.next_id.load(Ordering::Relaxed) as usize
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut s = PropSet::new();
        assert!(s.insert((3, Placement::Shard(0))));
        assert!(s.insert((1, Placement::Replicated)));
        assert!(!s.insert((3, Placement::Shard(0))));
        assert!(s.contains(&(1, Placement::Replicated)));
        assert!(s.contains_all(&[(1, Placement::Replicated), (3, Placement::Shard(0))]));
        assert!(!s.contains(&(3, Placement::Shard(1))));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn has_node_any_placement() {
        let mut s = PropSet::new();
        s.insert((5, Placement::PartialSum));
        assert!(s.has_node(5));
        assert!(!s.has_node(4));
        s.insert((4, Placement::Shard(1)));
        assert!(s.has_node(4));
    }

    #[test]
    fn canonical_equality() {
        let mut a = PropSet::new();
        a.insert((2, Placement::Shard(1)));
        a.insert((1, Placement::Replicated));
        let mut b = PropSet::new();
        b.insert((1, Placement::Replicated));
        b.insert((2, Placement::Shard(1)));
        assert_eq!(a, b);
        b.mark_communicated(2);
        assert_ne!(a, b);
    }

    #[test]
    fn stable_hash_tracks_canonical_identity() {
        let mut a = PropSet::new();
        a.insert((2, Placement::Shard(1)));
        a.insert((1, Placement::Replicated));
        let mut b = PropSet::new();
        b.insert((1, Placement::Replicated));
        b.insert((2, Placement::Shard(1)));
        // Insertion order is irrelevant: equal sets hash equal.
        assert_eq!(a.stable_hash(), b.stable_hash());
        b.mark_communicated(2);
        assert_ne!(a.stable_hash(), b.stable_hash());
        let mut c = PropSet::new();
        c.insert((2, Placement::Shard(0)));
        c.insert((1, Placement::Replicated));
        assert_ne!(a.stable_hash(), c.stable_hash());
        assert_ne!(PropSet::new().stable_hash(), a.stable_hash());
    }

    #[test]
    fn node_props_returns_the_nodes_slice() {
        let mut s = PropSet::new();
        s.insert((2, Placement::Shard(1)));
        s.insert((2, Placement::Replicated));
        s.insert((5, Placement::PartialSum));
        assert_eq!(s.node_props(2), &[(2, Placement::Replicated), (2, Placement::Shard(1))]);
        assert_eq!(s.node_props(5), &[(5, Placement::PartialSum)]);
        assert!(s.node_props(3).is_empty());
        assert!(s.node_props(99).is_empty());
        assert!(PropSet::new().node_props(0).is_empty());
    }

    #[test]
    fn retain_cleans_communicated() {
        let mut s = PropSet::new();
        s.insert((7, Placement::Shard(0)));
        s.insert((8, Placement::Replicated));
        s.mark_communicated(7);
        assert!(s.is_communicated(7));
        s.retain(|&(n, _)| n != 7);
        assert!(!s.is_communicated(7));
        assert!(s.has_node(8));
    }

    #[test]
    fn retain_keeps_markers_of_surviving_nodes() {
        let mut s = PropSet::new();
        for n in [1usize, 3, 5, 7, 9] {
            s.insert((n, Placement::Shard(0)));
            s.insert((n, Placement::Replicated));
            s.mark_communicated(n);
        }
        s.retain(|&(n, _)| n != 5);
        // Node 5 lost every property; its marker must go. The rest survive.
        assert!(!s.is_communicated(5));
        for n in [1usize, 3, 7, 9] {
            assert!(s.is_communicated(n), "marker of node {n} must survive");
        }
    }

    #[test]
    fn interner_is_content_addressed() {
        let interner = PropInterner::new();
        let mut a = PropSet::new();
        a.insert((2, Placement::Shard(1)));
        a.insert((1, Placement::Replicated));
        let mut b = PropSet::new();
        b.insert((1, Placement::Replicated));
        b.insert((2, Placement::Shard(1)));
        let ia = interner.intern(a.clone());
        let ib = interner.intern(b);
        assert_eq!(ia.id(), ib.id(), "equal sets must share an id");
        assert_eq!(ia.stable_hash(), ib.stable_hash());
        assert!(Arc::ptr_eq(&ia.set, &ib.set), "equal sets must share storage");
        a.mark_communicated(2);
        let ic = interner.intern(a);
        assert_ne!(ia.id(), ic.id());
        assert_eq!(interner.len(), 2);
        // The handle dereferences to the canonical set.
        assert!(ia.contains(&(1, Placement::Replicated)));
    }

    #[test]
    fn concurrent_interning_converges_on_one_id_per_set() {
        let interner = PropInterner::new();
        let sets: Vec<PropSet> = (0..32)
            .map(|i| {
                let mut s = PropSet::new();
                s.insert((i, Placement::Shard(i % 3)));
                s.insert((i + 100, Placement::Replicated));
                s
            })
            .collect();
        let ids: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let sets = &sets;
                    let interner = &interner;
                    scope.spawn(move || {
                        sets.iter().map(|s| interner.intern(s.clone()).id()).collect::<Vec<u32>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for worker in &ids[1..] {
            assert_eq!(worker, &ids[0], "every thread must observe the same ids");
        }
        assert_eq!(interner.len(), sets.len());
    }
}
