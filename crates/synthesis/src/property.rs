//! Tensor properties and canonical property sets (paper Sec. 4.2).

use hap_graph::{NodeId, Placement};

/// A property `e | I` of a distributed tensor: executing instruction `I`
/// (identity / all-gather(d) / all-reduce) on the distributed tensor of
/// reference node `e` recovers `e` on every device.
pub type Prop = (NodeId, Placement);

/// A canonical (sorted, deduplicated) set of properties plus the set of
/// already-communicated reference tensors (the `Communicated` markers of
/// paper Sec. 4.5, optimization 2).
///
/// Equality/hashing of `PropSet`s is exactly program-state identity for the
/// A\* dominance pruning.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PropSet {
    props: Vec<Prop>,
    communicated: Vec<NodeId>,
}

impl PropSet {
    /// The empty property set.
    pub fn new() -> Self {
        PropSet::default()
    }

    /// The properties, sorted.
    pub fn props(&self) -> &[Prop] {
        &self.props
    }

    /// Nodes already communicated, sorted.
    pub fn communicated(&self) -> &[NodeId] {
        &self.communicated
    }

    /// True if the set contains `p`.
    pub fn contains(&self, p: &Prop) -> bool {
        self.props.binary_search(p).is_ok()
    }

    /// True if every property in `pre` is present.
    pub fn contains_all(&self, pre: &[Prop]) -> bool {
        pre.iter().all(|p| self.contains(p))
    }

    /// True if any property of node `e` is present (the node is "produced").
    pub fn has_node(&self, e: NodeId) -> bool {
        let idx = self.props.partition_point(|&(n, _)| n < e);
        self.props.get(idx).is_some_and(|&(n, _)| n == e)
    }

    /// True if node `e` has already been communicated.
    pub fn is_communicated(&self, e: NodeId) -> bool {
        self.communicated.binary_search(&e).is_ok()
    }

    /// Inserts a property; returns false if it was already present.
    pub fn insert(&mut self, p: Prop) -> bool {
        match self.props.binary_search(&p) {
            Ok(_) => false,
            Err(idx) => {
                self.props.insert(idx, p);
                true
            }
        }
    }

    /// Marks a node as communicated.
    pub fn mark_communicated(&mut self, e: NodeId) {
        if let Err(idx) = self.communicated.binary_search(&e) {
            self.communicated.insert(idx, e);
        }
    }

    /// Removes properties not satisfying `keep`, along with communicated
    /// markers of nodes that no longer carry any property.
    pub fn retain(&mut self, mut keep: impl FnMut(&Prop) -> bool) {
        self.props.retain(|p| keep(p));
        let props = &self.props;
        self.communicated.retain(|&e| props.iter().any(|&(n, _)| n == e));
    }

    /// Stable FNV-1a hash of the canonical set.
    ///
    /// Unlike `Hash`-derived hashing (whose value depends on the hasher
    /// instance), this is a pure function of the contents — identical
    /// across runs, platforms, and thread counts. The parallel search uses
    /// it to pick dominance-map shards deterministically.
    pub fn stable_hash(&self) -> u64 {
        use crate::instr::{fnv1a, mix_placement, FNV_OFFSET};
        let mut h = fnv1a(FNV_OFFSET, self.props.len() as u64);
        for &(n, p) in &self.props {
            h = mix_placement(fnv1a(h, n as u64), p);
        }
        for &e in &self.communicated {
            h = fnv1a(h, e as u64);
        }
        h
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// True when no properties are present.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut s = PropSet::new();
        assert!(s.insert((3, Placement::Shard(0))));
        assert!(s.insert((1, Placement::Replicated)));
        assert!(!s.insert((3, Placement::Shard(0))));
        assert!(s.contains(&(1, Placement::Replicated)));
        assert!(s.contains_all(&[(1, Placement::Replicated), (3, Placement::Shard(0))]));
        assert!(!s.contains(&(3, Placement::Shard(1))));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn has_node_any_placement() {
        let mut s = PropSet::new();
        s.insert((5, Placement::PartialSum));
        assert!(s.has_node(5));
        assert!(!s.has_node(4));
        s.insert((4, Placement::Shard(1)));
        assert!(s.has_node(4));
    }

    #[test]
    fn canonical_equality() {
        let mut a = PropSet::new();
        a.insert((2, Placement::Shard(1)));
        a.insert((1, Placement::Replicated));
        let mut b = PropSet::new();
        b.insert((1, Placement::Replicated));
        b.insert((2, Placement::Shard(1)));
        assert_eq!(a, b);
        b.mark_communicated(2);
        assert_ne!(a, b);
    }

    #[test]
    fn stable_hash_tracks_canonical_identity() {
        let mut a = PropSet::new();
        a.insert((2, Placement::Shard(1)));
        a.insert((1, Placement::Replicated));
        let mut b = PropSet::new();
        b.insert((1, Placement::Replicated));
        b.insert((2, Placement::Shard(1)));
        // Insertion order is irrelevant: equal sets hash equal.
        assert_eq!(a.stable_hash(), b.stable_hash());
        b.mark_communicated(2);
        assert_ne!(a.stable_hash(), b.stable_hash());
        let mut c = PropSet::new();
        c.insert((2, Placement::Shard(0)));
        c.insert((1, Placement::Replicated));
        assert_ne!(a.stable_hash(), c.stable_hash());
        assert_ne!(PropSet::new().stable_hash(), a.stable_hash());
    }

    #[test]
    fn retain_cleans_communicated() {
        let mut s = PropSet::new();
        s.insert((7, Placement::Shard(0)));
        s.insert((8, Placement::Replicated));
        s.mark_communicated(7);
        assert!(s.is_communicated(7));
        s.retain(|&(n, _)| n != 7);
        assert!(!s.is_communicated(7));
        assert!(s.has_node(8));
    }
}
