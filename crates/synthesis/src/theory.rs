//! Background theory construction (paper Sec. 4.2).
//!
//! The theory `T` is a set of Hoare triples `{pre} instr {post}` obtained by
//! matching per-op placement rules against the single-device graph, plus the
//! collective triples of Fig. 9 and the grouped-Broadcast rule of Sec. 4.4.
//!
//! Two of the paper's search-time optimizations (Sec. 4.5) are realized at
//! theory-construction time:
//!
//! * **Fusion of empty-precondition triples**: leaf instructions
//!   (`Placeholder-Shard`, `Parameter-Shard`, ...) never exist standalone;
//!   they are inlined into each consuming compute triple, so they always
//!   appear directly before their first consumer.
//! * **Single communication per tensor**: leaves get no communication
//!   triples at all (they can be materialized in any placement directly),
//!   and each comm triple carries its reference node so the search can
//!   enforce the at-most-once rule via `Communicated` markers.

use std::collections::HashMap;

use hap_graph::{Graph, NodeId, Placement, Role};

use crate::instr::{CollectiveInstr, DistInstr};
use crate::property::Prop;

/// A Hoare triple of the background theory.
#[derive(Clone, Debug)]
pub struct Triple {
    /// Properties required before the instructions can run.
    pub pre: Vec<Prop>,
    /// Instructions appended when the triple fires (leaf materializations
    /// fused in front of their consumer).
    pub instrs: Vec<DistInstr>,
    /// Properties established afterwards.
    pub post: Vec<Prop>,
    /// `Some(e)` when this triple communicates reference tensor `e`
    /// (enforces the at-most-one-communication rule).
    pub comm_node: Option<NodeId>,
    /// The graph node this triple primarily produces (the compute output,
    /// or the communicated tensor).
    pub output: NodeId,
}

/// The background theory for one graph.
#[derive(Debug)]
pub struct Theory {
    /// All triples.
    pub triples: Vec<Triple>,
    /// Index: property -> compute-triple indices with it in `pre`.
    pre_index: HashMap<Prop, Vec<usize>>,
    /// Consumers of each node.
    pub consumers: Vec<Vec<NodeId>>,
    /// Required-output nodes (loss + updated parameters).
    pub required: Vec<NodeId>,
    /// Live nodes: those from which a required output is reachable. Dead
    /// nodes (e.g. input gradients nothing consumes) are excluded from the
    /// admissible remaining-work bound and never count as search progress.
    pub live: Vec<bool>,
}

// The wave-parallel search borrows the theory immutably from every worker
// thread; this guard fails to compile if interior mutability (Rc, RefCell,
// Cell, ...) ever sneaks into it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Theory>()
};

/// Options controlling which optional rules enter the theory (used by the
/// Fig. 15 ablation).
#[derive(Clone, Copy, Debug)]
pub struct TheoryOptions {
    /// Include the grouped-Broadcast implementation of All-Gather.
    pub grouped_broadcast: bool,
    /// Include fully-replicated compute rules for gradient nodes (the rules
    /// that enable sufficient factor broadcasting, Sec. 2.5.2/4.4).
    pub sfb: bool,
}

impl Default for TheoryOptions {
    fn default() -> Self {
        TheoryOptions { grouped_broadcast: true, sfb: true }
    }
}

impl Theory {
    /// Builds the background theory for `graph` with default options.
    pub fn build(graph: &Graph) -> Self {
        Theory::build_with(graph, TheoryOptions::default())
    }

    /// Builds the background theory with explicit options.
    pub fn build_with(graph: &Graph, opts: TheoryOptions) -> Self {
        let mut triples = Vec::new();
        let consumers = graph.consumers();

        // Demanded placements per tensor: the placements that appear for it
        // in some consumer rule's precondition. Because each reference
        // tensor may be communicated at most once (Sec. 4.5, optimization
        // 2), a collective's output placement must directly satisfy a
        // consumer rule — so communication triples targeting undemanded
        // placements can be dropped without losing any complete program.
        let mut demanded: Vec<Vec<Placement>> = vec![Vec::new(); graph.len()];
        for node in graph.nodes() {
            if node.op.is_leaf() {
                continue;
            }
            for rule in graph.placement_rules(node.id) {
                for (&input, &placement) in node.inputs.iter().zip(rule.inputs.iter()) {
                    if !demanded[input].contains(&placement) {
                        demanded[input].push(placement);
                    }
                }
            }
        }

        for node in graph.nodes() {
            if node.op.is_leaf() {
                continue;
            }
            // Compute triples, one per applicable rule, with leaf inputs fused.
            'rules: for rule in graph.placement_rules(node.id) {
                if !opts.sfb
                    && node.role == Role::Grad
                    && rule.inputs.iter().all(|p| p.is_replicated())
                    && rule.output.is_replicated()
                    && node.inputs.iter().any(|&i| !graph.node(i).op.is_leaf())
                {
                    continue;
                }
                let mut pre: Vec<Prop> = Vec::new();
                let mut post: Vec<Prop> = Vec::new();
                let mut instrs: Vec<DistInstr> = Vec::new();
                for (&input, &placement) in node.inputs.iter().zip(rule.inputs.iter()) {
                    if graph.node(input).op.is_leaf() {
                        match placement {
                            Placement::PartialSum => continue 'rules, // unsatisfiable
                            p => {
                                let instr = DistInstr::Leaf { node: input, placement: p };
                                if !instrs.contains(&instr) {
                                    instrs.push(instr);
                                }
                                post.push((input, p));
                            }
                        }
                    } else {
                        pre.push((input, placement));
                    }
                }
                pre.sort_unstable();
                pre.dedup();
                post.push((node.id, rule.output));
                post.sort_unstable();
                post.dedup();
                instrs.push(DistInstr::Compute { node: node.id, rule: rule.clone() });
                triples.push(Triple { pre, instrs, post, comm_node: None, output: node.id });
            }

            // Communication triples (never for leaves: optimization 2),
            // restricted to placements some consumer actually demands.
            let dims = node.shape.dims();
            let shardable: Vec<usize> = (0..dims.len()).filter(|&d| dims[d] >= 2).collect();
            let want = &demanded[node.id];
            let wants = |p: Placement| want.contains(&p);
            let mut comm = |kind: CollectiveInstr| {
                let pre = vec![(node.id, kind.input_placement())];
                let post = vec![(node.id, kind.output_placement())];
                triples.push(Triple {
                    pre,
                    instrs: vec![DistInstr::Collective { node: node.id, kind }],
                    post,
                    comm_node: Some(node.id),
                    output: node.id,
                });
            };
            if wants(Placement::Replicated) {
                comm(CollectiveInstr::AllReduce);
            }
            for &d in &shardable {
                if wants(Placement::Shard(d)) {
                    comm(CollectiveInstr::ReduceScatter { dim: d });
                    for &d2 in &shardable {
                        if d2 != d {
                            comm(CollectiveInstr::AllToAll { from: d2, to: d });
                        }
                    }
                }
                if wants(Placement::Replicated) {
                    comm(CollectiveInstr::AllGather { dim: d, grouped: false });
                    if opts.grouped_broadcast {
                        comm(CollectiveInstr::AllGather { dim: d, grouped: true });
                    }
                }
            }
        }

        let mut pre_index: HashMap<Prop, Vec<usize>> = HashMap::new();
        for (i, t) in triples.iter().enumerate() {
            if t.comm_node.is_none() {
                for &p in &t.pre {
                    pre_index.entry(p).or_default().push(i);
                }
            }
        }

        let required = graph.required_outputs();
        let mut live = vec![false; graph.len()];
        for &r in &required {
            live[r] = true;
        }
        for id in (0..graph.len()).rev() {
            if live[id] {
                for &input in &graph.node(id).inputs {
                    live[input] = true;
                }
            }
        }

        Theory { triples, pre_index, consumers, required, live }
    }

    /// Compute triples that need property `p` in their precondition.
    pub fn consumers_of_prop(&self, p: &Prop) -> &[usize] {
        self.pre_index.get(p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of triples (reported by the Fig. 19 overhead experiment).
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the theory is empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_graph::GraphBuilder;

    fn fig11_graph() -> Graph {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("e1", vec![8, 4]);
        let w = g.parameter("e2", vec![4, 2]);
        let y = g.matmul(x, w);
        let _l = g.sum_all(y);
        g.build_forward()
    }

    #[test]
    fn leaf_instructions_are_fused() {
        let t = Theory::build(&fig11_graph());
        // No triple should have an empty instruction list, and matmul triples
        // must carry their leaf materializations inline.
        let matmul_triples: Vec<&Triple> = t
            .triples
            .iter()
            .filter(|tr| tr.instrs.iter().any(|i| matches!(i, DistInstr::Compute { node: 2, .. })))
            .collect();
        assert!(!matmul_triples.is_empty());
        for tr in &matmul_triples {
            assert!(tr.pre.is_empty(), "both inputs are leaves; pre must be empty");
            assert!(tr.instrs.len() >= 2, "leaf instrs must be fused in");
        }
    }

    #[test]
    fn no_communication_triples_for_leaves() {
        let t = Theory::build(&fig11_graph());
        for tr in &t.triples {
            if let Some(e) = tr.comm_node {
                assert!(e >= 2, "leaves must not be communicated, got node {e}");
            }
        }
    }

    #[test]
    fn grouped_broadcast_toggle() {
        let g = fig11_graph();
        let with = Theory::build_with(&g, TheoryOptions::default());
        let without = Theory::build_with(&g, TheoryOptions { grouped_broadcast: false, sfb: true });
        let count = |t: &Theory| {
            t.triples
                .iter()
                .filter(|tr| {
                    tr.instrs.iter().any(|i| {
                        matches!(
                            i,
                            DistInstr::Collective {
                                kind: CollectiveInstr::AllGather { grouped: true, .. },
                                ..
                            }
                        )
                    })
                })
                .count()
        };
        assert!(count(&with) > 0);
        assert_eq!(count(&without), 0);
    }

    #[test]
    fn undemanded_tensors_get_no_communication_triples() {
        // The loss has no consumers, so no placement of it is demanded and
        // no communication triple is generated (with at most one collective
        // per tensor, a collective no consumer rule can use is dead code).
        let g = fig11_graph();
        let t = Theory::build(&g);
        let loss = g.loss().unwrap();
        let loss_comms: Vec<&Triple> =
            t.triples.iter().filter(|tr| tr.comm_node == Some(loss)).collect();
        assert!(loss_comms.is_empty());
        // The matmul output feeds `sum`, which demands every placement that
        // its rules mention, so it does get communication triples.
        let y_comms = t.triples.iter().filter(|tr| tr.comm_node == Some(2)).count();
        assert!(y_comms > 0);
    }

    #[test]
    fn required_outputs_cover_loss_and_updates() {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![8, 4]);
        let w = g.parameter("w", vec![4, 2]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_training(l).unwrap();
        let t = Theory::build(&graph);
        assert_eq!(t.required.len(), 2); // loss + update_w
    }

    #[test]
    fn pre_index_finds_consumers() {
        let g = fig11_graph();
        let t = Theory::build(&g);
        // The matmul output (node 2) sharded on dim 0 is consumed by sum.
        let hits = t.consumers_of_prop(&(2, Placement::Shard(0)));
        assert!(!hits.is_empty());
        for &i in hits {
            assert_eq!(t.triples[i].output, 3);
        }
    }
}
