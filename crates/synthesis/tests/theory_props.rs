//! Property-based tests for the rewrite theory (paper Sec. 4.2).
//!
//! Over randomly shaped training graphs, every Hoare triple the theory
//! produces must (a) be canonical and preserve property-set
//! canonicalization when applied, and (b) price every enabled instruction
//! at a finite, non-negative cost under any valid sharding-ratio row.

use hap_cluster::{ClusterSpec, Granularity};
use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
use hap_graph::Graph;
use hap_models::{mlp, MlpConfig};
use hap_synthesis::{CostModel, DistInstr, PropSet, Theory, TheoryOptions};
use proptest::prelude::*;

/// A random small training graph (MLP with random widths and depth).
fn random_graph(batch: usize, input: usize, hidden: Vec<usize>, classes: usize) -> Graph {
    mlp(&MlpConfig { batch, input, hidden, classes })
}

/// True when a property slice is sorted and free of duplicates.
fn canonical(props: &[(usize, hap_graph::Placement)]) -> bool {
    props.windows(2).all(|w| w[0] < w[1])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Triples are canonical, and firing one on a state that satisfies its
    /// precondition leaves the property set canonical.
    #[test]
    fn triples_preserve_propset_canonicalization(
        batch in 2usize..32,
        input in 2usize..16,
        hidden in prop::collection::vec(2usize..24, 1..3),
        classes in 2usize..8,
        grouped in 0u8..2,
        sfb in 0u8..2,
    ) {
        let graph = random_graph(batch, input, hidden, classes);
        let theory = Theory::build_with(
            &graph,
            TheoryOptions { grouped_broadcast: grouped == 1, sfb: sfb == 1 },
        );
        prop_assert!(!theory.is_empty());
        for triple in &theory.triples {
            prop_assert!(canonical(&triple.pre), "pre not canonical: {:?}", triple.pre);
            prop_assert!(canonical(&triple.post), "post not canonical: {:?}", triple.post);
            // Build the smallest state satisfying the precondition, fire the
            // triple, and check the resulting property set stays canonical
            // (sorted, deduplicated) — the invariant dominance hashing
            // relies on.
            let mut props = PropSet::new();
            for &p in &triple.pre {
                props.insert(p);
            }
            for &p in &triple.post {
                props.insert(p);
            }
            prop_assert!(canonical(props.props()));
            prop_assert!(triple.post.iter().all(|p| props.contains(p)));
            prop_assert!(props.len() <= triple.pre.len() + triple.post.len());
        }
    }

    /// Every instruction of every enabled triple has a finite, non-negative
    /// cost under arbitrary (positive, normalized) sharding ratios.
    #[test]
    fn enabled_instructions_never_cost_negative(
        batch in 2usize..32,
        input in 2usize..16,
        hidden in prop::collection::vec(2usize..24, 1..3),
        classes in 2usize..8,
        raw in prop::collection::vec(0.05f64..1.0, 4),
    ) {
        let graph = random_graph(batch, input, hidden, classes);
        let theory = Theory::build(&graph);
        let cluster = ClusterSpec::fig17_cluster();
        let devices = cluster.virtual_devices(Granularity::PerGpu);
        let profile = profile_collectives(
            &GroundTruthNet::new(NetworkParams::paper_cloud()),
            devices.len(),
        );
        let total: f64 = raw.iter().sum();
        let row: Vec<f64> = raw.iter().map(|r| r / total).collect();
        let ratios = vec![row; graph.segment_count().max(1)];
        let cm = CostModel::new(&graph, &devices, &profile, &ratios);
        for triple in &theory.triples {
            for instr in &triple.instrs {
                match instr {
                    DistInstr::Leaf { .. } => {} // materialization is free
                    DistInstr::Compute { node, rule } => {
                        for (d, s) in cm.compute_seconds(*node, rule).iter().enumerate() {
                            prop_assert!(
                                s.is_finite() && *s >= 0.0,
                                "compute cost of node {node} on device {d} is {s}"
                            );
                        }
                    }
                    DistInstr::Collective { node, kind } => {
                        let s = cm.collective_seconds(*node, kind);
                        prop_assert!(
                            s.is_finite() && s >= 0.0,
                            "collective {kind} on node {node} costs {s}"
                        );
                    }
                }
            }
        }
    }
}
