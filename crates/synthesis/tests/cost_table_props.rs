//! Property tests: [`CostTables`] is a bit-exact cache of [`CostModel`].
//!
//! The synthesis hot path reads every cost from the dense tables, so any
//! drift between a table cell and the direct evaluation it replaces would
//! silently change synthesized plans. Over random clusters, ratio
//! matrices, and graphs, every lookup — compute rows under both scalings,
//! all five collective categories at arbitrary shard dimensions, node
//! flops, and the admissible bound — must reproduce the `CostModel` value
//! to the last bit. A second property pins the hot-path harness itself:
//! replaying the expand inner loop through tables and through direct calls
//! yields identical checksums.

use hap_cluster::{ClusterSpec, Granularity};
use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
use hap_models::{mlp, MlpConfig};
use hap_synthesis::{CollectiveInstr, CostModel, CostTables, HotPathBench, ShardingRatios};
use proptest::prelude::*;

fn cluster_for(pick: u8) -> ClusterSpec {
    match pick % 4 {
        0 => ClusterSpec::fig17_cluster(),
        1 => ClusterSpec::fig2_cluster(),
        2 => ClusterSpec::paper_heterogeneous(1),
        _ => ClusterSpec::paper_homogeneous(2),
    }
}

/// Normalizes raw positive weights into ratio rows of width `m`.
fn ratio_matrix(raw: &[f64], m: usize, segments: usize) -> ShardingRatios {
    (0..segments)
        .map(|s| {
            let row: Vec<f64> = (0..m).map(|j| raw[(s * m + j) % raw.len()].max(1e-3)).collect();
            let sum: f64 = row.iter().sum();
            row.into_iter().map(|b| b / sum).collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Every table cell equals the direct `CostModel` evaluation bitwise.
    #[test]
    fn cost_tables_match_cost_model(
        pick in 0u8..4,
        batch in 2usize..64,
        input in 2usize..24,
        hidden in prop::collection::vec(2usize..32, 1..4),
        classes in 2usize..8,
        raw in prop::collection::vec(0.01f64..1.0, 16),
        dim_seed in 0usize..8,
    ) {
        let graph = mlp(&MlpConfig { batch, input, hidden, classes });
        let cluster = cluster_for(pick);
        let devices = cluster.virtual_devices(Granularity::PerGpu);
        let profile = profile_collectives(
            &GroundTruthNet::new(NetworkParams::paper_cloud()),
            devices.len(),
        );
        let ratios = ratio_matrix(&raw, devices.len(), 1 + (dim_seed % 2));
        let cm = CostModel::new(&graph, &devices, &profile, &ratios);
        let tables = CostTables::build(&cm);

        prop_assert_eq!(tables.num_devices(), cm.num_devices());
        for node in graph.nodes() {
            // Compute rows: exercised through the node's real placement
            // rules, which cover both sharded and replicated scaling.
            for rule in graph.placement_rules(node.id) {
                let direct = cm.compute_seconds(node.id, &rule);
                let row = tables.compute_row_for(node.id, &rule);
                prop_assert_eq!(row.len(), direct.len());
                for (a, b) in row.iter().zip(direct.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(),
                        "compute mismatch at node {} rule {:?}", node.id, rule);
                }
            }
            // Collectives: every variant, at shifting shard dimensions (the
            // estimate must not depend on the dimension — the table stores
            // one cell per category).
            let rank = node.shape.dims().len().max(1);
            let d1 = dim_seed % rank;
            let d2 = (dim_seed + 1) % rank;
            for kind in [
                CollectiveInstr::AllReduce,
                CollectiveInstr::AllGather { dim: d1, grouped: false },
                CollectiveInstr::AllGather { dim: d1, grouped: true },
                CollectiveInstr::ReduceScatter { dim: d1 },
                CollectiveInstr::AllToAll { from: d1, to: d2 },
            ] {
                prop_assert_eq!(
                    tables.collective_secs(node.id, &kind).to_bits(),
                    cm.collective_seconds(node.id, &kind).to_bits(),
                    "collective mismatch at node {} kind {:?}", node.id, kind
                );
            }
            prop_assert_eq!(
                tables.node_flops(node.id).to_bits(),
                cm.node_flops(node.id).to_bits()
            );
        }
        let probe = graph.nodes().iter().map(|n| graph.node_flops(n.id)).sum::<f64>();
        prop_assert_eq!(
            tables.best_case_seconds(probe).to_bits(),
            cm.best_case_seconds(probe).to_bits()
        );
    }

    /// The expand inner loop produces bit-identical costs through tables
    /// and through direct evaluation on a real reachable-state workload.
    #[test]
    fn hot_path_table_and_direct_checksums_agree(
        pick in 0u8..4,
        batch in 8usize..64,
        input in 2usize..16,
        hidden in prop::collection::vec(2usize..24, 1..3),
        classes in 2usize..8,
        raw in prop::collection::vec(0.05f64..1.0, 8),
    ) {
        let graph = mlp(&MlpConfig { batch, input, hidden, classes });
        let cluster = cluster_for(pick);
        let devices = cluster.virtual_devices(Granularity::PerGpu);
        let profile = profile_collectives(
            &GroundTruthNet::new(NetworkParams::paper_cloud()),
            devices.len(),
        );
        let ratios = ratio_matrix(&raw, devices.len(), 1);
        let bench = HotPathBench::new(graph, devices, profile, ratios, 24);
        let (apps_t, sum_t) = bench.run(true);
        let (apps_d, sum_d) = bench.run(false);
        let (apps_a, sum_a) = bench.run_arena();
        prop_assert!(apps_t > 0, "workload must not be empty");
        prop_assert_eq!(apps_t, apps_d);
        prop_assert_eq!(apps_t, apps_a);
        prop_assert_eq!(apps_t, bench.applications());
        prop_assert_eq!(sum_t, sum_d, "table vs direct cost drift");
        prop_assert_eq!(sum_t, sum_a, "arena vs allocating apply drift");
    }
}
