//! End-to-end telemetry tests over the in-process request path: the
//! `metrics` verb's quantiles checked against a reference percentile
//! computation on a seeded stress schedule under an injected step clock,
//! trace span timelines for hits and misses, the `min_ms` slow-request
//! filter, `"profile":true` synthesis counters, and lenient decode of an
//! old daemon's `metrics` frame (committed fixture).

use std::collections::BTreeMap;

use hap_codec::{parse, Encode, Value};
use hap_service::testing::{self, StressOp};
use hap_service::{
    decode_trace, Clock, Histogram, MetricsSnapshot, Outcome, PlanService, RequestTrace,
    ServiceConfig, SpanKind, Verb,
};

/// A service whose telemetry clock advances by exactly `step_nanos` per
/// reading: span timelines become a deterministic function of how many
/// times the request path consulted the clock.
fn step_service(step_nanos: u64) -> PlanService {
    PlanService::new(ServiceConfig {
        workers: 1,
        telemetry_clock: Clock::step(step_nanos, step_nanos),
        ..ServiceConfig::default()
    })
    .expect("service boots")
}

fn verb_line(op: &str, id: u64, extra: Vec<(&str, Value)>) -> String {
    let mut fields = vec![("op", Value::Str(op.into())), ("id", Value::int(id))];
    fields.extend(extra);
    Value::obj(fields).render()
}

/// Runs one request line and returns the parsed `ok:true` response.
fn ok_response(service: &PlanService, line: &str) -> Value {
    let (response, shutdown) = service.handle_line(line);
    assert!(!shutdown);
    let v = parse(&response).expect("response parses");
    assert!(v.field("ok").unwrap().as_bool().unwrap(), "error frame: {response}");
    v
}

fn fetch_metrics(service: &PlanService, id: u64) -> MetricsSnapshot {
    let v = ok_response(service, &verb_line("metrics", id, Vec::new()));
    MetricsSnapshot::decode(v.field("metrics").unwrap()).expect("metrics decode")
}

fn fetch_traces(service: &PlanService, id: u64, n: usize, min_ms: u64) -> Vec<RequestTrace> {
    let line =
        verb_line("trace", id, vec![("n", Value::int(n as u64)), ("min_ms", Value::int(min_ms))]);
    let v = ok_response(service, &line);
    v.field("traces")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|t| decode_trace(t).expect("trace decodes"))
        .collect()
}

/// The quantile a perfect percentile computation reports for `samples`
/// under the histogram's bucketing: each sample maps to its bucket's
/// upper bound, and rank `ceil(q · n)` (1-based, clamped) picks from the
/// sorted list.
fn reference_quantile(samples: &[u64], q: f64) -> u64 {
    let mut bounds: Vec<u64> = samples.iter().map(|&v| Histogram::bucket_upper_bound(v)).collect();
    bounds.sort_unstable();
    let rank = ((q * bounds.len() as f64).ceil() as usize).clamp(1, bounds.len());
    bounds[rank - 1]
}

/// The acceptance bar: drive the seeded stress schedule through the
/// daemon under an injected clock, then check every `metrics` series —
/// count, sum, max, p50/p90/p99 — against a reference percentile
/// computation over the per-request latencies the `trace` verb reports.
#[test]
fn metrics_quantiles_match_a_reference_percentile_computation() {
    let service = step_service(1_000);
    let (hot_n, repeats, flood_n) = (4, 3, 6);
    // Seed-robust (the reference is computed from this run's own traces,
    // and the outcome counts hold for any interleaving), so CI also runs
    // a randomized seed; it is logged here for reproduction.
    let seed =
        std::env::var("HAP_TELEMETRY_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x9a7_5eed);
    eprintln!("telemetry schedule seed: {seed}");
    let ops = testing::schedule(seed, hot_n, repeats, flood_n);
    for (i, op) in ops.iter().enumerate() {
        let req = match *op {
            StressOp::Hot(h) => testing::hot_request(h),
            StressOp::OneOff(o) => testing::one_off_request(o),
            StressOp::Replan(_) => unreachable!("plain schedules carry no replans"),
        };
        ok_response(&service, &testing::request_line(&req, i as u64 + 1));
    }

    // Snapshot metrics *before* pulling traces: handle_line seals each
    // request's trace synchronously (and the metrics request's own trace
    // only after its snapshot), so the snapshot covers exactly the
    // schedule.
    let metrics = fetch_metrics(&service, 9_001);
    assert_eq!(metrics.traces_recorded, ops.len() as u64);
    let traces = fetch_traces(&service, 9_002, ops.len() + 8, 0);

    // Reference samples: the total latency every trace reported, grouped
    // by verb × outcome. (The trace list also holds the metrics request's
    // own trace by now; it has no metrics series yet and drops out of the
    // per-series lookup.)
    let mut samples: BTreeMap<(String, String), Vec<u64>> = BTreeMap::new();
    for t in &traces {
        samples
            .entry((t.verb.as_str().to_string(), t.outcome.as_str().to_string()))
            .or_default()
            .push(t.total_nanos);
    }

    // Sequential driving makes outcome counts exact: every hot request
    // misses once and hits on each repeat pass; one-offs always miss.
    let find = |verb: &str, outcome: &str| {
        metrics.series.iter().find(|s| s.verb == verb && s.outcome == outcome)
    };
    assert_eq!(find("plan", "hit").expect("hit series").count, (hot_n * (repeats - 1)) as u64);
    assert_eq!(find("plan", "miss").expect("miss series").count, (hot_n + flood_n) as u64);
    assert!(find("plan", "coalesced").is_none(), "sequential run cannot coalesce");

    for s in &metrics.series {
        let key = (s.verb.clone(), s.outcome.clone());
        let vals = samples.get(&key).unwrap_or_else(|| panic!("no trace samples for {key:?}"));
        assert_eq!(s.count as usize, vals.len(), "{key:?} count");
        assert_eq!(s.sum_ns, vals.iter().sum::<u64>(), "{key:?} sum");
        assert_eq!(s.max_ns, *vals.iter().max().unwrap(), "{key:?} max");
        for (q, got) in [(0.5, s.p50_ns), (0.9, s.p90_ns), (0.99, s.p99_ns)] {
            assert_eq!(got, reference_quantile(vals, q), "{key:?} q={q}");
        }
    }

    // The stats verb agrees with the telemetry totals.
    let stats = ok_response(&service, &verb_line("stats", 9_003, Vec::new()));
    let stat = |key: &str| stats.field("stats").unwrap().field(key).unwrap().as_u64().unwrap();
    assert!(stat("traces_recorded") >= ops.len() as u64);
    assert!(stat("metrics_samples") >= ops.len() as u64);
}

#[test]
fn hit_and_miss_traces_carry_the_expected_span_timelines() {
    let service = step_service(1_000);
    let req = testing::hot_request(0);
    ok_response(&service, &testing::request_line(&req, 1)); // miss
    ok_response(&service, &testing::request_line(&req, 2)); // hit
    let traces = fetch_traces(&service, 3, 8, 0);
    assert_eq!(traces.len(), 2, "newest first: hit then miss");

    let kinds = |t: &RequestTrace| t.spans.iter().map(|s| s.kind).collect::<Vec<_>>();
    let (hit, miss) = (&traces[0], &traces[1]);

    assert_eq!(hit.request_id, 2);
    assert_eq!(hit.verb, Verb::Plan);
    assert_eq!(hit.outcome, Outcome::Hit);
    assert_eq!(kinds(hit), vec![SpanKind::Decode, SpanKind::CacheLookup, SpanKind::Encode]);
    assert!(hit.annotations.is_empty(), "a plain hit ran no synthesis to profile");

    assert_eq!(miss.request_id, 1);
    assert_eq!(miss.outcome, Outcome::Miss);
    assert_eq!(
        kinds(miss),
        vec![
            SpanKind::Decode,
            SpanKind::CacheLookup,
            SpanKind::QueueWait,
            SpanKind::Synthesis,
            SpanKind::Encode,
        ]
    );
    // The synthesis profile folds into the miss's trace as annotations.
    assert!(miss.annotations.iter().any(|(k, _)| k == "waves"));
    assert!(miss.annotations.iter().any(|(k, v)| k == "expansions" && *v > 0));

    // Under the injected step clock every span is well-formed: starts
    // monotone across the timeline, ends never before starts, and the
    // total covers first start to last end.
    for t in [hit, miss] {
        for s in &t.spans {
            assert!(s.end_nanos >= s.start_nanos);
        }
        for w in t.spans.windows(2) {
            assert!(w[1].start_nanos >= w[0].start_nanos);
        }
        let first = t.spans.first().unwrap().start_nanos;
        let last = t.spans.iter().map(|s| s.end_nanos).max().unwrap();
        assert_eq!(t.total_nanos, last - first);
    }
}

#[test]
fn trace_min_ms_keeps_only_slow_requests() {
    // One millisecond per clock reading: misses consult the clock more
    // (queue + synthesis marks), so they are strictly slower than hits,
    // and every timestamp is an exact multiple of 1 ms — the filter's
    // millisecond granularity loses nothing.
    let service = step_service(1_000_000);
    for (id, i) in [(1, 0), (2, 1), (3, 0), (4, 1)] {
        ok_response(&service, &testing::request_line(&testing::hot_request(i), id));
    }

    let all = fetch_traces(&service, 5, 16, 0);
    assert_eq!(all.len(), 4);
    let hit_max = all
        .iter()
        .filter(|t| t.outcome == Outcome::Hit)
        .map(|t| t.total_nanos)
        .max()
        .expect("two hits");
    let miss_min = all
        .iter()
        .filter(|t| t.outcome == Outcome::Miss)
        .map(|t| t.total_nanos)
        .min()
        .expect("two misses");
    assert!(hit_max < miss_min, "misses read the clock more: {hit_max} vs {miss_min}");

    let thr_ms = miss_min / 1_000_000;
    let slow = fetch_traces(&service, 6, 16, thr_ms);
    assert!(slow.iter().all(|t| t.total_nanos >= thr_ms * 1_000_000));
    let expected: Vec<u64> =
        all.iter().filter(|t| t.total_nanos >= thr_ms * 1_000_000).map(|t| t.trace_id).collect();
    let got: Vec<u64> = slow.iter().filter(|t| t.verb == Verb::Plan).map(|t| t.trace_id).collect();
    assert_eq!(got, expected, "exactly the slow plan requests survive the filter");

    // An unreachable bound filters everything — later verb requests
    // included.
    assert!(fetch_traces(&service, 7, 16, 1_000_000).is_empty());
}

#[test]
fn profile_requests_surface_synthesis_counters_even_on_cache_hits() {
    let service = step_service(1_000);
    let req = testing::hot_request(1);

    // A plain miss answers without a profile field.
    let v = ok_response(&service, &testing::request_line(&req, 1));
    assert_eq!(v.field("source").unwrap().as_str().unwrap(), "synthesized");
    assert!(v.get("profile").is_none());

    // `"profile":true` on the following cache hit still reports how the
    // cached plan was found (the profile index remembers).
    let line = verb_line(
        "plan",
        2,
        vec![
            ("graph", req.graph.encode()),
            ("cluster", req.cluster.encode()),
            ("options", req.options.encode()),
            ("profile", Value::Bool(true)),
        ],
    );
    let v = ok_response(&service, &line);
    assert_eq!(v.field("source").unwrap().as_str().unwrap(), "cache");
    let profile = v.field("profile").unwrap();
    assert!(profile.field("waves").unwrap().as_u64().unwrap() > 0);
    assert!(profile.field("expansions").unwrap().as_u64().unwrap() > 0);

    // And a profiled miss reports the synthesis it just ran. (A hot-set
    // request, not a one-off: one-offs plan greedily with a zero time
    // budget, so their A* counters are legitimately all zero.)
    let fresh = testing::hot_request(3);
    let line = verb_line(
        "plan",
        3,
        vec![
            ("graph", fresh.graph.encode()),
            ("cluster", fresh.cluster.encode()),
            ("options", fresh.options.encode()),
            ("profile", Value::Bool(true)),
        ],
    );
    let v = ok_response(&service, &line);
    assert_eq!(v.field("source").unwrap().as_str().unwrap(), "synthesized");
    assert!(v.field("profile").unwrap().field("expansions").unwrap().as_u64().unwrap() > 0);
}

#[test]
fn replans_record_under_the_replan_verb() {
    let service = step_service(1_000);
    let req = testing::hot_request(2);
    let v = ok_response(&service, &testing::request_line(&req, 1));
    let prior = v.field("fingerprint").unwrap().as_str().unwrap().to_string();

    let line = verb_line(
        "replan",
        2,
        vec![("prior", Value::Str(prior)), ("delta", testing::replan_delta(2).encode())],
    );
    let v = ok_response(&service, &line);
    assert!(v.get("replan").is_some(), "replan responses carry the diff");

    // Fetch traces first: the trace request's own trace seals only after
    // its snapshot, so the newest visible trace is still the replan.
    let newest = fetch_traces(&service, 3, 1, 0);
    assert_eq!(newest[0].verb, Verb::Replan);
    assert_eq!(newest[0].outcome, Outcome::Replan);

    let metrics = fetch_metrics(&service, 4);
    let series =
        metrics.series.iter().find(|s| s.verb == "replan").expect("replan verb has its own series");
    assert_eq!(series.outcome, "replan");
    assert_eq!(series.count, 1);
}

#[test]
fn disabled_telemetry_answers_empty_and_records_nothing() {
    let service = PlanService::new(ServiceConfig {
        workers: 1,
        telemetry: false,
        ..ServiceConfig::default()
    })
    .expect("service boots");
    ok_response(&service, &testing::request_line(&testing::hot_request(0), 1));
    ok_response(&service, &testing::request_line(&testing::hot_request(0), 2));

    let metrics = fetch_metrics(&service, 3);
    assert_eq!(metrics, MetricsSnapshot::default());
    assert!(fetch_traces(&service, 4, 16, 0).is_empty());

    let stats = ok_response(&service, &verb_line("stats", 5, Vec::new()));
    let stat = |key: &str| stats.field("stats").unwrap().field(key).unwrap().as_u64().unwrap();
    assert_eq!(stat("traces_recorded"), 0);
    assert_eq!(stat("metrics_samples"), 0);
    // The service itself still works (it just isn't measured).
    assert_eq!(stat("hits"), 1);
}

/// Zero-sample regression: a fresh daemon (telemetry on, nothing served
/// yet) and a `--no-telemetry` daemon that *has* served requests must
/// both render empty latency series — no fabricated p50/p99 rows, no
/// NaN/inf from dividing by a zero count — through the exact code path
/// `hap-client --prom` prints.
#[test]
fn zero_sample_telemetry_renders_empty_series_not_bogus_quantiles() {
    use hap_codec::Decode;
    use hap_service::{render_prometheus, StatsSnapshot};

    let fetch_stats = |service: &PlanService, id: u64| {
        let v = ok_response(service, &verb_line("stats", id, Vec::new()));
        StatsSnapshot::decode(v.field("stats").unwrap()).expect("stats decode")
    };

    // Fresh daemon: zero requests, zero series.
    let fresh = step_service(1_000);
    let metrics = fetch_metrics(&fresh, 1);
    assert!(metrics.series.is_empty(), "an idle daemon has no latency series");
    let prom = render_prometheus(&fetch_stats(&fresh, 2), &metrics);
    assert!(prom.contains("hap_stat{name=\"hits\"} 0\n"), "stats gauges still render:\n{prom}");
    assert!(
        !prom.contains("hap_request_latency_seconds"),
        "no latency samples may be fabricated for an idle daemon:\n{prom}"
    );
    assert!(!prom.contains("NaN") && !prom.contains("inf"), "zero-sample math leaked:\n{prom}");

    // `--no-telemetry` daemon that served real traffic: still empty.
    let disabled = PlanService::new(ServiceConfig {
        workers: 1,
        telemetry: false,
        ..ServiceConfig::default()
    })
    .expect("service boots");
    ok_response(&disabled, &testing::request_line(&testing::hot_request(0), 1));
    ok_response(&disabled, &testing::request_line(&testing::hot_request(0), 2));
    let metrics = fetch_metrics(&disabled, 3);
    assert!(metrics.series.is_empty());
    let stats = fetch_stats(&disabled, 4);
    assert_eq!(stats.hits, 1, "the daemon served traffic, it just did not measure it");
    let prom = render_prometheus(&stats, &metrics);
    assert!(prom.contains("hap_stat{name=\"hits\"} 1\n"));
    assert!(!prom.contains("hap_request_latency_seconds"), "{prom}");
    assert!(!prom.contains("NaN") && !prom.contains("inf"), "{prom}");
}

/// An old daemon's `metrics` frame, committed verbatim: it predates the
/// `traces_recorded`, `max_ns`, and `sum_ns` fields. A newer client must
/// decode it to zeros for the missing fields, not error.
#[test]
fn old_daemon_metrics_fixture_decodes_leniently() {
    let frame = include_str!("fixtures/metrics_old_daemon.json");
    let v = parse(frame.trim()).expect("fixture parses");
    assert!(v.field("ok").unwrap().as_bool().unwrap());
    let snap = MetricsSnapshot::decode(v.field("metrics").unwrap()).expect("lenient decode");
    assert_eq!(snap.traces_recorded, 0, "field the old daemon never sent");
    assert_eq!(snap.series.len(), 2);
    let hit = &snap.series[0];
    assert_eq!((hit.verb.as_str(), hit.outcome.as_str()), ("plan", "hit"));
    assert_eq!(hit.count, 41);
    assert_eq!(hit.p50_ns, 48_127);
    assert_eq!(hit.p99_ns, 63_487);
    assert_eq!(hit.max_ns, 0, "field the old daemon never sent");
    assert_eq!(hit.sum_ns, 0, "field the old daemon never sent");
    let shed = &snap.series[1];
    assert_eq!((shed.verb.as_str(), shed.outcome.as_str()), ("plan", "shed"));
    assert_eq!(shed.count, 3);
}
