//! Property tests for the crash-consistency contract of the persistence
//! log (CI: `service-faults`).
//!
//! The contract under test (see `hap_service::load_cache`):
//!
//! * Appends write record bytes first, the newline last — so a crash
//!   mid-append leaves at most one *unterminated* final line. Recovery
//!   must load the full acknowledged prefix at **every** possible
//!   truncation offset of that line, and truncate the torn bytes away.
//! * A corrupt line anywhere else — interior, or newline-terminated —
//!   is real disk corruption and must be a hard error, never a skip.
//! * A committed v2-era log (checksum-less records, written by the PR-5
//!   daemon) loads bit-identically and migrates to checksummed v3 on
//!   compaction.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use hap_codec::{parse_persist_line, persist_line, CachedPlan};
use hap_service::{compact_log, load_cache, LoadOutcome, PlanCache};
use proptest::prelude::*;

/// A real plan body to build records from: the first committed v2 fixture
/// entry, parsed. `persist_line` takes the fingerprint separately, so one
/// body yields arbitrarily many distinct records.
fn fixture_plan() -> CachedPlan {
    let content = std::fs::read_to_string(fixture_path()).expect("committed fixture");
    let line = content.lines().next().expect("fixture has entries");
    parse_persist_line(line).expect("fixture line parses").1
}

fn fixture_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v2_cache.jsonl"))
}

/// A unique temp log path per call (proptest cases run concurrently).
fn temp_log() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("hap-persist-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("cache-{n}.jsonl"))
}

fn load_fresh(path: &std::path::Path) -> Result<(PlanCache, LoadOutcome), hap_codec::CodecError> {
    let cache = PlanCache::new(1024);
    load_cache(&cache, path).map(|outcome| (cache, outcome))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Exhaustive torn-tail recovery: for a log of `k` intact lines plus
    /// one final line truncated at *every* byte offset, loading always
    /// yields the full acknowledged prefix, reports recovery exactly when
    /// bytes were cut mid-record, and leaves a clean file behind.
    #[test]
    fn torn_final_line_recovers_at_every_offset(k in 1usize..4, fp_base in 0u64..1 << 48) {
        let plan = fixture_plan();
        let lines: Vec<String> =
            (0..=k).map(|i| persist_line(fp_base + i as u64, &plan)).collect();
        let prefix: String = lines[..k].iter().map(|l| format!("{l}\n")).collect();
        let last = &lines[k];
        let path = temp_log();

        for cut in 0..=last.len() {
            std::fs::write(&path, format!("{prefix}{}", &last[..cut])).unwrap();
            let (cache, outcome) = load_fresh(&path).unwrap();
            if cut == last.len() {
                // Unterminated but byte-complete record: the crash hit
                // between the record write and the newline write. Loads.
                prop_assert_eq!(outcome, LoadOutcome { loaded: k + 1, torn_tail_recovered: false });
            } else {
                // Truncated mid-record (cut == 0 is the clean case: the
                // crash hit before any record byte landed).
                let torn = cut > 0;
                prop_assert_eq!(outcome, LoadOutcome { loaded: k, torn_tail_recovered: torn });
                // Recovery truncated the torn bytes off the file...
                let len = std::fs::metadata(&path).unwrap().len();
                prop_assert_eq!(len, prefix.len() as u64, "cut {}", cut);
                // ...so a second boot is clean.
                let (_, again) = load_fresh(&path).unwrap();
                prop_assert_eq!(again, LoadOutcome { loaded: k, torn_tail_recovered: false });
            }
            // Every acknowledged record is served bit-identically.
            for (i, line) in lines[..k].iter().enumerate() {
                let fp = fp_base + i as u64;
                let loaded = cache.get(fp).unwrap_or_else(|| panic!("cut {cut}: fp {fp} lost"));
                prop_assert_eq!(&persist_line(fp, &loaded), line);
            }
        }
        // The fully terminated log loads everything with no recovery.
        let full: String = lines.iter().map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, &full).unwrap();
        let (_, outcome) = load_fresh(&path).unwrap();
        prop_assert_eq!(outcome, LoadOutcome { loaded: k + 1, torn_tail_recovered: false });
        std::fs::remove_file(&path).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// A flipped byte anywhere outside the torn-tail window — in an
    /// interior line, or in a newline-terminated final line — is real
    /// corruption and must fail the load, whatever the flip produced
    /// (invalid JSON, invalid UTF-8, a split line, a well-typed value
    /// change caught only by the checksum, a corrupted version tag).
    #[test]
    fn interior_corruption_is_always_rejected(
        k in 1usize..4,
        fp_base in 0u64..1 << 48,
        line_pick in 0usize..1 << 30,
        byte_pick in 0usize..1 << 30,
        flip in 1u8..=255,
    ) {
        let plan = fixture_plan();
        let lines: Vec<String> =
            (0..=k).map(|i| persist_line(fp_base + i as u64, &plan)).collect();
        let full: String = lines.iter().map(|l| format!("{l}\n")).collect();
        let target = line_pick % lines.len();
        let offset_in_line = byte_pick % lines[target].len();
        let offset: usize =
            lines[..target].iter().map(|l| l.len() + 1).sum::<usize>() + offset_in_line;

        let mut data = full.clone().into_bytes();
        data[offset] ^= flip;
        let path = temp_log();
        std::fs::write(&path, &data).unwrap();
        let err = load_fresh(&path).map(|(_, outcome)| outcome);
        prop_assert!(
            err.is_err(),
            "line {} byte {} xor {:#04x} slipped through: {:?}",
            target, offset_in_line, flip, err
        );
        std::fs::remove_file(&path).ok();
    }
}

/// The committed PR-5 fixture (three checksum-less `"v":2` records) loads,
/// serves bit-identical plans, and migrates to checksummed v3 lines on
/// compaction — proving the upgrade path from a real pre-upgrade log.
#[test]
fn v2_fixture_log_migrates_at_compaction() {
    let original = std::fs::read_to_string(fixture_path()).unwrap();
    assert!(original.lines().count() >= 3, "fixture carries several entries");
    assert!(
        original.lines().all(|l| l.starts_with("{\"v\":2,\"fp\":")),
        "fixture must stay v2-era"
    );

    // Compaction rewrites the file, so work on a copy.
    let path = temp_log();
    std::fs::write(&path, &original).unwrap();
    let (cache, outcome) = load_fresh(&path).unwrap();
    assert_eq!(outcome, LoadOutcome { loaded: 3, torn_tail_recovered: false });
    let before: Vec<(u64, String)> =
        cache.snapshot().iter().map(|(fp, plan)| (*fp, persist_line(*fp, plan))).collect();
    assert_eq!(before.len(), 3);

    compact_log(&cache, &path).unwrap();
    let migrated = std::fs::read_to_string(&path).unwrap();
    assert_eq!(migrated.lines().count(), 3);
    assert!(
        migrated.lines().all(|l| l.starts_with("{\"v\":3,\"sum\":\"0x")),
        "compaction migrates every record to the checksummed format: {migrated}"
    );

    // The migrated log reloads bit-identically.
    let (reloaded, outcome) = load_fresh(&path).unwrap();
    assert_eq!(outcome, LoadOutcome { loaded: 3, torn_tail_recovered: false });
    for (fp, line) in &before {
        let plan = reloaded.get(*fp).expect("migrated entry survives");
        assert_eq!(&persist_line(*fp, &plan), line, "fp {fp:#x} drifted through migration");
    }
    std::fs::remove_file(&path).ok();
}

/// A kept torn tail (unterminated but byte-complete — the crash hit
/// between record and newline) is healed by compaction: the file gains
/// its newline back and stays fully parseable.
#[test]
fn compaction_heals_kept_unterminated_tail() {
    let plan = fixture_plan();
    let path = temp_log();
    let first = persist_line(7, &plan);
    let second = persist_line(8, &plan);
    std::fs::write(&path, format!("{first}\n{second}")).unwrap();

    let (cache, outcome) = load_fresh(&path).unwrap();
    assert_eq!(outcome, LoadOutcome { loaded: 2, torn_tail_recovered: false });
    compact_log(&cache, &path).unwrap();
    let healed = std::fs::read_to_string(&path).unwrap();
    assert!(healed.ends_with('\n'), "compaction terminates the kept tail");
    let (_, outcome) = load_fresh(&path).unwrap();
    assert_eq!(outcome, LoadOutcome { loaded: 2, torn_tail_recovered: false });
    std::fs::remove_file(&path).ok();
}
