//! The deterministic multi-tenant overload harness (CI: `service-soak`).
//!
//! Drives seeded adversarial tenant mixes from `hap_service::testing`
//! over real loopback sockets and asserts the service's overload
//! contract:
//!
//! * **Hot-set retention** — with cost-aware admission ON a one-off flood
//!   cannot evict the hot working set (hit rate stays ≥ 90%); with
//!   admission OFF (plain PR-4 LRU) the same schedule demonstrably
//!   collapses the hit rate.
//! * **Queue-depth shedding** — a full synthesis backlog returns typed
//!   `busy` frames carrying `retry_after_ms`, and the client's
//!   exponential backoff retries to eventual success.
//! * **TTL expiry** — wire-requested and config-default TTLs expire
//!   cached plans, which are then re-synthesized bit-identically.
//! * **Single flight under pressure** — duplicate bursts coalesce (never
//!   shed, never duplicated) even with a one-deep queue.
//! * **Restart bit-identity** — plans served after a persisted restart
//!   (new versioned record format) carry the exact bits of the cold run.
//!
//! The schedule *order* is seeded (`HAP_SOAK_SEED`, logged so a failing
//! randomized CI run is reproducible); request content, fingerprints and
//! admission densities are fixed, so the assertions hold for every seed.

use std::collections::HashMap;

use hap_service::testing::{
    self, hot_hit_rate, hot_request, one_off_request, slow_request, ReplyBits, StressOp,
};
use hap_service::{Client, RetryPolicy, Server, ServiceConfig};

/// The schedule seed: `HAP_SOAK_SEED` when set (CI's randomized soak
/// run), a fixed default otherwise.
fn soak_seed() -> u64 {
    std::env::var("HAP_SOAK_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xBAD_C0FFE)
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hap-overload-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("cache.jsonl")
}

const HOT_N: usize = 6;
const HOT_REPEATS: usize = 4;
const FLOOD_N: usize = 64;
/// Sized for the hot set: 16 entries over 16 shards (one per shard), so a
/// flood *must* displace hot entries to be cached at all.
const CAPACITY: usize = 16;

fn overload_config(admission: bool) -> ServiceConfig {
    ServiceConfig { cache_capacity: CAPACITY, cache_admission: admission, ..Default::default() }
}

/// Warm the hot set, then drive the seeded hot+flood mix sequentially.
/// Returns (hit rate over measurement-phase hot steps, per-hot bits).
fn run_retention(admission: bool, seed: u64) -> (f64, HashMap<usize, ReplyBits>, Server) {
    let server = Server::start(overload_config(admission)).unwrap();
    let retry = RetryPolicy::default();
    let warmup: Vec<StressOp> = (0..HOT_N).map(StressOp::Hot).collect();
    let warm_outcomes = testing::drive_sequential(server.addr(), &warmup, &retry);
    let mut bits = HashMap::new();
    for o in &warm_outcomes {
        assert_eq!(o.source, "synthesized", "warmup is all cold");
        let StressOp::Hot(i) = o.op else { unreachable!() };
        bits.insert(i, o.bits.clone());
    }
    let ops = testing::schedule(seed, HOT_N, HOT_REPEATS, FLOOD_N);
    let outcomes = testing::drive_sequential(server.addr(), &ops, &retry);
    // Whatever the cache decided, every hot reply must carry the exact
    // bits of its cold synthesis — admission may cost re-syntheses, never
    // correctness.
    for o in &outcomes {
        if let StressOp::Hot(i) = o.op {
            assert_eq!(o.bits, bits[&i], "hot-{i} plan drifted from cold synthesis");
        }
    }
    (hot_hit_rate(&outcomes), bits, server)
}

#[test]
fn hot_set_retention_requires_admission() {
    let seed = soak_seed();
    println!("overload harness seed: {seed} (set HAP_SOAK_SEED to reproduce)");
    assert!(
        testing::hot_set_fits(HOT_N, CAPACITY),
        "hot-set fingerprints exceed a cache shard's budget; retune testing::hot_request"
    );

    let (rate_on, _, server_on) = run_retention(true, seed);
    let stats_on = server_on.service().stats();
    assert!(
        rate_on >= 0.90,
        "admission ON must retain the hot set under flood: hit rate {rate_on:.3}, {stats_on:?}"
    );
    assert!(
        stats_on.admission_rejected > 0,
        "the flood must have been turned away by the gate: {stats_on:?}"
    );

    let (rate_off, _, server_off) = run_retention(false, seed);
    let stats_off = server_off.service().stats();
    assert!(
        rate_off < 0.75,
        "plain LRU must collapse under the same flood: hit rate {rate_off:.3}, {stats_off:?}"
    );
    assert!(
        rate_on - rate_off >= 0.20,
        "admission must demonstrably outperform plain LRU: {rate_on:.3} vs {rate_off:.3}"
    );
    assert_eq!(stats_off.admission_rejected, 0, "no gate when admission is off: {stats_off:?}");
    assert!(stats_off.evictions > stats_on.evictions, "LRU churns more: {stats_off:?}");
}

#[test]
fn queue_overflow_sheds_busy_frames_and_retry_recovers() {
    // One worker, one queue slot: a slow job on the worker plus one
    // queued job saturate the daemon.
    let config = ServiceConfig {
        workers: 1,
        max_queue_depth: 1,
        busy_retry_ms: 5,
        ..ServiceConfig::default()
    };
    let server = Server::start(config).unwrap();
    let addr = server.addr();

    std::thread::scope(|scope| {
        // Park the worker on a deliberately slow synthesis.
        let slow = scope.spawn(move || {
            let req = slow_request(0);
            let mut client = Client::connect(addr).unwrap();
            client.plan(&req.graph, &req.cluster, &req.options).unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(150));
        // Fill the one queue slot with a distinct request. Retried, to
        // close the microsecond window where the worker has not yet
        // dequeued the slow job and this request would itself be shed.
        let queued = scope.spawn(move || {
            let req = hot_request(0);
            let mut client = Client::connect(addr).unwrap();
            let retry = RetryPolicy {
                max_attempts: 4,
                base_delay_ms: 5,
                max_delay_ms: 50,
                ..RetryPolicy::default()
            };
            client.plan_with_retry(&req.graph, &req.cluster, &req.options, None, &retry).unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(100));

        // The backlog is full: distinct new requests must shed with a
        // typed busy frame carrying a retry hint, synchronously.
        let mut busy_seen = 0;
        for i in 1..=3 {
            let req = one_off_request(1000 + i);
            let mut client = Client::connect(addr).unwrap();
            match client.plan(&req.graph, &req.cluster, &req.options) {
                Err(e) => {
                    assert!(e.is_busy(), "expected busy, got {e}");
                    assert_eq!(e.kind, "busy");
                    let hint = e.retry_after_ms.expect("busy frames carry retry_after_ms");
                    assert!(hint >= 5, "hint {hint} must be at least the configured base");
                    busy_seen += 1;
                }
                Ok(reply) => panic!("request {i} should have been shed, got {}", reply.source),
            }
        }
        assert_eq!(busy_seen, 3);

        // The retrying client rides the backlog out and succeeds.
        let req = one_off_request(2000);
        let mut client = Client::connect(addr).unwrap();
        let retry = RetryPolicy {
            max_attempts: 12,
            base_delay_ms: 20,
            max_delay_ms: 1_000,
            ..RetryPolicy::default()
        };
        let reply = client
            .plan_with_retry(&req.graph, &req.cluster, &req.options, None, &retry)
            .expect("backoff must ride out the backlog");
        assert_eq!(reply.source, "synthesized");
        assert!(client.busy_retries() > 0, "the retry path must actually have been exercised");

        slow.join().unwrap();
        queued.join().unwrap();
    });

    let stats = server.service().stats();
    assert!(stats.shed >= 3, "every over-cap leader sheds: {stats:?}");
    assert_eq!(stats.in_flight, 0, "shed slots must be retired: {stats:?}");
    // Shed requests never ran: only the slow job, the queued job, and the
    // retried request synthesized.
    assert_eq!(stats.synthesized, 3, "{stats:?}");
}

#[test]
fn ttl_expires_cached_plans_over_the_wire() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let req = one_off_request(9_000);

    let cold = client.plan_with_ttl(&req.graph, &req.cluster, &req.options, Some(300)).unwrap();
    assert_eq!(cold.source, "synthesized");
    let hit = client.plan_with_ttl(&req.graph, &req.cluster, &req.options, Some(300)).unwrap();
    assert_eq!(hit.source, "cache", "inside the TTL the plan serves from cache");
    assert_eq!(ReplyBits::of(&hit), ReplyBits::of(&cold));

    std::thread::sleep(std::time::Duration::from_millis(600));
    let after = client.plan_with_ttl(&req.graph, &req.cluster, &req.options, Some(300)).unwrap();
    assert_eq!(after.source, "synthesized", "expired plans are never served");
    assert_eq!(ReplyBits::of(&after), ReplyBits::of(&cold), "re-synthesis is bit-identical");
    let stats = server.service().stats();
    assert!(stats.expired >= 1, "{stats:?}");
}

#[test]
fn config_default_ttl_applies_to_plain_requests() {
    let config = ServiceConfig { default_ttl_ms: Some(250), ..ServiceConfig::default() };
    let server = Server::start(config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let req = one_off_request(9_001);

    let cold = client.plan(&req.graph, &req.cluster, &req.options).unwrap();
    assert_eq!(cold.source, "synthesized");
    assert_eq!(client.plan(&req.graph, &req.cluster, &req.options).unwrap().source, "cache");
    std::thread::sleep(std::time::Duration::from_millis(500));
    let after = client.plan(&req.graph, &req.cluster, &req.options).unwrap();
    assert_eq!(after.source, "synthesized", "the config default TTL expired the entry");
    assert_eq!(ReplyBits::of(&after), ReplyBits::of(&cold));
}

#[test]
fn duplicate_bursts_coalesce_and_are_never_shed() {
    // Even with a one-deep queue, identical duplicates join the in-flight
    // synthesis instead of being shed: coalescing adds no queue load.
    const BURST: usize = 8;
    let config = ServiceConfig { workers: 1, max_queue_depth: 1, ..ServiceConfig::default() };
    let server = Server::start(config).unwrap();
    let addr = server.addr();

    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..BURST)
            .map(|_| {
                scope.spawn(move || {
                    let req = hot_request(1);
                    let mut client = Client::connect(addr).unwrap();
                    client.plan(&req.graph, &req.cluster, &req.options).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for reply in &replies[1..] {
        assert_eq!(ReplyBits::of(reply), ReplyBits::of(&replies[0]));
    }
    let stats = server.service().stats();
    assert_eq!(stats.synthesized, 1, "single flight: {stats:?}");
    assert_eq!(stats.shed, 0, "duplicates must coalesce, not shed: {stats:?}");
    assert_eq!(
        stats.coalesced + stats.hits + stats.synthesized,
        BURST as u64,
        "every request accounted for: {stats:?}"
    );
}

#[test]
fn chaos_device_loss_replans_mid_traffic_keep_every_invariant() {
    let seed = soak_seed();
    println!("chaos harness seed: {seed} (set HAP_SOAK_SEED to reproduce)");

    // Ample capacity: this test isolates the *replan* invariants amid
    // adversarial traffic (retention-under-flood has its own test above);
    // the chaos entries must not be able to displace the hot set.
    let server = Server::start(ServiceConfig::default()).unwrap();
    let retry = RetryPolicy::default();
    let warmup: Vec<StressOp> = (0..HOT_N).map(StressOp::Hot).collect();
    let warm = testing::drive_sequential(server.addr(), &warmup, &retry);
    let mut bits = HashMap::new();
    for o in &warm {
        assert_eq!(o.source, "synthesized", "warmup is all cold");
        let StressOp::Hot(i) = o.op else { unreachable!() };
        bits.insert(i, o.bits.clone());
    }

    // Mid-traffic chaos: seeded single-device losses trigger `replan`
    // against the prior fingerprints, interleaved with the usual
    // hot+flood mix.
    const REPLANS: usize = 4;
    let ops = testing::chaos_schedule(seed, HOT_N, HOT_REPEATS, FLOOD_N, REPLANS);
    assert_eq!(
        ops.iter().filter(|o| matches!(o, StressOp::Replan(_))).count(),
        REPLANS,
        "the chaos schedule carries every requested replan"
    );
    let outcomes = testing::drive_sequential(server.addr(), &ops, &retry);

    // Chaos must not perturb unaffected tenants: every hot reply still
    // carries its cold-synthesis bits, and the hot set keeps hitting.
    for o in &outcomes {
        if let StressOp::Hot(i) = o.op {
            assert_eq!(o.bits, bits[&i], "hot-{i} plan drifted under chaos");
        }
    }
    assert!(
        hot_hit_rate(&outcomes) >= 0.90,
        "hot hit rate must survive chaos: {:.3}",
        hot_hit_rate(&outcomes)
    );

    // The acceptance bar, under traffic: every replanned plan is
    // bit-identical to cold synthesis on the post-delta cluster.
    let mut cold = HashMap::new();
    for o in &outcomes {
        if let StressOp::Replan(i) = o.op {
            let expected = cold.entry(i).or_insert_with(|| {
                let req = hot_request(i);
                let cluster = testing::replan_delta(i).apply(&req.cluster).unwrap();
                let plan = hap::parallelize(&req.graph, &cluster, &req.options).unwrap();
                ReplyBits {
                    program_fp: plan.program.fingerprint(),
                    time_bits: plan.estimated_time.to_bits(),
                    ratio_bits: plan
                        .ratios
                        .iter()
                        .map(|row| row.iter().map(|b| b.to_bits()).collect())
                        .collect(),
                }
            });
            assert_eq!(&o.bits, expected, "replan-{i} drifted from cold synthesis");
        }
    }

    let stats = server.service().stats();
    // Every chaos step rode the replan verb (priors were warmed, so the
    // cold fallback never fired), nothing shed, nothing errored.
    assert_eq!(stats.replanned, REPLANS as u64, "{stats:?}");
    assert_eq!(stats.shed, 0, "sequential chaos traffic must never shed: {stats:?}");
    assert_eq!(stats.errors, 0, "no unknown_fingerprint fallbacks expected: {stats:?}");
}

/// Regression: the replan index used to be memory-only, so a `replan`
/// against a prior planned before a daemon restart answered
/// `unknown_fingerprint` even though the plan itself had been persisted.
/// The index now rebuilds from the request triples in the v3 log at boot:
/// a restarted daemon must answer the replan, bit-identically to cold
/// synthesis on the post-delta cluster.
#[test]
fn replan_answers_after_a_restart_from_the_rebuilt_index() {
    let path = temp_path("replan-restart");
    let config = || ServiceConfig { cache_path: Some(path.clone()), ..ServiceConfig::default() };
    let req = hot_request(0);
    let delta = testing::replan_delta(0);

    {
        let server = Server::start(config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let cold = client.plan(&req.graph, &req.cluster, &req.options).unwrap();
        assert_eq!(cold.source, "synthesized");
        // Server drops: queue drains, log is flushed.
    }

    let server = Server::start(config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client
        .replan(req.fingerprint(), &delta)
        .expect("a restarted daemon must rebuild its replan index from the log");
    let cluster = delta.apply(&req.cluster).unwrap();
    let expected = hap::parallelize(&req.graph, &cluster, &req.options).unwrap();
    assert_eq!(reply.plan.program.fingerprint(), expected.program.fingerprint());
    assert_eq!(reply.plan.estimated_time.to_bits(), expected.estimated_time.to_bits());
    let stats = server.service().stats();
    assert_eq!(stats.replanned, 1, "the replan verb served it: {stats:?}");
    assert_eq!(stats.errors, 0, "no unknown_fingerprint after restart: {stats:?}");
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn plans_stay_bit_identical_across_a_persisted_restart() {
    let path = temp_path("restart");
    let config = || ServiceConfig {
        cache_path: Some(path.clone()),
        cache_capacity: CAPACITY,
        ..ServiceConfig::default()
    };
    let warmup: Vec<StressOp> = (0..4).map(StressOp::Hot).collect();
    let retry = RetryPolicy::default();

    let before = {
        let server = Server::start(config()).unwrap();
        testing::drive_sequential(server.addr(), &warmup, &retry)
        // Server drops: queue drains, log is flushed.
    };
    let logged = std::fs::read_to_string(&path).unwrap();
    assert!(
        logged.lines().all(|l| l.starts_with("{\"v\":3,\"sum\":")),
        "the daemon writes the versioned record format"
    );

    let server = Server::start(config()).unwrap();
    let after = testing::drive_sequential(server.addr(), &warmup, &retry);
    for (b, a) in before.iter().zip(after.iter()) {
        assert_eq!(a.source, "cache", "the restarted daemon answers from disk");
        assert_eq!(a.bits, b.bits, "restart must preserve plan bits exactly");
    }
    let stats = server.service().stats();
    assert_eq!(stats.synthesized, 0, "{stats:?}");
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}
