//! The connection-scale soak (CI: `connection-scale`).
//!
//! Proves the event-loop claim at its design point: one I/O thread plus
//! the fixed worker pool serves ~1k concurrent connections. The test
//! holds a large fleet of idle connections open while PR-5's seeded
//! stress traffic runs underneath (half of it over the chunked streaming
//! transport), then asserts:
//!
//! * connections add **zero** OS threads — thread count is flat from
//!   before the fleet connects to after it is serving;
//! * the daemon's own accounting: `thread_count() ≤ workers + 2`;
//! * the PR-5 overload invariants survive at scale (hot-set hit rate,
//!   no shedding below the queue cap, bit-identical hot plans);
//! * streamed and plain responses carry identical plan bits;
//! * the event-loop gauges report the fleet (`peak_connections`);
//! * RSS stays bounded — per-connection state is small;
//! * dropping the fleet drains `open_connections` back down.
//!
//! Linux-only: thread/RSS/fd-limit observations read `/proc`. The fleet
//! size adapts to `RLIMIT_NOFILE` (client and server ends live in this
//! one process, so each connection costs two descriptors), which is how
//! CI's lowered `ulimit -n` still gets a meaningful run.

#![cfg(target_os = "linux")]

use std::net::TcpStream;
use std::time::{Duration, Instant};

use hap_service::testing::{self, hot_hit_rate, hot_request, StressOp};
use hap_service::{Client, RetryPolicy, Server, ServiceConfig};

fn proc_field(path: &str, key: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let line = text.lines().find(|l| l.starts_with(key))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Soft `RLIMIT_NOFILE`, from `/proc/self/limits` (std exposes no
/// getrlimit).
fn soft_fd_limit() -> u64 {
    let text = std::fs::read_to_string("/proc/self/limits").unwrap_or_default();
    text.lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

fn os_threads() -> u64 {
    proc_field("/proc/self/status", "Threads:").expect("/proc/self/status Threads")
}

/// Approximate resident set in bytes (`statm` pages × 4 KiB; on larger
/// page sizes this undercounts, which only loosens the bound).
fn rss_bytes() -> u64 {
    let text = std::fs::read_to_string("/proc/self/statm").unwrap_or_default();
    text.split_whitespace().nth(1).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0) * 4096
}

fn soak_seed() -> u64 {
    std::env::var("HAP_SOAK_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC0_11EC7)
}

const WORKERS: usize = 2;
const HOT_N: usize = 6;
const HOT_REPEATS: usize = 3;
const FLOOD_N: usize = 24;

#[test]
fn a_thousand_idle_connections_cost_no_threads_and_no_invariants() {
    let seed = soak_seed();
    println!("connection-scale seed: {seed} (set HAP_SOAK_SEED to reproduce)");
    let config = ServiceConfig {
        workers: WORKERS,
        cache_capacity: 16,
        // The fleet must stay open for the whole soak.
        idle_timeout_ms: 0,
        ..ServiceConfig::default()
    };
    let mut server = Server::start(config).unwrap();
    let addr = server.addr();
    assert!(
        server.thread_count() <= WORKERS + 2,
        "event loop + workers only: {} threads",
        server.thread_count()
    );

    // Two fds per connection (both ends are this process), plus headroom
    // for the cache, test harness, and stress clients.
    let budget = soft_fd_limit().saturating_sub(128) / 2;
    let target = budget.min(1_000) as usize;
    assert!(target >= 64, "fd limit too low for a meaningful soak: {}", soft_fd_limit());
    println!("connection-scale: opening {target} idle connections");

    let threads_before = os_threads();
    let rss_before = rss_bytes();

    // The idle fleet. Nothing is ever written on these; they just occupy
    // poller registrations.
    let mut fleet: Vec<TcpStream> = Vec::with_capacity(target);
    for i in 0..target {
        match TcpStream::connect(addr) {
            Ok(s) => fleet.push(s),
            Err(e) => panic!("connect {i}/{target}: {e}"),
        }
    }

    // Wait until the loop has accepted every one (connect() completes on
    // the kernel backlog, ahead of accept()).
    let mut stats_client = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = stats_client.stats().unwrap();
        if stats.open_connections >= (target + 1) as u64 {
            break;
        }
        assert!(Instant::now() < deadline, "fleet never fully accepted: {stats:?}");
        std::thread::sleep(Duration::from_millis(50));
    }

    // The core claim: a thousand connections, zero new threads.
    let threads_after = os_threads();
    assert_eq!(
        threads_after, threads_before,
        "accepting {target} connections must not spawn threads"
    );

    // PR-5 stress traffic underneath the fleet — warmup cold, then the
    // seeded hot/flood mix, half plain, half streamed.
    let retry = RetryPolicy::default();
    let warmup: Vec<StressOp> = (0..HOT_N).map(StressOp::Hot).collect();
    let warm = testing::drive_sequential(addr, &warmup, &retry);
    assert!(warm.iter().all(|o| o.source == "synthesized"), "warmup is all cold");

    let ops = testing::schedule(seed, HOT_N, HOT_REPEATS, FLOOD_N);
    let (first, second) = ops.split_at(ops.len() / 2);
    let mut outcomes = testing::drive_sequential_opts(addr, first, &retry, false);
    outcomes.extend(testing::drive_sequential_opts(addr, second, &retry, true));

    // Hot plans never drift, streamed or not.
    for o in &outcomes {
        if let StressOp::Hot(i) = o.op {
            let reference = warm.iter().find(|w| w.op == StressOp::Hot(i)).unwrap();
            assert_eq!(o.bits, reference.bits, "hot-{i} plan drifted under the fleet");
        }
    }
    let rate = hot_hit_rate(&outcomes);
    assert!(rate >= 0.90, "hot-set hit rate must hold at scale: {rate:.3}");

    // Streamed and plain paths agree bit for bit on the same request.
    let req = hot_request(0);
    let mut plain_client = Client::connect(addr).unwrap();
    let plain = plain_client.plan(&req.graph, &req.cluster, &req.options).unwrap();
    let streamed = plain_client.plan_streamed(&req.graph, &req.cluster, &req.options).unwrap();
    assert_eq!(plain.source, "cache");
    assert_eq!(streamed.source, "cache");
    assert_eq!(streamed.program.fingerprint(), plain.program.fingerprint());
    assert_eq!(streamed.estimated_time.to_bits(), plain.estimated_time.to_bits());
    assert_eq!(streamed.ratios, plain.ratios);

    let stats = stats_client.stats().unwrap();
    assert!(stats.peak_connections >= target as u64, "{stats:?}");
    assert_eq!(stats.shed, 0, "nothing sheds below the queue cap: {stats:?}");
    assert_eq!(stats.in_flight, 0, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");

    // Per-connection state is bounded: generous ceiling, but it would
    // catch a per-connection buffer leak at this scale immediately.
    let rss_growth = rss_bytes().saturating_sub(rss_before);
    assert!(
        rss_growth < 256 * 1024 * 1024,
        "RSS grew {} MiB over the soak",
        rss_growth / (1024 * 1024)
    );

    // Dropping the fleet drains the gauge: every EOF is observed and
    // deregistered.
    drop(fleet);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = stats_client.stats().unwrap();
        if stats.open_connections <= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "fleet EOFs never drained: {stats:?}");
        std::thread::sleep(Duration::from_millis(50));
    }

    server.shutdown();
}
