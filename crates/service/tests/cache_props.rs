//! Property tests for the plan cache's cost-aware admission policy and
//! TTL expiry, under a manually-advanced clock so every timing decision
//! is exact and deterministic.
//!
//! Invariants (the ISSUE-5 acceptance set):
//!
//! 1. capacity is never exceeded;
//! 2. an admitted entry's saved-seconds-per-byte density is at least that
//!    of every entry it evicted (and a rejected candidate's is below its
//!    would-be victim's);
//! 3. expired entries are never served;
//! 4. with all costs and sizes equal (and no TTLs), the cache behaves
//!    *exactly* like the PR-4 sharded LRU, checked against a reference
//!    model.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hap_service::{Admission, CachePolicy, CachedPlan, PlanCache};
use hap_synthesis::DistProgram;
use proptest::prelude::*;

const SHARDS: usize = 16;

fn plan(synthesis_nanos: u64, size_bytes: u64, ttl_nanos: Option<u64>) -> Arc<CachedPlan> {
    Arc::new(CachedPlan {
        program: DistProgram::default(),
        ratios: vec![vec![1.0]],
        estimated_time: 1.0,
        rounds: 1,
        graph_fp: 1,
        opts_fp: 1,
        features: [1.0; 4],
        synthesis_nanos,
        size_bytes,
        ttl_nanos,
    })
}

/// One scripted cache operation, decoded from a random tuple.
#[derive(Debug)]
enum Op {
    /// Offer `fp` with the given cost metadata.
    Insert { fp: u64, nanos: u64, size: u64, ttl: Option<u64> },
    /// Look `fp` up.
    Get { fp: u64 },
    /// Advance the manual clock.
    Advance { nanos: u64 },
}

/// Decodes `(kind, fp, nanos, size, ttl)` tuples into operations. `fp`
/// stays in a small universe so shards genuinely contend.
fn decode_ops(raw: &[(usize, u64, u64, u64, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, fp, nanos, size, ttl)| match kind % 4 {
            0 | 1 => Op::Insert {
                fp: fp % 96,
                nanos: nanos % 1_000_000,
                size: size % 10_000 + 1,
                ttl: if ttl % 3 == 0 { Some(ttl % 5_000 + 1) } else { None },
            },
            2 => Op::Get { fp: fp % 96 },
            _ => Op::Advance { nanos: nanos % 2_000 },
        })
        .collect()
}

/// What the test knows about the latest offered plan per fingerprint.
#[derive(Clone, Copy)]
struct Meta {
    density: f64,
    /// Manual-clock deadline, if the entry carried a TTL when (last)
    /// admitted or replaced.
    expires_at: Option<u64>,
    /// Whether the last offer was actually stored (admitted/replaced).
    stored: bool,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Invariants 1–3 over fully random cost/size/TTL traffic.
    #[test]
    fn admission_and_ttl_invariants(
        raw in prop::collection::vec(
            (0usize..4, 0u64..10_000, 0u64..1_000_000_000, 0u64..1_000_000, 0u64..100_000),
            1..250,
        ),
    ) {
        const CAPACITY: usize = 32; // multiple of SHARDS: per-shard budget 2
        let clock = Arc::new(AtomicU64::new(0));
        let cache =
            PlanCache::with_manual_clock(CAPACITY, CachePolicy::default(), clock.clone());
        let mut known: HashMap<u64, Meta> = HashMap::new();
        let mut now = 0u64;

        for op in decode_ops(&raw) {
            match op {
                Op::Advance { nanos } => {
                    now += nanos;
                    clock.store(now, Ordering::SeqCst);
                }
                Op::Insert { fp, nanos, size, ttl } => {
                    let p = plan(nanos, size, ttl);
                    let density = p.density();
                    let verdict = cache.insert(fp, p);
                    match &verdict {
                        Admission::Admitted { evicted } => {
                            for victim in evicted {
                                // Invariant 2: nothing denser was displaced.
                                let v = known[victim];
                                prop_assert!(
                                    density >= v.density,
                                    "admitted density {density} below evicted {}",
                                    v.density
                                );
                            }
                            for victim in evicted {
                                known.get_mut(victim).unwrap().stored = false;
                            }
                        }
                        Admission::Rejected { victim_fp } => {
                            let v = known[victim_fp];
                            prop_assert!(
                                density < v.density,
                                "rejected density {density} not below victim {}",
                                v.density
                            );
                        }
                        Admission::Replaced => {}
                    }
                    let stored = !matches!(verdict, Admission::Rejected { .. });
                    known.insert(
                        fp,
                        Meta {
                            density,
                            expires_at: ttl.map(|t| now + t.max(1)),
                            stored,
                        },
                    );
                    // Invariant 1: capacity never exceeded.
                    prop_assert!(cache.len() <= CAPACITY, "len {} > {CAPACITY}", cache.len());
                }
                Op::Get { fp } => {
                    let got = cache.get(fp);
                    match known.get(&fp) {
                        // Invariant 3: expired entries are never served.
                        Some(meta) if meta.expires_at.is_some_and(|d| now >= d) => {
                            prop_assert!(
                                got.is_none(),
                                "expired entry {fp} served at {now} (deadline {:?})",
                                meta.expires_at
                            );
                        }
                        // Anything served must be the latest stored offer.
                        _ => {
                            if let Some(p) = got {
                                let meta = known[&fp];
                                prop_assert!(meta.stored, "served a rejected candidate {fp}");
                                prop_assert!(
                                    (p.density() - meta.density).abs() < 1e-12,
                                    "stale entry served for {fp}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Invariant 4: equal costs and sizes (no TTL) degrade to exactly the
    /// PR-4 sharded LRU, verified against a reference model.
    #[test]
    fn equal_costs_recover_plain_lru_exactly(
        raw in prop::collection::vec((0usize..3, 0u64..10_000), 1..300),
    ) {
        const CAPACITY: usize = 32;
        let per_shard = CAPACITY / SHARDS;
        let cache = PlanCache::new(CAPACITY);
        // Reference model: per-shard maps of fp -> last-used tick, evicting
        // min (last_used, fp) — the documented PR-4 policy. The model's
        // tick mirrors the cache's: one per get/insert call.
        let mut model: Vec<HashMap<u64, u64>> = vec![HashMap::new(); SHARDS];
        for (tick, &(kind, fp)) in raw.iter().enumerate() {
            let tick = tick as u64;
            let fp = fp % 96;
            let shard = (fp as usize) & (SHARDS - 1);
            match kind % 3 {
                0 | 1 => {
                    let verdict = cache.insert(fp, plan(1_000, 100, None));
                    prop_assert!(
                        !matches!(verdict, Admission::Rejected { .. }),
                        "equal-density candidates must always admit"
                    );
                    let m = &mut model[shard];
                    if m.insert(fp, tick).is_none() && m.len() > per_shard {
                        let victim =
                            *m.iter().min_by_key(|(k, t)| (**t, **k)).map(|(k, _)| k).unwrap();
                        m.remove(&victim);
                        match &verdict {
                            Admission::Admitted { evicted } => {
                                prop_assert_eq!(evicted.clone(), vec![victim]);
                            }
                            other => prop_assert!(false, "expected eviction, got {:?}", other),
                        }
                    }
                }
                2 => {
                    let got = cache.get(fp).is_some();
                    let expected = model[shard].contains_key(&fp);
                    prop_assert_eq!(got, expected, "LRU membership diverged on fp {}", fp);
                    if expected {
                        model[shard].insert(fp, tick);
                    }
                }
                _ => unreachable!(),
            }
        }
        // Final membership agrees entry for entry.
        let total: usize = model.iter().map(|m| m.len()).sum();
        prop_assert_eq!(cache.len(), total);
        for m in &model {
            for fp in m.keys() {
                prop_assert!(cache.get(*fp).is_some(), "model has {} but cache lost it", fp);
            }
        }
    }
}
