//! The distributed plan-cache tier's soak (CI: `cluster-soak`): three
//! daemons on a consistent-hash ring with K=2 replication, driven over
//! real loopback sockets through the ring-aware [`ClusterClient`].
//!
//! What the harness proves:
//!
//! * **Ring-wide single flight** — duplicate requests synthesize exactly
//!   once *cluster-wide*: non-owners proxy to the fingerprint's primary
//!   instead of synthesizing, counter-asserted across all daemons.
//! * **Typed redirects** — a daemon receiving a request stamped with a
//!   different membership epoch answers `not_owner` with the owner's
//!   address; clients follow it and adopt the newer ring.
//! * **Kill/rejoin chaos** — killing a plan's primary owner mid-traffic
//!   loses nothing acknowledged (synchronous K-way replication moved the
//!   plan before the ack), the surviving replica re-covers the range from
//!   cache, and a rejoined node picks up its share again.
//! * **Bit identity throughout** — every reply, through every route
//!   (direct, proxied, failed-over, replicated, replanned), carries the
//!   exact bits of in-process cold synthesis.
//!
//! The schedule *order* is seeded (`HAP_CLUSTER_SEED`, logged so a
//! failing randomized CI run is reproducible); request content and
//! fingerprints are fixed, so the assertions hold for every seed.

use std::collections::HashMap;

use hap_service::testing::{self, hot_hit_rate, hot_request, ReplyBits, StressCluster, StressOp};
use hap_service::{Client, ClusterClient, RetryPolicy, StatsSnapshot};

const HOT_N: usize = 6;
const FLOOD_N: usize = 8;
const REPEATS: usize = 2;
const REPLICATION: u32 = 2;

fn cluster_seed() -> u64 {
    std::env::var("HAP_CLUSTER_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC1A5_7E12)
}

/// The bits cold in-process synthesis produces for hot request `i` — the
/// ground truth every wire reply must match.
fn cold_bits(i: usize) -> ReplyBits {
    let req = hot_request(i);
    let plan = hap::parallelize(&req.graph, &req.cluster, &req.options).unwrap();
    ReplyBits {
        program_fp: plan.program.fingerprint(),
        time_bits: plan.estimated_time.to_bits(),
        ratio_bits: plan
            .ratios
            .iter()
            .map(|row| row.iter().map(|b| b.to_bits()).collect())
            .collect(),
    }
}

/// Every hot reply in `outcomes` must carry its fingerprint's known bits.
fn assert_hot_bits(outcomes: &[testing::StepOutcome], bits: &HashMap<usize, ReplyBits>, tag: &str) {
    for o in outcomes {
        if let StressOp::Hot(i) = o.op {
            assert_eq!(&o.bits, &bits[&i], "{tag}: hot-{i} plan drifted");
        }
    }
}

#[test]
fn ring_verb_reports_membership_and_daemons_agree() {
    let cluster = StressCluster::start(3, REPLICATION, |_, _| {});
    for addr in cluster.addrs() {
        let mut client = Client::connect(&*addr).unwrap();
        let (info, self_addr, installed) = client.ring().unwrap();
        assert!(!installed, "a plain query installs nothing");
        assert_eq!(info.epoch, 1);
        assert_eq!(info.replication, REPLICATION);
        assert_eq!(info.members.len(), 3);
        assert_eq!(self_addr, addr, "each daemon knows its own ring address");
        assert!(info.members.contains(&addr));
    }
    // A stale (equal-epoch) install is rejected, monotonically.
    let info = cluster.ring().info().clone();
    let mut client = Client::connect(cluster.addr(0)).unwrap();
    assert!(!client.install_ring(&info, cluster.addr(0)).unwrap(), "equal epoch is stale");
}

#[test]
fn cluster_routes_replicates_and_keeps_single_flight_ring_wide() {
    let cluster = StressCluster::start(3, REPLICATION, |_, _| {});
    let mut client = ClusterClient::connect(&cluster.addrs()).unwrap();
    assert_eq!(client.ring_epoch(), 1, "the client learned the ring from its seeds");

    // Cold pass: every plan synthesizes once, at its fingerprint's owner.
    for i in 0..HOT_N {
        let req = hot_request(i);
        let reply = client.plan(&req.graph, &req.cluster, &req.options).unwrap();
        assert_eq!(reply.source, "synthesized", "hot-{i} cold");
        assert_eq!(ReplyBits::of(&reply), cold_bits(i), "hot-{i} differs from in-process plan");
    }
    // Warm pass: all hits, no new syntheses anywhere.
    for i in 0..HOT_N {
        let req = hot_request(i);
        let reply = client.plan(&req.graph, &req.cluster, &req.options).unwrap();
        assert_eq!(reply.source, "cache", "hot-{i} warm");
    }
    assert_eq!(client.redirects_followed(), 0, "ring-aware routing needs no redirects");
    assert_eq!(client.failovers(), 0);

    // Ring-wide single flight, counter-asserted across all daemons: N
    // distinct fingerprints → exactly N syntheses in the whole cluster.
    assert_eq!(cluster.total(|s| s.synthesized), HOT_N as u64);
    // Synchronous K=2 replication: every plan was acked by exactly one
    // other owner before its requester saw the response.
    assert_eq!(cluster.total(|s| s.replicated_out), HOT_N as u64);
    assert_eq!(cluster.total(|s| s.replicated_in), HOT_N as u64);
    assert_eq!(cluster.total(|s| s.shed), 0);
    assert_eq!(cluster.total(|s| s.errors), 0);

    // A ring-naive client asking a *non-owner* is proxied to the owner —
    // not answered with a locally synthesized duplicate. (The replica
    // would answer from its own replicated cache; the one daemon that
    // owns nothing of this fingerprint must forward.)
    let fp = hot_request(0).fingerprint();
    let other = (0..3).find(|&i| !cluster.is_owner(i, fp)).unwrap();
    let synthesized_before = cluster.total(|s| s.synthesized);
    let mut naive = Client::connect(cluster.addr(other)).unwrap();
    let req = hot_request(0);
    let reply = naive.plan(&req.graph, &req.cluster, &req.options).unwrap();
    assert_eq!(reply.source, "cache", "the owner answered from its cache through the proxy");
    assert_eq!(ReplyBits::of(&reply), cold_bits(0), "proxied reply is byte-faithful");
    assert_eq!(
        cluster.total(|s| s.synthesized),
        synthesized_before,
        "proxying synthesizes nothing"
    );
    assert_eq!(cluster.service(other).stats().proxied, 1);
}

#[test]
fn stale_epoch_requests_get_typed_redirects_and_clients_follow() {
    let mut cluster = StressCluster::start(2, 1, |_, _| {});
    let ring_before = cluster.ring();
    let stable = cluster.addr(0).to_string();

    // The client learns epoch 1: members [node0, node1].
    let mut client = ClusterClient::connect(&cluster.addrs()).unwrap();
    assert_eq!(client.ring_epoch(), 1);

    // Membership churn the client does not see: node 1 dies and rejoins
    // on a fresh port. The ephemeral-port allocator may hand the rejoiner
    // its old port back — identical address, identical token map, nothing
    // moves — so churn until the address genuinely changed.
    let old_addr = cluster.addr(1).to_string();
    cluster.kill(1);
    cluster.rejoin(1);
    while cluster.addr(1) == old_addr {
        cluster.kill(1);
        cluster.rejoin(1);
    }
    assert!(cluster.epoch() >= 3);
    let ring_after = cluster.ring();

    // A fingerprint the stale client routes to node 0, which the *new*
    // ring assigns to the rejoined node: node 0 must answer with a typed
    // `not_owner` redirect naming the rejoined node, and the client must
    // follow it and adopt epoch 3.
    let moved = (0..256)
        .find(|&i| {
            let fp = hot_request(i).fingerprint();
            ring_before.primary(fp) == Some(stable.as_str())
                && ring_after.primary(fp) != Some(stable.as_str())
        })
        .expect("some fingerprint moved off node 0 across the churn");
    let req = hot_request(moved);
    let reply = client.plan(&req.graph, &req.cluster, &req.options).unwrap();
    assert_eq!(reply.source, "synthesized");
    assert_eq!(ReplyBits::of(&reply), cold_bits(moved));
    assert!(client.redirects_followed() >= 1, "the stale route had to be redirected");
    assert_eq!(
        client.ring_epoch(),
        cluster.epoch(),
        "following the redirect taught the client the new ring"
    );
    let stats0 = cluster.service(0).stats();
    assert!(stats0.redirected >= 1, "node 0 redirected the stale request: {stats0:?}");
    assert_eq!(stats0.errors, 0, "redirects are routing, not errors: {stats0:?}");
}

/// The acceptance soak: 3 daemons, K=2, seeded hot+flood+replan traffic,
/// with the primary owner of a hot plan killed mid-run and rejoined after.
#[test]
fn cluster_soak_survives_owner_kill_and_rejoin() {
    let seed = cluster_seed();
    println!("cluster soak seed: {seed} (set HAP_CLUSTER_SEED to reproduce)");
    let mut cluster = StressCluster::start(3, REPLICATION, |_, _| {});
    let retry = RetryPolicy::default();

    // Warm the hot set through the ring and pin every plan to its
    // in-process cold-synthesis bits.
    let warmup: Vec<StressOp> = (0..HOT_N).map(StressOp::Hot).collect();
    let warm = testing::drive_cluster(&cluster.addrs(), &warmup, &retry);
    let mut bits = HashMap::new();
    for o in &warm {
        assert_eq!(o.source, "synthesized", "warmup is all cold");
        let StressOp::Hot(i) = o.op else { unreachable!() };
        assert_eq!(o.bits, cold_bits(i), "hot-{i} differs from in-process synthesis");
        bits.insert(i, o.bits.clone());
    }

    // Phase 1: steady-state traffic on the full ring.
    let ops = testing::schedule(seed, HOT_N, REPEATS, FLOOD_N);
    let phase1 = testing::drive_cluster(&cluster.addrs(), &ops, &retry);
    assert_hot_bits(&phase1, &bits, "phase 1");
    assert_eq!(hot_hit_rate(&phase1), 1.0, "a warmed full ring hits everything");
    // Ring-wide single flight so far: one synthesis per distinct
    // fingerprint (hot set + phase-1 one-offs), across all three daemons.
    let synth_after_1 = cluster.total(|s| s.synthesized);
    assert_eq!(synth_after_1, (HOT_N + FLOOD_N) as u64, "duplicates must never re-synthesize");

    // Mid-traffic chaos: kill the primary owner of hot plan 0.
    let victim = cluster.primary_index(hot_request(0).fingerprint());
    cluster.kill(victim);

    // Phase 2: the same traffic shape plus device-loss replans, against
    // the survivors. Every acknowledged plan was replicated synchronously
    // before its ack, and a leave moves a key only to its next owner —
    // the replica — so every hot request still *hits*.
    const REPLANS: usize = 2;
    let ops = testing::chaos_schedule(seed ^ 1, HOT_N, REPEATS, FLOOD_N, REPLANS);
    let phase2 = testing::drive_cluster(&cluster.addrs(), &ops, &retry);
    assert_hot_bits(&phase2, &bits, "phase 2");
    for o in &phase2 {
        if let StressOp::Hot(i) = o.op {
            assert_eq!(
                o.source, "cache",
                "hot-{i}: an owner kill must not lose an acknowledged plan"
            );
        }
    }
    // Replans answered from the replicated prior (request triple included)
    // and match cold synthesis on the post-delta cluster.
    let mut replan_cold = HashMap::new();
    for o in &phase2 {
        if let StressOp::Replan(i) = o.op {
            let expected = replan_cold.entry(i).or_insert_with(|| {
                let req = hot_request(i);
                let cluster_spec = testing::replan_delta(i).apply(&req.cluster).unwrap();
                let plan = hap::parallelize(&req.graph, &cluster_spec, &req.options).unwrap();
                ReplyBits {
                    program_fp: plan.program.fingerprint(),
                    time_bits: plan.estimated_time.to_bits(),
                    ratio_bits: plan
                        .ratios
                        .iter()
                        .map(|row| row.iter().map(|b| b.to_bits()).collect())
                        .collect(),
                }
            });
            assert_eq!(&o.bits, expected, "replan-{i} drifted from cold synthesis");
        }
    }
    // Phase 2's only syntheses: its one-offs and (at most) the replans'
    // post-delta plans — never a hot re-synthesis.
    let synth_after_2 = cluster.total(|s| s.synthesized);
    assert!(
        synth_after_2 - synth_after_1 <= (FLOOD_N + REPLANS) as u64,
        "an acknowledged hot plan was re-synthesized after the owner kill: \
         {synth_after_1} -> {synth_after_2}"
    );

    // The dead node rejoins (fresh port, epoch bump pushed everywhere).
    cluster.rejoin(victim);
    // One re-warm pass: the rejoined node re-covers its share of the
    // keyspace (its cache starts empty; first touch per moved key).
    let rewarm = testing::drive_cluster(&cluster.addrs(), &warmup, &retry);
    assert_hot_bits(&rewarm, &bits, "re-warm");
    let synth_after_rewarm = cluster.total(|s| s.synthesized);
    assert!(
        synth_after_rewarm - synth_after_2 <= HOT_N as u64,
        "re-covering a rejoined range costs at most one synthesis per moved key"
    );

    // Phase 3: steady state on the re-grown ring — everything hits again.
    let ops = testing::schedule(seed ^ 2, HOT_N, REPEATS, FLOOD_N);
    let phase3 = testing::drive_cluster(&cluster.addrs(), &ops, &retry);
    assert_hot_bits(&phase3, &bits, "phase 3");
    assert_eq!(hot_hit_rate(&phase3), 1.0, "the re-warmed ring hits everything");

    // Measured hit rate across the whole soak (the acceptance bar).
    let all: Vec<_> = phase1.iter().chain(phase2.iter()).chain(phase3.iter()).cloned().collect();
    assert!(
        hot_hit_rate(&all) >= 0.90,
        "hot-set hit rate through kill and rejoin: {:.3}",
        hot_hit_rate(&all)
    );

    // Cluster-wide hygiene: nothing shed, nothing errored, and the
    // rejoined daemon is genuinely back in the data path.
    assert_eq!(cluster.total(|s| s.shed), 0, "the soak must never shed");
    assert_eq!(cluster.total(|s| s.errors), 0, "the soak must never error");
    assert_eq!(cluster.epoch(), 3);
    for addr in cluster.addrs() {
        let mut c = Client::connect(&*addr).unwrap();
        let (info, _, _) = c.ring().unwrap();
        assert_eq!(info.epoch, 3, "every live daemon holds the final membership");
    }
    let back: StatsSnapshot = cluster.service(victim).stats();
    assert!(
        back.hits + back.synthesized + back.replicated_in + back.proxied > 0,
        "the rejoined daemon never served or stored anything: {back:?}"
    );
}
