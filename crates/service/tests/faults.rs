//! Seeded fault-injection harness (CI: `service-faults`).
//!
//! Drives the daemon's durability and isolation machinery through the
//! `hap_service::faults` failpoint registry and asserts the robustness
//! contract:
//!
//! * **Atomic compaction** — a compaction killed at *any* stage (temp-file
//!   create, record write, torn write, fsync, rename) leaves the previous
//!   log bit-for-bit loadable; only a failure *after* the rename leaves
//!   the (complete) new log.
//! * **Torn-append recovery** — an append cut short mid-record is
//!   truncated away on the next boot and every acknowledged record loads.
//! * **Crash-recovery torture** — a seeded schedule of append/compaction
//!   faults over many boot cycles: every boot succeeds, the recovered
//!   cache is exactly the acknowledged set, plans stay bit-identical.
//! * **Graceful degradation** — a persistence outage flips the daemon to
//!   memory-only serving (`persistence_degraded`, `persist_errors`) and a
//!   healed disk recovers the full outage window on the next append.
//! * **Panic isolation** — a synthesis job that panics delivers a typed
//!   `internal` error to its leader and every coalesced follower, leaks
//!   nothing, and the daemon keeps serving — in-process and over a socket.
//! * **Client io-retry** — a connection dropped mid-response is
//!   reconnected and the request resent (plans are idempotent).
//!
//! The failpoint registry is process-global, so every test here holds the
//! `faults::exclusive()` guard; CI runs this binary with
//! `--test-threads=1` and both a fixed and a logged randomized
//! `HAP_FAULTS_SEED`.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hap_codec::{parse_persist_line, persist_line, CachedPlan, Encode};
use hap_service::faults::{self, Fault, FaultSpec};
use hap_service::testing::{hot_request, slow_request, ReplyBits, StressRequest};
use hap_service::{
    compact_log, load_cache, Client, FsyncPolicy, LoadOutcome, PersistLog, PlanCache, PlanService,
    PlanSource, RetryPolicy, Server, ServiceConfig,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A real plan body to persist: the first committed v2 fixture entry.
/// `persist_line` takes the fingerprint separately, so one body yields
/// arbitrarily many distinct records.
fn fixture_plan() -> Arc<CachedPlan> {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v2_cache.jsonl");
    let content = std::fs::read_to_string(fixture).expect("committed fixture");
    let line = content.lines().next().expect("fixture has entries");
    Arc::new(parse_persist_line(line).expect("fixture line parses").1)
}

/// A unique temp log path per call.
fn temp_log() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("hap-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("cache-{n}.jsonl"))
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Asserts the log at `path` loads exactly `fps`, each bit-identical to
/// the fixture body, with no recovery needed. Returns the loaded cache.
fn assert_log_holds(path: &std::path::Path, fps: &[u64], context: &str) -> PlanCache {
    let plan = fixture_plan();
    let cache = PlanCache::new(1024);
    let outcome =
        load_cache(&cache, path).unwrap_or_else(|e| panic!("{context}: boot refused: {e}"));
    assert_eq!(outcome, LoadOutcome { loaded: fps.len(), torn_tail_recovered: false }, "{context}");
    for &fp in fps {
        let got = cache.get(fp).unwrap_or_else(|| panic!("{context}: fp {fp:#x} lost"));
        assert_eq!(persist_line(fp, &got), persist_line(fp, &plan), "{context}: bits drifted");
    }
    cache
}

// ---------------------------------------------------------------------------
// Atomic compaction
// ---------------------------------------------------------------------------

/// Regression for the PR-4-era `File::create` rewrite, which zeroed the
/// live log before writing a byte: compaction killed at every pre-rename
/// stage must leave the old log untouched and loadable; killed after the
/// rename, the complete *new* log is live. Either way, nothing is torn
/// and a retry on a healed disk succeeds.
#[test]
fn compaction_killed_at_any_stage_leaves_a_loadable_log() {
    let _faults = faults::exclusive();
    let plan = fixture_plan();
    let old_fps = [1u64, 2, 3];
    let new_fps = [1u64, 2, 3, 4, 5];
    let old = PlanCache::new(64);
    let new = PlanCache::new(64);
    for &fp in &old_fps {
        old.insert(fp, plan.clone());
    }
    for &fp in &new_fps {
        new.insert(fp, plan.clone());
    }

    let pre_rename: &[(&str, Fault)] = &[
        (
            faults::COMPACT_CREATE,
            Fault::Error(std::io::ErrorKind::PermissionDenied, "create".into()),
        ),
        (faults::COMPACT_WRITE, Fault::Error(std::io::ErrorKind::StorageFull, "disk full".into())),
        (faults::COMPACT_WRITE, Fault::ShortWrite(33)),
        (faults::COMPACT_FSYNC, Fault::Error(std::io::ErrorKind::Other, "fsync EIO".into())),
        (faults::COMPACT_RENAME, Fault::Error(std::io::ErrorKind::Other, "rename EIO".into())),
    ];
    for (point, fault) in pre_rename {
        let path = temp_log();
        compact_log(&old, &path).unwrap();
        faults::arm(point, FaultSpec::now(fault.clone()));
        let err = compact_log(&new, &path).expect_err(point);
        assert!(err.to_string().contains("injected fault"), "{point}: {err}");
        assert_log_holds(&path, &old_fps, point);
        // The disk healed (faults are one-shot): the retry goes through.
        compact_log(&new, &path).unwrap_or_else(|e| panic!("{point}: retry failed: {e}"));
        assert_log_holds(&path, &new_fps, point);
    }

    // Past the rename the new log is already live; the directory-fsync
    // failure is still reported (the rename may not be durable) but what
    // is on disk is the complete new log.
    let path = temp_log();
    compact_log(&old, &path).unwrap();
    faults::arm(
        faults::COMPACT_DIR_FSYNC,
        FaultSpec::now(Fault::Error(std::io::ErrorKind::Other, "dir fsync EIO".into())),
    );
    compact_log(&new, &path).expect_err("dir-fsync failure is surfaced");
    assert_log_holds(&path, &new_fps, "after rename");
}

// ---------------------------------------------------------------------------
// Torn appends
// ---------------------------------------------------------------------------

/// An append cut short mid-record (a crash inside `write(2)`) leaves a
/// torn final line; the next boot truncates it away, loads every
/// acknowledged record, and the log is appendable again.
#[test]
fn torn_append_is_recovered_on_the_next_boot() {
    let _faults = faults::exclusive();
    let plan = fixture_plan();
    let path = temp_log();
    let cache = PlanCache::new(64);
    let log = PersistLog::start(&cache, path.clone(), FsyncPolicy::Always);
    assert!(!log.degraded());
    cache.insert(10, plan.clone());
    assert!(log.append(&cache, 10, &plan), "healthy append is acknowledged");

    faults::arm(faults::APPEND_WRITE, FaultSpec::now(Fault::ShortWrite(25)));
    cache.insert(11, plan.clone());
    assert!(!log.append(&cache, 11, &plan), "torn append is not acknowledged");
    assert!(log.degraded());
    assert_eq!(log.errors(), 1);
    drop(log); // crash: no shutdown sync, torn bytes stay on disk

    let raw = std::fs::read_to_string(&path).unwrap();
    assert!(!raw.ends_with('\n'), "the torn record must really be unterminated");

    let rebooted = PlanCache::new(64);
    let outcome = load_cache(&rebooted, &path).unwrap();
    assert_eq!(outcome, LoadOutcome { loaded: 1, torn_tail_recovered: true });
    assert!(rebooted.get(10).is_some());
    assert!(rebooted.get(11).is_none(), "the unacknowledged record is gone");

    // Boot-time compaction leaves a clean, appendable log.
    let log = PersistLog::start(&rebooted, path.clone(), FsyncPolicy::Always);
    assert!(!log.degraded());
    rebooted.insert(12, plan.clone());
    assert!(log.append(&rebooted, 12, &plan));
    drop(log);
    assert_log_holds(&path, &[10, 12], "after recovery");
}

// ---------------------------------------------------------------------------
// Crash-recovery torture
// ---------------------------------------------------------------------------

/// The torture schedule seed: `HAP_FAULTS_SEED` when set (CI's randomized
/// run, logged for reproducibility), a fixed default otherwise.
fn faults_seed() -> u64 {
    std::env::var("HAP_FAULTS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xFA17)
}

/// Many boot → serve → crash cycles under a seeded schedule of append and
/// compaction faults, against a model of what the log must hold. Every
/// boot succeeds; the recovered cache is exactly the acknowledged set (a
/// prefix of admissions, plus full outage windows recovered by re-probe
/// compactions); every plan stays bit-identical.
#[test]
fn seeded_crash_recovery_torture() {
    let _faults = faults::exclusive();
    let seed = faults_seed();
    eprintln!("crash-recovery torture: HAP_FAULTS_SEED={seed}");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let plan = fixture_plan();
    let path = temp_log();

    // The model: fingerprints the next boot must recover, and whether the
    // file currently ends in a torn line.
    let mut on_disk: Vec<u64> = Vec::new();
    let mut torn_pending = false;
    let mut next_fp = 0x100u64;

    for cycle in 0..12 {
        // ---- boot: load, verify against the model ----
        let cache = PlanCache::new(1024);
        let outcome = load_cache(&cache, &path)
            .unwrap_or_else(|e| panic!("cycle {cycle}: boot refused: {e}"));
        assert_eq!(
            outcome,
            LoadOutcome { loaded: on_disk.len(), torn_tail_recovered: torn_pending },
            "cycle {cycle}"
        );
        for &fp in &on_disk {
            let got = cache.get(fp).unwrap_or_else(|| panic!("cycle {cycle}: fp {fp:#x} lost"));
            assert_eq!(
                persist_line(fp, &got),
                persist_line(fp, &plan),
                "cycle {cycle}: fp {fp:#x} drifted"
            );
        }
        torn_pending = false; // recovery truncated any torn tail
        let mut live = on_disk.clone();

        // ---- maybe kill the boot-time compaction at a seeded stage ----
        let compact_killed = rng.random_range(0..4u32) == 0;
        if compact_killed {
            let stages = [
                faults::COMPACT_CREATE,
                faults::COMPACT_WRITE,
                faults::COMPACT_FSYNC,
                faults::COMPACT_RENAME,
            ];
            let point = stages[rng.random_range(0..stages.len())];
            let fault = if point == faults::COMPACT_WRITE && rng.random_bool(0.5) {
                Fault::ShortWrite(rng.random_range(1..60usize))
            } else {
                Fault::Error(std::io::ErrorKind::Other, format!("cycle {cycle}: boot outage"))
            };
            faults::arm(point, FaultSpec::now(fault));
        }
        let log = PersistLog::start(&cache, path.clone(), FsyncPolicy::Always);
        assert_eq!(log.degraded(), compact_killed, "cycle {cycle}");
        // A killed compaction leaves the previous log intact (verified at
        // the next boot): `on_disk` deliberately stays unchanged.

        // ---- serve: a few admissions, one of which may hit a dead disk ----
        let appends = rng.random_range(1..5usize);
        let fail_at = if rng.random_bool(0.5) { Some(rng.random_range(0..appends)) } else { None };
        for i in 0..appends {
            let fp = next_fp;
            next_fp += 1;
            // While degraded, appends are re-probe compactions and never
            // reach the append failpoint — arming it would leak the fault
            // into a later cycle, so only injected on a healthy log.
            let mut tearing = false;
            if Some(i) == fail_at && !log.degraded() {
                if rng.random_bool(0.5) {
                    tearing = true;
                    faults::arm(
                        faults::APPEND_WRITE,
                        FaultSpec::now(Fault::ShortWrite(rng.random_range(1..60usize))),
                    );
                } else {
                    faults::arm(
                        faults::APPEND_WRITE,
                        FaultSpec::now(Fault::Error(
                            std::io::ErrorKind::StorageFull,
                            format!("cycle {cycle}: append outage"),
                        )),
                    );
                }
            }
            cache.insert(fp, plan.clone());
            live.push(fp);
            let was_degraded = log.degraded();
            if log.append(&cache, fp, &plan) {
                if was_degraded {
                    // Successful re-probe: the whole live set (including
                    // every entry admitted during the outage) was
                    // rewritten atomically.
                    on_disk = live.clone();
                    torn_pending = false;
                } else {
                    on_disk.push(fp);
                }
            } else {
                // Unacknowledged: the model keeps the previous contents;
                // a short write leaves torn bytes for the next boot.
                if tearing {
                    torn_pending = true;
                }
                assert!(log.degraded(), "cycle {cycle}: failed append must degrade");
            }
        }
        drop(log); // crash: no shutdown sync
    }

    // Final boot: everything acknowledged survived the whole schedule.
    let cache = assert_log_holds(&path, &on_disk, "final boot");
    let log = PersistLog::start(&cache, path.clone(), FsyncPolicy::Always);
    assert!(!log.degraded(), "final boot compacts cleanly");
    assert!(!on_disk.is_empty(), "the schedule must acknowledge something");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.lines().all(|l| l.starts_with("{\"v\":3,\"sum\":\"0x")),
        "compaction leaves only checksummed records"
    );
}

// ---------------------------------------------------------------------------
// Graceful degradation, service level
// ---------------------------------------------------------------------------

fn plan_via(service: &PlanService, req: &StressRequest) -> (PlanSource, u64, Arc<CachedPlan>) {
    let (source, fp, result) =
        service.plan_values(&req.graph.encode(), &req.cluster.encode(), &req.options.encode());
    (source, fp, result.unwrap_or_else(|e| panic!("{}: {e}", req.name)))
}

/// A persistence outage must not cost a single request: the daemon flips
/// to memory-only serving (visible in stats), cache hits keep landing,
/// and the first append after the disk heals recovers the entire outage
/// window — proven by a reboot serving every plan bit-identically.
#[test]
fn persistence_outage_degrades_and_recovers_without_dropping_requests() {
    let _faults = faults::exclusive();
    let path = temp_log();
    let config = || ServiceConfig {
        cache_path: Some(path.clone()),
        fsync: FsyncPolicy::Always,
        workers: 1,
        ..Default::default()
    };
    let service = PlanService::new(config()).unwrap();
    let (s0, fp0, p0) = plan_via(&service, &hot_request(0));
    assert_eq!(s0, PlanSource::Synthesized);
    assert_eq!(service.stats().persistence_degraded, 0);
    assert_eq!(service.stats().persist_errors, 0);

    // The disk dies under the next admission's append.
    faults::arm(
        faults::APPEND_WRITE,
        FaultSpec::now(Fault::Error(std::io::ErrorKind::StorageFull, "disk full".into())),
    );
    let (s1, fp1, p1) = plan_via(&service, &hot_request(1));
    assert_eq!(s1, PlanSource::Synthesized, "the request is served despite the dead disk");
    let stats = service.stats();
    assert_eq!(stats.persistence_degraded, 1);
    assert_eq!(stats.persist_errors, 1);

    // Memory-only serving: the hot set still hits (the PR-5 retention
    // invariant holds through the outage).
    let (s1b, _, p1b) = plan_via(&service, &hot_request(1));
    assert_eq!(s1b, PlanSource::Cache);
    assert_eq!(p1b.program.fingerprint(), p1.program.fingerprint());
    let (s0b, _, _) = plan_via(&service, &hot_request(0));
    assert_eq!(s0b, PlanSource::Cache);

    // The next admission re-probes the healed disk and recovers the
    // outage window.
    let (s2, fp2, p2) = plan_via(&service, &hot_request(2));
    assert_eq!(s2, PlanSource::Synthesized);
    let stats = service.stats();
    assert_eq!(stats.persistence_degraded, 0, "a successful re-probe resumes persistence");
    assert_eq!(stats.persist_errors, 1, "no new failures after the disk healed");
    service.stop();

    // Reboot: every plan — including the one admitted while degraded —
    // recovered bit-identically and served from the cache.
    let reboot = PlanService::new(config()).unwrap();
    for (i, (fp, plan)) in [(fp0, p0), (fp1, p1), (fp2, p2)].iter().enumerate() {
        let (source, got_fp, got) = plan_via(&reboot, &hot_request(i));
        assert_eq!(source, PlanSource::Cache, "hot-{i} must hit after reboot");
        assert_eq!(got_fp, *fp);
        assert_eq!(persist_line(*fp, &got), persist_line(*fp, plan), "hot-{i} drifted");
    }
    reboot.stop();
}

// ---------------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------------

/// A synthesis job that panics must deliver a typed `internal` error to
/// the leader *and* every coalesced follower, leak no in-flight slot,
/// poison no lock, and leave the daemon serving. One worker plus a slow
/// occupier makes the leader/follower split deterministic.
#[test]
fn panicking_job_fails_leader_and_followers_with_internal() {
    let _faults = faults::exclusive();
    let service =
        Arc::new(PlanService::new(ServiceConfig { workers: 1, ..Default::default() }).unwrap());
    // skip=1: the occupier's job consults the failpoint first and passes;
    // the victims' job consults second and panics.
    faults::arm(
        faults::SYNTHESIZE,
        FaultSpec::after(1, Fault::Panic("injected synthesis bug".into())),
    );
    let occupier = {
        let service = service.clone();
        std::thread::spawn(move || {
            let req = slow_request(0);
            service.plan_values(&req.graph.encode(), &req.cluster.encode(), &req.options.encode()).2
        })
    };
    // The occupier holds the only worker; with it attached first, the
    // FIFO queue guarantees the victims' job runs second.
    wait_until("occupier in flight", || service.stats().in_flight >= 1);

    let victims: Vec<_> = (0..4)
        .map(|_| {
            let service = service.clone();
            std::thread::spawn(move || {
                let req = hot_request(0);
                service
                    .plan_values(&req.graph.encode(), &req.cluster.encode(), &req.options.encode())
                    .2
            })
        })
        .collect();
    for victim in victims {
        let result = victim.join().expect("victim thread survives");
        let err = result.expect_err("a panicked job must fail its request, not hang it");
        assert_eq!(err.kind, "internal", "{err}");
        assert!(err.to_string().contains("panicked"), "{err}");
        assert!(err.to_string().contains("injected synthesis bug"), "{err}");
    }
    occupier.join().expect("occupier thread survives").expect("occupier is unaffected");

    let stats = service.stats();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.coalesced, 3, "one leader, three coalesced followers");
    assert_eq!(stats.in_flight, 0, "the panicked job's slot is cleaned up");

    // No poisoned locks, no dead worker: the same request now succeeds.
    let (source, _, result) = service.plan_values(
        &hot_request(0).graph.encode(),
        &hot_request(0).cluster.encode(),
        &hot_request(0).options.encode(),
    );
    assert_eq!(source, PlanSource::Synthesized);
    result.expect("the daemon keeps serving after a panic");
    assert_eq!(service.stats().errors, 0, "panic is counted separately from request errors");
    service.stop();
}

/// The same contract over the wire: the panic arrives as a typed
/// `{"kind":"internal"}` error frame, the connection stays usable, and
/// the `panics` counter is visible in `stats`.
#[test]
fn panic_surfaces_as_internal_frame_over_the_socket() {
    let _faults = faults::exclusive();
    let server = Server::start(ServiceConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    faults::arm(faults::SYNTHESIZE, FaultSpec::now(Fault::Panic("wire panic".into())));

    let req = hot_request(1);
    let err = client.plan(&req.graph, &req.cluster, &req.options).unwrap_err();
    assert_eq!(err.kind, "internal", "{err}");
    assert!(err.to_string().contains("panicked"), "{err}");

    // Same connection, same request: the daemon survived and serves.
    let reply = client.plan(&req.graph, &req.cluster, &req.options).unwrap();
    assert_eq!(reply.source, "synthesized");
    let stats = client.stats().unwrap();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.in_flight, 0);
}

// ---------------------------------------------------------------------------
// Client io-retry
// ---------------------------------------------------------------------------

/// A proxy that forwards client→daemon bytes untouched but cuts the
/// daemon→client direction after a per-connection byte budget, then slams
/// the connection — the shape of a daemon crash or network partition
/// mid-response. Connections beyond the budget list are unlimited.
fn start_flaky_proxy(upstream: SocketAddr, budgets: Vec<usize>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("proxy bind");
    let addr = listener.local_addr().unwrap();
    let budgets = Arc::new(Mutex::new(VecDeque::from(budgets)));
    std::thread::spawn(move || {
        for down in listener.incoming() {
            let Ok(down) = down else { break };
            let budget = budgets.lock().unwrap().pop_front().unwrap_or(usize::MAX);
            let Ok(up) = TcpStream::connect(upstream) else { break };
            let (mut down_read, mut up_write) =
                (down.try_clone().expect("clone"), up.try_clone().expect("clone"));
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut down_read, &mut up_write);
                let _ = up_write.shutdown(Shutdown::Write);
            });
            std::thread::spawn(move || {
                let mut up = up;
                let mut down = down;
                let mut remaining = budget;
                let mut buf = [0u8; 4096];
                loop {
                    let n = match up.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => n,
                    };
                    let take = n.min(remaining);
                    if down.write_all(&buf[..take]).is_err() {
                        break;
                    }
                    remaining -= take;
                    if remaining == 0 {
                        break;
                    }
                }
                let _ = down.shutdown(Shutdown::Both);
            });
        }
    });
    addr
}

/// A connection dropped mid-response is a transport failure, not an
/// answer: `plan_with_retry` must reconnect and resend (plans are pure,
/// so the resend is idempotent) and deliver the bit-identical reply.
#[test]
fn client_reconnects_and_resends_after_midresponse_drops() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let req = hot_request(2);
    // The reference reply, fetched directly (this also warms the cache:
    // the retried request below exercises reconnection, not synthesis
    // determinism, which `overload.rs` already covers).
    let mut direct = Client::connect(server.addr()).unwrap();
    let expected = direct.plan(&req.graph, &req.cluster, &req.options).unwrap();

    // First connection dies 64 bytes into the response, the second after
    // a single byte, the third is healthy.
    let proxy = start_flaky_proxy(server.addr(), vec![64, 1]);
    let mut client = Client::connect(proxy).unwrap();
    let retry = RetryPolicy { max_attempts: 6, base_delay_ms: 1, max_delay_ms: 5, jitter_seed: 7 };
    let reply = client
        .plan_with_retry(&req.graph, &req.cluster, &req.options, None, &retry)
        .expect("retry reconnects through mid-response drops");
    assert_eq!(client.io_retries(), 2, "both truncated responses were retried");
    assert_eq!(ReplyBits::of(&reply), ReplyBits::of(&expected), "resent reply drifted");

    // Without the io-retry path a single drop is fatal: the non-retrying
    // call surfaces the transport error as-is.
    let proxy = start_flaky_proxy(server.addr(), vec![64]);
    let mut bare = Client::connect(proxy).unwrap();
    let err = bare.plan(&req.graph, &req.cluster, &req.options).unwrap_err();
    assert_eq!(err.kind, "io", "{err}");
}
