//! Wire-level tests of the event-loop transport over real loopback
//! sockets: pipelining, oversize rejection, malformed input, idle
//! timeouts, prompt external shutdown, and streaming byte-identity.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use hap::HapOptions;
use hap_cluster::ClusterSpec;
use hap_codec::{is_stream_frame, parse, Encode, StreamDecoder, StreamEvent, Value};
use hap_models::{mlp, MlpConfig};
use hap_service::{Client, Server, ServiceConfig};

fn tiny_graph() -> hap_graph::Graph {
    mlp(&MlpConfig::tiny())
}

/// The canonical plan request line, optionally advertising streaming.
fn plan_line(id: u64, stream: bool) -> String {
    let mut fields = vec![
        ("op", Value::Str("plan".into())),
        ("id", Value::int(id)),
        ("graph", tiny_graph().encode()),
        ("cluster", ClusterSpec::fig17_cluster().encode()),
        ("options", HapOptions::default().encode()),
    ];
    if stream {
        fields.push(("stream", Value::Bool(true)));
    }
    Value::obj(fields).render()
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read response line");
    assert!(n > 0, "server closed the connection unexpectedly");
    line.trim_end().to_string()
}

#[test]
fn pipelined_requests_on_one_connection_answer_in_request_order() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // One write carrying four interleaved requests (plus a blank line,
    // which must be skipped without producing a response): a plan (slow —
    // synthesized by a worker), a stats (answered inline), the same plan
    // again (coalesces or hits), another stats. Responses must come back
    // in request order even though the inline answers resolve first.
    let batch = format!(
        "{}\n{}\n\n{}\n{}\n",
        plan_line(1, false),
        "{\"op\":\"stats\",\"id\":2}",
        plan_line(3, false),
        "{\"op\":\"stats\",\"id\":4}",
    );
    writer.write_all(batch.as_bytes()).unwrap();
    writer.flush().unwrap();

    let mut plan_renderings = Vec::new();
    for expected_id in 1..=4u64 {
        let line = read_line(&mut reader);
        let v = parse(&line).unwrap();
        assert_eq!(v.field("id").unwrap().as_u64().unwrap(), expected_id, "{line}");
        assert!(v.field("ok").unwrap().as_bool().unwrap(), "{line}");
        if v.get("plan").is_some() {
            // Everything but the id must be byte-identical between the
            // two plan responses... except the source, which legitimately
            // differs (synthesized vs coalesced/cache). Compare the plan
            // payloads.
            plan_renderings.push(v.field("plan").unwrap().render());
        }
    }
    assert_eq!(plan_renderings.len(), 2);
    assert_eq!(plan_renderings[0], plan_renderings[1], "pipelined plans bit-identical");
}

#[test]
fn oversize_line_gets_a_typed_error_and_the_connection_survives() {
    let config = ServiceConfig { max_line_bytes: 1024, ..ServiceConfig::default() };
    let server = Server::start(config).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // A 64 KiB line against a 1 KiB cap.
    let mut giant = vec![b'{'; 64 * 1024];
    giant.push(b'\n');
    writer.write_all(&giant).unwrap();
    writer.flush().unwrap();
    let line = read_line(&mut reader);
    assert!(line.contains("\"ok\":false"), "{line}");
    assert!(line.contains("\"kind\":\"oversize\""), "{line}");

    // The connection is still usable.
    writer.write_all(b"{\"op\":\"stats\",\"id\":9}\n").unwrap();
    writer.flush().unwrap();
    let line = read_line(&mut reader);
    assert!(line.contains("\"id\":9"), "{line}");
    assert!(line.contains("\"ok\":true"), "{line}");
    assert!(line.contains("\"errors\":1"), "oversize counted as an error: {line}");
}

#[test]
fn invalid_utf8_gets_a_typed_parse_error_and_the_connection_survives() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    writer.write_all(b"\xff\xfe\xfd not utf8\n").unwrap();
    writer.flush().unwrap();
    let line = read_line(&mut reader);
    assert!(line.contains("\"ok\":false"), "{line}");
    assert!(line.contains("\"kind\":\"parse\""), "{line}");

    writer.write_all(b"{\"op\":\"stats\",\"id\":5}\n").unwrap();
    writer.flush().unwrap();
    let line = read_line(&mut reader);
    assert!(line.contains("\"id\":5") && line.contains("\"ok\":true"), "{line}");
}

#[test]
fn idle_connections_are_swept_after_the_timeout() {
    let config = ServiceConfig { idle_timeout_ms: 200, ..ServiceConfig::default() };
    let server = Server::start(config).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // The daemon must close the quiet connection: the blocking read
    // returns EOF rather than timing out.
    let mut buf = [0u8; 64];
    let n = stream.read(&mut buf).expect("clean EOF, not a reset");
    assert_eq!(n, 0, "idle connection closed by the sweep");

    let mut client = Client::connect(server.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.idle_closed >= 1, "{stats:?}");
    assert_eq!(stats.open_connections, 1, "only this stats connection remains: {stats:?}");
}

#[test]
fn idle_sweep_stays_prompt_at_a_large_timeout() {
    // Regression: the poll tick used `(idle / 4).max(10)` while the sweep
    // used `(idle / 4).clamp(10, 1000)`; past 4 s of idle timeout the two
    // diverged, so a quiescent loop could miss the intended 1 s sweep
    // cadence and close idle connections late. With the shared interval,
    // a 4.1 s timeout must close within timeout + ~2 sweep intervals.
    let config = ServiceConfig { idle_timeout_ms: 4_100, ..ServiceConfig::default() };
    let server = Server::start(config).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();

    let started = Instant::now();
    let mut buf = [0u8; 64];
    let n = stream.read(&mut buf).expect("clean EOF, not a reset");
    let elapsed = started.elapsed();
    assert_eq!(n, 0, "idle connection closed by the sweep");
    assert!(elapsed >= Duration::from_millis(4_000), "closed early: {elapsed:?}");
    assert!(
        elapsed < Duration::from_millis(4_100 + 2_500),
        "sweep landed late at a large timeout: {elapsed:?}"
    );
}

#[test]
fn external_shutdown_is_prompt_without_any_connection() {
    // Regression: shutting down a quiesced daemon must not require a new
    // connection to unblock `accept()` — the stop flag travels through
    // the poller's wake pipe. Bound: well under the 500 ms stop-poll
    // safety interval (the waker makes it effectively immediate).
    let mut server = Server::start(ServiceConfig::default()).unwrap();
    let started = Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "shutdown took {:?}",
        started.elapsed()
    );
}

#[test]
fn streamed_response_reassembles_byte_identical_to_the_plain_line() {
    // A tiny chunk size forces a real multi-chunk stream.
    let config = ServiceConfig { stream_chunk_bytes: 256, ..ServiceConfig::default() };
    let server = Server::start(config).unwrap();

    // Warm the cache so both raw requests below are cache-sourced and
    // their canonical lines are byte-comparable.
    let mut client = Client::connect(server.addr()).unwrap();
    let warm =
        client.plan(&tiny_graph(), &ClusterSpec::fig17_cluster(), &HapOptions::default()).unwrap();
    assert_eq!(warm.source, "synthesized");

    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Same id for both requests: the canonical line embeds the id, so
    // byte-equality requires it to match.
    writer.write_all(plan_line(7, false).as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let plain = read_line(&mut reader);
    assert!(plain.contains("\"source\":\"cache\""), "{plain}");

    writer.write_all(plan_line(7, true).as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut decoder = StreamDecoder::new(7);
    let reassembled = loop {
        let line = read_line(&mut reader);
        let frame = parse(&line).unwrap();
        assert!(is_stream_frame(&frame), "expected a stream frame, got {line}");
        match decoder.feed(&frame).unwrap() {
            StreamEvent::Chunk => continue,
            StreamEvent::Done(payload) => break payload,
        }
    };
    assert!(decoder.chunks() > 1, "response must actually arrive chunked");
    assert_eq!(reassembled, plain, "stream payload is the canonical response line");

    // The high-level client path agrees bit for bit with the plain path.
    let via_client = client
        .plan_streamed(&tiny_graph(), &ClusterSpec::fig17_cluster(), &HapOptions::default())
        .unwrap();
    assert!(client.stream_chunks() > 1);
    assert_eq!(via_client.source, "cache");
    assert_eq!(via_client.program.fingerprint(), warm.program.fingerprint());
    assert_eq!(via_client.estimated_time.to_bits(), warm.estimated_time.to_bits());
    assert_eq!(via_client.ratios, warm.ratios);
}

#[test]
fn streaming_errors_arrive_as_plain_frames() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // A malformed plan request that advertises streaming still fails as
    // one plain typed frame — clients must be able to fail fast.
    writer.write_all(b"{\"op\":\"plan\",\"id\":11,\"stream\":true}\n").unwrap();
    writer.flush().unwrap();
    let line = read_line(&mut reader);
    let v = parse(&line).unwrap();
    assert!(!is_stream_frame(&v), "{line}");
    assert!(line.contains("\"ok\":false") && line.contains("\"id\":11"), "{line}");
}
