//! End-to-end tests of the planning daemon over real loopback sockets:
//! cache-hit bit-identity, single-flight coalescing, disk persistence
//! across restarts, warm-start seeding, and error transport.

use hap::HapOptions;
use hap_cluster::{ClusterDelta, ClusterSpec};
use hap_models::{mlp, MlpConfig};
use hap_service::{Client, Server, ServiceConfig};

fn tiny_graph() -> hap_graph::Graph {
    mlp(&MlpConfig::tiny())
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hap-service-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("cache.jsonl")
}

#[test]
fn cache_hit_is_bit_identical_to_cold_synthesis() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let (graph, cluster, opts) =
        (tiny_graph(), ClusterSpec::fig17_cluster(), HapOptions::default());

    let cold = client.plan(&graph, &cluster, &opts).unwrap();
    assert_eq!(cold.source, "synthesized");
    let hit = client.plan(&graph, &cluster, &opts).unwrap();
    assert_eq!(hit.source, "cache");

    // The acceptance bar: fingerprint and estimated-time *bits* equal.
    assert_eq!(hit.fingerprint, cold.fingerprint);
    assert_eq!(hit.program.fingerprint(), cold.program.fingerprint());
    assert_eq!(hit.estimated_time.to_bits(), cold.estimated_time.to_bits());
    assert_eq!(hit.program.estimated_time.to_bits(), cold.program.estimated_time.to_bits());
    assert_eq!(hit.ratios, cold.ratios);

    // And the daemon agrees with an in-process run of the same request.
    let local = hap::parallelize(&graph, &cluster, &opts).unwrap();
    assert_eq!(cold.program.fingerprint(), local.program.fingerprint());
    assert_eq!(cold.estimated_time.to_bits(), local.estimated_time.to_bits());

    let stats = client.stats().unwrap();
    assert_eq!(stats.synthesized, 1);
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.entries, 1);
}

#[test]
fn eight_concurrent_identical_requests_coalesce_into_one_synthesis() {
    const N: usize = 8;
    let server = Server::start(ServiceConfig::default()).unwrap();
    let addr = server.addr();
    let (graph, cluster, opts) =
        (tiny_graph(), ClusterSpec::fig17_cluster(), HapOptions::default());

    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let (graph, cluster, opts) = (&graph, &cluster, &opts);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.plan(graph, cluster, opts).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All N replies carry the exact same plan bits.
    for reply in &replies[1..] {
        assert_eq!(reply.fingerprint, replies[0].fingerprint);
        assert_eq!(reply.program.fingerprint(), replies[0].program.fingerprint());
        assert_eq!(reply.estimated_time.to_bits(), replies[0].estimated_time.to_bits());
        assert_eq!(reply.ratios, replies[0].ratios);
    }

    // Exactly one synthesis ran; every other request either coalesced
    // onto it or (having arrived after completion) hit the cache.
    let stats = server.service().stats();
    assert_eq!(stats.synthesized, 1, "single flight must deduplicate: {stats:?}");
    assert_eq!(
        stats.coalesced + stats.hits + stats.synthesized,
        N as u64,
        "every request accounted for: {stats:?}"
    );
    assert_eq!(stats.in_flight, 0);
    let synthesized = replies.iter().filter(|r| r.source == "synthesized").count();
    assert_eq!(synthesized, 1, "exactly one reply reports running the synthesis");
}

#[test]
fn cache_survives_a_daemon_restart() {
    let path = temp_path("restart");
    let config = || ServiceConfig { cache_path: Some(path.clone()), ..ServiceConfig::default() };
    let (graph, cluster, opts) =
        (tiny_graph(), ClusterSpec::fig17_cluster(), HapOptions::default());

    let cold = {
        let server = Server::start(config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let reply = client.plan(&graph, &cluster, &opts).unwrap();
        assert_eq!(reply.source, "synthesized");
        reply
        // Server drops here: sockets close, queue drains.
    };
    assert!(path.exists(), "persistence log written");

    let server = Server::start(config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let warm = client.plan(&graph, &cluster, &opts).unwrap();
    assert_eq!(warm.source, "cache", "the restarted daemon answers from disk");
    assert_eq!(warm.fingerprint, cold.fingerprint);
    assert_eq!(warm.program.fingerprint(), cold.program.fingerprint());
    assert_eq!(warm.estimated_time.to_bits(), cold.estimated_time.to_bits());
    assert_eq!(warm.ratios, cold.ratios);
    let stats = server.service().stats();
    assert_eq!(stats.synthesized, 0);
    assert_eq!(stats.hits, 1);

    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn near_miss_seeds_warm_start_from_the_closest_cluster() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let (graph, opts) = (tiny_graph(), HapOptions::default());

    let a = client.plan(&graph, &ClusterSpec::fig17_cluster(), &opts).unwrap();
    assert_eq!(a.source, "synthesized");
    let b = client.plan(&graph, &ClusterSpec::fig2_cluster(), &opts).unwrap();
    assert_eq!(b.source, "synthesized", "different cluster is a genuine miss");
    let stats = server.service().stats();
    assert_eq!(stats.synthesized, 2);
    assert_eq!(stats.warm_seeded, 1, "the second request must seed from the first: {stats:?}");

    // Warm seeding is an upper bound, not a result override: the plan must
    // match a cold in-process run on the same cluster.
    let local = hap::parallelize(&graph, &ClusterSpec::fig2_cluster(), &opts).unwrap();
    assert_eq!(b.program.fingerprint(), local.program.fingerprint());
    assert_eq!(b.estimated_time.to_bits(), local.estimated_time.to_bits());
}

#[test]
fn replan_after_device_loss_matches_cold_synthesis_bit_for_bit() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let (graph, cluster, opts) =
        (tiny_graph(), ClusterSpec::fig17_cluster(), HapOptions::default());

    let cold = client.plan(&graph, &cluster, &opts).unwrap();
    assert_eq!(cold.source, "synthesized");

    // One P100 dies; the daemon replans warm from the prior plan.
    let delta = ClusterDelta::device_loss(1, 1);
    let replanned = client.replan(cold.fingerprint, &delta).unwrap();
    assert_eq!(replanned.plan.source, "synthesized");
    assert_ne!(replanned.plan.fingerprint, cold.fingerprint, "new cluster, new fingerprint");

    // The diff names the prior and accounts for every instruction.
    assert_eq!(replanned.diff.prior_fingerprint, cold.fingerprint);
    assert_eq!(replanned.diff.instrs_total, replanned.plan.program.instrs.len());
    assert!(replanned.diff.instrs_total >= replanned.diff.instrs_added);
    assert_eq!(replanned.diff.prior_estimated_time.to_bits(), cold.estimated_time.to_bits());
    assert_eq!(
        replanned.diff.estimated_time_delta.to_bits(),
        (replanned.plan.estimated_time - cold.estimated_time).to_bits()
    );

    // The acceptance bar: warm-seeded replanning is bit-identical to cold
    // synthesis on the post-delta cluster.
    let next_cluster = delta.apply(&cluster).unwrap();
    let local = hap::parallelize(&graph, &next_cluster, &opts).unwrap();
    assert_eq!(replanned.plan.program.fingerprint(), local.program.fingerprint());
    assert_eq!(replanned.plan.estimated_time.to_bits(), local.estimated_time.to_bits());

    // A plain plan for the post-delta cluster now hits the cache with the
    // replan's fingerprint, and the exact same bits.
    let direct = client.plan(&graph, &next_cluster, &opts).unwrap();
    assert_eq!(direct.source, "cache");
    assert_eq!(direct.fingerprint, replanned.plan.fingerprint);
    assert_eq!(direct.program.fingerprint(), replanned.plan.program.fingerprint());

    // Replanning the same delta again is a cache hit with the same diff.
    let again = client.replan(cold.fingerprint, &delta).unwrap();
    assert_eq!(again.plan.source, "cache");
    assert_eq!(again.diff, replanned.diff);

    // Replans chain: the replanned fingerprint is itself replannable.
    let chained =
        client.replan(replanned.plan.fingerprint, &ClusterDelta::device_loss(0, 1)).unwrap();
    assert_eq!(chained.diff.prior_fingerprint, replanned.plan.fingerprint);

    let stats = client.stats().unwrap();
    assert_eq!(stats.replanned, 3, "{stats:?}");
    assert!(stats.warm_seeded >= 1, "the replan must seed from the prior plan: {stats:?}");
}

#[test]
fn replan_of_an_unknown_fingerprint_is_a_typed_error() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.replan(0xdead_beef, &ClusterDelta::device_loss(0, 1)).unwrap_err();
    assert_eq!(err.kind, "unknown_fingerprint", "{err}");
    // The connection survives and the daemon counted the error.
    let stats = client.stats().unwrap();
    assert_eq!(stats.replanned, 0);
    assert!(stats.errors >= 1, "{stats:?}");
}

#[test]
fn cluster_emptying_deltas_are_rejected_with_typed_frames() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let (graph, cluster, opts) =
        (tiny_graph(), ClusterSpec::fig17_cluster(), HapOptions::default());
    let cold = client.plan(&graph, &cluster, &opts).unwrap();

    // Draining a machine to zero GPUs: typed rejection, no panic.
    let err = client.replan(cold.fingerprint, &ClusterDelta::device_loss(0, 2)).unwrap_err();
    assert_eq!(err.kind, "delta", "{err}");
    assert!(err.message.contains("empty machine 0"), "{err}");

    // Emptying the whole cluster.
    let empty = ClusterDelta { remove_machines: vec![0, 1], ..ClusterDelta::default() };
    let err = client.replan(cold.fingerprint, &empty).unwrap_err();
    assert_eq!(err.kind, "delta", "{err}");
    assert!(err.message.contains("empties the cluster"), "{err}");

    // An out-of-range machine index.
    let err = client.replan(cold.fingerprint, &ClusterDelta::device_loss(7, 1)).unwrap_err();
    assert_eq!(err.kind, "delta", "{err}");

    // The daemon is still fully operational.
    let hit = client.plan(&graph, &cluster, &opts).unwrap();
    assert_eq!(hit.source, "cache");
    let stats = client.stats().unwrap();
    assert_eq!(stats.replanned, 0);
    assert!(stats.errors >= 3, "{stats:?}");
}

#[test]
fn errors_travel_as_typed_frames() {
    let server = Server::start(ServiceConfig::default()).unwrap();
    let service = server.service();

    // Unparseable line -> parse error.
    let (response, _) = service.handle_line("this is not json");
    assert!(response.contains("\"ok\":false"));
    assert!(response.contains("\"kind\":\"parse\""));

    // Valid JSON, bad request shape -> decode error.
    let (response, _) = service.handle_line("{\"op\":\"plan\",\"id\":3}");
    assert!(response.contains("\"ok\":false"));
    assert!(response.contains("\"kind\":\"decode\""));
    assert!(response.contains("\"id\":3"));

    // A structurally broken graph fails in the worker and still comes
    // back as a typed frame on the requesting connection.
    let mut client = Client::connect(server.addr()).unwrap();
    let line = "{\"op\":\"plan\",\"id\":9,\"graph\":{\"nodes\":[{\"op\":[\"sum\"],\"in\":[5],\
                \"shape\":[1],\"name\":\"bad\",\"role\":\"loss\",\"seg\":0}]},\"cluster\":null,\
                \"options\":null}";
    let (response, _) = service.handle_line(line);
    assert!(response.contains("\"ok\":false"), "{response}");
    assert!(response.contains("\"kind\":\"decode\""), "{response}");

    // Unknown op.
    let (response, _) = service.handle_line("{\"op\":\"frobnicate\",\"id\":4}");
    assert!(response.contains("unknown op"));

    let stats = client.stats().unwrap();
    assert!(stats.errors >= 3, "{stats:?}");
}

#[test]
fn shutdown_request_stops_the_daemon() {
    let mut server = Server::start(ServiceConfig::default()).unwrap();
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    // The accept loop exits; wait() returns instead of blocking forever.
    server.wait();
    server.shutdown();
}
