//! The planning daemon: request handling, single-flight synthesis, the
//! mini-rayon worker pool, and the TCP accept loop.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use hap::{parallelize_with_warm, HapOptions};
use hap_cluster::ClusterSpec;
use hap_codec::{
    parse, render_fingerprint, request_fingerprint_values, value_fingerprint, Decode, Encode,
    Value, WireError,
};
use hap_graph::Graph;
use mini_rayon::ThreadPool;

use crate::cache::{
    cluster_features, compact_log, load_cache, persist_line, CachePolicy, CachedPlan, PlanCache,
};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address; port `0` picks a free port (tests, examples).
    pub addr: String,
    /// Synthesis worker threads (`0` = all cores, via mini-rayon).
    pub workers: usize,
    /// Total plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Persistence log; `None` disables disk persistence.
    pub cache_path: Option<PathBuf>,
    /// Seed cache misses from the nearest cached cluster's plan.
    pub warm_neighbors: bool,
    /// Gate cache admission on synthesis-seconds-saved-per-byte (see
    /// [`CachePolicy::admission`]); off = the PR-4 plain LRU.
    pub cache_admission: bool,
    /// Default TTL (milliseconds) for cached plans that carry no
    /// per-request `ttl_ms`; `None` = cached plans never expire.
    pub default_ttl_ms: Option<u64>,
    /// Maximum queued (not yet running) syntheses before new requests are
    /// shed with a `busy` frame. `0` = unbounded (the PR-4 behavior).
    pub max_queue_depth: usize,
    /// Base of the `retry_after_ms` hint in `busy` frames; the hint scales
    /// with the observed queue depth.
    pub busy_retry_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            cache_capacity: 1024,
            cache_path: None,
            warm_neighbors: true,
            cache_admission: true,
            default_ttl_ms: None,
            max_queue_depth: 256,
            busy_retry_ms: 25,
        }
    }
}

/// Upper bound on a request's cache TTL: 90 days, in milliseconds.
///
/// The bound is a protocol invariant, not just a sanity check: the codec's
/// `Value::int` only represents integers up to 2^53 exactly (JSON numbers
/// are f64), and a TTL is persisted in *nanoseconds* — 90 days is
/// ~7.8e15 ns, comfortably inside the exact range, while an unchecked
/// wire `ttl_ms` times 1e6 could blow past it and panic the encoder. Both
/// the daemon (reject) and [`crate::Client`] (refuse to send) enforce it.
pub const MAX_TTL_MS: u64 = 90 * 24 * 60 * 60 * 1000;

/// Ceiling on the `retry_after_ms` hint in busy frames (5 minutes): the
/// hint scales with the observed backlog and the configured base, and an
/// operator-supplied giant `--busy-retry-ms` must not overflow the
/// codec's exact-integer range while shedding — overload protection that
/// panics under overload protects nothing.
const MAX_RETRY_HINT_MS: u64 = 300_000;

/// The (clamped) retry hint for a shed request observing `depth` queued
/// jobs.
fn busy_hint_ms(base_ms: u64, depth: usize) -> u64 {
    base_ms.max(1).saturating_mul((depth as u64).saturating_add(1)).min(MAX_RETRY_HINT_MS)
}

/// Counters exposed by the `stats` request. `in_flight` and `entries` are
/// gauges sampled at snapshot time; the rest are monotonic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Cached plans currently held.
    pub entries: u64,
    /// Requests answered straight from the cache.
    pub hits: u64,
    /// Requests that found no cached plan.
    pub misses: u64,
    /// Requests that joined an in-flight synthesis instead of starting one.
    pub coalesced: u64,
    /// Syntheses actually executed.
    pub synthesized: u64,
    /// Cache evictions.
    pub evictions: u64,
    /// Misses that were seeded from a neighbor's cached plan.
    pub warm_seeded: u64,
    /// Requests that returned an error frame.
    pub errors: u64,
    /// Syntheses currently running or queued.
    pub in_flight: u64,
    /// Requests shed with a `busy` frame (queue-depth admission control).
    pub shed: u64,
    /// Synthesized plans the cache's admission gate declined to store.
    pub admission_rejected: u64,
    /// Cache entries reclaimed by TTL expiry.
    pub expired: u64,
}

impl Encode for StatsSnapshot {
    fn encode(&self) -> Value {
        Value::obj(vec![
            ("entries", Value::int(self.entries)),
            ("hits", Value::int(self.hits)),
            ("misses", Value::int(self.misses)),
            ("coalesced", Value::int(self.coalesced)),
            ("synthesized", Value::int(self.synthesized)),
            ("evictions", Value::int(self.evictions)),
            ("warm_seeded", Value::int(self.warm_seeded)),
            ("errors", Value::int(self.errors)),
            ("in_flight", Value::int(self.in_flight)),
            ("shed", Value::int(self.shed)),
            ("admission_rejected", Value::int(self.admission_rejected)),
            ("expired", Value::int(self.expired)),
        ])
    }
}

impl Decode for StatsSnapshot {
    fn decode(v: &Value) -> Result<Self, hap_codec::CodecError> {
        // The overload counters postdate PR 4; a stats frame from an older
        // daemon simply reports them as zero.
        let lenient = |key: &str| match v.get(key) {
            None => Ok(0),
            Some(x) => x.as_u64(),
        };
        Ok(StatsSnapshot {
            entries: v.field("entries")?.as_u64()?,
            hits: v.field("hits")?.as_u64()?,
            misses: v.field("misses")?.as_u64()?,
            coalesced: v.field("coalesced")?.as_u64()?,
            synthesized: v.field("synthesized")?.as_u64()?,
            evictions: v.field("evictions")?.as_u64()?,
            warm_seeded: v.field("warm_seeded")?.as_u64()?,
            errors: v.field("errors")?.as_u64()?,
            in_flight: v.field("in_flight")?.as_u64()?,
            shed: lenient("shed")?,
            admission_rejected: lenient("admission_rejected")?,
            expired: lenient("expired")?,
        })
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    synthesized: AtomicU64,
    warm_seeded: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
}

/// How a plan response was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// Answered from the cache.
    Cache,
    /// This request ran the synthesis.
    Synthesized,
    /// Joined another request's in-flight synthesis.
    Coalesced,
}

impl PlanSource {
    fn as_str(self) -> &'static str {
        match self {
            PlanSource::Cache => "cache",
            PlanSource::Synthesized => "synthesized",
            PlanSource::Coalesced => "coalesced",
        }
    }
}

/// One queued synthesis: the undecoded request values plus the slot every
/// coalesced waiter blocks on.
struct Job {
    fp: u64,
    graph: Value,
    cluster: Value,
    options: Value,
    /// Requested cache TTL for the synthesized plan. Requests fingerprint
    /// on `(graph, cluster, options)` only, so concurrent duplicates with
    /// different `ttl_ms` coalesce — the leader's TTL wins.
    ttl_ms: Option<u64>,
    slot: Slot,
}

type PlanResult = Result<Arc<CachedPlan>, WireError>;

struct SlotState {
    result: Option<PlanResult>,
}

type Slot = Arc<(Mutex<SlotState>, Condvar)>;

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Inner {
    config: ServiceConfig,
    cache: PlanCache,
    inflight: Mutex<HashMap<u64, Slot>>,
    queue: (Mutex<QueueState>, Condvar),
    counters: Counters,
    persist: Option<Mutex<std::fs::File>>,
}

/// The daemon's request brain, independent of any transport: feed it a
/// request line, get a response line. The TCP server, the benches, and the
/// in-process tests all go through [`PlanService::handle_line`].
pub struct PlanService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl PlanService {
    /// Builds the service: loads (and compacts) the persistence log when
    /// configured, then starts the synthesis workers. Pool width follows
    /// mini-rayon's parallelism accounting (`workers` threads, `0` = all
    /// cores); each worker pulls one job at a time, so a slow synthesis
    /// never stalls queued work behind a batch barrier, and each job's
    /// wave-parallel A\* fans out over the vendored mini-rayon pool in
    /// turn (`options.synth.threads`).
    pub fn new(config: ServiceConfig) -> Result<Self, WireError> {
        let policy = CachePolicy {
            admission: config.cache_admission,
            default_ttl: config.default_ttl_ms.map(std::time::Duration::from_millis),
        };
        let cache = PlanCache::with_policy(config.cache_capacity, policy);
        let mut persist = None;
        if let Some(path) = &config.cache_path {
            load_cache(&cache, path).map_err(WireError::from)?;
            compact_log(&cache, path)
                .map_err(|e| WireError::new("io", format!("compact {}: {e}", path.display())))?;
            let file = std::fs::OpenOptions::new()
                .append(true)
                .open(path)
                .map_err(|e| WireError::new("io", format!("open {}: {e}", path.display())))?;
            persist = Some(Mutex::new(file));
        }
        let inner = Arc::new(Inner {
            config,
            cache,
            inflight: Mutex::new(HashMap::new()),
            queue: (
                Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
                Condvar::new(),
            ),
            counters: Counters::default(),
            persist,
        });
        let width = ThreadPool::new(inner.config.workers).threads().max(1);
        let workers = (0..width)
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(PlanService { inner, workers: Mutex::new(workers) })
    }

    /// Handles one request line; returns the response line (no trailing
    /// newline) and whether the request asked the daemon to shut down.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        match self.handle_parsed(line) {
            Ok((response, shutdown)) => (response.render(), shutdown),
            Err((id, err)) => {
                self.inner.counters.errors.fetch_add(1, Ordering::Relaxed);
                (error_frame(id, &err).render(), false)
            }
        }
    }

    fn handle_parsed(&self, line: &str) -> Result<(Value, bool), (u64, WireError)> {
        let v = parse(line).map_err(|e| (0, WireError::from(e)))?;
        let id = v.get("id").and_then(|x| x.as_u64().ok()).unwrap_or(0);
        let op = v
            .get("op")
            .and_then(|x| x.as_str().ok())
            .ok_or_else(|| (id, WireError::new("decode", "missing `op`")))?;
        match op {
            "plan" => {
                let fetch = |key: &str| v.field(key).cloned().map_err(|e| (id, WireError::from(e)));
                let (graph, cluster, options) =
                    (fetch("graph")?, fetch("cluster")?, fetch("options")?);
                // Optional cache-lifetime request: how long the synthesized
                // plan should stay valid (a tenant planning for a cluster
                // it is about to decommission bounds its own footprint).
                let ttl_ms = match v.get("ttl_ms") {
                    None | Some(Value::Null) => None,
                    Some(ms) => {
                        let ms = ms.as_u64().map_err(|e| (id, WireError::from(e)))?;
                        // Reject before any work: an unbounded TTL times
                        // 1e6 (ns) would leave the codec's exact-integer
                        // range and panic the persisting worker.
                        if ms > MAX_TTL_MS {
                            return Err((
                                id,
                                WireError::new(
                                    "decode",
                                    format!("ttl_ms {ms} exceeds the maximum {MAX_TTL_MS}"),
                                ),
                            ));
                        }
                        Some(ms)
                    }
                };
                let (source, fp, result) =
                    self.plan_values_with_ttl(&graph, &cluster, &options, ttl_ms);
                let plan = result.map_err(|e| (id, e))?;
                Ok((plan_frame(id, fp, source, &plan), false))
            }
            "stats" => Ok((
                Value::obj(vec![
                    ("id", Value::int(id)),
                    ("ok", Value::Bool(true)),
                    ("stats", self.stats().encode()),
                ]),
                false,
            )),
            "shutdown" => {
                Ok((Value::obj(vec![("id", Value::int(id)), ("ok", Value::Bool(true))]), true))
            }
            other => Err((id, WireError::new("decode", format!("unknown op `{other}`")))),
        }
    }

    /// The planning core: cache lookup, single-flight dedup, queue + wait.
    /// Exposed for in-process callers (tests, benches) that want to skip
    /// the socket but exercise the identical path.
    pub fn plan_values(
        &self,
        graph: &Value,
        cluster: &Value,
        options: &Value,
    ) -> (PlanSource, u64, PlanResult) {
        self.plan_values_with_ttl(graph, cluster, options, None)
    }

    /// [`PlanService::plan_values`] with a per-request cache TTL.
    pub fn plan_values_with_ttl(
        &self,
        graph: &Value,
        cluster: &Value,
        options: &Value,
        ttl_ms: Option<u64>,
    ) -> (PlanSource, u64, PlanResult) {
        let inner = &self.inner;
        let fp = request_fingerprint_values(graph, cluster, options);
        if let Some(plan) = inner.cache.get(fp) {
            inner.counters.hits.fetch_add(1, Ordering::Relaxed);
            return (PlanSource::Cache, fp, Ok(plan));
        }
        inner.counters.misses.fetch_add(1, Ordering::Relaxed);

        // Single flight: the first requester enqueues the synthesis, every
        // concurrent duplicate joins its slot. Exactly one job per
        // fingerprint can be in flight.
        let (slot, leader) = {
            let mut inflight = inner.inflight.lock().expect("inflight map poisoned");
            match inflight.get(&fp) {
                Some(slot) => (slot.clone(), false),
                None => {
                    let slot: Slot =
                        Arc::new((Mutex::new(SlotState { result: None }), Condvar::new()));
                    inflight.insert(fp, slot.clone());
                    (slot, true)
                }
            }
        };
        if leader {
            // Re-probe the cache after winning leadership: the previous
            // in-flight synthesis for this fingerprint may have completed
            // (cache insert happens before its slot retires) between our
            // miss and our insert, and re-running it would both waste a
            // synthesis and double-count the `synthesized` stat.
            if let Some(plan) = inner.cache.get(fp) {
                inner.counters.hits.fetch_add(1, Ordering::Relaxed);
                finish(inner, fp, &slot, Ok(plan.clone()));
                return (PlanSource::Cache, fp, Ok(plan));
            }
            let job = Job {
                fp,
                graph: graph.clone(),
                cluster: cluster.clone(),
                options: options.clone(),
                ttl_ms,
                slot: slot.clone(),
            };
            let (queue, cvar) = &inner.queue;
            let mut state = queue.lock().expect("job queue poisoned");
            if state.shutdown {
                drop(state);
                let err = WireError::new("shutdown", "service is shutting down");
                finish(inner, fp, &slot, Err(err.clone()));
                return (PlanSource::Synthesized, fp, Err(err));
            }
            // Queue-depth admission control: a full backlog sheds the
            // *leader* (coalescers above never add work, so they always
            // join). The busy frame is published through the slot so any
            // duplicate that raced onto it wakes with the same answer, and
            // the retry hint grows with the observed backlog.
            let cap = inner.config.max_queue_depth;
            if cap > 0 && state.jobs.len() >= cap {
                let depth = state.jobs.len();
                drop(state);
                let err = WireError::busy(busy_hint_ms(inner.config.busy_retry_ms, depth), depth);
                inner.counters.shed.fetch_add(1, Ordering::Relaxed);
                finish(inner, fp, &slot, Err(err.clone()));
                return (PlanSource::Synthesized, fp, Err(err));
            }
            state.jobs.push_back(job);
            cvar.notify_all();
        } else {
            inner.counters.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        let (lock, cvar) = &*slot;
        let mut state = lock.lock().expect("slot poisoned");
        while state.result.is_none() {
            state = cvar.wait(state).expect("slot poisoned");
        }
        let source = if leader { PlanSource::Synthesized } else { PlanSource::Coalesced };
        (source, fp, state.result.clone().expect("loop exits with a result"))
    }

    /// A consistent stats snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let inner = &self.inner;
        StatsSnapshot {
            entries: inner.cache.len() as u64,
            hits: inner.counters.hits.load(Ordering::Relaxed),
            misses: inner.counters.misses.load(Ordering::Relaxed),
            coalesced: inner.counters.coalesced.load(Ordering::Relaxed),
            synthesized: inner.counters.synthesized.load(Ordering::Relaxed),
            evictions: inner.cache.evictions(),
            warm_seeded: inner.counters.warm_seeded.load(Ordering::Relaxed),
            errors: inner.counters.errors.load(Ordering::Relaxed),
            in_flight: inner.inflight.lock().expect("inflight map poisoned").len() as u64,
            shed: inner.counters.shed.load(Ordering::Relaxed),
            admission_rejected: inner.cache.rejected(),
            expired: inner.cache.expired(),
        }
    }

    /// Drains the queue and stops the workers. Idempotent.
    pub fn stop(&self) {
        let (queue, cvar) = &self.inner.queue;
        queue.lock().expect("job queue poisoned").shutdown = true;
        cvar.notify_all();
        for handle in self.workers.lock().expect("worker handles poisoned").drain(..) {
            handle.join().expect("synthesis worker panicked");
        }
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One synthesis worker: pulls jobs from the shared queue one at a time
/// (no batch barrier — a slow synthesis occupies one worker while the
/// rest keep draining), executing until the queue is both empty and shut
/// down. Identical requests never reach the queue twice (single flight),
/// so concurrent workers always hold distinct work.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let (queue, cvar) = &inner.queue;
            let mut state = queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = cvar.wait(state).expect("job queue poisoned");
            }
        };
        execute(inner, &job);
    }
}

/// Runs one synthesis job end to end and publishes its result.
fn execute(inner: &Arc<Inner>, job: &Job) {
    let result = synthesize_job(inner, job);
    if let Ok(plan) = &result {
        inner.counters.synthesized.fetch_add(1, Ordering::Relaxed);
        let verdict = inner.cache.insert(job.fp, plan.clone());
        // A plan the admission gate declined is still *returned* (the
        // requester paid for it); it is just not cached or persisted.
        if !matches!(verdict, crate::cache::Admission::Rejected { .. }) {
            if let Some(persist) = &inner.persist {
                let mut file = persist.lock().expect("persistence file poisoned");
                // Persistence is best-effort at runtime (the log compacts
                // on the next boot); a full disk must not take the daemon
                // down.
                let _ = writeln!(file, "{}", persist_line(job.fp, plan));
                let _ = file.flush();
            }
        }
    }
    finish(inner, job.fp, &job.slot, result);
}

/// Retires the in-flight entry, then publishes a result to the slot's
/// waiters. Both orderings are safe for correctness — a successful plan is
/// already in the cache before `finish` runs, so a request that misses the
/// retired entry hits the cache, and an error result simply makes the next
/// identical request a fresh leader — but retiring *first* means that by
/// the time any waiter observes its reply the `in_flight` gauge has
/// already dropped, so stats never report a completed request as still in
/// flight.
fn finish(inner: &Inner, fp: u64, slot: &Slot, result: PlanResult) {
    inner.inflight.lock().expect("inflight map poisoned").remove(&fp);
    let (lock, cvar) = &**slot;
    let mut state = lock.lock().expect("slot poisoned");
    state.result = Some(result);
    cvar.notify_all();
}

/// Decode, warm-start lookup, synthesis. The elapsed wall time of the
/// whole job (decode included — a hit saves that too) becomes the entry's
/// `synthesis_nanos`, the numerator of the cache's admission density.
fn synthesize_job(inner: &Inner, job: &Job) -> PlanResult {
    let started = std::time::Instant::now();
    let graph = Graph::decode(&job.graph).map_err(WireError::from)?;
    let cluster = ClusterSpec::decode(&job.cluster).map_err(WireError::from)?;
    let options = HapOptions::decode(&job.options).map_err(WireError::from)?;
    let graph_fp = value_fingerprint(&job.graph);
    let opts_fp = value_fingerprint(&job.options);
    let features = cluster_features(&cluster, options.granularity);

    let warm = if inner.config.warm_neighbors {
        inner.cache.nearest(graph_fp, opts_fp, &features)
    } else {
        None
    };
    if warm.is_some() {
        inner.counters.warm_seeded.fetch_add(1, Ordering::Relaxed);
    }
    let warm_program = warm.as_ref().map(|p| &p.program);

    let plan = parallelize_with_warm(&graph, &cluster, &options, warm_program)
        .map_err(|e| WireError::from(&e))?;
    let mut cached = CachedPlan {
        estimated_time: plan.estimated_time,
        rounds: plan.rounds,
        program: plan.program,
        ratios: plan.ratios,
        graph_fp,
        opts_fp,
        features,
        synthesis_nanos: started.elapsed().as_nanos() as u64,
        size_bytes: 0,
        // The wire layer already rejects ttl_ms > MAX_TTL_MS; the clamp
        // covers in-process callers of `plan_values_with_ttl` so an
        // oversized TTL can never reach the (2^53-exact) record encoder.
        ttl_nanos: job.ttl_ms.map(|ms| ms.min(MAX_TTL_MS).saturating_mul(1_000_000)),
    };
    cached.size_bytes = cached.measure_size();
    Ok(Arc::new(cached))
}

/// `{"id":N,"ok":false,"error":{...}}`.
fn error_frame(id: u64, err: &WireError) -> Value {
    Value::obj(vec![("id", Value::int(id)), ("ok", Value::Bool(false)), ("error", err.encode())])
}

/// `{"id":N,"ok":true,"fingerprint":...,"source":...,"plan":{...}}`.
fn plan_frame(id: u64, fp: u64, source: PlanSource, plan: &CachedPlan) -> Value {
    Value::obj(vec![
        ("id", Value::int(id)),
        ("ok", Value::Bool(true)),
        ("fingerprint", Value::Str(render_fingerprint(fp))),
        ("source", Value::Str(source.as_str().into())),
        (
            "plan",
            Value::obj(vec![
                ("rounds", plan.rounds.encode()),
                ("estimated_time", Value::Num(plan.estimated_time)),
                ("ratios", plan.ratios.encode()),
                ("program", plan.program.encode()),
            ]),
        ),
    ])
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// A running daemon bound to a TCP port.
pub struct Server {
    service: Arc<PlanService>,
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the configured address and starts accepting connections, one
    /// thread per connection (connection threads block in synthesis waits,
    /// so they must not share the accept loop).
    pub fn start(config: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let service =
            Arc::new(PlanService::new(config).map_err(|e| std::io::Error::other(e.to_string()))?);
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let service = service.clone();
            let stop = stop.clone();
            std::thread::spawn(move || accept_loop(&listener, &service, &stop))
        };
        Ok(Server { service, addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The in-process service (tests and benches reach stats directly).
    pub fn service(&self) -> &PlanService {
        &self.service
    }

    /// Blocks until the accept loop exits — i.e. until some client sends a
    /// `shutdown` request (the `hap-serve` main loop). Queued syntheses
    /// are still drained afterwards by [`Server::shutdown`]/drop.
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, drains the synthesis queue, and joins the accept
    /// loop. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Unblock the accept call with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.service.stop();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<PlanService>, stop: &Arc<AtomicBool>) {
    // Connection threads detach: they exit when their client disconnects
    // or when a response cannot be written, and the daemon's useful state
    // (cache, persistence) is flushed synchronously on the worker side.
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let service = service.clone();
        let stop = stop.clone();
        std::thread::spawn(move || handle_connection(stream, &service, &stop));
    }
}

fn handle_connection(stream: TcpStream, service: &Arc<PlanService>, stop: &Arc<AtomicBool>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = service.handle_line(&line);
        if writer.write_all(response.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            return;
        }
        let _ = writer.flush();
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it observes the flag (the
            // accepted socket's local address is the listener's).
            if let Ok(addr) = writer.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_hint_scales_with_depth_and_clamps() {
        assert_eq!(busy_hint_ms(25, 0), 25);
        assert_eq!(busy_hint_ms(25, 3), 100);
        // A zero base still produces a nonzero hint.
        assert_eq!(busy_hint_ms(0, 0), 1);
        // Operator-sized bases and saturating depths clamp instead of
        // overflowing the codec's exact-integer range.
        assert_eq!(busy_hint_ms(u64::MAX, 7), MAX_RETRY_HINT_MS);
        assert_eq!(busy_hint_ms(1, usize::MAX), MAX_RETRY_HINT_MS);
        // Both bounds stay inside the codec's exact-integer range.
        const { assert!(MAX_RETRY_HINT_MS < (1 << 53)) };
        const { assert!(MAX_TTL_MS * 1_000_000 < (1 << 53)) };
    }

    #[test]
    fn oversized_ttl_is_rejected_before_any_work() {
        let service = PlanService::new(ServiceConfig::default()).unwrap();
        let line = format!(
            "{{\"op\":\"plan\",\"id\":6,\"graph\":null,\"cluster\":null,\"options\":null,\
             \"ttl_ms\":{}}}",
            MAX_TTL_MS + 1
        );
        let (response, _) = service.handle_line(&line);
        assert!(response.contains("\"ok\":false"), "{response}");
        assert!(response.contains("exceeds the maximum"), "{response}");
        assert_eq!(service.stats().synthesized, 0, "rejected before synthesis");
        service.stop();
    }
}
