//! The synthesis dispatcher: the job queue, single-flight slots, and the
//! fixed worker pool — fully decoupled from any transport.
//!
//! A slot is the rendezvous for one in-flight synthesis. Two kinds of
//! consumers attach to it:
//!
//! * **Synchronous waiters** (`PlanService::plan_values*`, benches,
//!   in-process tests) park on the slot's condvar exactly as before.
//! * **Subscribers** (the event loop) register a callback and return to
//!   their poll loop immediately; when a worker finishes the job it runs
//!   every subscriber with the result. Subscribers render their own
//!   response bytes and hand them to the loop through its completion
//!   queue + waker — no I/O thread ever blocks on a synthesis, and a
//!   single-flight follower subscribes to the leader's slot instead of
//!   parking a thread.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

use hap::{parallelize_with_warm_profiled, HapOptions, SynthProfile};
use hap_cluster::ClusterSpec;
use hap_codec::{
    render_fingerprint, value_fingerprint, Decode, Encode, Value, WireError, INTERNAL_KIND,
};
use hap_graph::Graph;

use crate::cache::{cluster_features, CachedPlan, PersistLog, PlanCache};
use crate::config::{ServiceConfig, MAX_TTL_MS};
use crate::faults;
use crate::peer::ClusterState;
use crate::stats::Counters;
use crate::sync::{lock_recover, wait_recover};
use crate::telemetry::{ProfileIndex, Telemetry};

/// The outcome of one synthesis, shared by every request that attached to
/// its slot.
pub(crate) type PlanResult = Result<Arc<CachedPlan>, WireError>;

/// A deferred consumer of a slot's result. Runs on the worker thread that
/// finished the job (or inline, if the result already landed when the
/// subscription was made), so it must be quick: render bytes, enqueue,
/// wake.
pub(crate) type Subscriber = Box<dyn FnOnce(&PlanResult) + Send>;

pub(crate) struct SlotState {
    result: Option<PlanResult>,
    subscribers: Vec<Subscriber>,
    /// Telemetry marks (clock readings, 0 = never happened / telemetry
    /// off): when the job entered the queue, when a worker picked it up,
    /// and when its result was published. Consumers turn them into
    /// `queue_wait` / `synthesis` spans.
    queued_nanos: u64,
    started_nanos: u64,
    resolved_nanos: u64,
}

pub(crate) type Slot = Arc<(Mutex<SlotState>, Condvar)>;

fn new_slot(queued_nanos: u64) -> Slot {
    Arc::new((
        Mutex::new(SlotState {
            result: None,
            subscribers: Vec::new(),
            queued_nanos,
            started_nanos: 0,
            resolved_nanos: 0,
        }),
        Condvar::new(),
    ))
}

/// Stamps the moment a worker picked the job up.
fn mark_started(slot: &Slot, now: u64) {
    lock_recover(&slot.0).started_nanos = now;
}

/// The slot's telemetry marks: `(queued, started, resolved)`.
pub(crate) fn slot_marks(slot: &Slot) -> (u64, u64, u64) {
    let state = lock_recover(&slot.0);
    (state.queued_nanos, state.started_nanos, state.resolved_nanos)
}

/// Blocks until the slot resolves (the synchronous consumer path).
pub(crate) fn wait_sync(slot: &Slot) -> PlanResult {
    let (lock, cvar) = &**slot;
    let mut state = lock_recover(lock);
    while state.result.is_none() {
        state = wait_recover(cvar, state);
    }
    state.result.clone().expect("loop exits with a result")
}

/// Attaches a deferred consumer. If the slot already resolved the callback
/// runs immediately on the calling thread; otherwise it runs on the worker
/// that resolves the slot.
pub(crate) fn subscribe(slot: &Slot, f: Subscriber) {
    let already_resolved = {
        let (lock, _) = &**slot;
        let mut state = lock_recover(lock);
        match state.result.clone() {
            Some(result) => Some((f, result)),
            None => {
                state.subscribers.push(f);
                None
            }
        }
    };
    // Run outside the slot lock: the callback takes the completion queue
    // lock, and lock-order discipline is simpler when slots never nest
    // around it.
    if let Some((f, result)) = already_resolved {
        f(&result);
    }
}

/// One queued synthesis: the undecoded request values plus the slot every
/// consumer attached to.
pub(crate) struct Job {
    pub fp: u64,
    pub graph: Value,
    pub cluster: Value,
    pub options: Value,
    /// Requested cache TTL for the synthesized plan. Requests fingerprint
    /// on `(graph, cluster, options)` only, so concurrent duplicates with
    /// different `ttl_ms` coalesce — the leader's TTL wins.
    pub ttl_ms: Option<u64>,
    /// An explicit warm seed (a replan's prior plan). Takes precedence
    /// over the cache's nearest-neighbor lookup and ignores
    /// `warm_neighbors` — a replan *names* its incumbent.
    pub warm: Option<Arc<CachedPlan>>,
    pub slot: Slot,
}

pub(crate) struct QueueState {
    pub jobs: VecDeque<Job>,
    pub shutdown: bool,
}

/// Everything the workers share: queue, cache, single-flight map,
/// counters, persistence.
pub(crate) struct Shared {
    pub config: ServiceConfig,
    pub cache: PlanCache,
    pub inflight: Mutex<HashMap<u64, Slot>>,
    pub queue: (Mutex<QueueState>, Condvar),
    pub counters: Counters,
    pub persist: Option<PersistLog>,
    /// Request triples of recently planned fingerprints, so a `replan`
    /// can rebuild its prior request (see [`crate::replan`]). Shared
    /// (`Arc`) with the persist log, which re-embeds the triples at
    /// compaction.
    pub replans: Arc<Mutex<crate::replan::ReplanIndex>>,
    /// Cluster-mode state: the installed ring (if any) and the peer pool.
    pub cluster: ClusterState,
    /// Traces, latency histograms, and the injected clock.
    pub telemetry: Arc<Telemetry>,
    /// Synthesis profiles of recently synthesized fingerprints, so a
    /// `"profile":true` request answered from the cache can still report
    /// how its plan was found.
    pub profiles: Mutex<ProfileIndex>,
}

/// How a single-flight attach played out.
pub(crate) enum Attach {
    /// This request became the leader and its job is queued.
    Leader(Slot),
    /// This request joined an existing in-flight job.
    Follower(Slot),
    /// The request resolved without queueing (cache race win, shed, or
    /// shutdown); the result is final and carries the source it would
    /// have reported (`Cache` for the race win, `Synthesized` for a
    /// leader that was shed or raced shutdown).
    Resolved(crate::service::PlanSource, PlanResult),
}

/// The single-flight core shared by the sync and async request paths:
/// cache re-probe under leadership, queue-depth shedding, job submission.
/// Counters are bumped exactly as the pre-split server did.
pub(crate) fn attach(
    shared: &Shared,
    fp: u64,
    graph: &Value,
    cluster: &Value,
    options: &Value,
    ttl_ms: Option<u64>,
    warm: Option<Arc<CachedPlan>>,
) -> Attach {
    let (slot, leader) = {
        let mut inflight = lock_recover(&shared.inflight);
        match inflight.get(&fp) {
            Some(slot) => (slot.clone(), false),
            None => {
                let slot = new_slot(shared.telemetry.now());
                inflight.insert(fp, slot.clone());
                (slot, true)
            }
        }
    };
    if !leader {
        shared.counters.coalesced.fetch_add(1, Ordering::Relaxed);
        return Attach::Follower(slot);
    }
    // Re-probe the cache after winning leadership: the previous in-flight
    // synthesis for this fingerprint may have completed (cache insert
    // happens before its slot retires) between our miss and our insert,
    // and re-running it would both waste a synthesis and double-count the
    // `synthesized` stat.
    if let Some(plan) = shared.cache.get(fp) {
        shared.counters.hits.fetch_add(1, Ordering::Relaxed);
        finish(shared, fp, &slot, Ok(plan.clone()));
        return Attach::Resolved(crate::service::PlanSource::Cache, Ok(plan));
    }
    let job = Job {
        fp,
        graph: graph.clone(),
        cluster: cluster.clone(),
        options: options.clone(),
        ttl_ms,
        warm,
        slot: slot.clone(),
    };
    let (queue, cvar) = &shared.queue;
    let mut state = lock_recover(queue);
    if state.shutdown {
        drop(state);
        let err = WireError::new("shutdown", "service is shutting down");
        finish(shared, fp, &slot, Err(err.clone()));
        return Attach::Resolved(crate::service::PlanSource::Synthesized, Err(err));
    }
    // Queue-depth admission control: a full backlog sheds the *leader*
    // (followers above never add work, so they always join). The busy
    // frame is published through the slot so any duplicate that raced
    // onto it wakes with the same answer, and the retry hint grows with
    // the observed backlog.
    let cap = shared.config.max_queue_depth;
    if cap > 0 && state.jobs.len() >= cap {
        let depth = state.jobs.len();
        drop(state);
        let err =
            WireError::busy(crate::config::busy_hint_ms(shared.config.busy_retry_ms, depth), depth);
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        finish(shared, fp, &slot, Err(err.clone()));
        return Attach::Resolved(crate::service::PlanSource::Synthesized, Err(err));
    }
    state.jobs.push_back(job);
    cvar.notify_all();
    Attach::Leader(slot)
}

/// One synthesis worker: pulls jobs from the shared queue one at a time
/// (no batch barrier — a slow synthesis occupies one worker while the
/// rest keep draining), executing until the queue is both empty and shut
/// down. Identical requests never reach the queue twice (single flight),
/// so concurrent workers always hold distinct work.
pub(crate) fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let (queue, cvar) = &shared.queue;
            let mut state = lock_recover(queue);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = wait_recover(cvar, state);
            }
        };
        execute(shared, &job);
    }
}

/// Runs one synthesis job end to end and publishes its result.
///
/// The job body runs under `catch_unwind`: a panicking synthesis (a cost-
/// model bug, a pathological graph) must not take the worker thread — and
/// with it every queued job and coalesced follower — down. The panic
/// becomes a typed `internal` error published through the slot exactly
/// like any other failure, so the leader *and* every follower get a
/// parseable frame, the in-flight entry retires, and the daemon keeps
/// serving. Locks the panicking job held recover via the poison-tolerant
/// helpers in [`crate::sync`].
fn execute(shared: &Arc<Shared>, job: &Job) {
    mark_started(&job.slot, shared.telemetry.now());
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| synthesize_job(shared, job)))
            .unwrap_or_else(|payload| {
                shared.counters.panics.fetch_add(1, Ordering::Relaxed);
                Err(WireError::new(
                    INTERNAL_KIND,
                    format!("synthesis job panicked: {}", panic_message(payload.as_ref())),
                ))
            });
    let result = match outcome {
        Ok((plan, profile)) => {
            shared.counters.synthesized.fetch_add(1, Ordering::Relaxed);
            // Publish the profile before the result: any consumer woken
            // by `finish` that asks for it must find it recorded.
            lock_recover(&shared.profiles).record(job.fp, Arc::new(profile));
            let verdict = shared.cache.insert(job.fp, plan.clone());
            // A plan the admission gate declined is still *returned* (the
            // requester paid for it); it is just not cached or persisted.
            if !matches!(verdict, crate::cache::Admission::Rejected { .. }) {
                let req = crate::replan::RequestTriple {
                    graph: job.graph.clone(),
                    cluster: job.cluster.clone(),
                    options: job.options.clone(),
                }
                .encode_req();
                if let Some(persist) = &shared.persist {
                    // Degradation is the log's problem, not the request's:
                    // an unacknowledged append flips the log to memory-only
                    // (surfaced in stats) and the response proceeds
                    // normally.
                    let _ =
                        persist.append_with_req(&shared.cache, job.fp, plan.as_ref(), Some(&req));
                }
                // Replicate to the fingerprint's other ring owners *before*
                // publishing the result: an acknowledged plan then survives
                // the synthesizing owner's death.
                replicate_plan(shared, job.fp, plan.as_ref(), &req);
            }
            Ok(plan)
        }
        Err(err) => Err(err),
    };
    finish(shared, job.fp, &job.slot, result);
}

/// Pushes a freshly synthesized plan to the fingerprint's other ring
/// owners (K-way replication, synchronous). No-op without an installed
/// ring. Runs on the worker thread before the slot resolves, so by the
/// time any client sees the acknowledgment every reachable owner holds
/// the plan — a mid-traffic owner kill then loses nothing acknowledged.
/// Replication is still best-effort per peer: an unreachable owner is
/// skipped (availability over strict K), surfaced by `replicated_out`
/// falling short.
fn replicate_plan(shared: &Arc<Shared>, fp: u64, plan: &CachedPlan, req: &Value) {
    let Some((ring, self_addr)) = shared.cluster.current() else {
        return;
    };
    let owners: Vec<String> =
        ring.owners(fp).into_iter().filter(|o| *o != self_addr).map(String::from).collect();
    if owners.is_empty() {
        return;
    }
    let frame = Value::obj(vec![
        ("op", Value::Str("replicate".into())),
        ("id", Value::int(0)),
        ("fp", Value::Str(render_fingerprint(fp))),
        ("plan", plan.encode()),
        ("req", req.clone()),
    ])
    .render();
    for owner in owners {
        let acked = shared
            .cluster
            .peers
            .call(&owner, &frame)
            .ok()
            .and_then(|resp| hap_codec::parse(&resp).ok())
            .and_then(|v| v.get("ok").cloned())
            .is_some_and(|ok| matches!(ok, Value::Bool(true)));
        if acked {
            shared.counters.replicated_out.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Best-effort text of a panic payload (`panic!` with a string or a
/// formatted message covers practically all of them).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Retires the in-flight entry, publishes a result to the slot's waiters,
/// and runs the subscribers. Retiring *first* means that by the time any
/// waiter observes its reply the `in_flight` gauge has already dropped,
/// so stats never report a completed request as still in flight.
/// Subscribers run outside the slot lock (they take the event loop's
/// completion-queue lock).
pub(crate) fn finish(shared: &Shared, fp: u64, slot: &Slot, result: PlanResult) {
    lock_recover(&shared.inflight).remove(&fp);
    let resolved = shared.telemetry.now();
    let subscribers = {
        let (lock, cvar) = &**slot;
        let mut state = lock_recover(lock);
        state.resolved_nanos = resolved;
        state.result = Some(result.clone());
        cvar.notify_all();
        std::mem::take(&mut state.subscribers)
    };
    for subscriber in subscribers {
        subscriber(&result);
    }
}

/// Decode, warm-start lookup, synthesis. The elapsed wall time of the
/// whole job (decode included — a hit saves that too) becomes the entry's
/// `synthesis_nanos`, the numerator of the cache's admission density.
/// Returns the plan together with the search's [`SynthProfile`] (per-wave
/// A\* counters), which `execute` publishes to the profile index.
fn synthesize_job(
    shared: &Shared,
    job: &Job,
) -> Result<(Arc<CachedPlan>, SynthProfile), WireError> {
    faults::check_panic(faults::SYNTHESIZE);
    let started = std::time::Instant::now();
    let graph = Graph::decode(&job.graph).map_err(WireError::from)?;
    let cluster = ClusterSpec::decode(&job.cluster).map_err(WireError::from)?;
    let options = HapOptions::decode(&job.options).map_err(WireError::from)?;
    let graph_fp = value_fingerprint(&job.graph);
    let opts_fp = value_fingerprint(&job.options);
    let features = cluster_features(&cluster, options.granularity);

    // A replan's named incumbent wins over the neighbor heuristic: it is
    // the exact prior plan for this graph, re-costed on the new cluster.
    let warm = if let Some(seed) = &job.warm {
        Some(seed.clone())
    } else if shared.config.warm_neighbors {
        shared.cache.nearest(graph_fp, opts_fp, &features)
    } else {
        None
    };
    if warm.is_some() {
        shared.counters.warm_seeded.fetch_add(1, Ordering::Relaxed);
    }
    let warm_program = warm.as_ref().map(|p| &p.program);

    let (plan, profile) = parallelize_with_warm_profiled(&graph, &cluster, &options, warm_program)
        .map_err(|e| WireError::from(&e))?;
    let mut cached = CachedPlan {
        estimated_time: plan.estimated_time,
        rounds: plan.rounds,
        program: plan.program,
        ratios: plan.ratios,
        graph_fp,
        opts_fp,
        features,
        synthesis_nanos: started.elapsed().as_nanos() as u64,
        size_bytes: 0,
        // The wire layer already rejects ttl_ms > MAX_TTL_MS; the clamp
        // covers in-process callers of `plan_values_with_ttl` so an
        // oversized TTL can never reach the (2^53-exact) record encoder.
        ttl_nanos: job.ttl_ms.map(|ms| ms.min(MAX_TTL_MS).saturating_mul(1_000_000)),
    };
    cached.size_bytes = cached.measure_size();
    Ok((Arc::new(cached), profile))
}
