//! Poison-tolerant lock helpers.
//!
//! A panicking synthesis job (isolated by dispatch's `catch_unwind`) may
//! still have held a cache or dispatch mutex at the moment it panicked,
//! which marks the mutex poisoned. Every structure those locks guard is
//! kept consistent by construction — each critical section either fully
//! applies its mutation or only reads — so poisoning carries no
//! information here; propagating it would just let one panicked job wedge
//! every later request. These helpers recover the guard instead.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering the guard if a panicked holder poisoned it.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on a condvar, recovering the guard if the mutex was poisoned
/// while this thread slept.
pub(crate) fn wait_recover<'a, T>(cvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}
