//! The service's telemetry surface: the shared recorder behind every
//! request path, the wire shapes of the `metrics` and `trace` verbs, and
//! the Prometheus text exposition.
//!
//! The primitives (clock, histogram, trace ring) live in `hap-telemetry`;
//! this module binds them to the daemon's verbs and outcomes and to the
//! wire protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hap_codec::{CodecError, Value, WireError, INTERNAL_KIND};
use hap_synthesis::SynthProfile;
use hap_telemetry::{
    Clock, HistMatrix, Outcome, RequestTrace, Span, SpanKind, TraceBuilder, TraceRing, Verb,
};

use crate::config::ServiceConfig;
use crate::service::PlanSource;
use crate::stats::StatsSnapshot;

/// Largest integer the codec renders exactly; wire nanosecond values are
/// clamped to it (only reachable with adversarial manual clocks).
const MAX_WIRE_INT: u64 = (1 << 53) - 1;

fn int_ns(v: u64) -> Value {
    Value::int(v.min(MAX_WIRE_INT))
}

/// The daemon's telemetry recorder: one per service, shared with the
/// dispatch workers (for slot timing marks) and the event loop (for
/// accept/frame/flush spans).
///
/// Disabled telemetry short-circuits everything to `None`/zero — the
/// request path then pays one branch per would-be clock read.
pub(crate) struct Telemetry {
    enabled: bool,
    clock: Clock,
    ring: TraceRing,
    hists: HistMatrix,
    next_trace_id: AtomicU64,
}

impl Telemetry {
    pub fn new(config: &ServiceConfig) -> Telemetry {
        Telemetry {
            enabled: config.telemetry,
            clock: config.telemetry_clock.clone(),
            ring: TraceRing::new(config.trace_ring_capacity),
            hists: HistMatrix::new(),
            next_trace_id: AtomicU64::new(0),
        }
    }

    /// The current clock reading, or 0 when telemetry is off (timing
    /// marks then stay zero and no spans are synthesized from them).
    pub fn now(&self) -> u64 {
        if self.enabled {
            self.clock.now_nanos()
        } else {
            0
        }
    }

    /// A trace builder for a new request, `None` when telemetry is off.
    pub fn builder(&self) -> Option<TraceBuilder> {
        self.enabled.then(|| TraceBuilder::new(self.clock.clone()))
    }

    /// Seals a trace: assigns its id, records its latency under the
    /// verb × outcome histogram, and retains it in the ring.
    pub fn finish(&self, builder: Option<TraceBuilder>, outcome: Outcome) {
        if let Some(builder) = builder {
            let verb = builder.verb();
            let trace_id = self.next_trace_id.fetch_add(1, Ordering::Relaxed) + 1;
            let trace = builder.finish(trace_id, outcome);
            self.hists.record(verb, outcome, trace.total_nanos);
            self.ring.push(Arc::new(trace));
        }
    }

    /// Seals an async request whose flush just completed.
    pub fn finish_pending(&self, pending: PendingTrace) {
        let PendingTrace { builder, outcome } = pending;
        self.finish(Some(builder), outcome);
    }

    /// `(traces_recorded, metrics_samples)` — the totals surfaced through
    /// the `stats` verb.
    pub fn totals(&self) -> (u64, u64) {
        (self.ring.recorded(), self.hists.total_count())
    }

    /// The `metrics` verb's payload: every non-empty verb × outcome
    /// series with its count and latency quantiles.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut series = Vec::new();
        self.hists.for_each_nonempty(|verb, outcome, hist| {
            series.push(MetricsSeries {
                verb: verb.as_str().to_string(),
                outcome: outcome.as_str().to_string(),
                count: hist.count(),
                p50_ns: hist.quantile(0.5),
                p90_ns: hist.quantile(0.9),
                p99_ns: hist.quantile(0.99),
                max_ns: hist.max(),
                sum_ns: hist.sum(),
            });
        });
        MetricsSnapshot { traces_recorded: self.ring.recorded(), series }
    }

    /// The most recent completed traces, newest first, optionally keeping
    /// only requests at least `min_ms` milliseconds long (the
    /// slow-request filter).
    pub fn recent_traces(&self, n: usize, min_ms: u64) -> Vec<Arc<RequestTrace>> {
        let min_nanos = min_ms.saturating_mul(1_000_000);
        let mut out: Vec<Arc<RequestTrace>> =
            self.ring.snapshot().into_iter().rev().filter(|t| t.total_nanos >= min_nanos).collect();
        out.truncate(n);
        out
    }
}

/// A trace that outlived [`crate::PlanService::submit`]: the event loop
/// holds it until the response bytes fully reach the socket, then closes
/// its `flush` span and seals it.
pub(crate) struct PendingTrace {
    pub builder: TraceBuilder,
    pub outcome: Outcome,
}

/// The trace outcome a plan response source maps to.
pub(crate) fn outcome_for_source(source: PlanSource) -> Outcome {
    match source {
        PlanSource::Cache => Outcome::Hit,
        PlanSource::Synthesized => Outcome::Miss,
        PlanSource::Coalesced => Outcome::Coalesced,
    }
}

/// The trace outcome a typed error maps to.
pub(crate) fn outcome_for_error(err: &WireError) -> Outcome {
    if err.is_busy() {
        Outcome::Shed
    } else if err.kind == INTERNAL_KIND {
        Outcome::Internal
    } else {
        Outcome::Error
    }
}

/// A bounded FIFO map from request fingerprint to the [`SynthProfile`] of
/// the synthesis that produced its cached plan, so `"profile": true`
/// requests answered from the cache can still report how the plan was
/// found. Memory-only (profiles are diagnostics, not plans) and bounded
/// like [`crate::replan::ReplanIndex`].
pub(crate) struct ProfileIndex {
    cap: usize,
    map: std::collections::HashMap<u64, Arc<SynthProfile>>,
    order: std::collections::VecDeque<u64>,
}

impl ProfileIndex {
    pub fn new(cap: usize) -> ProfileIndex {
        ProfileIndex {
            cap: cap.max(1),
            map: std::collections::HashMap::new(),
            order: std::collections::VecDeque::new(),
        }
    }

    pub fn record(&mut self, fp: u64, profile: Arc<SynthProfile>) {
        if self.map.insert(fp, profile).is_none() {
            if self.map.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
            self.order.push_back(fp);
        }
    }

    pub fn get(&self, fp: u64) -> Option<Arc<SynthProfile>> {
        self.map.get(&fp).cloned()
    }
}

// ---------------------------------------------------------------------------
// Wire shapes
// ---------------------------------------------------------------------------

/// One verb × outcome latency series in a `metrics` response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSeries {
    pub verb: String,
    pub outcome: String,
    pub count: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    pub sum_ns: u64,
}

/// The `metrics` verb's payload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Total request traces ever recorded (not just retained).
    pub traces_recorded: u64,
    /// Every non-empty verb × outcome series, in stable verb-major order.
    pub series: Vec<MetricsSeries>,
}

impl MetricsSnapshot {
    pub fn encode(&self) -> Value {
        let series = self
            .series
            .iter()
            .map(|s| {
                Value::obj(vec![
                    ("verb", Value::Str(s.verb.clone())),
                    ("outcome", Value::Str(s.outcome.clone())),
                    ("count", Value::int(s.count.min(MAX_WIRE_INT))),
                    ("p50_ns", int_ns(s.p50_ns)),
                    ("p90_ns", int_ns(s.p90_ns)),
                    ("p99_ns", int_ns(s.p99_ns)),
                    ("max_ns", int_ns(s.max_ns)),
                    ("sum_ns", int_ns(s.sum_ns)),
                ])
            })
            .collect();
        Value::obj(vec![
            ("traces_recorded", Value::int(self.traces_recorded.min(MAX_WIRE_INT))),
            ("series", Value::Arr(series)),
        ])
    }

    /// Lenient decode: numeric fields a frame omits read as 0, so a
    /// newer client interrogating an older daemon (whose `metrics` frames
    /// predate later-added fields) degrades to zeros instead of erroring.
    /// Pinned by the committed `metrics_old_daemon` fixture.
    pub fn decode(v: &Value) -> Result<MetricsSnapshot, CodecError> {
        let lenient = |obj: &Value, key: &str| match obj.get(key) {
            None | Some(Value::Null) => Ok(0),
            Some(x) => x.as_u64(),
        };
        let mut series = Vec::new();
        if let Some(items) = v.get("series") {
            for item in items.as_arr()? {
                series.push(MetricsSeries {
                    verb: item.field("verb")?.as_str()?.to_string(),
                    outcome: item.field("outcome")?.as_str()?.to_string(),
                    count: lenient(item, "count")?,
                    p50_ns: lenient(item, "p50_ns")?,
                    p90_ns: lenient(item, "p90_ns")?,
                    p99_ns: lenient(item, "p99_ns")?,
                    max_ns: lenient(item, "max_ns")?,
                    sum_ns: lenient(item, "sum_ns")?,
                });
            }
        }
        Ok(MetricsSnapshot { traces_recorded: lenient(v, "traces_recorded")?, series })
    }
}

/// Encodes one completed trace for a `trace` response.
pub fn encode_trace(t: &RequestTrace) -> Value {
    let spans = t
        .spans
        .iter()
        .map(|s| {
            Value::obj(vec![
                ("kind", Value::Str(s.kind.as_str().to_string())),
                ("start_ns", int_ns(s.start_nanos)),
                ("end_ns", int_ns(s.end_nanos)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("trace_id", Value::int(t.trace_id.min(MAX_WIRE_INT))),
        ("request_id", Value::int(t.request_id.min(MAX_WIRE_INT))),
        ("verb", Value::Str(t.verb.as_str().to_string())),
        ("outcome", Value::Str(t.outcome.as_str().to_string())),
        ("total_ns", int_ns(t.total_nanos)),
        ("spans", Value::Arr(spans)),
    ];
    if !t.annotations.is_empty() {
        fields.push((
            "annotations",
            Value::Obj(
                t.annotations.iter().map(|(k, v)| (k.clone(), int_ns(*v))).collect::<Vec<_>>(),
            ),
        ));
    }
    Value::obj(fields)
}

/// Decodes a trace from a `trace` response. Lenient like
/// [`MetricsSnapshot::decode`]: unknown span kinds are skipped, missing
/// numerics read as 0, and unknown verbs/outcomes degrade to
/// `invalid`/`error` rather than failing the frame.
pub fn decode_trace(v: &Value) -> Result<RequestTrace, CodecError> {
    let lenient = |key: &str| match v.get(key) {
        None | Some(Value::Null) => Ok(0),
        Some(x) => x.as_u64(),
    };
    let mut spans = Vec::new();
    if let Some(items) = v.get("spans") {
        for item in items.as_arr()? {
            let Some(kind) = SpanKind::parse(item.field("kind")?.as_str()?) else {
                continue; // a span kind this client predates
            };
            spans.push(Span {
                kind,
                start_nanos: item.field("start_ns")?.as_u64()?,
                end_nanos: item.field("end_ns")?.as_u64()?,
            });
        }
    }
    let verb =
        v.get("verb").and_then(|x| x.as_str().ok()).and_then(Verb::parse).unwrap_or(Verb::Invalid);
    let outcome = v
        .get("outcome")
        .and_then(|x| x.as_str().ok())
        .and_then(Outcome::parse)
        .unwrap_or(Outcome::Error);
    let mut annotations = Vec::new();
    if let Some(Value::Obj(fields)) = v.get("annotations") {
        for (k, val) in fields {
            annotations.push((k.clone(), val.as_u64()?));
        }
    }
    Ok(RequestTrace {
        trace_id: lenient("trace_id")?,
        request_id: lenient("request_id")?,
        verb,
        outcome,
        total_nanos: lenient("total_ns")?,
        spans,
        annotations,
    })
}

/// Encodes a synthesis profile as the plan response's `"profile"` field.
pub(crate) fn encode_profile(p: &SynthProfile) -> Value {
    Value::Obj(p.entries().iter().map(|(k, v)| (k.to_string(), int_ns(*v))).collect::<Vec<_>>())
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Renders the stats counters and latency summaries in the Prometheus
/// text exposition format (`hap-client --prom` prints this for a
/// file-based or exec-based scrape).
pub fn render_prometheus(stats: &StatsSnapshot, metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("# HELP hap_stat Daemon counters and gauges from the `stats` verb.\n");
    out.push_str("# TYPE hap_stat gauge\n");
    for (name, value) in stats.fields() {
        out.push_str(&format!("hap_stat{{name=\"{name}\"}} {value}\n"));
    }
    // A zero-sample daemon (fresh boot, or telemetry off) has no series:
    // emit nothing for the metric rather than an empty HELP/TYPE stanza,
    // so scrapers never see a summary with fabricated quantiles.
    if metrics.series.is_empty() {
        return out;
    }
    out.push_str(
        "# HELP hap_request_latency_seconds Request latency by verb and outcome \
         (log-bucketed quantiles).\n",
    );
    out.push_str("# TYPE hap_request_latency_seconds summary\n");
    let secs = |ns: u64| ns as f64 / 1e9;
    for s in &metrics.series {
        let labels = format!("verb=\"{}\",outcome=\"{}\"", s.verb, s.outcome);
        for (q, v) in [("0.5", s.p50_ns), ("0.9", s.p90_ns), ("0.99", s.p99_ns)] {
            out.push_str(&format!(
                "hap_request_latency_seconds{{{labels},quantile=\"{q}\"}} {}\n",
                secs(v)
            ));
        }
        out.push_str(&format!("hap_request_latency_seconds_sum{{{labels}}} {}\n", secs(s.sum_ns)));
        out.push_str(&format!("hap_request_latency_seconds_count{{{labels}}} {}\n", s.count));
        out.push_str(&format!("hap_request_latency_seconds_max{{{labels}}} {}\n", secs(s.max_ns)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            traces_recorded: 12,
            series: vec![MetricsSeries {
                verb: "plan".into(),
                outcome: "hit".into(),
                count: 10,
                p50_ns: 1_100,
                p90_ns: 2_200,
                p99_ns: 3_300,
                max_ns: 3_456,
                sum_ns: 15_000,
            }],
        }
    }

    #[test]
    fn metrics_snapshot_round_trips() {
        let snap = sample_snapshot();
        let decoded = MetricsSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn metrics_decode_is_lenient_for_missing_fields() {
        // An older daemon's frame: no traces_recorded, a series without
        // the later-added sum/max fields.
        let old = Value::obj(vec![(
            "series",
            Value::Arr(vec![Value::obj(vec![
                ("verb", Value::Str("plan".into())),
                ("outcome", Value::Str("hit".into())),
                ("count", Value::int(3)),
                ("p50_ns", Value::int(1000)),
            ])]),
        )]);
        let decoded = MetricsSnapshot::decode(&old).unwrap();
        assert_eq!(decoded.traces_recorded, 0);
        assert_eq!(decoded.series.len(), 1);
        assert_eq!(decoded.series[0].count, 3);
        assert_eq!(decoded.series[0].p50_ns, 1000);
        assert_eq!(decoded.series[0].p90_ns, 0);
        assert_eq!(decoded.series[0].sum_ns, 0);
    }

    #[test]
    fn trace_round_trips_including_annotations() {
        let trace = RequestTrace {
            trace_id: 7,
            request_id: 42,
            verb: Verb::Plan,
            outcome: Outcome::Miss,
            total_nanos: 500,
            spans: vec![
                Span { kind: SpanKind::Decode, start_nanos: 100, end_nanos: 200 },
                Span { kind: SpanKind::Synthesis, start_nanos: 200, end_nanos: 600 },
            ],
            annotations: vec![("expansions".into(), 64)],
        };
        let decoded = decode_trace(&encode_trace(&trace)).unwrap();
        assert_eq!(decoded.trace_id, 7);
        assert_eq!(decoded.verb, Verb::Plan);
        assert_eq!(decoded.outcome, Outcome::Miss);
        assert_eq!(decoded.spans, trace.spans);
        assert_eq!(decoded.annotations, trace.annotations);
    }

    #[test]
    fn unknown_span_kinds_and_verbs_degrade_not_fail() {
        let v = Value::obj(vec![
            ("trace_id", Value::int(1)),
            ("verb", Value::Str("future_verb".into())),
            ("outcome", Value::Str("future_outcome".into())),
            (
                "spans",
                Value::Arr(vec![Value::obj(vec![
                    ("kind", Value::Str("quantum_wait".into())),
                    ("start_ns", Value::int(0)),
                    ("end_ns", Value::int(1)),
                ])]),
            ),
        ]);
        let decoded = decode_trace(&v).unwrap();
        assert_eq!(decoded.verb, Verb::Invalid);
        assert_eq!(decoded.outcome, Outcome::Error);
        assert!(decoded.spans.is_empty());
    }

    #[test]
    fn profile_index_is_bounded_fifo() {
        let mut index = ProfileIndex::new(2);
        let p = Arc::new(SynthProfile::default());
        index.record(1, p.clone());
        index.record(2, p.clone());
        index.record(3, p.clone());
        assert!(index.get(1).is_none());
        assert!(index.get(2).is_some());
        assert!(index.get(3).is_some());
        // Re-recording an existing fingerprint neither duplicates nor
        // evicts.
        index.record(3, p);
        assert!(index.get(2).is_some());
    }

    #[test]
    fn prometheus_exposition_has_summary_lines() {
        let stats = StatsSnapshot { hits: 10, ..Default::default() };
        let prom = render_prometheus(&stats, &sample_snapshot());
        assert!(prom.contains("hap_stat{name=\"hits\"} 10\n"));
        assert!(prom.contains(
            "hap_request_latency_seconds{verb=\"plan\",outcome=\"hit\",quantile=\"0.5\"} "
        ));
        assert!(
            prom.contains("hap_request_latency_seconds_count{verb=\"plan\",outcome=\"hit\"} 10")
        );
    }
}
