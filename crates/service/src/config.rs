//! Daemon configuration and the protocol-level limits derived from it.

use std::num::NonZeroU64;
use std::path::PathBuf;

use hap_telemetry::Clock;

/// When the persistence log fsyncs appended records (`--fsync`).
///
/// The policy trades durability for append latency. A record that was
/// appended but not yet fsynced can be lost to a *power failure* (a mere
/// daemon crash keeps it — the bytes are in the page cache); whatever
/// survives, recovery is clean, because [`crate::load_cache`] tolerates
/// the one torn final line a cut-short append leaves behind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: no acknowledged record is ever lost,
    /// at one disk flush per synthesis.
    Always,
    /// `fsync` every N appends (and on clean shutdown): at most N-1
    /// records of power-loss exposure, amortized flush cost. The default,
    /// with N = [`DEFAULT_FSYNC_EVERY`].
    EveryN(NonZeroU64),
    /// Never `fsync` (the OS flushes on its own schedule): fastest,
    /// power-loss exposure unbounded. Crash-recovery semantics are
    /// unchanged.
    Never,
}

/// The batch size of the default [`FsyncPolicy::EveryN`] policy.
pub const DEFAULT_FSYNC_EVERY: u64 = 8;

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(NonZeroU64::new(DEFAULT_FSYNC_EVERY).expect("nonzero const"))
    }
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag: `always`, `never`, `every-n` (default
    /// batch), or `every-n=K` for an explicit batch size K ≥ 1.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "every-n" => Ok(FsyncPolicy::default()),
            _ => match s.strip_prefix("every-n=") {
                Some(k) => k
                    .parse::<u64>()
                    .ok()
                    .and_then(NonZeroU64::new)
                    .map(FsyncPolicy::EveryN)
                    .ok_or_else(|| format!("invalid fsync batch size {k:?} (need an integer ≥ 1)")),
                None => Err(format!("invalid fsync policy {s:?} (always | every-n[=K] | never)")),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-n={n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address; port `0` picks a free port (tests, examples).
    pub addr: String,
    /// Synthesis worker threads (`0` = all cores, via mini-rayon).
    pub workers: usize,
    /// Total plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Persistence log; `None` disables disk persistence.
    pub cache_path: Option<PathBuf>,
    /// When appended records are fsynced (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Seed cache misses from the nearest cached cluster's plan.
    pub warm_neighbors: bool,
    /// Gate cache admission on synthesis-seconds-saved-per-byte (see
    /// [`crate::CachePolicy::admission`]); off = the PR-4 plain LRU.
    pub cache_admission: bool,
    /// Default TTL (milliseconds) for cached plans that carry no
    /// per-request `ttl_ms`; `None` = cached plans never expire.
    pub default_ttl_ms: Option<u64>,
    /// Maximum queued (not yet running) syntheses before new requests are
    /// shed with a `busy` frame. `0` = unbounded (the PR-4 behavior).
    pub max_queue_depth: usize,
    /// Base of the `retry_after_ms` hint in `busy` frames; the hint scales
    /// with the observed queue depth.
    pub busy_retry_ms: u64,
    /// Close a connection after this many milliseconds without a complete
    /// request (connections awaiting a queued synthesis never time out).
    /// `0` disables the idle sweep.
    pub idle_timeout_ms: u64,
    /// Maximum bytes of one request line; longer lines are rejected with
    /// a typed `oversize` error frame and discarded without buffering.
    pub max_line_bytes: usize,
    /// Pause reading from a connection while more than this many response
    /// bytes are queued toward it (write backpressure); reads resume once
    /// the backlog drains below half the cap.
    pub write_buffer_cap: usize,
    /// Chunk payload size for `"stream": true` plan responses.
    pub stream_chunk_bytes: usize,
    /// Record per-request traces and latency histograms (the `metrics` /
    /// `trace` verbs). Costs a few relaxed atomics and clock reads per
    /// request; off, those verbs answer empty.
    pub telemetry: bool,
    /// Completed request traces retained for the `trace` verb (a fixed
    /// ring; the oldest trace is overwritten at capacity).
    pub trace_ring_capacity: usize,
    /// The time source behind spans and histograms. Production uses the
    /// default monotonic clock; tests inject [`Clock::Manual`] or
    /// [`Clock::Step`] to pin span timelines exactly.
    pub telemetry_clock: Clock,
    /// Virtual nodes per member when this daemon reports or installs a
    /// cluster ring (`hap-cluster` mode). Only the default for rings the
    /// daemon *originates*; an installed [`hap_codec::RingInfo`] carries
    /// its own value.
    pub ring_vnodes: u32,
    /// Default replication factor K for cluster rings this daemon
    /// originates (distinct owners per fingerprint).
    pub ring_replication: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            cache_capacity: 1024,
            cache_path: None,
            fsync: FsyncPolicy::default(),
            warm_neighbors: true,
            cache_admission: true,
            default_ttl_ms: None,
            max_queue_depth: 256,
            busy_retry_ms: 25,
            idle_timeout_ms: 300_000,
            max_line_bytes: 64 * 1024 * 1024,
            write_buffer_cap: 4 * 1024 * 1024,
            stream_chunk_bytes: hap_codec::STREAM_CHUNK_BYTES,
            telemetry: true,
            trace_ring_capacity: 256,
            telemetry_clock: Clock::monotonic(),
            ring_vnodes: 64,
            ring_replication: 2,
        }
    }
}

/// Upper bound on a request's cache TTL: 90 days, in milliseconds.
///
/// The bound is a protocol invariant, not just a sanity check: the codec's
/// `Value::int` only represents integers up to 2^53 exactly (JSON numbers
/// are f64), and a TTL is persisted in *nanoseconds* — 90 days is
/// ~7.8e15 ns, comfortably inside the exact range, while an unchecked
/// wire `ttl_ms` times 1e6 could blow past it and panic the encoder. Both
/// the daemon (reject) and [`crate::Client`] (refuse to send) enforce it.
pub const MAX_TTL_MS: u64 = 90 * 24 * 60 * 60 * 1000;

/// Ceiling on the `retry_after_ms` hint in busy frames (5 minutes): the
/// hint scales with the observed backlog and the configured base, and an
/// operator-supplied giant `--busy-retry-ms` must not overflow the
/// codec's exact-integer range while shedding — overload protection that
/// panics under overload protects nothing.
pub(crate) const MAX_RETRY_HINT_MS: u64 = 300_000;

/// The (clamped) retry hint for a shed request observing `depth` queued
/// jobs.
pub(crate) fn busy_hint_ms(base_ms: u64, depth: usize) -> u64 {
    base_ms.max(1).saturating_mul((depth as u64).saturating_add(1)).min(MAX_RETRY_HINT_MS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses_and_rejects() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every-n"), Ok(FsyncPolicy::default()));
        assert_eq!(
            FsyncPolicy::parse("every-n=3"),
            Ok(FsyncPolicy::EveryN(NonZeroU64::new(3).unwrap()))
        );
        assert!(FsyncPolicy::parse("every-n=0").is_err(), "batch must be ≥ 1");
        assert!(FsyncPolicy::parse("every-n=x").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::default().to_string(), "every-n=8");
    }

    #[test]
    fn busy_hint_scales_with_depth_and_clamps() {
        assert_eq!(busy_hint_ms(25, 0), 25);
        assert_eq!(busy_hint_ms(25, 3), 100);
        // A zero base still produces a nonzero hint.
        assert_eq!(busy_hint_ms(0, 0), 1);
        // Operator-sized bases and saturating depths clamp instead of
        // overflowing the codec's exact-integer range.
        assert_eq!(busy_hint_ms(u64::MAX, 7), MAX_RETRY_HINT_MS);
        assert_eq!(busy_hint_ms(1, usize::MAX), MAX_RETRY_HINT_MS);
        // Both bounds stay inside the codec's exact-integer range.
        const { assert!(MAX_RETRY_HINT_MS < (1 << 53)) };
        const { assert!(MAX_TTL_MS * 1_000_000 < (1 << 53)) };
    }
}
