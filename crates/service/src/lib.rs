//! A multi-tenant planning daemon for HAP.
//!
//! HAP's synthesized SPMD programs are pure functions of
//! `(graph, cluster spec, options)` — deterministic bit-for-bit across
//! runs, thread counts, and warm starts (PRs 2–3). That purity makes the
//! planner *cacheable*, and this crate turns the in-process pipeline into
//! a long-lived service many training jobs can query:
//!
//! * **Transport** — a line-delimited JSON protocol over
//!   [`std::net::TcpListener`], using the canonical wire codec from
//!   `hap-codec`. One request per line, one response per line.
//! * **Content-addressed plan cache** — a sharded LRU keyed by the
//!   FNV-1a fingerprint of the request's canonical encoding
//!   ([`hap_codec::request_fingerprint_values`]). A cache hit returns a
//!   plan bit-identical to what cold synthesis would produce, without
//!   decoding the graph at all.
//! * **Single-flight synthesis** — N concurrent identical requests
//!   trigger exactly one synthesis; the rest coalesce onto the in-flight
//!   slot and wake together.
//! * **Worker pool** — queued syntheses drain across persistent worker
//!   threads sized by mini-rayon's parallelism accounting (`workers`
//!   threads, `0` = all cores), one job per worker at a time; each job's
//!   wave-parallel A\* fans out over the vendored mini-rayon pool in
//!   turn.
//! * **Nearest-neighbor warm start** — a miss whose *graph* is already
//!   cached under a different cluster seeds
//!   [`hap::parallelize_with_warm`] with the nearest cached cluster's
//!   program (SPMD programs are device-count independent), so related
//!   requests amortize each other's search. Same caveat as the core
//!   library's own (default-on) round-to-round warm start: results are
//!   preserved up to exact cost ties — a seed can only be returned when
//!   it ties the cold optimum within the search epsilon. Disable with
//!   [`ServiceConfig::warm_neighbors`] for strict history-independence.
//! * **Disk persistence** — an append-only log of cache entries,
//!   compacted on boot, so the cache survives daemon restarts.
//! * **Stats** — a `stats` request exposes hit/miss/coalesced/eviction/
//!   in-flight counters.
//!
//! # Protocol
//!
//! Requests (one JSON object per line):
//!
//! ```text
//! {"op":"plan","id":1,"graph":{...},"cluster":{...},"options":{...}}
//! {"op":"stats","id":2}
//! {"op":"shutdown","id":3}
//! ```
//!
//! Responses carry the request `id`, `"ok":true|false`, and either a
//! payload (`plan` + `fingerprint` + `source`, or `stats`) or an `error`
//! frame `{"kind":...,"message":...}` transporting the daemon-side error.
//!
//! # Examples
//!
//! ```
//! use hap_service::{Client, Server, ServiceConfig};
//!
//! let server = Server::start(ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! let graph = hap_models::mlp(&hap_models::MlpConfig::tiny());
//! let cluster = hap::cluster::ClusterSpec::fig17_cluster();
//! let opts = hap::HapOptions::default();
//! let cold = client.plan(&graph, &cluster, &opts).unwrap();
//! let warm = client.plan(&graph, &cluster, &opts).unwrap();
//! assert_eq!(warm.source, "cache");
//! assert_eq!(cold.program.fingerprint(), warm.program.fingerprint());
//! ```

mod cache;
mod client;
mod server;

pub use cache::{cluster_features, CachedPlan, PlanCache};
pub use client::{Client, PlanReply};
pub use server::{PlanService, PlanSource, Server, ServiceConfig, StatsSnapshot};
