//! A multi-tenant planning daemon for HAP.
//!
//! HAP's synthesized SPMD programs are pure functions of
//! `(graph, cluster spec, options)` — deterministic bit-for-bit across
//! runs, thread counts, and warm starts (PRs 2–3). That purity makes the
//! planner *cacheable*, and this crate turns the in-process pipeline into
//! a long-lived service many training jobs can query:
//!
//! * **Transport** — a line-delimited JSON protocol over a
//!   readiness-driven event loop (`net::event_loop`, on the vendored
//!   `mini-epoll` poller): one nonblocking I/O thread owns every
//!   connection — incremental line framing with a hard per-line cap,
//!   bounded write buffers with read backpressure, an idle sweep — and
//!   the fixed worker pool only computes, delivering response bytes back
//!   through a completion queue and a wake pipe. ~1k concurrent
//!   connections cost one thread, and requests pipelined on one
//!   connection always answer in request order.
//! * **Streaming responses** — a plan request carrying `"stream":true`
//!   is answered as bounded `chunk` frames plus a `done` frame with a
//!   digest ([`hap_codec::StreamDecoder`] reassembles and verifies);
//!   the payload is byte-identical to the plain response line.
//! * **Content-addressed plan cache** — a sharded LRU keyed by the
//!   FNV-1a fingerprint of the request's canonical encoding
//!   ([`hap_codec::request_fingerprint_values`]). A cache hit returns a
//!   plan bit-identical to what cold synthesis would produce, without
//!   decoding the graph at all.
//! * **Single-flight synthesis** — N concurrent identical requests
//!   trigger exactly one synthesis; the rest coalesce onto the in-flight
//!   slot and wake together.
//! * **Worker pool** — queued syntheses drain across persistent worker
//!   threads sized by mini-rayon's parallelism accounting (`workers`
//!   threads, `0` = all cores), one job per worker at a time; each job's
//!   wave-parallel A\* fans out over the vendored mini-rayon pool in
//!   turn.
//! * **Nearest-neighbor warm start** — a miss whose *graph* is already
//!   cached under a different cluster seeds
//!   [`hap::parallelize_with_warm`] with the nearest cached cluster's
//!   program (SPMD programs are device-count independent), so related
//!   requests amortize each other's search. Same caveat as the core
//!   library's own (default-on) round-to-round warm start: results are
//!   preserved up to exact cost ties — a seed can only be returned when
//!   it ties the cold optimum within the search epsilon. Disable with
//!   [`ServiceConfig::warm_neighbors`] for strict history-independence.
//! * **Elastic replanning** — a `replan` request names a prior plan by
//!   fingerprint and carries a [`hap_cluster::ClusterDelta`] (devices
//!   removed/added, network overrides). The daemon validates and applies
//!   the delta, rebases the request onto the post-delta cluster, answers
//!   from the cache when that cluster was already planned, and otherwise
//!   synthesizes with the prior program seeding the A\* incumbent; the
//!   response adds a machine-readable [`PlanDiff`]. Invalid deltas fail
//!   with a typed `delta` frame, truly unknown priors with
//!   `unknown_fingerprint`. The replan index is rebuilt from the
//!   persistence log at boot (request triples ride along with persisted
//!   plans and are verified against their fingerprints before being
//!   trusted), so a restarted daemon keeps answering `replan` for every
//!   plan it had persisted; in cluster mode an unknown prior is proxied
//!   to its ring owner before the error is returned.
//! * **Cluster mode** — N daemons share the plan cache across a
//!   consistent-hash ring ([`Ring`]): each member takes `ring_vnodes`
//!   token positions, a fingerprint is owned by the first
//!   `ring_replication` distinct members clockwise, and the ring is a
//!   pure function of the [`RingInfo`] membership record, so every
//!   holder of the record computes identical owners. Misses at a
//!   non-owner are proxied to the primary (single-flight becomes
//!   ring-wide: the owner is the synthesis leader for its range); a
//!   freshly synthesized plan is replicated synchronously to the other
//!   owners before the client sees the ack, so an owner crash loses no
//!   acknowledged plan. [`ClusterClient`] learns the ring via the `ring`
//!   verb, routes requests to owners locally, and follows typed
//!   `not_owner` redirects (stale-epoch requests are redirected, not
//!   proxied, so clients converge on the new membership). Membership
//!   changes are installed by an operator bumping the epoch; installs
//!   are monotonic and idempotent.
//! * **Cost-aware cache admission** — entries carry their measured
//!   synthesis time and canonical size; a full shard only admits a
//!   candidate whose synthesis-seconds-saved-per-byte density is at least
//!   the LRU victim's, so one-off floods cannot evict the hot working set
//!   ([`CachePolicy`]; off = plain LRU).
//! * **TTL expiry** — per-request (`"ttl_ms"`) or config-default TTLs
//!   expire plans for decommissioned clusters; expired entries are never
//!   served, never seed warm starts, and drop out at compaction.
//! * **Queue-depth admission control** — a bounded synthesis backlog
//!   sheds new distinct requests with a typed `busy` frame carrying
//!   `retry_after_ms`; duplicates still coalesce (they add no load).
//!   [`Client::plan_with_retry`] backs off exponentially, honoring the
//!   hint.
//! * **Crash-safe disk persistence** — a WAL-style append-only log of
//!   checksummed cache records (`{"v":3,"sum":...}`; v2 and PR-4-era
//!   unversioned lines still load, migrating at compaction), compacted
//!   *atomically* on boot (temp file + fsync + rename + directory fsync),
//!   with a configurable append fsync policy (`--fsync
//!   always|every-n|never`, default batched). A crash mid-append leaves
//!   at most one torn final line, which [`load_cache`] recovers and
//!   truncates; interior corruption stays a hard error. A disk fault at
//!   runtime (ENOSPC, EIO) never takes the daemon down: the log degrades
//!   to memory-only (`persistence_degraded` gauge, `persist_errors`
//!   counter) and every later append re-probes, resuming — and
//!   back-filling the outage window from the cache — once the disk heals.
//! * **Panic isolation** — synthesis jobs run under `catch_unwind`; a
//!   panicking job answers its leader *and* every coalesced follower with
//!   a typed `internal` error frame, retires its in-flight entry, leaves
//!   no lock poisoned, and bumps the `panics` counter while the daemon
//!   keeps serving.
//! * **Fault injection** — the [`faults`] registry lets tests arm seeded
//!   one-shot failpoints (injected errno, torn writes, panics) on the fs
//!   and dispatch paths; the crash-recovery torture harness
//!   (`tests/faults.rs`, CI `service-faults`) proves the durability and
//!   isolation claims above.
//! * **Stats** — a `stats` request exposes hit/miss/coalesced/eviction/
//!   shed/admission-rejected/expired/in-flight counters plus event-loop
//!   gauges (open/peak connections, read/write buffer high-water marks,
//!   idle-swept connections). Gauges are sampled once, together, so the
//!   snapshot describes one instant.
//! * **End-to-end telemetry** — every request is traced through a span
//!   timeline (`accept → frame → decode → cache_lookup → queue_wait →
//!   synthesis → encode → flush`) into a fixed-capacity ring, and its
//!   wire latency feeds constant-size log-bucketed histograms keyed by
//!   verb × outcome. A `metrics` request returns per-series
//!   `count/p50/p90/p99/max/sum`; a `trace` request returns the most
//!   recent completed traces (optionally only the slow ones). Plan
//!   responses can carry the synthesis profiler's per-wave counters
//!   (`"profile":true`). The hot path costs a few atomic clock reads;
//!   `telemetry=false` reduces it to nothing and the verbs report empty
//!   data ([`ServiceConfig::telemetry`]).
//!
//! # Telemetry
//!
//! The trace ring holds the last [`ServiceConfig::trace_ring_capacity`]
//! completed traces (default 256); histograms are mergeable and never
//! allocate after startup. The event loop stamps `accept`/`frame`/`flush`
//! spans around the service's own `decode`/`cache_lookup`/`queue_wait`/
//! `synthesis`/`encode` spans, so a trace covers the full wire-to-wire
//! path: the `flush` span ends when the response's last byte actually
//! left the socket, not when it was rendered. `hap-client --prom` renders
//! `stats` + `metrics` as Prometheus text; `hap-top` is a live terminal
//! view over the same verbs.
//! * **Stress tooling** — [`testing`] generates seeded adversarial tenant
//!   mixes (hot set + one-off flood + duplicate bursts); the overload
//!   harness (`tests/overload.rs`, CI `service-soak`) drives them over
//!   real sockets.
//!
//! # Protocol
//!
//! Requests (one JSON object per line):
//!
//! ```text
//! {"op":"plan","id":1,"graph":{...},"cluster":{...},"options":{...},"ttl_ms":60000}
//! {"op":"plan","id":2,"graph":{...},"cluster":{...},"options":{...},"stream":true}
//! {"op":"replan","id":3,"prior":"0x4fd1...","delta":{"remove_gpus":[[1,1]],...}}
//! {"op":"stats","id":4}
//! {"op":"metrics","id":5}
//! {"op":"trace","id":6,"n":8,"min_ms":50}
//! {"op":"ring","id":7}
//! {"op":"ring","id":8,"ring":{"epoch":2,"vnodes":64,"replication":2,"members":[...]},"self":"10.0.0.1:7641"}
//! {"op":"replicate","id":0,"fingerprint":"0x4fd1...","plan":{...},"req":{...}}
//! {"op":"shutdown","id":9}
//! ```
//!
//! (`ttl_ms`, `stream`, and `profile` are optional, on `replan` too;
//! `trace`'s `n` defaults to 16 and `min_ms` to 0. `plan`/`replan` may
//! carry an optional `epoch` — the ring epoch the client routed under.
//! A bare `ring` queries; `ring` + `self` installs that membership
//! record, and the response `{"id":N,"ok":true,"ring":{...},"self":...,
//! "installed":bool}` always reports the ring the daemon actually holds
//! — only a strictly newer epoch replaces the current one. `replicate`
//! is the peer-to-peer push of a freshly synthesized plan to a fellow
//! owner; it answers a bare ok frame.) Responses carry
//! the request `id`, `"ok":true|false`, and either a payload (`plan` with
//! `fingerprint` and `source` — extended with a `replan` diff object for
//! the replan verb, and a `profile` object of synthesis counters when the
//! request carried `"profile":true` — or `stats`, or `metrics` with
//! per-verb×outcome latency quantiles, or `traces` with recent span
//! timelines) or an `error` frame
//! `{"kind":...,"message":...}`
//! transporting the daemon-side error — overload sheds as
//! `{"kind":"busy","message":...,"retry_after_ms":N}`, an over-long line
//! as `{"kind":"oversize",...}`, and a synthesis job that panicked as
//! `{"kind":"internal",...}` (the daemon survives; the request did not
//! complete and may be retried). In cluster mode a request stamped with
//! a ring `epoch` different from the daemon's own, arriving at a
//! non-owner, fails with
//! `{"kind":"not_owner","owner":"host:port","ring_epoch":E,...}` — the
//! request was never executed; the client refreshes its ring at epoch
//! `E` and resends to `owner`. (Same-epoch and unstamped misses are
//! proxied to the owner instead, so ring-naive clients still get full
//! answers.) The `stats` payload includes the
//! durability keys `persist_errors` (failed persistence operations),
//! `persistence_degraded` (0/1 gauge: cache is memory-only until the disk
//! heals), and `panics` (isolated synthesis panics). With
//! `"stream":true` a successful plan
//! arrives as `{"id":N,"chunk":K,"data":...}` frames followed by
//! `{"id":N,"done":true,"chunks":K,"digest":...}`, whose concatenated
//! `data` is exactly the plain response line; errors are always one
//! plain frame.
//!
//! # Examples
//!
//! ```
//! use hap_service::{Client, Server, ServiceConfig};
//!
//! let server = Server::start(ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//!
//! let graph = hap_models::mlp(&hap_models::MlpConfig::tiny());
//! let cluster = hap::cluster::ClusterSpec::fig17_cluster();
//! let opts = hap::HapOptions::default();
//! let cold = client.plan(&graph, &cluster, &opts).unwrap();
//! let warm = client.plan(&graph, &cluster, &opts).unwrap();
//! assert_eq!(warm.source, "cache");
//! assert_eq!(cold.program.fingerprint(), warm.program.fingerprint());
//! ```

mod cache;
mod client;
mod config;
mod dispatch;
pub mod faults;
mod net;
mod peer;
mod replan;
mod ring;
mod service;
mod stats;
mod sync;
mod telemetry;
pub mod testing;

pub use cache::{
    cluster_features, compact_log, load_cache, Admission, CachePolicy, CachedPlan, LoadOutcome,
    PersistLog, PlanCache,
};
pub use client::{Client, ClusterClient, PlanReply, ReplanReply, RetryPolicy};
pub use config::{FsyncPolicy, ServiceConfig, DEFAULT_FSYNC_EVERY, MAX_TTL_MS};
pub use hap_codec::{PlanDiff, RingInfo};
pub use hap_telemetry::{Clock, Histogram, Outcome, RequestTrace, Span, SpanKind, Verb};
pub use net::event_loop::Server;
pub use ring::Ring;
pub use service::{PlanService, PlanSource};
pub use stats::StatsSnapshot;
pub use telemetry::{
    decode_trace, encode_trace, render_prometheus, MetricsSeries, MetricsSnapshot,
};
