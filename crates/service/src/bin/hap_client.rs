//! CLI client for the HAP planning daemon.
//!
//! ```text
//! hap-client --addr HOST:PORT [--model NAME]... [--requests N]
//!            [--concurrency N] [--ttl-ms N] [--max-retries N] [--stream]
//!            [--stats] [--prom] [--shutdown]
//!            [--assert KEY=V | KEY>=V | KEY<=V]...
//! ```
//!
//! Models are the bundled benchmark suite at test scale: `mlp`,
//! `bert-tiny`, `bert-moe-tiny`, `vgg-tiny`, `vit-tiny` — or `all` for
//! the four paper models. Each `--requests` repetition submits every
//! selected model; `--concurrency` fans the submissions out over that
//! many connections, which is how the CI smoke job provokes the
//! single-flight path. `--assert` checks daemon stats after the run
//! (exit 1 on violation), e.g. `--assert synthesized=1 --assert hits>=7
//! --assert errors<=0`. `--prom` fetches `stats` + `metrics` and prints
//! them in Prometheus text exposition format (for scraping via
//! `hap-client --addr ... --prom`).
//!
//! When the daemon sheds load (`busy` frames from its queue-depth cap),
//! submissions retry with exponential backoff honoring the frame's
//! `retry_after_ms` hint — up to `--max-retries` attempts (default 8,
//! `1` disables retrying). `--ttl-ms` asks the daemon to expire the
//! plans this run caches. `--stream` requests chunked streaming
//! responses (reassembled client-side; byte-identical to unstreamed
//! replies, so the determinism gate still applies).

use std::process::ExitCode;

use hap::HapOptions;
use hap_cluster::ClusterSpec;
use hap_graph::Graph;
use hap_models::{
    bert_base, bert_moe, mlp, vgg19, vit, BertConfig, MlpConfig, MoeConfig, VggConfig, VitConfig,
};
use hap_service::Client;

fn build_model(name: &str) -> Option<Graph> {
    match name {
        "mlp" => Some(mlp(&MlpConfig::tiny())),
        "bert-tiny" => Some(bert_base(&BertConfig::tiny())),
        "bert-moe-tiny" => Some(bert_moe(&MoeConfig::tiny(4))),
        "vgg-tiny" => Some(vgg19(&VggConfig::tiny())),
        "vit-tiny" => Some(vit(&VitConfig::tiny())),
        _ => None,
    }
}

/// An assertion's comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AssertOp {
    Exact,
    AtLeast,
    AtMost,
}

impl AssertOp {
    fn as_str(self) -> &'static str {
        match self {
            AssertOp::Exact => "=",
            AssertOp::AtLeast => ">=",
            AssertOp::AtMost => "<=",
        }
    }
}

/// One stats assertion: `key=value` (exact), `key>=value` (at least), or
/// `key<=value` (at most).
struct Assertion {
    key: String,
    bound: u64,
    op: AssertOp,
}

impl Assertion {
    fn parse(text: &str) -> Option<Assertion> {
        // The two-character operators first: both contain `=`, so a bare
        // `split_once('=')` would mis-parse `hits<=3` as key `hits<`.
        for (token, op) in [(">=", AssertOp::AtLeast), ("<=", AssertOp::AtMost)] {
            if let Some((key, v)) = text.split_once(token) {
                return Some(Assertion { key: key.into(), bound: v.parse().ok()?, op });
            }
        }
        let (key, v) = text.split_once('=')?;
        Some(Assertion { key: key.into(), bound: v.parse().ok()?, op: AssertOp::Exact })
    }

    fn check(
        &self,
        stats: &hap_service::StatsSnapshot,
        raw: &hap_codec::Value,
    ) -> Result<(), String> {
        // One source of truth for valid keys: the snapshot's own wire
        // field list (new counters become assertable automatically).
        if !stats.fields().into_iter().any(|(k, _)| k == self.key) {
            return Err(format!("unknown stats key `{}`", self.key));
        }
        // Assert against the daemon's actual reply, not the lenient
        // decode: a daemon that predates this key never sent it, and the
        // decoder's absent-reads-as-0 would make `key<=N` pass — and
        // `key>=N` fail with a bogus "is 0" — against a daemon that
        // cannot count it at all.
        let actual = match raw.get(&self.key) {
            Some(v) => {
                v.as_u64().map_err(|e| format!("stats key `{}` is not a counter: {e}", self.key))?
            }
            None => {
                return Err(format!(
                    "the daemon's stats reply carries no `{}` (daemon predates this key?)",
                    self.key
                ))
            }
        };
        let ok = match self.op {
            AssertOp::Exact => actual == self.bound,
            AssertOp::AtLeast => actual >= self.bound,
            AssertOp::AtMost => actual <= self.bound,
        };
        if ok {
            Ok(())
        } else {
            Err(format!("{} is {actual}, expected {} {}", self.key, self.op.as_str(), self.bound))
        }
    }
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut models: Vec<String> = Vec::new();
    let mut requests = 1usize;
    let mut concurrency = 1usize;
    let mut ttl_ms: Option<u64> = None;
    let mut retry = hap_service::RetryPolicy::default();
    let mut stream = false;
    let mut show_stats = false;
    let mut prom = false;
    let mut shutdown = false;
    let mut assertions: Vec<Assertion> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().ok_or_else(|| eprintln!("hap-client: {name} needs a value"));
        match flag.as_str() {
            "--addr" => match value("--addr") {
                Ok(v) => addr = Some(v),
                Err(()) => return ExitCode::FAILURE,
            },
            "--model" => match value("--model") {
                Ok(v) if v == "all" => {
                    for m in ["vgg-tiny", "vit-tiny", "bert-tiny", "bert-moe-tiny"] {
                        models.push(m.into());
                    }
                }
                Ok(v) => models.push(v),
                Err(()) => return ExitCode::FAILURE,
            },
            "--requests" => match value("--requests")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-client: bad count: {e}")))
            {
                Ok(n) => requests = n,
                Err(()) => return ExitCode::FAILURE,
            },
            "--concurrency" => match value("--concurrency")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-client: bad count: {e}")))
            {
                Ok(n) => concurrency = std::cmp::max(1, n),
                Err(()) => return ExitCode::FAILURE,
            },
            "--ttl-ms" => match value("--ttl-ms")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-client: bad TTL: {e}")))
            {
                Ok(ms) if ms <= hap_service::MAX_TTL_MS => ttl_ms = Some(ms),
                Ok(ms) => {
                    eprintln!(
                        "hap-client: --ttl-ms {ms} exceeds the maximum {}",
                        hap_service::MAX_TTL_MS
                    );
                    return ExitCode::FAILURE;
                }
                Err(()) => return ExitCode::FAILURE,
            },
            "--max-retries" => match value("--max-retries")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-client: bad count: {e}")))
            {
                Ok(n) => retry.max_attempts = std::cmp::max(1, n),
                Err(()) => return ExitCode::FAILURE,
            },
            "--stream" => stream = true,
            "--stats" => show_stats = true,
            "--prom" => prom = true,
            "--shutdown" => shutdown = true,
            "--assert" => match value("--assert") {
                Ok(v) => match Assertion::parse(&v) {
                    Some(a) => assertions.push(a),
                    None => {
                        eprintln!("hap-client: bad assertion `{v}`");
                        return ExitCode::FAILURE;
                    }
                },
                Err(()) => return ExitCode::FAILURE,
            },
            _ => {
                eprintln!("hap-client: unknown flag `{flag}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("hap-client: --addr is required");
        return ExitCode::FAILURE;
    };

    // The work list: every selected model, `requests` times over.
    let mut work: Vec<String> = Vec::new();
    for _ in 0..requests {
        work.extend(models.iter().cloned());
    }
    let cluster = ClusterSpec::fig17_cluster();
    let opts = HapOptions::default();

    // Fan the work out over `concurrency` connections. Every submission is
    // checked for bit-identity against the first reply of the same model:
    // whatever mix of synthesized/coalesced/cache answers comes back, the
    // plans must agree bit for bit (program fingerprint, estimated-time
    // bits, ratios) or the client exits nonzero — CI's determinism gate.
    let failed = std::sync::atomic::AtomicBool::new(false);
    type ReplyBits = (u64, u64, Vec<Vec<u64>>);
    let first_reply: std::sync::Mutex<std::collections::HashMap<String, ReplyBits>> =
        std::sync::Mutex::new(std::collections::HashMap::new());
    std::thread::scope(|scope| {
        for worker in 0..concurrency {
            let work = &work;
            let cluster = &cluster;
            let opts = &opts;
            let failed = &failed;
            let first_reply = &first_reply;
            let addr = addr.clone();
            let retry = retry;
            let stream = stream;
            scope.spawn(move || {
                let mut client = match Client::connect(&*addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("hap-client: connect: {e}");
                        failed.store(true, std::sync::atomic::Ordering::Relaxed);
                        return;
                    }
                };
                for (i, model) in work.iter().enumerate() {
                    if i % concurrency != worker {
                        continue;
                    }
                    let Some(graph) = build_model(model) else {
                        eprintln!("hap-client: unknown model `{model}`");
                        failed.store(true, std::sync::atomic::Ordering::Relaxed);
                        return;
                    };
                    let t0 = std::time::Instant::now();
                    match client.plan_with_retry_opts(&graph, cluster, opts, ttl_ms, stream, &retry)
                    {
                        Ok(reply) => {
                            println!(
                                "hap-client: {model} -> {} plan 0x{:016x} est {:.6}s in {:?} \
                                 ({} busy retries, {} stream chunks)",
                                reply.source,
                                reply.program.fingerprint(),
                                reply.estimated_time,
                                t0.elapsed(),
                                client.busy_retries(),
                                client.stream_chunks()
                            );
                            let bits: ReplyBits = (
                                reply.program.fingerprint(),
                                reply.estimated_time.to_bits(),
                                reply
                                    .ratios
                                    .iter()
                                    .map(|row| row.iter().map(|b| b.to_bits()).collect())
                                    .collect(),
                            );
                            let mut seen = first_reply.lock().expect("first-reply map poisoned");
                            let reference =
                                seen.entry(model.clone()).or_insert_with(|| bits.clone());
                            if *reference != bits {
                                eprintln!(
                                    "hap-client: {model}: plan differs from the first reply \
                                     (0x{:016x} vs 0x{:016x}) — determinism violation",
                                    bits.0, reference.0
                                );
                                failed.store(true, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            eprintln!("hap-client: {model}: {e}");
                            failed.store(true, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    if failed.load(std::sync::atomic::Ordering::Relaxed) {
        return ExitCode::FAILURE;
    }

    let mut client = match Client::connect(&*addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("hap-client: connect: {e}");
            return ExitCode::FAILURE;
        }
    };
    if show_stats || !assertions.is_empty() {
        let (stats, raw) = match client.stats_with_raw() {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("hap-client: stats: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("hap-client: stats {stats:?}");
        for a in &assertions {
            if let Err(msg) = a.check(&stats, &raw) {
                eprintln!("hap-client: assertion failed: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if prom {
        let scraped = client.stats().and_then(|stats| {
            let metrics = client.metrics()?;
            Ok(hap_service::render_prometheus(&stats, &metrics))
        });
        match scraped {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("hap-client: prom: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if shutdown {
        if let Err(e) = client.shutdown() {
            eprintln!("hap-client: shutdown: {e}");
            return ExitCode::FAILURE;
        }
        println!("hap-client: daemon acknowledged shutdown");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_codec::{Encode, Value};
    use hap_service::StatsSnapshot;

    fn parsed(text: &str) -> Assertion {
        Assertion::parse(text).unwrap_or_else(|| panic!("`{text}` should parse"))
    }

    /// The raw wire frame a current daemon would send for `stats`.
    fn raw_of(stats: &StatsSnapshot) -> Value {
        stats.encode()
    }

    /// The raw wire frame of an old daemon that predates `keys`: the
    /// current encoding with those keys stripped.
    fn old_daemon_frame(stats: &StatsSnapshot, missing: &[&str]) -> Value {
        let Value::Obj(fields) = stats.encode() else { panic!("stats encodes as an object") };
        Value::Obj(fields.into_iter().filter(|(k, _)| !missing.contains(&k.as_str())).collect())
    }

    #[test]
    fn two_character_operators_parse_before_the_bare_equals() {
        // `hits<=3` must not parse as key `hits<` with an exact bound.
        let le = parsed("hits<=3");
        assert_eq!((le.key.as_str(), le.bound, le.op), ("hits", 3, AssertOp::AtMost));
        let ge = parsed("hits>=3");
        assert_eq!((ge.key.as_str(), ge.bound, ge.op), ("hits", 3, AssertOp::AtLeast));
        let eq = parsed("hits=3");
        assert_eq!((eq.key.as_str(), eq.bound, eq.op), ("hits", 3, AssertOp::Exact));
        assert!(Assertion::parse("hits").is_none());
        assert!(Assertion::parse("hits<=x").is_none());
    }

    #[test]
    fn at_most_checks_the_upper_bound() {
        let stats = StatsSnapshot { errors: 2, ..StatsSnapshot::default() };
        let raw = raw_of(&stats);
        assert!(parsed("errors<=2").check(&stats, &raw).is_ok());
        assert!(parsed("errors<=1").check(&stats, &raw).is_err());
        assert!(parsed("errors>=2").check(&stats, &raw).is_ok());
        assert!(parsed("errors=2").check(&stats, &raw).is_ok());
    }

    #[test]
    fn every_wire_field_is_an_assertable_key() {
        let stats = StatsSnapshot::default();
        let raw = raw_of(&stats);
        for (key, _) in stats.fields() {
            assert!(
                parsed(&format!("{key}=0")).check(&stats, &raw).is_ok(),
                "key `{key}` should be assertable"
            );
        }
        assert!(parsed("bogus=0").check(&stats, &raw).is_err());
    }

    #[test]
    fn absent_keys_fail_clearly_instead_of_reading_zero() {
        // An old daemon never sent the cluster counters; the lenient
        // snapshot decode reads them as 0. Every operator — including the
        // ones 0 would satisfy — must fail with an "absent" diagnostic,
        // not silently compare against the decoder's filler.
        let stats = StatsSnapshot::default();
        let raw = old_daemon_frame(&stats, &["proxied", "redirected", "ring_epoch"]);
        for assertion in ["proxied<=0", "proxied>=0", "proxied=0", "redirected<=5", "ring_epoch>=1"]
        {
            let err = parsed(assertion)
                .check(&stats, &raw)
                .expect_err("assertion on an absent key must fail");
            assert!(
                err.contains("carries no"),
                "`{assertion}` should report the key as absent, got: {err}"
            );
        }
        // Keys the old daemon *did* send keep working, both directions.
        let stats = StatsSnapshot { hits: 7, ..StatsSnapshot::default() };
        let raw = old_daemon_frame(&stats, &["proxied"]);
        assert!(parsed("hits>=7").check(&stats, &raw).is_ok());
        assert!(parsed("hits<=7").check(&stats, &raw).is_ok());
        assert!(parsed("hits>=8").check(&stats, &raw).is_err());
        // A typo is still "unknown", not "absent".
        assert!(parsed("bogus=0").check(&stats, &raw).unwrap_err().contains("unknown"));
    }
}
