//! `hap-top`: a live terminal view of a planning daemon's telemetry.
//!
//! ```text
//! hap-top --addr HOST:PORT [--interval-ms N] [--iterations N]
//!         [--traces N] [--min-ms N] [--no-clear]
//! ```
//!
//! Each tick fetches `stats`, `metrics`, and `trace` from the daemon and
//! redraws one screen: the gauge/counter table, a latency row per
//! verb × outcome (count, p50/p90/p99/max), and the most recent request
//! traces rendered as compact span timelines. `--iterations` bounds the
//! run (0 = until interrupted; CI uses `--iterations 1 --no-clear` for a
//! deterministic single snapshot); `--min-ms` keeps only slow requests in
//! the trace pane.

use std::process::ExitCode;

use hap_service::{Client, MetricsSnapshot, RequestTrace, StatsSnapshot};

struct TopOptions {
    addr: String,
    interval_ms: u64,
    iterations: u64,
    traces: usize,
    min_ms: u64,
    clear: bool,
}

fn parse_args() -> Result<TopOptions, String> {
    let mut addr: Option<String> = None;
    let mut opts = TopOptions {
        addr: String::new(),
        interval_ms: 1_000,
        iterations: 0,
        traces: 8,
        min_ms: 0,
        clear: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--interval-ms" => {
                opts.interval_ms =
                    value("--interval-ms")?.parse().map_err(|e| format!("bad interval: {e}"))?
            }
            "--iterations" => {
                opts.iterations =
                    value("--iterations")?.parse().map_err(|e| format!("bad count: {e}"))?
            }
            "--traces" => {
                opts.traces = value("--traces")?.parse().map_err(|e| format!("bad count: {e}"))?
            }
            "--min-ms" => {
                opts.min_ms = value("--min-ms")?.parse().map_err(|e| format!("bad bound: {e}"))?
            }
            "--no-clear" => opts.clear = false,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    opts.addr = addr.ok_or("--addr is required")?;
    Ok(opts)
}

fn fmt_ms(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1e6)
}

/// One screenful: stats gauges, latency series, recent traces.
fn render(stats: &StatsSnapshot, metrics: &MetricsSnapshot, traces: &[RequestTrace]) -> String {
    let mut out = String::new();
    out.push_str("hap-top — planning daemon telemetry\n\n");

    out.push_str("stats:");
    for (i, (key, value)) in stats.fields().into_iter().enumerate() {
        if i % 4 == 0 {
            out.push_str("\n ");
        }
        out.push_str(&format!(" {key}={value}"));
    }
    out.push_str("\n\n");

    out.push_str(&format!("latency ({} samples recorded):\n", metrics.traces_recorded));
    out.push_str(&format!(
        "  {:<10}{:<12}{:>8}{:>10}{:>10}{:>10}{:>10}\n",
        "verb", "outcome", "count", "p50 ms", "p90 ms", "p99 ms", "max ms"
    ));
    for s in &metrics.series {
        out.push_str(&format!(
            "  {:<10}{:<12}{:>8}{:>10}{:>10}{:>10}{:>10}\n",
            s.verb,
            s.outcome,
            s.count,
            fmt_ms(s.p50_ns),
            fmt_ms(s.p90_ns),
            fmt_ms(s.p99_ns),
            fmt_ms(s.max_ns),
        ));
    }
    if metrics.series.is_empty() {
        out.push_str("  (no samples — telemetry disabled or no requests yet)\n");
    }

    out.push_str("\nrecent traces (newest first):\n");
    for t in traces {
        out.push_str(&format!(
            "  #{} id={} {} {} total {} ms\n",
            t.trace_id,
            t.request_id,
            t.verb.as_str(),
            t.outcome.as_str(),
            fmt_ms(t.total_nanos),
        ));
        for span in &t.spans {
            out.push_str(&format!(
                "      {:<13}{:>10} ms\n",
                span.kind.as_str(),
                fmt_ms(span.end_nanos.saturating_sub(span.start_nanos)),
            ));
        }
    }
    if traces.is_empty() {
        out.push_str("  (none)\n");
    }
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("hap-top: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect(&*opts.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("hap-top: connect: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut tick = 0u64;
    loop {
        let screen = client.stats().and_then(|stats| {
            let metrics = client.metrics()?;
            let traces = client.traces(opts.traces, opts.min_ms)?;
            Ok(render(&stats, &metrics, &traces))
        });
        match screen {
            Ok(text) => {
                if opts.clear {
                    // ANSI: home the cursor and clear below — less
                    // flicker than a full clear.
                    print!("\x1b[H\x1b[J");
                }
                print!("{text}");
                use std::io::Write;
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("hap-top: {e}");
                return ExitCode::FAILURE;
            }
        }
        tick += 1;
        if opts.iterations != 0 && tick >= opts.iterations {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Zero-sample regression: a fresh or `--no-telemetry` daemon yields
    /// an empty metrics snapshot, and the screen must say so instead of
    /// fabricating a latency row (p50/p99 of nothing) or dividing by a
    /// zero sample count.
    #[test]
    fn zero_sample_screen_renders_placeholders_not_bogus_quantiles() {
        let screen = render(&StatsSnapshot::default(), &MetricsSnapshot::default(), &[]);
        assert!(screen.contains("latency (0 samples recorded):"));
        assert!(screen.contains("(no samples — telemetry disabled or no requests yet)"));
        assert!(screen.contains("(none)"), "the empty trace pane says so");
        assert!(!screen.contains("NaN") && !screen.contains("inf"), "{screen}");
        // The latency table holds exactly its header and the placeholder —
        // no data row was invented for a series that never recorded.
        let table: Vec<&str> = screen
            .lines()
            .skip_while(|l| !l.starts_with("latency ("))
            .take_while(|l| !l.is_empty())
            .collect();
        assert_eq!(table.len(), 3, "header line, column line, placeholder: {table:?}");
    }

    #[test]
    fn populated_series_render_one_row_each() {
        let metrics = MetricsSnapshot {
            traces_recorded: 2,
            series: vec![hap_service::MetricsSeries {
                verb: "plan".into(),
                outcome: "hit".into(),
                count: 2,
                p50_ns: 1_500_000,
                p90_ns: 2_000_000,
                p99_ns: 2_000_000,
                max_ns: 2_000_000,
                sum_ns: 3_500_000,
            }],
        };
        let screen = render(&StatsSnapshot::default(), &metrics, &[]);
        assert!(screen.contains("latency (2 samples recorded):"));
        assert!(screen.contains("plan") && screen.contains("1.500"));
        assert!(!screen.contains("no samples"));
    }
}
