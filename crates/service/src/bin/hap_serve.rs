//! The HAP planning daemon.
//!
//! ```text
//! hap-serve [--addr HOST:PORT | --port N] [--workers N]
//!           [--cache-capacity N] [--cache-file PATH]
//!           [--fsync always|every-n[=K]|never] [--no-warm-start]
//!           [--no-admission] [--default-ttl-ms N]
//!           [--max-queue-depth N] [--busy-retry-ms N]
//!           [--idle-timeout-ms N] [--max-line-bytes N]
//!           [--write-buffer-cap N] [--no-telemetry]
//!           [--trace-ring-capacity N]
//!           [--ring-vnodes N] [--replication K]
//! ```
//!
//! Prints one `hap-serve: listening on <addr>` line once the socket is
//! bound (scripts wait for it), then serves until a client sends a
//! `shutdown` request.

use std::process::ExitCode;

use hap_service::{Server, ServiceConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: hap-serve [--addr HOST:PORT | --port N] [--workers N] \
         [--cache-capacity N] [--cache-file PATH] \
         [--fsync always|every-n[=K]|never] [--no-warm-start] \
         [--no-admission] [--default-ttl-ms N] [--max-queue-depth N] \
         [--busy-retry-ms N] [--idle-timeout-ms N] [--max-line-bytes N] \
         [--write-buffer-cap N] [--no-telemetry] [--trace-ring-capacity N] \
         [--ring-vnodes N] [--replication K]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = ServiceConfig { addr: "127.0.0.1:7641".into(), ..ServiceConfig::default() };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().ok_or_else(|| eprintln!("hap-serve: {name} needs a value"));
        match flag.as_str() {
            "--addr" => match value("--addr") {
                Ok(v) => config.addr = v,
                Err(()) => return usage(),
            },
            "--port" => match value("--port")
                .and_then(|v| v.parse::<u16>().map_err(|e| eprintln!("hap-serve: bad port: {e}")))
            {
                Ok(p) => config.addr = format!("127.0.0.1:{p}"),
                Err(()) => return usage(),
            },
            "--workers" => match value("--workers")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-serve: bad worker count: {e}")))
            {
                Ok(n) => config.workers = n,
                Err(()) => return usage(),
            },
            "--cache-capacity" => match value("--cache-capacity")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-serve: bad capacity: {e}")))
            {
                Ok(n) => config.cache_capacity = n,
                Err(()) => return usage(),
            },
            "--cache-file" => match value("--cache-file") {
                Ok(v) => config.cache_path = Some(v.into()),
                Err(()) => return usage(),
            },
            "--fsync" => match value("--fsync").and_then(|v| {
                hap_service::FsyncPolicy::parse(&v).map_err(|e| eprintln!("hap-serve: {e}"))
            }) {
                Ok(policy) => config.fsync = policy,
                Err(()) => return usage(),
            },
            "--no-warm-start" => config.warm_neighbors = false,
            "--no-admission" => config.cache_admission = false,
            "--default-ttl-ms" => match value("--default-ttl-ms")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-serve: bad TTL: {e}")))
            {
                Ok(ms) => config.default_ttl_ms = Some(ms),
                Err(()) => return usage(),
            },
            "--max-queue-depth" => match value("--max-queue-depth")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-serve: bad depth: {e}")))
            {
                Ok(n) => config.max_queue_depth = n,
                Err(()) => return usage(),
            },
            "--busy-retry-ms" => match value("--busy-retry-ms")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-serve: bad delay: {e}")))
            {
                Ok(ms) => config.busy_retry_ms = ms,
                Err(()) => return usage(),
            },
            "--idle-timeout-ms" => match value("--idle-timeout-ms")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-serve: bad timeout: {e}")))
            {
                Ok(ms) => config.idle_timeout_ms = ms,
                Err(()) => return usage(),
            },
            "--max-line-bytes" => match value("--max-line-bytes")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-serve: bad size: {e}")))
            {
                Ok(n) => config.max_line_bytes = n,
                Err(()) => return usage(),
            },
            "--write-buffer-cap" => match value("--write-buffer-cap")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-serve: bad size: {e}")))
            {
                Ok(n) => config.write_buffer_cap = n,
                Err(()) => return usage(),
            },
            "--no-telemetry" => config.telemetry = false,
            "--ring-vnodes" => match value("--ring-vnodes")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-serve: bad vnode count: {e}")))
            {
                Ok(n) => config.ring_vnodes = n,
                Err(()) => return usage(),
            },
            "--replication" => match value("--replication")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-serve: bad replication: {e}")))
            {
                Ok(k) => config.ring_replication = k,
                Err(()) => return usage(),
            },
            "--trace-ring-capacity" => match value("--trace-ring-capacity")
                .and_then(|v| v.parse().map_err(|e| eprintln!("hap-serve: bad capacity: {e}")))
            {
                Ok(n) => config.trace_ring_capacity = n,
                Err(()) => return usage(),
            },
            _ => {
                eprintln!("hap-serve: unknown flag `{flag}`");
                return usage();
            }
        }
    }

    let mut server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hap-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("hap-serve: listening on {}", server.addr());
    // Line-buffered stdout under redirection would hold the banner back.
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.wait();
    server.shutdown();
    let stats = server.service().stats();
    println!(
        "hap-serve: shut down — {} entries, {} hits, {} misses, {} synthesized, {} coalesced, \
         {} shed",
        stats.entries, stats.hits, stats.misses, stats.synthesized, stats.coalesced, stats.shed
    );
    ExitCode::SUCCESS
}
