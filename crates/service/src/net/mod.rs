//! The TCP transport: a readiness-driven event loop over the vendored
//! `mini-epoll` poller, with per-connection state machines.
//!
//! Layering:
//!
//! * [`conn`] — pure per-connection state (incremental line framing,
//!   ordered response slots, partial-write bookkeeping). No sockets; unit
//!   and property tested directly.
//! * [`event_loop`] — the nonblocking listener, readiness dispatch, the
//!   completion queue workers wake the loop through, idle sweeping, and
//!   [`event_loop::Server`], the public handle.

pub(crate) mod conn;
pub(crate) mod event_loop;
