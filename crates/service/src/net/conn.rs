//! Per-connection state: incremental line framing, the ordered response
//! queue, and the nonblocking read/write steps.
//!
//! Everything here is a pure state machine over `io::Read`/`io::Write` —
//! no sockets, no poller — so the framing property tests (`tests/
//! framing.rs`) can drive byte-boundary splits and pathological partial
//! writes without a network in the loop.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::time::Instant;

/// One complete unit out of the framer.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Frame {
    /// A complete request line (terminator and trailing `\r` stripped).
    Line(String),
    /// A line exceeded the configured cap. The framer has switched to
    /// discard mode: bytes are dropped (not buffered) until the next
    /// newline, after which framing resumes — one oversize event per
    /// oversized line.
    Oversized {
        /// The configured cap the line blew through.
        limit: usize,
    },
    /// A complete line that was not valid UTF-8.
    Malformed,
}

/// Incremental newline framing with a hard per-line byte cap.
///
/// Feed it raw reads as they arrive; it emits [`Frame`]s. Partial lines
/// are buffered across pushes (the buffer's high-water mark feeds the
/// `read_buf_hwm` stats gauge); an over-cap line is rejected *without
/// buffering it* — the framer drops bytes until the terminating newline,
/// so a hostile client cannot balloon daemon memory with one giant line.
pub(crate) struct LineFramer {
    buf: Vec<u8>,
    max_line: usize,
    discarding: bool,
    read_hwm: usize,
}

impl LineFramer {
    pub fn new(max_line: usize) -> LineFramer {
        LineFramer { buf: Vec::new(), max_line: max_line.max(1), discarding: false, read_hwm: 0 }
    }

    /// Largest partial line ever buffered.
    pub fn read_hwm(&self) -> usize {
        self.read_hwm
    }

    /// Absorbs one chunk of input, emitting every frame it completes.
    pub fn push(&mut self, chunk: &[u8], mut sink: impl FnMut(Frame)) {
        let mut rest = chunk;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(pos);
            rest = &tail[1..];
            if self.discarding {
                // The newline ends the oversized line; framing resumes.
                self.discarding = false;
                continue;
            }
            if self.buf.len() + head.len() > self.max_line {
                self.buf.clear();
                sink(Frame::Oversized { limit: self.max_line });
                continue;
            }
            let line = if self.buf.is_empty() {
                head.to_vec()
            } else {
                let mut line = std::mem::take(&mut self.buf);
                line.extend_from_slice(head);
                line
            };
            match String::from_utf8(line) {
                Ok(mut s) => {
                    if s.ends_with('\r') {
                        s.pop();
                    }
                    sink(Frame::Line(s));
                }
                Err(_) => sink(Frame::Malformed),
            }
        }
        if self.discarding {
            return;
        }
        if self.buf.len() + rest.len() > self.max_line {
            // The partial line already exceeds the cap: reject now and
            // drop everything until its newline shows up.
            self.buf.clear();
            self.discarding = true;
            sink(Frame::Oversized { limit: self.max_line });
            return;
        }
        self.buf.extend_from_slice(rest);
        self.read_hwm = self.read_hwm.max(self.buf.len());
    }
}

/// A per-request output slot: responses must leave the connection in
/// request order even when a later request (a cache hit) resolves before
/// an earlier one (a synthesis).
enum OutSlot {
    /// The request is still being answered.
    Waiting(u64),
    /// Rendered response bytes, not yet moved into the write head.
    Ready(u64, Vec<u8>),
}

/// The connection's response pipeline: ordered slots feeding a write
/// head, with partial-write bookkeeping.
pub(crate) struct OutQueue {
    slots: VecDeque<OutSlot>,
    next_seq: u64,
    /// Bytes currently being written, `head_pos` bytes already gone.
    head: Vec<u8>,
    head_pos: usize,
    /// Total unsent bytes across head + ready slots (backpressure gauge).
    queued_bytes: usize,
    write_hwm: usize,
    /// All-time bytes this connection has flushed to its sink.
    flushed_bytes: u64,
    /// `(end_offset, seq)` per response moved into the head: once
    /// `flushed_bytes` reaches `end_offset`, that response's last byte
    /// has left the daemon — the moment its request trace's `flush` span
    /// ends. Offsets are recorded at head refill, when every previously
    /// queued byte is already flushed, so they are strictly increasing.
    flush_marks: VecDeque<(u64, u64)>,
}

/// What one [`OutQueue::write_step`] accomplished.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum WriteProgress {
    /// Everything flushable was written.
    Drained,
    /// The sink would block; re-arm write interest and retry later.
    Blocked,
}

impl OutQueue {
    pub fn new() -> OutQueue {
        OutQueue {
            slots: VecDeque::new(),
            next_seq: 0,
            head: Vec::new(),
            head_pos: 0,
            queued_bytes: 0,
            write_hwm: 0,
            flushed_bytes: 0,
            flush_marks: VecDeque::new(),
        }
    }

    /// Opens a slot for the next request on this connection; its response
    /// must eventually be [`OutQueue::fulfill`]ed with this sequence
    /// number.
    pub fn reserve(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back(OutSlot::Waiting(seq));
        seq
    }

    /// Delivers response bytes for a reserved slot. Out-of-order delivery
    /// is fine — bytes sit in their slot until everything ahead of them
    /// has flushed. Unknown sequence numbers are ignored (the connection
    /// may have dropped and its token been reused for bookkeeping).
    pub fn fulfill(&mut self, seq: u64, bytes: Vec<u8>) {
        for slot in self.slots.iter_mut() {
            if let OutSlot::Waiting(s) = slot {
                if *s == seq {
                    self.queued_bytes += bytes.len();
                    self.write_hwm = self.write_hwm.max(self.queued_bytes);
                    *slot = OutSlot::Ready(seq, bytes);
                    return;
                }
            }
        }
    }

    /// Reserve + fulfill in one step, for responses computed inline.
    /// Returns the slot's sequence number (for flush tracking).
    pub fn push_ready(&mut self, bytes: Vec<u8>) -> u64 {
        let seq = self.reserve();
        self.fulfill(seq, bytes);
        seq
    }

    /// Sequence numbers whose responses have fully left the sink since
    /// the last call, in flush order. The event loop seals those
    /// requests' traces here — the `flush` span ends at write completion,
    /// not at render time.
    pub fn drain_flushed(&mut self) -> Vec<u64> {
        let mut done = Vec::new();
        while let Some(&(end, seq)) = self.flush_marks.front() {
            if end > self.flushed_bytes {
                break;
            }
            self.flush_marks.pop_front();
            done.push(seq);
        }
        done
    }

    /// Unsent response bytes queued (excludes slots still waiting).
    pub fn pending_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Largest response backlog this connection ever queued.
    pub fn write_hwm(&self) -> usize {
        self.write_hwm
    }

    /// True when a write could make progress right now.
    pub fn has_flushable(&self) -> bool {
        self.head_pos < self.head.len() || matches!(self.slots.front(), Some(OutSlot::Ready(..)))
    }

    /// True when there are requests still awaiting their response.
    pub fn has_waiting(&self) -> bool {
        self.slots.iter().any(|s| matches!(s, OutSlot::Waiting(_)))
    }

    /// Writes as much as the sink accepts: refills the head from the
    /// contiguous ready prefix of the slot queue, loops until drained or
    /// `WouldBlock`. Any other I/O error propagates (the connection is
    /// then closed by the loop).
    pub fn write_step(&mut self, sink: &mut impl Write) -> io::Result<WriteProgress> {
        loop {
            if self.head_pos >= self.head.len() {
                self.head.clear();
                self.head_pos = 0;
                // Move the contiguous ready prefix into the head. The
                // head is empty here, so every previously queued byte is
                // already flushed — each response's flush mark is simply
                // the running total plus the refilled head length so far.
                while let Some(OutSlot::Ready(..)) = self.slots.front() {
                    let Some(OutSlot::Ready(seq, bytes)) = self.slots.pop_front() else {
                        unreachable!()
                    };
                    self.head.extend_from_slice(&bytes);
                    self.flush_marks.push_back((self.flushed_bytes + self.head.len() as u64, seq));
                }
                if self.head.is_empty() {
                    return Ok(WriteProgress::Drained);
                }
            }
            match sink.write(&self.head[self.head_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "peer stopped reading"))
                }
                Ok(n) => {
                    self.head_pos += n;
                    self.queued_bytes -= n;
                    self.flushed_bytes += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(WriteProgress::Blocked)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// What one read step observed.
pub(crate) enum ReadOutcome {
    /// Bytes (possibly zero) were absorbed; the connection stays open.
    Open,
    /// The peer closed (EOF) or the socket errored.
    Closed,
}

/// One registered connection's full state.
pub(crate) struct Conn<S> {
    pub stream: S,
    pub framer: LineFramer,
    pub out: OutQueue,
    /// Last time a complete request arrived (idle-sweep clock).
    pub last_activity: Instant,
    /// Reads paused because the response backlog exceeds the cap.
    pub paused_reads: bool,
    /// Close as soon as the output queue fully drains.
    pub closing: bool,
}

impl<S: Read + Write> Conn<S> {
    pub fn new(stream: S, max_line: usize) -> Conn<S> {
        Conn {
            stream,
            framer: LineFramer::new(max_line),
            out: OutQueue::new(),
            last_activity: Instant::now(),
            paused_reads: false,
            closing: false,
        }
    }

    /// Reads until `WouldBlock`/EOF (bounded per step — the poller is
    /// level-triggered, so leftover socket bytes re-report readable and a
    /// firehose client cannot starve its neighbors), pushing complete
    /// frames into `sink`.
    pub fn read_step(&mut self, sink: &mut Vec<Frame>) -> ReadOutcome {
        let mut buf = [0u8; 16 * 1024];
        for _ in 0..16 {
            match self.stream.read(&mut buf) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => {
                    self.framer.push(&buf[..n], |frame| sink.push(frame));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Open,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Closed,
            }
        }
        ReadOutcome::Open
    }

    /// Flushes queued response bytes. `Err` means the connection is dead.
    pub fn write_step(&mut self) -> io::Result<WriteProgress> {
        let progress = self.out.write_step(&mut self.stream)?;
        Ok(progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Feeds `input` to a fresh framer in one push; the reference frame
    /// sequence every split variant must reproduce.
    fn frames_of(input: &[u8], max_line: usize) -> Vec<Frame> {
        let mut framer = LineFramer::new(max_line);
        let mut frames = Vec::new();
        framer.push(input, |f| frames.push(f));
        frames
    }

    /// Feeds `input` split at the given boundaries (sorted positions).
    fn frames_split(input: &[u8], max_line: usize, cuts: &[usize]) -> Vec<Frame> {
        let mut framer = LineFramer::new(max_line);
        let mut frames = Vec::new();
        let mut start = 0;
        for &cut in cuts {
            framer.push(&input[start..cut], |f| frames.push(f));
            start = cut;
        }
        framer.push(&input[start..], |f| frames.push(f));
        frames
    }

    const MIXED: &[u8] = "first line\r\nsecond → üñïcode\n\nlast".as_bytes();

    #[test]
    fn every_two_part_split_yields_identical_frames() {
        let reference = frames_of(MIXED, 1024);
        assert_eq!(
            reference,
            vec![
                Frame::Line("first line".into()),
                Frame::Line("second → üñïcode".into()),
                Frame::Line(String::new()),
            ]
        );
        for cut in 0..=MIXED.len() {
            assert_eq!(frames_split(MIXED, 1024, &[cut]), reference, "cut at {cut}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn arbitrary_multi_part_splits_yield_identical_frames(
            a in 0usize..MIXED.len(),
            b in 0usize..MIXED.len(),
            c in 0usize..MIXED.len(),
        ) {
            let mut cuts = vec![a, b, c];
            cuts.sort_unstable();
            let reference = frames_of(MIXED, 1024);
            prop_assert_eq!(frames_split(MIXED, 1024, &cuts), reference);
        }

        #[test]
        fn oversize_rejection_is_split_invariant(cut in 0usize..40) {
            // 30-byte line against a 16-byte cap, then a small line.
            let input = b"0123456789012345678901234567890\nok\n";
            let cut = cut.min(input.len());
            let reference = vec![Frame::Oversized { limit: 16 }, Frame::Line("ok".into())];
            prop_assert_eq!(frames_split(input, 16, &[cut]), reference);
        }
    }

    #[test]
    fn oversize_line_is_dropped_not_buffered_and_framing_resumes() {
        let mut framer = LineFramer::new(8);
        let mut frames = Vec::new();
        // Drip a giant line one byte at a time: the framer must reject it
        // as soon as the cap is crossed and never buffer the rest.
        for b in std::iter::repeat_n(b'x', 100) {
            framer.push(&[b], |f| frames.push(f));
            assert!(framer.read_hwm() <= 8, "oversize line must not be buffered");
        }
        framer.push(b"\nshort\n", |f| frames.push(f));
        assert_eq!(frames, vec![Frame::Oversized { limit: 8 }, Frame::Line("short".into())]);
    }

    #[test]
    fn invalid_utf8_line_is_malformed_and_framing_resumes() {
        let frames = frames_of(b"\xff\xfe bogus\nfine\n", 1024);
        assert_eq!(frames, vec![Frame::Malformed, Frame::Line("fine".into())]);
    }

    /// A sink that accepts a scripted number of bytes per write call
    /// (`0` = `WouldBlock`), then everything once the script runs out.
    struct ScriptedSink {
        script: Vec<usize>,
        step: usize,
        written: Vec<u8>,
    }

    impl Write for ScriptedSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let allow = self.script.get(self.step).copied().unwrap_or(usize::MAX);
            self.step += 1;
            if allow == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "scripted block"));
            }
            let n = allow.min(buf.len());
            self.written.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn drive_to_completion(out: &mut OutQueue, sink: &mut ScriptedSink) {
        // Each call makes progress or reports Blocked; the script is
        // finite, so this terminates.
        while out.has_flushable() {
            out.write_step(sink).expect("scripted sink never fails");
        }
    }

    #[test]
    fn out_of_order_fulfillment_flushes_in_request_order() {
        let mut out = OutQueue::new();
        let s0 = out.reserve();
        let s1 = out.reserve();
        let s2 = out.reserve();
        // Later requests resolve first (cache hits behind a synthesis).
        out.fulfill(s2, b"two\n".to_vec());
        out.fulfill(s1, b"one\n".to_vec());
        let mut sink = ScriptedSink { script: vec![], step: 0, written: Vec::new() };
        assert!(!out.has_flushable(), "head of line still waiting");
        out.fulfill(s0, b"zero\n".to_vec());
        drive_to_completion(&mut out, &mut sink);
        assert_eq!(sink.written, b"zero\none\ntwo\n");
        assert!(!out.has_waiting());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn pathological_partial_writes_deliver_every_byte_in_order(
            script in prop::collection::vec(0usize..5, 0..40),
        ) {
            let mut out = OutQueue::new();
            let seqs: Vec<u64> = (0..6).map(|_| out.reserve()).collect();
            // Fulfill in a scrambled but fixed order.
            for &i in &[3usize, 0, 5, 1, 4, 2] {
                out.fulfill(seqs[i], format!("response-{i}\n").into_bytes());
            }
            let mut sink = ScriptedSink { script, step: 0, written: Vec::new() };
            drive_to_completion(&mut out, &mut sink);
            let expected: Vec<u8> =
                (0..6).flat_map(|i| format!("response-{i}\n").into_bytes()).collect();
            prop_assert_eq!(sink.written, expected);
            prop_assert_eq!(out.pending_bytes(), 0);
        }
    }

    #[test]
    fn flush_marks_surface_only_after_the_last_byte_leaves() {
        let mut out = OutQueue::new();
        let s0 = out.push_ready(b"first\n".to_vec()); // 6 bytes
        let s1 = out.push_ready(b"second\n".to_vec()); // 7 bytes
                                                       // Partial writes: after 6 bytes only the first response flushed;
                                                       // its mark must surface alone even though both share one head.
        let mut sink = ScriptedSink { script: vec![4, 2, 0], step: 0, written: Vec::new() };
        assert_eq!(out.write_step(&mut sink).unwrap(), WriteProgress::Blocked);
        assert_eq!(out.drain_flushed(), vec![s0]);
        let mut rest = ScriptedSink { script: vec![], step: 0, written: Vec::new() };
        drive_to_completion(&mut out, &mut rest);
        assert_eq!(out.drain_flushed(), vec![s1]);
        assert_eq!(out.drain_flushed(), Vec::<u64>::new());
    }

    #[test]
    fn flush_marks_follow_request_order_under_out_of_order_fulfillment() {
        let mut out = OutQueue::new();
        let s0 = out.reserve();
        let s1 = out.reserve();
        out.fulfill(s1, b"late\n".to_vec());
        let mut sink = ScriptedSink { script: vec![], step: 0, written: Vec::new() };
        // Nothing flushable until the head of line resolves; no marks.
        assert_eq!(out.write_step(&mut sink).unwrap(), WriteProgress::Drained);
        assert_eq!(out.drain_flushed(), Vec::<u64>::new());
        out.fulfill(s0, b"early\n".to_vec());
        drive_to_completion(&mut out, &mut sink);
        assert_eq!(out.drain_flushed(), vec![s0, s1]);
        assert_eq!(sink.written, b"early\nlate\n");
    }

    #[test]
    fn unknown_sequence_numbers_are_ignored() {
        let mut out = OutQueue::new();
        let s0 = out.reserve();
        out.fulfill(999, b"stale\n".to_vec());
        out.fulfill(s0, b"real\n".to_vec());
        let mut sink = ScriptedSink { script: vec![], step: 0, written: Vec::new() };
        drive_to_completion(&mut out, &mut sink);
        assert_eq!(sink.written, b"real\n");
    }

    #[test]
    fn a_peer_that_stops_reading_is_an_error() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut out = OutQueue::new();
        out.push_ready(b"hello\n".to_vec());
        assert_eq!(out.write_step(&mut Dead).unwrap_err().kind(), io::ErrorKind::WriteZero);
    }
}
