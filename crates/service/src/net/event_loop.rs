//! The readiness-driven network core: one event-loop thread serves every
//! connection.
//!
//! The loop owns a [`mini_epoll::Poller`], the nonblocking listener, and
//! every connection's [`Conn`] state. Requests that resolve inline (cache
//! hits, stats, errors, shedding) are answered on the loop thread;
//! anything needing a synthesis is queued to the worker pool with a
//! subscriber that renders the response bytes and pushes them onto the
//! loop's completion queue, then wakes the loop through the poller's wake
//! pipe. No thread ever blocks on another request's work: total daemon
//! threads = 1 (loop) + worker pool, independent of connection count.
//!
//! Shutdown takes the same wake path. [`Server::shutdown`] sets the stop
//! flag and wakes the loop — no throwaway connection needed to unblock an
//! `accept()` (the PR-4 design's wart). A client-initiated `shutdown`
//! verb instead *drains*: the listener is deregistered, pending responses
//! (including queued syntheses) are flushed, and the loop exits once
//! every connection is quiet or a drain deadline passes.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hap_codec::WireError;
use hap_telemetry::{Outcome, SpanKind, Verb};
use mini_epoll::{Event, Interest, Poller, Waker, WAKE_TOKEN};

use crate::config::ServiceConfig;
use crate::net::conn::{Conn, Frame, ReadOutcome};
use crate::service::{PlanService, Submission};
use crate::stats::NetGauges;
use crate::telemetry::PendingTrace;

/// Token of the listening socket.
const LISTEN_TOKEN: u64 = 0;
/// How often the loop re-checks the stop flag even with no events and no
/// waker (a safety net; the waker makes stop effectively immediate).
const STOP_POLL_MS: u64 = 500;
/// How long a `shutdown`-verb drain waits for in-flight syntheses to
/// resolve and flush before giving up.
const DRAIN_DEADLINE_MS: u64 = 10_000;

/// One response completed by a worker: `(connection token, slot sequence,
/// rendered bytes, request trace awaiting its flush span)`.
type Completion = (u64, u64, Vec<u8>, Option<PendingTrace>);

/// State shared between the loop thread, the workers' deliver callbacks,
/// and the [`Server`] handle.
struct LoopShared {
    stop: AtomicBool,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl LoopShared {
    fn deliver(&self, token: u64, seq: u64, bytes: Vec<u8>, trace: Option<PendingTrace>) {
        crate::sync::lock_recover(&self.completions).push((token, seq, bytes, trace));
        self.waker.wake();
    }
}

/// A running daemon bound to a TCP port.
pub struct Server {
    service: Arc<PlanService>,
    addr: SocketAddr,
    shared: Arc<LoopShared>,
    loop_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the configured address and starts the event loop.
    pub fn start(config: ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let service =
            Arc::new(PlanService::new(config).map_err(|e| io::Error::other(e.to_string()))?);
        let poller = Poller::new()?;
        poller.add(&listener, LISTEN_TOKEN, Interest::READ)?;
        let shared = Arc::new(LoopShared {
            stop: AtomicBool::new(false),
            completions: Mutex::new(Vec::new()),
            waker: poller.waker(),
        });
        let loop_thread = {
            let service = service.clone();
            let shared = shared.clone();
            std::thread::spawn(move || {
                EventLoop::new(poller, listener, service, shared).run();
            })
        };
        Ok(Server { service, addr, shared, loop_thread: Some(loop_thread) })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The in-process service (tests and benches reach stats directly).
    pub fn service(&self) -> &PlanService {
        &self.service
    }

    /// Total daemon threads: the event loop plus the synthesis worker
    /// pool. Notably *not* a function of connection count.
    pub fn thread_count(&self) -> usize {
        1 + self.service.worker_count()
    }

    /// Blocks until the event loop exits — i.e. until some client sends a
    /// `shutdown` request (the `hap-serve` main loop). Queued syntheses
    /// are drained before the loop exits; workers are joined by
    /// [`Server::shutdown`]/drop afterwards.
    pub fn wait(&mut self) {
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
    }

    /// Stops the event loop (through the wake pipe — no connection
    /// required), joins it, and drains the synthesis queue. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        if !self.shared.stop.swap(true, Ordering::SeqCst) {
            self.shared.waker.wake();
        }
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        self.service.stop();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A registered connection plus the interest currently armed for it (so
/// the loop only issues `poller.modify` when the desired interest actually
/// changes).
struct Entry {
    conn: Conn<TcpStream>,
    armed: Interest,
    /// When the connection was accepted (telemetry clock; 0 = disabled).
    accept_nanos: u64,
    /// Where the next request's `frame` span starts: the accept time for
    /// the first request, then the end of the previous frame — pipelined
    /// requests split the wire time between them instead of overlapping.
    frame_anchor: u64,
    /// Traces awaiting their `flush` span, keyed by output-slot sequence:
    /// `(response fulfill time, trace)`. Sealed by `service_conn` when the
    /// response's last byte leaves; dropped with the connection.
    traces: HashMap<u64, (u64, PendingTrace)>,
}

struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    service: Arc<PlanService>,
    shared: Arc<LoopShared>,
    gauges: Arc<NetGauges>,
    conns: HashMap<u64, Entry>,
    next_token: u64,
    /// `Some(deadline)` once a `shutdown` verb arrived: stop accepting,
    /// flush everything, exit by the deadline at the latest.
    draining: Option<Instant>,
    last_sweep: Instant,
}

impl EventLoop {
    fn new(
        poller: Poller,
        listener: TcpListener,
        service: Arc<PlanService>,
        shared: Arc<LoopShared>,
    ) -> EventLoop {
        let gauges = service.net_gauges();
        EventLoop {
            poller,
            listener,
            service,
            shared,
            gauges,
            conns: HashMap::new(),
            next_token: LISTEN_TOKEN + 1,
            draining: None,
            last_sweep: Instant::now(),
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            if let Some(deadline) = self.draining {
                let quiet = self
                    .conns
                    .values()
                    .all(|e| !e.conn.out.has_flushable() && !e.conn.out.has_waiting());
                if quiet || Instant::now() >= deadline {
                    break;
                }
            }
            let timeout = self.wait_timeout();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // A failed wait is not recoverable in a useful way;
                // treat it as a stop so the daemon exits cleanly rather
                // than spinning.
                break;
            }
            // Completions first: a worker may have woken us, and the
            // fulfilled slots should flush in this same iteration.
            self.drain_completions();
            for ev in events.drain(..) {
                match ev.token {
                    WAKE_TOKEN => {} // completions already drained
                    LISTEN_TOKEN => self.accept_ready(),
                    token => self.conn_ready(token, ev),
                }
            }
            self.sweep_idle();
        }
        // Loop exit: deregister and drop everything. Workers keep
        // running until PlanService::stop joins them.
        for (_, entry) in self.conns.drain() {
            let _ = self.poller.remove(&entry.conn.stream);
        }
        if self.draining.is_none() {
            let _ = self.poller.remove(&self.listener);
        }
    }

    /// The poll timeout: the stop-poll safety interval, tightened while
    /// idle sweeping or draining needs finer ticks.
    fn wait_timeout(&self) -> Duration {
        let idle = self.service.config().idle_timeout_ms;
        Duration::from_millis(poll_tick_ms(idle, self.draining.is_some()))
    }

    fn drain_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut queue = crate::sync::lock_recover(&self.shared.completions);
            std::mem::take(&mut *queue)
        };
        let mut touched: Vec<u64> = Vec::with_capacity(done.len());
        for (token, seq, bytes, trace) in done {
            // The connection may have died while its synthesis ran; its
            // response (and trace) is simply dropped.
            if let Some(entry) = self.conns.get_mut(&token) {
                entry.conn.out.fulfill(seq, bytes);
                if let Some(pt) = trace {
                    let fulfilled = self.service.telemetry().now();
                    entry.traces.insert(seq, (fulfilled, pt));
                }
                touched.push(token);
            }
        }
        for token in touched {
            self.service_conn(token);
        }
    }

    fn accept_ready(&mut self) {
        if self.draining.is_some() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.add(&stream, token, Interest::READ).is_err() {
                        continue;
                    }
                    let max_line = self.service.config().max_line_bytes;
                    let accepted = self.service.telemetry().now();
                    self.conns.insert(
                        token,
                        Entry {
                            conn: Conn::new(stream, max_line),
                            armed: Interest::READ,
                            accept_nanos: accepted,
                            frame_anchor: accepted,
                            traces: HashMap::new(),
                        },
                    );
                    let open = self.gauges.open_connections.fetch_add(1, Ordering::Relaxed) + 1;
                    NetGauges::raise(&self.gauges.peak_connections, open);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (ECONNABORTED,
                // EMFILE under fd pressure): drop and keep serving.
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, ev: Event) {
        let Some(entry) = self.conns.get_mut(&token) else { return };
        let mut frames: Vec<Frame> = Vec::new();
        let mut dead = false;
        if (ev.readable || ev.hangup) && !entry.conn.paused_reads {
            match entry.conn.read_step(&mut frames) {
                ReadOutcome::Open => {}
                ReadOutcome::Closed => dead = true,
            }
        }
        // Process complete frames even when the peer half-closed: a
        // client may pipeline requests and shut down its write side.
        for frame in frames {
            if self.handle_frame(token, frame) {
                // Shutdown verb: begin draining. Remaining frames on this
                // connection still process (they were already accepted).
                if self.draining.is_none() {
                    self.draining = Some(Instant::now() + Duration::from_millis(DRAIN_DEADLINE_MS));
                    let _ = self.poller.remove(&self.listener);
                }
            }
        }
        if dead {
            self.close_conn(token, false);
            return;
        }
        self.service_conn(token);
    }

    /// Handles one framed request; returns true when it was a `shutdown`.
    fn handle_frame(&mut self, token: u64, frame: Frame) -> bool {
        let Some(entry) = self.conns.get_mut(&token) else { return false };
        let telemetry = self.service.telemetry().clone();
        match frame {
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    return false;
                }
                entry.conn.last_activity = Instant::now();
                // Open this request's trace with the transport-side
                // spans; the service adds the rest and hands the trace
                // back for sealing once the response flushes.
                let now = telemetry.now();
                let mut tb = telemetry.builder();
                if let Some(tb) = tb.as_mut() {
                    tb.span(SpanKind::Accept, entry.accept_nanos, entry.accept_nanos);
                    tb.span(SpanKind::Frame, entry.frame_anchor.min(now), now);
                }
                entry.frame_anchor = now;
                let seq = entry.conn.out.reserve();
                let shared = self.shared.clone();
                let deliver = Box::new(move |bytes: Vec<u8>, trace: Option<PendingTrace>| {
                    shared.deliver(token, seq, bytes, trace)
                });
                match self.service.submit(&line, tb, deliver) {
                    Submission::Ready { bytes, shutdown, trace } => {
                        // Re-borrow: submit may have run a subscriber.
                        if let Some(entry) = self.conns.get_mut(&token) {
                            entry.conn.out.fulfill(seq, bytes);
                            if let Some(pt) = trace {
                                entry.traces.insert(seq, (telemetry.now(), pt));
                            }
                        }
                        shutdown
                    }
                    Submission::Pending => false,
                }
            }
            Frame::Oversized { limit } => {
                entry.conn.last_activity = Instant::now();
                let err = WireError::new(
                    "oversize",
                    format!("request line exceeds the {limit}-byte limit"),
                );
                let bytes = self.service.render_error(0, &err);
                Self::push_error_frame(entry, &telemetry, bytes);
                false
            }
            Frame::Malformed => {
                entry.conn.last_activity = Instant::now();
                let err = WireError::new("parse", "request line is not valid UTF-8");
                let bytes = self.service.render_error(0, &err);
                Self::push_error_frame(entry, &telemetry, bytes);
                false
            }
        }
    }

    /// Queues an error response for a frame that never became a request
    /// (oversized, malformed), tracing it under the `invalid` verb.
    fn push_error_frame(
        entry: &mut Entry,
        telemetry: &crate::telemetry::Telemetry,
        bytes: Vec<u8>,
    ) {
        let seq = entry.conn.out.push_ready(bytes);
        if let Some(mut builder) = telemetry.builder() {
            builder.set_request(0, Verb::Invalid);
            let now = telemetry.now();
            builder.span(SpanKind::Frame, entry.frame_anchor.min(now), now);
            entry.frame_anchor = now;
            let pending = PendingTrace { builder, outcome: Outcome::Error };
            entry.traces.insert(seq, (now, pending));
        }
    }

    /// Post-activity connection maintenance: flush what can flush, apply
    /// write backpressure to reads, re-arm interest, update gauges, and
    /// close once a draining connection empties.
    fn service_conn(&mut self, token: u64) {
        let Some(entry) = self.conns.get_mut(&token) else { return };
        if entry.conn.out.has_flushable() {
            match entry.conn.write_step() {
                Ok(_) => {}
                Err(_) => {
                    self.close_conn(token, false);
                    return;
                }
            }
        }
        let entry = self.conns.get_mut(&token).expect("entry still present");
        // Seal the traces of every response whose last byte just left:
        // their `flush` span runs from fulfillment to write completion.
        for seq in entry.conn.out.drain_flushed() {
            if let Some((fulfilled, mut pending)) = entry.traces.remove(&seq) {
                let now = self.service.telemetry().now();
                pending.builder.span(SpanKind::Flush, fulfilled, now);
                self.service.telemetry().finish_pending(pending);
            }
        }
        let cap = self.service.config().write_buffer_cap;
        let pending = entry.conn.out.pending_bytes();
        if entry.conn.paused_reads {
            if pending <= cap / 2 {
                entry.conn.paused_reads = false;
            }
        } else if cap > 0 && pending > cap {
            entry.conn.paused_reads = true;
        }
        NetGauges::raise(&self.gauges.read_buf_hwm, entry.conn.framer.read_hwm() as u64);
        NetGauges::raise(&self.gauges.write_buf_hwm, entry.conn.out.write_hwm() as u64);
        if entry.conn.closing && !entry.conn.out.has_flushable() && !entry.conn.out.has_waiting() {
            self.close_conn(token, false);
            return;
        }
        let want = Interest {
            readable: !entry.conn.paused_reads && !entry.conn.closing,
            writable: entry.conn.out.has_flushable(),
        };
        if want != entry.armed && self.poller.modify(&entry.conn.stream, token, want).is_ok() {
            entry.armed = want;
        }
    }

    /// Closes connections that have gone `idle_timeout_ms` without a
    /// complete request. Connections with work in flight (a queued
    /// synthesis, unflushed bytes) are never idle — their clock is the
    /// drain deadline, not the idle sweep.
    fn sweep_idle(&mut self) {
        let idle_ms = self.service.config().idle_timeout_ms;
        if idle_ms == 0 {
            return;
        }
        let interval = Duration::from_millis(sweep_interval_ms(idle_ms));
        if self.last_sweep.elapsed() < interval {
            return;
        }
        self.last_sweep = Instant::now();
        let timeout = Duration::from_millis(idle_ms);
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, e)| {
                e.conn.last_activity.elapsed() > timeout
                    && !e.conn.out.has_waiting()
                    && !e.conn.out.has_flushable()
            })
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            self.close_conn(token, true);
        }
    }

    fn close_conn(&mut self, token: u64, idle: bool) {
        if let Some(entry) = self.conns.remove(&token) {
            let _ = self.poller.remove(&entry.conn.stream);
            self.gauges.open_connections.fetch_sub(1, Ordering::Relaxed);
            if idle {
                self.gauges.idle_closed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The idle-sweep cadence for a given `idle_timeout_ms`: a quarter of the
/// timeout, clamped to `[10, 1000]` ms. One shared computation for both
/// the sweep itself and the poll tick — the two previously diverged
/// (`(idle / 4).max(10)` vs `(idle / 4).clamp(10, 1_000)`), leaving the
/// tick free to outsleep the intended 1 s sweep cadence at large timeouts
/// and land idle closes late.
fn sweep_interval_ms(idle_ms: u64) -> u64 {
    (idle_ms / 4).clamp(10, 1_000)
}

/// The poll tick: the stop-poll safety interval, tightened to the sweep
/// cadence when idle sweeping is on and to 20 ms while draining. Always
/// at most `sweep_interval_ms`, so a quiescent loop wakes often enough to
/// run every scheduled sweep on time.
fn poll_tick_ms(idle_timeout_ms: u64, draining: bool) -> u64 {
    let mut ms = STOP_POLL_MS;
    if idle_timeout_ms > 0 {
        ms = ms.min(sweep_interval_ms(idle_timeout_ms));
    }
    if draining {
        ms = ms.min(20);
    }
    ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_tick_never_outsleeps_the_sweep_interval() {
        // Across tiny, moderate, and huge timeouts (including the 300 s
        // default), one tick always fits inside one sweep interval.
        for idle_ms in [1, 40, 200, 2_000, 4_000, 4_100, 60_000, 300_000, u64::MAX] {
            let tick = poll_tick_ms(idle_ms, false);
            let interval = sweep_interval_ms(idle_ms);
            assert!(tick <= interval, "idle {idle_ms}: tick {tick} > interval {interval}");
            assert!(tick <= STOP_POLL_MS, "idle {idle_ms}: tick {tick} over the stop poll");
            assert!((10..=1_000).contains(&interval), "idle {idle_ms}: interval {interval}");
        }
    }

    #[test]
    fn sweep_interval_is_a_quarter_of_the_timeout_clamped() {
        assert_eq!(sweep_interval_ms(0), 10);
        assert_eq!(sweep_interval_ms(40), 10);
        assert_eq!(sweep_interval_ms(200), 50);
        assert_eq!(sweep_interval_ms(4_000), 1_000);
        assert_eq!(sweep_interval_ms(60_000), 1_000);
    }

    #[test]
    fn disabled_idle_and_draining_ticks() {
        assert_eq!(poll_tick_ms(0, false), STOP_POLL_MS);
        assert_eq!(poll_tick_ms(0, true), 20);
        assert_eq!(poll_tick_ms(300_000, true), 20);
    }
}
