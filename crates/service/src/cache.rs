//! The content-addressed plan cache: a sharded LRU keyed by request
//! fingerprint, with append-only disk persistence and a nearest-neighbor
//! lookup that powers the warm-start path.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

use hap_cluster::{ClusterSpec, Granularity};
use hap_codec::{parse, parse_fingerprint, render_fingerprint, CodecError, Decode, Encode, Value};
use hap_synthesis::{DistProgram, ShardingRatios};

/// Cache shards. A power of two so the fingerprint masks cleanly; 16 keeps
/// per-shard lock scopes short under concurrent connection threads.
const SHARDS: usize = 16;

/// One cached plan: everything a response needs, plus the request-side
/// metadata (`graph_fp`, `opts_fp`, cluster features) the nearest-neighbor
/// warm start matches on. Deliberately *excludes* the graph and the device
/// list — the client sent the graph, so echoing it back would double every
/// response.
#[derive(Clone, Debug)]
pub struct CachedPlan {
    /// The synthesized program (carries its estimated time).
    pub program: DistProgram,
    /// Per-segment sharding ratios.
    pub ratios: ShardingRatios,
    /// Cost-model estimate of the per-iteration time, bit-preserved.
    pub estimated_time: f64,
    /// Alternating-optimization rounds the original synthesis performed.
    pub rounds: usize,
    /// Fingerprint of the request's canonical graph encoding.
    pub graph_fp: u64,
    /// Fingerprint of the request's canonical options encoding.
    pub opts_fp: u64,
    /// Coarse cluster descriptors for the neighbor metric.
    pub features: [f64; 4],
}

/// The coarse cluster descriptors the neighbor metric compares: virtual
/// device count, aggregate effective flops, inter-machine bandwidth and
/// latency. Deliberately low-dimensional — the metric only has to rank
/// *plausible* warm seeds, the A\* still verifies them against the real
/// cost model.
pub fn cluster_features(cluster: &ClusterSpec, granularity: Granularity) -> [f64; 4] {
    let devices = cluster.virtual_devices(granularity);
    let total_flops: f64 = devices.iter().map(|d| d.flops).sum();
    [devices.len() as f64, total_flops, cluster.inter_bandwidth, cluster.inter_latency]
}

/// Log-ratio distance between two feature vectors, with a penalty when the
/// request options differ (a same-options neighbor re-costs exactly; a
/// different-options one is still a valid seed, just less likely close).
fn distance(a: &[f64; 4], b: &[f64; 4], same_opts: bool) -> f64 {
    let mut d = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let (x, y) = (x.max(1e-300), y.max(1e-300));
        d += (x / y).ln().abs();
    }
    if !same_opts {
        d += 0.5;
    }
    d
}

struct Entry {
    plan: Arc<CachedPlan>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
}

/// A sharded LRU of [`CachedPlan`]s keyed by request fingerprint.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry budget (total capacity / shard count, at least 1).
    per_shard: usize,
    /// Monotonic use clock driving LRU eviction.
    tick: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding roughly `capacity` plans in total.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard: capacity.div_ceil(SHARDS).max(1),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: u64) -> &Mutex<Shard> {
        &self.shards[(fp as usize) & (SHARDS - 1)]
    }

    /// Looks up a plan by request fingerprint, refreshing its LRU position.
    pub fn get(&self, fp: u64) -> Option<Arc<CachedPlan>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(fp).lock().expect("cache shard poisoned");
        let entry = shard.map.get_mut(&fp)?;
        entry.last_used = tick;
        Some(entry.plan.clone())
    }

    /// Inserts (or replaces) a plan, evicting the shard's least-recently
    /// used entry when the shard budget is exceeded.
    pub fn insert(&self, fp: u64, plan: Arc<CachedPlan>) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(fp).lock().expect("cache shard poisoned");
        shard.map.insert(fp, Entry { plan, last_used: tick });
        while shard.map.len() > self.per_shard {
            let victim = shard
                .map
                .iter()
                .min_by_key(|(k, e)| (e.last_used, **k))
                .map(|(k, _)| *k)
                .expect("over-budget shard is non-empty");
            shard.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The cached plan for the same graph whose cluster is nearest to
    /// `features` — the warm-start seed for a cache miss. Scans every
    /// shard; ties break on the smaller fingerprint so the choice is
    /// deterministic.
    pub fn nearest(
        &self,
        graph_fp: u64,
        opts_fp: u64,
        features: &[f64; 4],
    ) -> Option<Arc<CachedPlan>> {
        let mut best: Option<(f64, u64, Arc<CachedPlan>)> = None;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            for (fp, entry) in &shard.map {
                if entry.plan.graph_fp != graph_fp {
                    continue;
                }
                let d = distance(features, &entry.plan.features, entry.plan.opts_fp == opts_fp);
                let better = match &best {
                    None => true,
                    Some((bd, bfp, _)) => d < *bd || (d == *bd && *fp < *bfp),
                };
                if better {
                    best = Some((d, *fp, entry.plan.clone()));
                }
            }
        }
        best.map(|(_, _, plan)| plan)
    }

    /// A snapshot of `(fingerprint, plan)` pairs in unspecified order.
    pub fn snapshot(&self) -> Vec<(u64, Arc<CachedPlan>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            out.extend(shard.map.iter().map(|(fp, e)| (*fp, e.plan.clone())));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

impl Encode for CachedPlan {
    fn encode(&self) -> Value {
        Value::obj(vec![
            ("graph_fp", Value::Str(render_fingerprint(self.graph_fp))),
            ("opts_fp", Value::Str(render_fingerprint(self.opts_fp))),
            ("features", self.features.to_vec().encode()),
            ("rounds", self.rounds.encode()),
            ("estimated_time", Value::Num(self.estimated_time)),
            ("ratios", self.ratios.encode()),
            ("program", self.program.encode()),
        ])
    }
}

impl Decode for CachedPlan {
    fn decode(v: &Value) -> Result<Self, CodecError> {
        let features = Vec::<f64>::decode(v.field("features")?)?;
        let features: [f64; 4] = features
            .try_into()
            .map_err(|_| CodecError::Decode("expected 4 cluster features".into()))?;
        Ok(CachedPlan {
            program: DistProgram::decode(v.field("program")?)?,
            ratios: ShardingRatios::decode(v.field("ratios")?)?,
            estimated_time: v.field("estimated_time")?.as_f64()?,
            rounds: v.field("rounds")?.as_usize()?,
            graph_fp: parse_fingerprint(v.field("graph_fp")?.as_str()?)?,
            opts_fp: parse_fingerprint(v.field("opts_fp")?.as_str()?)?,
            features,
        })
    }
}

/// One persisted cache line: `{"fp": "...", "plan": {...}}`.
pub fn persist_line(fp: u64, plan: &CachedPlan) -> String {
    Value::obj(vec![("fp", Value::Str(render_fingerprint(fp))), ("plan", plan.encode())]).render()
}

/// Loads a persisted cache log into `cache`, ignoring nothing: a corrupt
/// line is a hard error (the file is machine-written; silent skips would
/// hide real corruption). Returns the number of entries loaded.
pub fn load_cache(cache: &PlanCache, path: &Path) -> Result<usize, CodecError> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        // A missing file is simply an empty cache (first boot).
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(CodecError::Decode(format!("cannot open {}: {e}", path.display()))),
    };
    let mut loaded = 0;
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| CodecError::Decode(format!("read {}: {e}", path.display())))?;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(&line)?;
        let fp = parse_fingerprint(v.field("fp")?.as_str()?)?;
        let plan = CachedPlan::decode(v.field("plan")?)?;
        cache.insert(fp, Arc::new(plan));
        loaded += 1;
    }
    Ok(loaded)
}

/// Rewrites the persistence log from the cache's current contents — called
/// after [`load_cache`] so the append-only log compacts once per restart
/// (duplicate fingerprints from overwrites collapse to the live entry).
pub fn compact_log(cache: &PlanCache, path: &Path) -> std::io::Result<()> {
    let mut entries = cache.snapshot();
    entries.sort_by_key(|(fp, _)| *fp);
    let mut out = std::fs::File::create(path)?;
    for (fp, plan) in entries {
        writeln!(out, "{}", persist_line(fp, &plan))?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(graph_fp: u64, features: [f64; 4]) -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            program: DistProgram::default(),
            ratios: vec![vec![0.5, 0.5]],
            estimated_time: 1.5,
            rounds: 1,
            graph_fp,
            opts_fp: 7,
            features,
        })
    }

    #[test]
    fn get_insert_and_lru_eviction() {
        // Capacity 16 over 16 shards = 1 per shard: two same-shard inserts
        // evict the older.
        let cache = PlanCache::new(16);
        cache.insert(0, plan(1, [1.0; 4]));
        assert!(cache.get(0).is_some());
        cache.insert(16, plan(2, [1.0; 4])); // same shard as fp 0
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(0).is_none(), "older entry evicted");
        assert!(cache.get(16).is_some());
        // Different shard: coexists.
        cache.insert(3, plan(3, [1.0; 4]));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_prefers_recently_used() {
        // 32 over 16 shards = 2 per shard. Touch the older entry, insert a
        // third in the same shard: the untouched middle entry goes.
        let cache = PlanCache::new(32);
        cache.insert(0, plan(1, [1.0; 4]));
        cache.insert(16, plan(2, [1.0; 4]));
        assert!(cache.get(0).is_some()); // refresh fp 0
        cache.insert(32, plan(3, [1.0; 4]));
        assert!(cache.get(0).is_some());
        assert!(cache.get(16).is_none());
        assert!(cache.get(32).is_some());
    }

    #[test]
    fn nearest_matches_graph_and_ranks_by_features() {
        let cache = PlanCache::new(64);
        cache.insert(1, plan(100, [4.0, 1e13, 1e9, 1e-5]));
        cache.insert(2, plan(100, [8.0, 2e13, 1e9, 1e-5]));
        cache.insert(3, plan(999, [4.0, 1e13, 1e9, 1e-5])); // other graph
        let near = cache.nearest(100, 7, &[4.0, 1.1e13, 1e9, 1e-5]).unwrap();
        assert_eq!(near.features[0], 4.0);
        assert!(cache.nearest(12345, 7, &[4.0, 1e13, 1e9, 1e-5]).is_none());
    }

    #[test]
    fn persistence_round_trip_via_tempfile() {
        let dir = std::env::temp_dir().join(format!("hap-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let cache = PlanCache::new(64);
        cache.insert(42, plan(100, [4.0, 1e13, 1e9, 1e-5]));
        cache.insert(43, plan(101, [8.0, 2e13, 2e9, 2e-5]));
        compact_log(&cache, &path).unwrap();

        let restored = PlanCache::new(64);
        assert_eq!(load_cache(&restored, &path).unwrap(), 2);
        let p = restored.get(42).unwrap();
        assert_eq!(p.graph_fp, 100);
        assert_eq!(p.estimated_time.to_bits(), 1.5f64.to_bits());
        assert_eq!(p.ratios, vec![vec![0.5, 0.5]]);
        // Missing file = empty cache, corrupt file = hard error.
        assert_eq!(load_cache(&PlanCache::new(4), &dir.join("absent.jsonl")).unwrap(), 0);
        std::fs::write(&path, "not json\n").unwrap();
        assert!(load_cache(&PlanCache::new(4), &path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
