//! The content-addressed plan cache: a sharded LRU keyed by request
//! fingerprint, hardened for adversarial tenant mixes with a cost-aware
//! admission policy and per-entry TTL expiry, with versioned append-only
//! disk persistence and a nearest-neighbor lookup that powers the
//! warm-start path.
//!
//! # Admission
//!
//! Plain LRU is unsafe under mixed tenant traffic: a burst of one-off
//! requests evicts the hot working set even though each one-off plan will
//! never be asked for again. Every entry therefore carries the measured
//! `synthesis_nanos` and its canonical payload `size_bytes`, and a full
//! shard only admits a new entry when its *density* — estimated
//! synthesis-seconds saved per cached byte ([`CachedPlan::density`]) — is
//! at least the would-be LRU victim's. Cheap bulky one-offs bounce off an
//! expensive working set; when every cost and size is equal the gate
//! always passes and behavior degrades to exactly the PR-4 LRU (pinned by
//! `tests/cache_props.rs`).
//!
//! # TTL
//!
//! An optional per-entry TTL (request-settable over the wire, with a
//! config default) expires plans for decommissioned clusters: expired
//! entries are never served, never seed warm starts, never persist at
//! compaction, and are reclaimed lazily (on lookup) or eagerly (when
//! their shard needs room). TTLs restart on daemon boot — the log stores
//! the TTL, not an absolute deadline, so a reloaded entry lives one more
//! TTL from boot at most.
//!
//! # Durability
//!
//! Persistence is a WAL-style append log of checksummed records
//! ([`hap_codec::persist_line`], v3) behind [`PersistLog`]: compaction
//! rewrites atomically (temp + fsync + rename + dir fsync), appends fsync
//! per [`FsyncPolicy`], [`load_cache`] recovers a torn final line from a
//! crash mid-append, and any disk fault degrades the log to memory-only
//! (with re-probe) instead of taking the daemon down. The fs paths
//! consult the [`crate::faults`] registry so the whole story is provable
//! under seeded fault injection (`tests/faults.rs`).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use hap_cluster::{ClusterSpec, Granularity};
pub use hap_codec::CachedPlan;
use hap_codec::{parse_persist_line_full, persist_line_with_req, CodecError, Value};

use crate::config::FsyncPolicy;
use crate::faults::{self, Fault};
use crate::replan::ReplanIndex;
use crate::sync::lock_recover;

/// Cache shards. A power of two so the fingerprint masks cleanly; 16 keeps
/// per-shard lock scopes short under concurrent connection threads.
const SHARDS: usize = 16;

/// The coarse cluster descriptors the neighbor metric compares: virtual
/// device count, aggregate effective flops, inter-machine bandwidth and
/// latency. Deliberately low-dimensional — the metric only has to rank
/// *plausible* warm seeds, the A\* still verifies them against the real
/// cost model.
pub fn cluster_features(cluster: &ClusterSpec, granularity: Granularity) -> [f64; 4] {
    let devices = cluster.virtual_devices(granularity);
    let total_flops: f64 = devices.iter().map(|d| d.flops).sum();
    [devices.len() as f64, total_flops, cluster.inter_bandwidth, cluster.inter_latency]
}

/// Log-ratio distance between two feature vectors, with a penalty when the
/// request options differ (a same-options neighbor re-costs exactly; a
/// different-options one is still a valid seed, just less likely close).
fn distance(a: &[f64; 4], b: &[f64; 4], same_opts: bool) -> f64 {
    let mut d = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let (x, y) = (x.max(1e-300), y.max(1e-300));
        d += (x / y).ln().abs();
    }
    if !same_opts {
        d += 0.5;
    }
    d
}

/// Cache behavior knobs, independent of capacity.
#[derive(Clone, Debug)]
pub struct CachePolicy {
    /// Gate admission on saved-seconds-per-byte density (see module docs).
    /// Off = plain LRU, the PR-4 behavior.
    pub admission: bool,
    /// TTL applied to entries that carry none of their own; `None` = no
    /// default, entries without a per-request TTL never expire.
    pub default_ttl: Option<Duration>,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy { admission: true, default_ttl: None }
    }
}

/// The outcome of one [`PlanCache::insert`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The entry is cached; `evicted` lists the fingerprints removed to
    /// make room (empty when the shard had space).
    Admitted {
        /// Fingerprints evicted to admit this entry.
        evicted: Vec<u64>,
    },
    /// The fingerprint was already cached; the entry was updated in place.
    Replaced,
    /// The admission gate held: the candidate's density is below the
    /// would-be victim's, so the incumbent stays and the candidate is
    /// dropped.
    Rejected {
        /// The LRU victim the candidate failed to displace.
        victim_fp: u64,
    },
}

/// The cache's time source. Production uses a monotonic clock; tests
/// inject a manually advanced one so TTL expiry is exact and
/// deterministic.
#[derive(Clone)]
enum Clock {
    Monotonic(Instant),
    Manual(Arc<AtomicU64>),
}

impl Clock {
    fn now_nanos(&self) -> u64 {
        match self {
            Clock::Monotonic(epoch) => epoch.elapsed().as_nanos() as u64,
            Clock::Manual(nanos) => nanos.load(Ordering::SeqCst),
        }
    }
}

struct Entry {
    plan: Arc<CachedPlan>,
    last_used: u64,
    /// Clock-nanos deadline after which the entry is dead; `None` = never.
    expires_at: Option<u64>,
}

impl Entry {
    fn expired(&self, now: u64) -> bool {
        self.expires_at.is_some_and(|deadline| now >= deadline)
    }
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
}

/// A sharded, admission-gated, TTL-aware LRU of [`CachedPlan`]s keyed by
/// request fingerprint.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry budget (total capacity / shard count, at least 1).
    per_shard: usize,
    policy: CachePolicy,
    clock: Clock,
    /// Monotonic use clock driving LRU eviction.
    tick: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding roughly `capacity` plans in total, with the
    /// default policy (admission on, no default TTL).
    pub fn new(capacity: usize) -> Self {
        PlanCache::with_policy(capacity, CachePolicy::default())
    }

    /// Creates a cache with an explicit policy.
    pub fn with_policy(capacity: usize, policy: CachePolicy) -> Self {
        PlanCache::build(capacity, policy, Clock::Monotonic(Instant::now()))
    }

    /// Creates a cache whose clock is the given shared nanosecond counter,
    /// advanced manually — deterministic TTL expiry for tests.
    pub fn with_manual_clock(capacity: usize, policy: CachePolicy, nanos: Arc<AtomicU64>) -> Self {
        PlanCache::build(capacity, policy, Clock::Manual(nanos))
    }

    fn build(capacity: usize, policy: CachePolicy, clock: Clock) -> Self {
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard: capacity.div_ceil(SHARDS).max(1),
            policy,
            clock,
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: u64) -> &Mutex<Shard> {
        &self.shards[(fp as usize) & (SHARDS - 1)]
    }

    /// The shard index a fingerprint maps to (tests size hot sets so they
    /// fit the per-shard budget before asserting retention).
    pub fn shard_of(fp: u64) -> usize {
        (fp as usize) & (SHARDS - 1)
    }

    /// Per-shard entry budget.
    pub fn shard_budget(&self) -> usize {
        self.per_shard
    }

    /// The TTL an entry with override `ttl_nanos` would get: the override
    /// wins, then the policy default, then none.
    fn effective_ttl(&self, ttl_nanos: Option<u64>) -> Option<u64> {
        ttl_nanos.or(self.policy.default_ttl.map(|d| d.as_nanos() as u64))
    }

    /// Looks up a plan by request fingerprint, refreshing its LRU position.
    /// An expired entry is reclaimed and reported as a miss — expired
    /// plans are never served.
    pub fn get(&self, fp: u64) -> Option<Arc<CachedPlan>> {
        let now = self.clock.now_nanos();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = lock_recover(self.shard(fp));
        let entry = shard.map.get_mut(&fp)?;
        if entry.expired(now) {
            shard.map.remove(&fp);
            self.expired.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        entry.last_used = tick;
        Some(entry.plan.clone())
    }

    /// Offers a plan to the cache. A fingerprint already present is
    /// replaced in place; otherwise expired entries in the shard are
    /// reclaimed first, and if the shard is still full the candidate must
    /// beat the LRU victim's density to displace it (admission on) or
    /// displaces it unconditionally (admission off — plain LRU).
    pub fn insert(&self, fp: u64, plan: Arc<CachedPlan>) -> Admission {
        let now = self.clock.now_nanos();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let expires_at =
            self.effective_ttl(plan.ttl_nanos).map(|ttl| now.saturating_add(ttl.max(1)));
        let mut shard = lock_recover(self.shard(fp));
        if let Some(existing) = shard.map.get_mut(&fp) {
            *existing = Entry { plan, last_used: tick, expires_at };
            return Admission::Replaced;
        }
        // Expired entries are free space: reclaim before pricing victims.
        let dead: Vec<u64> =
            shard.map.iter().filter(|(_, e)| e.expired(now)).map(|(k, _)| *k).collect();
        for k in dead {
            shard.map.remove(&k);
            self.expired.fetch_add(1, Ordering::Relaxed);
        }
        let mut evicted = Vec::new();
        while shard.map.len() >= self.per_shard {
            let victim = shard
                .map
                .iter()
                .min_by_key(|(k, e)| (e.last_used, **k))
                .map(|(k, _)| *k)
                .expect("full shard is non-empty");
            if self.policy.admission {
                let incumbent = shard.map[&victim].plan.density();
                if plan.density() < incumbent {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return Admission::Rejected { victim_fp: victim };
                }
            }
            shard.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            evicted.push(victim);
        }
        shard.map.insert(fp, Entry { plan, last_used: tick, expires_at });
        Admission::Admitted { evicted }
    }

    /// Total entries across all shards (including not-yet-reclaimed
    /// expired entries, which occupy space until touched).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).map.len()).sum()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted (displaced live) since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Candidates the admission gate turned away since construction.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Entries reclaimed by TTL expiry since construction.
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// One-point sample of `(entries, evictions, rejected, expired)` for
    /// the `stats` verb: the counters are read back-to-back *after* the
    /// shard sweep, so a stats frame never pairs an entry count from one
    /// moment with churn counters from a visibly later one.
    pub fn stats_sample(&self) -> (u64, u64, u64, u64) {
        let entries = self.len() as u64;
        (
            entries,
            self.evictions.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.expired.load(Ordering::Relaxed),
        )
    }

    /// The cached plan for the same graph whose cluster is nearest to
    /// `features` — the warm-start seed for a cache miss. Scans every
    /// shard, skipping expired entries; ties break on the smaller
    /// fingerprint so the choice is deterministic.
    pub fn nearest(
        &self,
        graph_fp: u64,
        opts_fp: u64,
        features: &[f64; 4],
    ) -> Option<Arc<CachedPlan>> {
        let now = self.clock.now_nanos();
        let mut best: Option<(f64, u64, Arc<CachedPlan>)> = None;
        for shard in &self.shards {
            let shard = lock_recover(shard);
            for (fp, entry) in &shard.map {
                if entry.plan.graph_fp != graph_fp || entry.expired(now) {
                    continue;
                }
                let d = distance(features, &entry.plan.features, entry.plan.opts_fp == opts_fp);
                let better = match &best {
                    None => true,
                    Some((bd, bfp, _)) => d < *bd || (d == *bd && *fp < *bfp),
                };
                if better {
                    best = Some((d, *fp, entry.plan.clone()));
                }
            }
        }
        best.map(|(_, _, plan)| plan)
    }

    /// A snapshot of live `(fingerprint, plan)` pairs in unspecified
    /// order. Expired entries are excluded (compaction drops them).
    pub fn snapshot(&self) -> Vec<(u64, Arc<CachedPlan>)> {
        let now = self.clock.now_nanos();
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = lock_recover(shard);
            out.extend(
                shard
                    .map
                    .iter()
                    .filter(|(_, e)| !e.expired(now))
                    .map(|(fp, e)| (*fp, e.plan.clone())),
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

/// What [`load_cache`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Entries decoded and offered to the cache.
    pub loaded: usize,
    /// True when the log ended in a torn (unterminated, unparsable) final
    /// line — the signature of a crash mid-append — which was cut off the
    /// file. Everything before it loaded normally.
    pub torn_tail_recovered: bool,
}

/// Loads a persisted cache log into `cache`.
///
/// The crash-consistency contract: appends write the record bytes first
/// and the terminating newline last, so a crash mid-append leaves at most
/// one *unterminated* final line. Exactly that is tolerated — a final line
/// with no trailing `'\n'` that fails to parse (or fails its checksum) is
/// truncated off the file and reported via
/// [`LoadOutcome::torn_tail_recovered`]. Every other defect — a corrupt
/// interior line, or a corrupt final line that *is* newline-terminated
/// (no crash writes one of those; that is real disk corruption) — stays a
/// hard error: the file is machine-written and silent skips would hide
/// data loss.
///
/// All three record generations load (checksummed v3, PR-5 v2, PR-4
/// unversioned — see [`hap_codec::persist_line`]'s module docs). Returns
/// the number of entries offered to the cache — the admission policy
/// applies on reload too, so a log longer than the capacity keeps its
/// densest tail rather than its newest.
///
/// After a recovered torn tail the file may still end without a newline
/// (when the torn line *parsed*, it is kept as-is). Run [`compact_log`]
/// before appending again — [`PersistLog::start`] does — so a later
/// append can never concatenate onto a partial line.
pub fn load_cache(cache: &PlanCache, path: &Path) -> Result<LoadOutcome, CodecError> {
    load_cache_with_requests(cache, path, &mut |_, _| {})
}

/// [`load_cache`] plus request-triple recovery: records that embed a
/// `"req"` field (see [`hap_codec::persist_line_with_req`]) surface it
/// through `on_request`, which the service uses to rebuild the replan
/// index at boot — `replan` then keeps answering across restarts.
pub(crate) fn load_cache_with_requests(
    cache: &PlanCache,
    path: &Path,
    on_request: &mut dyn FnMut(u64, Value),
) -> Result<LoadOutcome, CodecError> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        // A missing file is simply an empty cache (first boot).
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LoadOutcome::default()),
        Err(e) => return Err(CodecError::Decode(format!("cannot open {}: {e}", path.display()))),
    };
    let mut loaded = 0;
    let mut start = 0;
    while start < data.len() {
        let (end, terminated) = match data[start..].iter().position(|&b| b == b'\n') {
            Some(nl) => (start + nl, true),
            None => (data.len(), false),
        };
        let raw = &data[start..end];
        let parsed = std::str::from_utf8(raw)
            .map_err(|e| CodecError::Decode(format!("line is not UTF-8: {e}")))
            .and_then(|line| {
                if line.trim().is_empty() {
                    Ok(None)
                } else {
                    parse_persist_line_full(line).map(Some)
                }
            });
        match parsed {
            Ok(None) => {}
            Ok(Some((fp, plan, req))) => {
                cache.insert(fp, Arc::new(plan));
                if let Some(req) = req {
                    on_request(fp, req);
                }
                loaded += 1;
            }
            Err(_) if !terminated => {
                // Torn tail: a crash mid-append cut this line short. Drop
                // it from the file so the log is clean again; everything
                // acknowledged before it is already loaded.
                let file = OpenOptions::new().write(true).open(path).map_err(|e| {
                    CodecError::Decode(format!(
                        "cannot truncate torn tail of {}: {e}",
                        path.display()
                    ))
                })?;
                file.set_len(start as u64).map_err(|e| {
                    CodecError::Decode(format!(
                        "cannot truncate torn tail of {}: {e}",
                        path.display()
                    ))
                })?;
                return Ok(LoadOutcome { loaded, torn_tail_recovered: true });
            }
            Err(e) => {
                return Err(CodecError::Decode(format!(
                    "{} is corrupt at byte {start}: {e}",
                    path.display()
                )));
            }
        }
        start = if terminated { end + 1 } else { end };
    }
    Ok(LoadOutcome { loaded, torn_tail_recovered: false })
}

/// The sibling temporary path atomic rewrites stage into (same directory,
/// so the final `rename` cannot cross filesystems).
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsyncs the directory holding `path`, making a just-renamed entry
/// durable (the rename itself lives in the directory, not the file).
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

/// Atomically replaces the log at `path` with `entries`: write a sibling
/// temp file, fsync it, rename it over the log, fsync the directory. A
/// crash at any point leaves either the complete old log or the complete
/// new one — never a mix, never nothing (the failure mode of the
/// PR-4-era `File::create` rewrite, which zeroed the live log before
/// writing a byte).
fn write_log_atomic(
    path: &Path,
    entries: &[(u64, Arc<CachedPlan>)],
    req_for: &dyn Fn(u64) -> Option<Value>,
) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    if let Some(fault) = faults::hit(faults::COMPACT_CREATE) {
        return Err(fault.into_io_error());
    }
    let mut out = File::create(&tmp)?;
    for (fp, plan) in entries {
        let line = persist_line_with_req(*fp, plan, req_for(*fp).as_ref());
        match faults::hit(faults::COMPACT_WRITE) {
            Some(Fault::ShortWrite(n)) => {
                let cut = n.min(line.len());
                let _ = out.write_all(&line.as_bytes()[..cut]);
                return Err(Fault::ShortWrite(n).into_io_error());
            }
            Some(fault) => return Err(fault.into_io_error()),
            None => {}
        }
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    if let Some(fault) = faults::hit(faults::COMPACT_FSYNC) {
        return Err(fault.into_io_error());
    }
    out.sync_all()?;
    drop(out);
    if let Some(fault) = faults::hit(faults::COMPACT_RENAME) {
        return Err(fault.into_io_error());
    }
    std::fs::rename(&tmp, path)?;
    if let Some(fault) = faults::hit(faults::COMPACT_DIR_FSYNC) {
        return Err(fault.into_io_error());
    }
    sync_parent_dir(path)
}

/// Atomically rewrites the persistence log from the cache's current
/// contents — called after [`load_cache`] so the append-only log compacts
/// once per restart (duplicate fingerprints from overwrites collapse to
/// the live entry, expired entries drop out, a kept-but-unterminated torn
/// tail gains its newline). Always writes the current record version:
/// compaction is also the legacy-format migration path. On error the
/// previous log is intact (see [`write_log_atomic`]); at worst a
/// `.tmp` sibling is left behind, and the next successful compaction
/// replaces it.
pub fn compact_log(cache: &PlanCache, path: &Path) -> std::io::Result<()> {
    compact_log_with(cache, path, &|_| None)
}

/// [`compact_log`] plus request-triple preservation: entries whose
/// fingerprint `req_for` can resolve (normally from the live replan
/// index) are rewritten with their `"req"` field, so compaction never
/// strips the restart-recovery data an append stored.
pub(crate) fn compact_log_with(
    cache: &PlanCache,
    path: &Path,
    req_for: &dyn Fn(u64) -> Option<Value>,
) -> std::io::Result<()> {
    let mut entries = cache.snapshot();
    entries.sort_by_key(|(fp, _)| *fp);
    write_log_atomic(path, &entries, req_for)
}

// ---------------------------------------------------------------------------
// The append log
// ---------------------------------------------------------------------------

/// State behind the [`PersistLog`] mutex: the open append handle (absent
/// while degraded) and the fsync-batch counter.
struct PersistState {
    file: Option<File>,
    /// Appends acknowledged since the last fsync (the
    /// [`FsyncPolicy::EveryN`] window).
    unsynced: u64,
}

/// The daemon's durable append log, with graceful degradation.
///
/// Healthy operation appends one checksummed record per admitted plan and
/// fsyncs per the configured [`FsyncPolicy`]. Any I/O failure — ENOSPC,
/// EIO, a torn write — flips the log to *degraded*: the cache keeps
/// serving from memory, a `persist_errors` counter and the
/// `persistence_degraded` gauge surface the condition in `stats`, and the
/// daemon stays up. Every subsequent append re-probes the disk by
/// atomically rewriting the whole log from the live cache
/// ([`write_log_atomic`]); the first probe that succeeds also recovers
/// every entry admitted during the outage (they are all still in the
/// cache, which is written before the log), so a healed disk loses
/// nothing that memory still holds.
pub struct PersistLog {
    path: PathBuf,
    policy: FsyncPolicy,
    state: Mutex<PersistState>,
    degraded: AtomicBool,
    errors: AtomicU64,
    /// The live replan index, when the service shares it: compactions
    /// (boot, degraded-mode re-probes) then re-embed each entry's request
    /// triple instead of stripping it.
    replans: Option<Arc<Mutex<ReplanIndex>>>,
}

impl PersistLog {
    /// Compacts the log at `path` from `cache` and opens it for appends.
    /// An I/O failure does not refuse to start: the log begins degraded
    /// (memory-only) and re-probes on later appends.
    pub fn start(cache: &PlanCache, path: PathBuf, policy: FsyncPolicy) -> PersistLog {
        Self::build(cache, path, policy, None)
    }

    /// [`PersistLog::start`] wired to the service's replan index, so
    /// compactions preserve the `"req"` fields the index is rebuilt from.
    pub(crate) fn start_with_index(
        cache: &PlanCache,
        path: PathBuf,
        policy: FsyncPolicy,
        replans: Arc<Mutex<ReplanIndex>>,
    ) -> PersistLog {
        Self::build(cache, path, policy, Some(replans))
    }

    fn build(
        cache: &PlanCache,
        path: PathBuf,
        policy: FsyncPolicy,
        replans: Option<Arc<Mutex<ReplanIndex>>>,
    ) -> PersistLog {
        let log = PersistLog {
            path,
            policy,
            state: Mutex::new(PersistState { file: None, unsynced: 0 }),
            degraded: AtomicBool::new(false),
            errors: AtomicU64::new(0),
            replans,
        };
        let mut state = lock_recover(&log.state);
        if !log.reopen(&mut state, cache) {
            log.errors.fetch_add(1, Ordering::Relaxed);
            log.degraded.store(true, Ordering::Relaxed);
        }
        drop(state);
        log
    }

    /// The request triple recorded for `fp`, in the persist-record `"req"`
    /// form, when an index is attached and still remembers it.
    fn req_for(&self, fp: u64) -> Option<Value> {
        let replans = self.replans.as_ref()?;
        let triple = lock_recover(replans).get(fp)?;
        Some(triple.encode_req())
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Failed persistence operations (appends, compactions, re-probes)
    /// since boot.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// True while persistence is suspended and the cache is memory-only.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Appends one admitted entry. Returns `true` when the record is in
    /// the file (fsynced per policy) — the append is *acknowledged* — and
    /// `false` when persistence is (or just became) degraded. While
    /// degraded this is the re-probe: it attempts a full atomic rewrite
    /// from `cache`, resuming normal appends on success.
    pub fn append(&self, cache: &PlanCache, fp: u64, plan: &CachedPlan) -> bool {
        self.append_with_req(cache, fp, plan, None)
    }

    /// [`PersistLog::append`] with the request triple embedded in the
    /// record's `"req"` field, making the entry replan-recoverable after
    /// a restart. `None` writes a plain (still fully valid) record.
    pub(crate) fn append_with_req(
        &self,
        cache: &PlanCache,
        fp: u64,
        plan: &CachedPlan,
        req: Option<&Value>,
    ) -> bool {
        let mut state = lock_recover(&self.state);
        if state.file.is_none() {
            return self.try_resume(&mut state, cache);
        }
        let line = persist_line_with_req(fp, plan, req);
        let result = {
            let PersistState { file, unsynced } = &mut *state;
            let file = file.as_mut().expect("checked above");
            match Self::write_line(file, &line) {
                Ok(()) => Self::apply_fsync(file, self.policy, unsynced),
                Err(e) => Err(e),
            }
        };
        match result {
            Ok(()) => true,
            Err(_) => {
                // ENOSPC/EIO/torn write: drop to memory-only. The entry
                // stays in the cache; a later successful re-probe rewrites
                // it into the log.
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.degraded.store(true, Ordering::Relaxed);
                state.file = None;
                state.unsynced = 0;
                false
            }
        }
    }

    /// Flushes any unsynced appends to disk (clean-shutdown path).
    pub fn sync(&self) {
        let mut state = lock_recover(&self.state);
        if let Some(file) = state.file.as_mut() {
            if file.sync_data().is_ok() {
                state.unsynced = 0;
            }
        }
    }

    fn write_line(file: &mut File, line: &str) -> std::io::Result<()> {
        match faults::hit(faults::APPEND_WRITE) {
            Some(Fault::ShortWrite(n)) => {
                // Land a real torn prefix so recovery sees exactly what a
                // crash mid-write(2) leaves: record bytes cut short, no
                // terminating newline.
                let cut = n.min(line.len());
                let _ = file.write_all(&line.as_bytes()[..cut]);
                return Err(Fault::ShortWrite(n).into_io_error());
            }
            Some(fault) => return Err(fault.into_io_error()),
            None => {}
        }
        // Record first, newline last: the crash-consistency contract
        // `load_cache` recovers under.
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")
    }

    fn apply_fsync(
        file: &mut File,
        policy: FsyncPolicy,
        unsynced: &mut u64,
    ) -> std::io::Result<()> {
        match policy {
            FsyncPolicy::Always => file.sync_data(),
            FsyncPolicy::EveryN(n) => {
                *unsynced += 1;
                if *unsynced >= n.get() {
                    file.sync_data()?;
                    *unsynced = 0;
                }
                Ok(())
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    /// Degraded-mode re-probe: atomically rewrite the log from the live
    /// cache and reopen the append handle. Success recovers everything
    /// admitted during the outage and resumes normal persistence.
    fn try_resume(&self, state: &mut PersistState, cache: &PlanCache) -> bool {
        if self.reopen(state, cache) {
            self.degraded.store(false, Ordering::Relaxed);
            true
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
            self.degraded.store(true, Ordering::Relaxed);
            false
        }
    }

    fn reopen(&self, state: &mut PersistState, cache: &PlanCache) -> bool {
        let opened = compact_log_with(cache, &self.path, &|fp| self.req_for(fp))
            .and_then(|()| OpenOptions::new().append(true).open(&self.path));
        match opened {
            Ok(file) => {
                state.file = Some(file);
                state.unsynced = 0;
                true
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_synthesis::DistProgram;

    fn plan(graph_fp: u64, features: [f64; 4]) -> Arc<CachedPlan> {
        plan_with_cost(graph_fp, features, 1_000_000, 100, None)
    }

    fn plan_with_cost(
        graph_fp: u64,
        features: [f64; 4],
        synthesis_nanos: u64,
        size_bytes: u64,
        ttl_nanos: Option<u64>,
    ) -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            program: DistProgram::default(),
            ratios: vec![vec![0.5, 0.5]],
            estimated_time: 1.5,
            rounds: 1,
            graph_fp,
            opts_fp: 7,
            features,
            synthesis_nanos,
            size_bytes,
            ttl_nanos,
        })
    }

    #[test]
    fn get_insert_and_lru_eviction() {
        // Capacity 16 over 16 shards = 1 per shard: two same-shard inserts
        // of equal density evict the older (plain-LRU recovery).
        let cache = PlanCache::new(16);
        cache.insert(0, plan(1, [1.0; 4]));
        assert!(cache.get(0).is_some());
        cache.insert(16, plan(2, [1.0; 4])); // same shard as fp 0
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(0).is_none(), "older entry evicted");
        assert!(cache.get(16).is_some());
        // Different shard: coexists.
        cache.insert(3, plan(3, [1.0; 4]));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_prefers_recently_used() {
        // 32 over 16 shards = 2 per shard. Touch the older entry, insert a
        // third in the same shard: the untouched middle entry goes.
        let cache = PlanCache::new(32);
        cache.insert(0, plan(1, [1.0; 4]));
        cache.insert(16, plan(2, [1.0; 4]));
        assert!(cache.get(0).is_some()); // refresh fp 0
        cache.insert(32, plan(3, [1.0; 4]));
        assert!(cache.get(0).is_some());
        assert!(cache.get(16).is_none());
        assert!(cache.get(32).is_some());
    }

    #[test]
    fn admission_gate_protects_denser_incumbents() {
        let cache = PlanCache::new(16);
        // Expensive, small: high density.
        cache.insert(0, plan_with_cost(1, [1.0; 4], 50_000_000, 100, None));
        // Cheap, bulky one-off in the same shard: must bounce.
        let verdict = cache.insert(16, plan_with_cost(2, [1.0; 4], 1_000_000, 10_000, None));
        assert_eq!(verdict, Admission::Rejected { victim_fp: 0 });
        assert_eq!(cache.rejected(), 1);
        assert_eq!(cache.evictions(), 0);
        assert!(cache.get(0).is_some(), "incumbent survives");
        assert!(cache.get(16).is_none(), "one-off was not cached");
        // A denser candidate displaces the incumbent.
        let verdict = cache.insert(32, plan_with_cost(3, [1.0; 4], 500_000_000, 100, None));
        assert_eq!(verdict, Admission::Admitted { evicted: vec![0] });
        assert!(cache.get(32).is_some());
    }

    #[test]
    fn admission_off_is_plain_lru() {
        let policy = CachePolicy { admission: false, default_ttl: None };
        let cache = PlanCache::with_policy(16, policy);
        cache.insert(0, plan_with_cost(1, [1.0; 4], 50_000_000, 100, None));
        // Same cheap bulky one-off: plain LRU admits it regardless.
        let verdict = cache.insert(16, plan_with_cost(2, [1.0; 4], 1_000_000, 10_000, None));
        assert_eq!(verdict, Admission::Admitted { evicted: vec![0] });
        assert!(cache.get(0).is_none(), "LRU evicted the hot entry");
    }

    #[test]
    fn ttl_expiry_under_a_manual_clock() {
        let now = Arc::new(AtomicU64::new(0));
        let cache = PlanCache::with_manual_clock(16, CachePolicy::default(), now.clone());
        cache.insert(0, plan_with_cost(1, [1.0; 4], 1_000_000, 100, Some(1_000)));
        cache.insert(1, plan_with_cost(2, [1.0; 4], 1_000_000, 100, None));
        assert!(cache.get(0).is_some(), "fresh entry serves");
        now.store(999, Ordering::SeqCst);
        assert!(cache.get(0).is_some(), "still inside the TTL");
        now.store(1_000, Ordering::SeqCst);
        assert!(cache.get(0).is_none(), "expired entry is never served");
        assert_eq!(cache.expired(), 1);
        assert!(cache.get(1).is_some(), "no-TTL entry lives forever");
        // Expired space is reclaimed before any eviction happens: a new
        // entry in fp 0's shard neither evicts nor rejects.
        cache.insert(16, plan_with_cost(3, [1.0; 4], 1, 1_000_000, None));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.rejected(), 0);
    }

    #[test]
    fn default_ttl_applies_when_entry_has_none() {
        let now = Arc::new(AtomicU64::new(0));
        let policy =
            CachePolicy { admission: true, default_ttl: Some(Duration::from_nanos(2_000)) };
        let cache = PlanCache::with_manual_clock(16, policy, now.clone());
        cache.insert(0, plan_with_cost(1, [1.0; 4], 1_000_000, 100, None));
        // Per-entry override beats the default.
        cache.insert(1, plan_with_cost(2, [1.0; 4], 1_000_000, 100, Some(10_000)));
        now.store(2_000, Ordering::SeqCst);
        assert!(cache.get(0).is_none(), "default TTL expired the entry");
        assert!(cache.get(1).is_some(), "override outlives the default");
        // nearest() must not resurrect expired plans either.
        assert!(cache.nearest(1, 7, &[1.0; 4]).is_none());
        assert!(cache.nearest(2, 7, &[1.0; 4]).is_some());
    }

    #[test]
    fn nearest_matches_graph_and_ranks_by_features() {
        let cache = PlanCache::new(64);
        cache.insert(1, plan(100, [4.0, 1e13, 1e9, 1e-5]));
        cache.insert(2, plan(100, [8.0, 2e13, 1e9, 1e-5]));
        cache.insert(3, plan(999, [4.0, 1e13, 1e9, 1e-5])); // other graph
        let near = cache.nearest(100, 7, &[4.0, 1.1e13, 1e9, 1e-5]).unwrap();
        assert_eq!(near.features[0], 4.0);
        assert!(cache.nearest(12345, 7, &[4.0, 1e13, 1e9, 1e-5]).is_none());
    }

    #[test]
    fn persistence_round_trip_via_tempfile() {
        let dir = std::env::temp_dir().join(format!("hap-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let cache = PlanCache::new(64);
        cache.insert(
            42,
            plan_with_cost(100, [4.0, 1e13, 1e9, 1e-5], 123_456, 789, Some(60_000_000_000)),
        );
        cache.insert(43, plan(101, [8.0, 2e13, 2e9, 2e-5]));
        compact_log(&cache, &path).unwrap();

        let restored = PlanCache::new(64);
        assert_eq!(
            load_cache(&restored, &path).unwrap(),
            LoadOutcome { loaded: 2, torn_tail_recovered: false }
        );
        let p = restored.get(42).unwrap();
        assert_eq!(p.graph_fp, 100);
        assert_eq!(p.estimated_time.to_bits(), 1.5f64.to_bits());
        assert_eq!(p.ratios, vec![vec![0.5, 0.5]]);
        assert_eq!(p.synthesis_nanos, 123_456);
        assert_eq!(p.size_bytes, 789);
        assert_eq!(p.ttl_nanos, Some(60_000_000_000));
        // Missing file = empty cache.
        assert_eq!(load_cache(&PlanCache::new(4), &dir.join("absent.jsonl")).unwrap().loaded, 0);
        // A *terminated* corrupt line is real corruption — no crash writes
        // garbage followed by a newline — and stays a hard error.
        std::fs::write(&path, "not json\n").unwrap();
        assert!(load_cache(&PlanCache::new(4), &path).is_err());
        // The same garbage without the newline is a torn tail (crash
        // mid-append): recovered and truncated away.
        std::fs::write(&path, "not json").unwrap();
        let outcome = load_cache(&PlanCache::new(4), &path).unwrap();
        assert_eq!(outcome, LoadOutcome { loaded: 0, torn_tail_recovered: true });
        assert_eq!(std::fs::read(&path).unwrap(), b"", "torn tail truncated");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_pr4_log_lines_still_load() {
        let dir = std::env::temp_dir().join(format!("hap-cache-legacy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        // A PR-4-era line: no "v" tag, no cost metadata in the plan body.
        let legacy = "{\"fp\":\"0x000000000000002a\",\"plan\":{\"graph_fp\":\
                      \"0x0000000000000064\",\"opts_fp\":\"0x0000000000000007\",\"features\":\
                      [4,1e13,1e9,1e-5],\"rounds\":1,\"estimated_time\":1.5,\"ratios\":[[0.5,\
                      0.5]],\"program\":{\"instrs\":[],\"estimated_time\":1.5}}}";
        std::fs::write(&path, format!("{legacy}\n")).unwrap();
        let cache = PlanCache::new(64);
        assert_eq!(load_cache(&cache, &path).unwrap().loaded, 1);
        let p = cache.get(42).unwrap();
        assert_eq!(p.graph_fp, 100);
        assert_eq!(p.synthesis_nanos, 0, "legacy entries carry zero cost");
        assert_eq!(p.ttl_nanos, None);
        // Compaction migrates the line to the current checksummed format.
        compact_log(&cache, &path).unwrap();
        let migrated = std::fs::read_to_string(&path).unwrap();
        assert!(migrated.starts_with("{\"v\":3,\"sum\":"), "{migrated}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn expired_entries_do_not_persist() {
        let now = Arc::new(AtomicU64::new(0));
        let cache = PlanCache::with_manual_clock(16, CachePolicy::default(), now.clone());
        cache.insert(0, plan_with_cost(1, [1.0; 4], 1_000_000, 100, Some(10)));
        cache.insert(1, plan_with_cost(2, [1.0; 4], 1_000_000, 100, None));
        now.store(100, Ordering::SeqCst);
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, 1);
    }
}
