//! Deterministic multi-tenant traffic generation for stress-testing the
//! plan service.
//!
//! The overload harness (`tests/overload.rs`, CI's `service-soak` job)
//! needs adversarial tenant mixes whose *shape* is reproducible from a
//! seed while every request stays a real, synthesizable planning request.
//! This module builds three request families and a seeded scheduler over
//! them:
//!
//! * **Hot set** ([`hot_request`]) — small graphs searched with a real
//!   (bounded, deterministic) A\* budget: expensive to synthesize, small
//!   to cache. High admission density; the working set a healthy cache
//!   must retain.
//! * **One-off flood** ([`one_off_request`]) — deep forward-only chains
//!   planned greedily (zero time budget): cheap to synthesize, bulky to
//!   cache. Low admission density; classic cache-pollution traffic that
//!   evicts a plain LRU's working set and must bounce off the admission
//!   gate.
//! * **Slow burner** ([`slow_request`]) — one deliberately expensive
//!   request that parks a worker long enough for the harness to provoke
//!   queue-depth shedding behind it.
//!
//! Determinism: request *content* is a pure function of the index (so
//! fingerprints, densities and shard placement are fixed across runs and
//! seeds), and only the interleaving [`schedule`] is seeded. A schedule
//! driven sequentially over one connection therefore produces the same
//! cache decisions for a given seed, and admission-gate outcomes hold for
//! *every* seed because they depend on the density gap, not the order.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hap::HapOptions;
use hap_cluster::{ClusterDelta, ClusterSpec};
use hap_codec::{request_fingerprint, Encode};
use hap_graph::{Graph, GraphBuilder};
use hap_models::{mlp, MlpConfig};
use hap_synthesis::SynthConfig;

use crate::ring::Ring;
use crate::{
    Client, ClusterClient, PlanCache, PlanReply, PlanService, RetryPolicy, RingInfo, Server,
    ServiceConfig, StatsSnapshot,
};

/// One fully-formed planning request.
pub struct StressRequest {
    /// Label used in harness diagnostics.
    pub name: String,
    /// The training (or forward) graph to plan.
    pub graph: Graph,
    /// The cluster to plan for.
    pub cluster: ClusterSpec,
    /// Planner options.
    pub options: HapOptions,
}

impl StressRequest {
    /// The request's content fingerprint — its cache key.
    pub fn fingerprint(&self) -> u64 {
        request_fingerprint(&self.graph, &self.cluster, &self.options)
    }
}

/// Hot-set request `i`: a small MLP trained with a bounded deterministic
/// A\* search. The expansion budget is fixed and the stall cutoff and
/// wall-clock deadline are disabled, so the search does the same work
/// every run — synthesis is tens of milliseconds, the cached plan is a
/// couple of KB, and the density (seconds saved per byte) is orders of
/// magnitude above a one-off's.
pub fn hot_request(i: usize) -> StressRequest {
    // Indirection over the raw parameter seed: fingerprints are content
    // hashes, so which cache shard a request lands in is fixed but
    // arbitrary, and two neighboring seeds can collide. These eight seeds
    // were chosen so the first eight hot requests occupy eight *distinct*
    // shards — the retention harness can size its cache to exactly the
    // hot set. `hot_set_fits` re-checks at runtime, so codec or model
    // drift fails loudly rather than flakily.
    const SEEDS: [usize; 8] = [0, 1, 2, 4, 5, 6, 7, 8];
    // Blocks step by 9 (one past the table's largest value), so indices in
    // different blocks can never produce the same seed — e.g. with a
    // block stride of 8, `i=7` (seed 8) and `i=8` (seed 0+8) would alias
    // into identical requests.
    let seed = SEEDS[i % SEEDS.len()] + (i / SEEDS.len()) * (SEEDS[SEEDS.len() - 1] + 1);
    let graph = mlp(&MlpConfig {
        batch: 256,
        input: 24 + 8 * seed,
        hidden: vec![48 + 16 * (seed % 3), 64],
        classes: 10,
    });
    let options = HapOptions {
        synth: SynthConfig {
            max_expansions: 768,
            stall_expansions: 1 << 30,
            time_budget_secs: 600.0,
            ..SynthConfig::default()
        },
        ..HapOptions::default()
    };
    StressRequest {
        name: format!("hot-{i}"),
        graph,
        cluster: ClusterSpec::fig17_cluster(),
        options,
    }
}

/// One-off flood request `i`: a deep element-wise forward chain planned
/// greedily (`time_budget_secs: 0`). Synthesis is a few milliseconds, but
/// the plan carries one instruction per node — cheap to make, bulky to
/// keep, never requested twice. The admission gate must turn these away
/// when the cache is full of hot-set plans.
pub fn one_off_request(i: usize) -> StressRequest {
    let mut g = GraphBuilder::new();
    let width = 8 + (i % 5);
    // The batch extent carries the raw index, so every one-off is a
    // genuinely distinct graph (distinct fingerprint — never a repeat),
    // while all of them share the cheap/bulky profile.
    let mut cur = g.placeholder("x", vec![64 + i, width]);
    let depth = 48 + (i % 7) * 4;
    for layer in 0..depth {
        cur = match layer % 3 {
            0 => g.relu(cur),
            1 => g.layer_norm(cur),
            _ => g.add(cur, cur),
        };
    }
    let _loss = g.sum_all(cur);
    let graph = g.build_forward();
    let options = HapOptions {
        synth: SynthConfig { time_budget_secs: 0.0, ..SynthConfig::default() },
        ..HapOptions::default()
    };
    StressRequest {
        name: format!("one-off-{i}"),
        graph,
        cluster: ClusterSpec::fig17_cluster(),
        options,
    }
}

/// A request whose synthesis reliably takes long enough (hundreds of
/// milliseconds) to occupy a worker while the harness floods the queue
/// behind it.
pub fn slow_request(i: usize) -> StressRequest {
    let graph =
        mlp(&MlpConfig { batch: 512, input: 64 + i, hidden: vec![96, 96, 96], classes: 16 });
    let options = HapOptions {
        synth: SynthConfig {
            max_expansions: 6_000,
            stall_expansions: 1 << 30,
            time_budget_secs: 600.0,
            ..SynthConfig::default()
        },
        ..HapOptions::default()
    };
    StressRequest {
        name: format!("slow-{i}"),
        graph,
        cluster: ClusterSpec::fig17_cluster(),
        options,
    }
}

/// One step of a stress schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StressOp {
    /// Request hot-set entry `i` (a repeat after warmup should hit).
    Hot(usize),
    /// Request one-off flood entry `i` (never repeated).
    OneOff(usize),
    /// A chaos step: hot-set entry `i` loses one device
    /// ([`replan_delta`]) and the tenant issues `replan` against the
    /// prior fingerprint, falling back to a cold plan when the daemon
    /// answers `unknown_fingerprint`.
    Replan(usize),
}

/// The single-device loss chaos replays against hot request `i`: one GPU
/// off machine `i % 2`. Both fig17 machines have two GPUs, so the delta
/// is always valid (each machine keeps one) and deterministic per index.
pub fn replan_delta(i: usize) -> ClusterDelta {
    ClusterDelta::device_loss(i % 2, 1)
}

/// A seeded interleaving of `repeats` passes over `hot_n` hot requests
/// with `flood_n` one-offs scattered between them. Only the *order* is
/// seeded; the set of operations is fixed by the counts, so aggregate
/// properties (every hot entry requested `repeats` times, every one-off
/// once) hold for every seed.
pub fn schedule(seed: u64, hot_n: usize, repeats: usize, flood_n: usize) -> Vec<StressOp> {
    let mut ops = Vec::with_capacity(hot_n * repeats + flood_n);
    for r in 0..repeats {
        for h in 0..hot_n {
            // Vary hot order per round so rounds are not lockstep.
            ops.push(StressOp::Hot((h + r) % hot_n));
        }
    }
    for f in 0..flood_n {
        ops.push(StressOp::OneOff(f));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Fisher–Yates (the vendored rand shim has no `SliceRandom`).
    for i in (1..ops.len()).rev() {
        let j = rng.random_range(0..=i);
        ops.swap(i, j);
    }
    ops
}

/// A [`schedule`] with `replans` seeded device-loss chaos steps spliced
/// into its second half: mid-traffic, a random hot tenant loses a device
/// and replans. The second-half placement makes it overwhelmingly likely
/// the prior plan is already in the daemon (the first half contains every
/// hot request at least once for `repeats >= 2`), but the driver falls
/// back to a cold plan on `unknown_fingerprint` either way, so every
/// seed's schedule is valid. Base traffic keeps the exact op multiset of
/// [`schedule`], so hit-rate and shed invariants carry over unchanged.
pub fn chaos_schedule(
    seed: u64,
    hot_n: usize,
    repeats: usize,
    flood_n: usize,
    replans: usize,
) -> Vec<StressOp> {
    let mut ops = schedule(seed, hot_n, repeats, flood_n);
    // A distinct stream from the shuffle's, so adding chaos does not
    // reorder the base traffic relative to `schedule(seed, ...)`.
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    for _ in 0..replans {
        let target = rng.random_range(0..hot_n);
        let at = rng.random_range(ops.len() / 2..=ops.len());
        ops.insert(at, StressOp::Replan(target));
    }
    ops
}

/// True when the hot set `0..hot_n` fits the cache's per-shard budget —
/// i.e. no cache shard would have to hold more hot fingerprints than its
/// budget. Harnesses assert this before asserting retention, so a model
/// change that reshuffles fingerprints fails loudly instead of flakily.
pub fn hot_set_fits(hot_n: usize, cache_capacity: usize) -> bool {
    let cache = PlanCache::new(cache_capacity);
    let mut per_shard = std::collections::HashMap::new();
    for i in 0..hot_n {
        *per_shard.entry(PlanCache::shard_of(hot_request(i).fingerprint())).or_insert(0usize) += 1;
    }
    per_shard.values().all(|&n| n <= cache.shard_budget())
}

/// The bit-level identity of a plan reply: program fingerprint,
/// estimated-time bits, ratio bits. Two replies for the same request must
/// compare equal no matter which path (cold, cache, coalesced, restart)
/// produced them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplyBits {
    /// `DistProgram::fingerprint()` of the returned program.
    pub program_fp: u64,
    /// `estimated_time.to_bits()`.
    pub time_bits: u64,
    /// Per-segment ratio rows, bit-cast.
    pub ratio_bits: Vec<Vec<u64>>,
}

impl ReplyBits {
    /// Extracts the identity from a reply.
    pub fn of(reply: &PlanReply) -> ReplyBits {
        ReplyBits {
            program_fp: reply.program.fingerprint(),
            time_bits: reply.estimated_time.to_bits(),
            ratio_bits: reply
                .ratios
                .iter()
                .map(|row| row.iter().map(|b| b.to_bits()).collect())
                .collect(),
        }
    }
}

/// The outcome of one schedule step.
#[derive(Clone)]
pub struct StepOutcome {
    /// The step that ran.
    pub op: StressOp,
    /// `cache` / `synthesized` / `coalesced`.
    pub source: String,
    /// Bit identity of the returned plan.
    pub bits: ReplyBits,
}

/// Drives a schedule sequentially over one connection (deterministic
/// order), retrying through busy frames. Panics on any non-busy error —
/// stress traffic is all well-formed.
pub fn drive_sequential(
    addr: std::net::SocketAddr,
    ops: &[StressOp],
    retry: &RetryPolicy,
) -> Vec<StepOutcome> {
    drive_sequential_opts(addr, ops, retry, false)
}

/// [`drive_sequential`] with an optional chunked-streaming transport —
/// the connection-scale soak drives part of its traffic streamed to prove
/// the framing change is invisible to every overload invariant.
pub fn drive_sequential_opts(
    addr: std::net::SocketAddr,
    ops: &[StressOp],
    retry: &RetryPolicy,
    stream: bool,
) -> Vec<StepOutcome> {
    let mut client = Client::connect(addr).expect("stress client connect");
    ops.iter()
        .map(|&op| {
            let req = match op {
                StressOp::Hot(i) => hot_request(i),
                StressOp::OneOff(i) => one_off_request(i),
                StressOp::Replan(i) => {
                    let req = hot_request(i);
                    let delta = replan_delta(i);
                    match client.replan_with_retry(req.fingerprint(), &delta, None, retry) {
                        Ok(reply) => {
                            return StepOutcome {
                                op,
                                source: reply.plan.source.clone(),
                                bits: ReplyBits::of(&reply.plan),
                            };
                        }
                        // The daemon no longer holds the prior (never
                        // planned, evicted, restarted): cold fallback on
                        // the post-delta cluster, as real tenants would.
                        Err(e) if e.kind == "unknown_fingerprint" => {
                            let cluster = delta.apply(&req.cluster).expect("chaos delta is valid");
                            let reply = client
                                .plan_with_retry_opts(
                                    &req.graph,
                                    &cluster,
                                    &req.options,
                                    None,
                                    stream,
                                    retry,
                                )
                                .unwrap_or_else(|e| panic!("{} cold fallback: {e}", req.name));
                            return StepOutcome {
                                op,
                                source: reply.source.clone(),
                                bits: ReplyBits::of(&reply),
                            };
                        }
                        Err(e) => panic!("{} replan: {e}", req.name),
                    }
                }
            };
            let reply = client
                .plan_with_retry_opts(&req.graph, &req.cluster, &req.options, None, stream, retry)
                .unwrap_or_else(|e| panic!("{}: {e}", req.name));
            StepOutcome { op, source: reply.source.clone(), bits: ReplyBits::of(&reply) }
        })
        .collect()
}

/// Hot-set cache hit rate over a run: the fraction of `Hot` steps
/// answered from the cache.
pub fn hot_hit_rate(outcomes: &[StepOutcome]) -> f64 {
    let hot: Vec<_> = outcomes.iter().filter(|o| matches!(o.op, StressOp::Hot(_))).collect();
    if hot.is_empty() {
        return 0.0;
    }
    hot.iter().filter(|o| o.source == "cache").count() as f64 / hot.len() as f64
}

// ---------------------------------------------------------------------------
// Multi-daemon cluster topology
// ---------------------------------------------------------------------------

/// An in-process `hap-cluster`: N loopback daemons sharing one
/// consistent-hash ring, with kill/rejoin chaos for the cluster soak
/// (`tests/cluster.rs`, CI's `cluster-soak` job).
///
/// The harness plays the operator: it assigns membership epochs, expands
/// the same [`Ring`] the daemons and clients expand, and pushes each new
/// membership record to every live daemon over the `ring` verb. Killing a
/// node removes it from the next epoch; rejoining restarts it (on a fresh
/// port, with its original config — including any cache file) and adds it
/// back. Node indices are stable across kill/rejoin, so tests can follow
/// one daemon through its death and return.
pub struct StressCluster {
    vnodes: u32,
    replication: u32,
    epoch: u64,
    nodes: Vec<ClusterNode>,
}

struct ClusterNode {
    addr: String,
    config: ServiceConfig,
    server: Option<Server>,
    /// Final counters of each earlier incarnation of this node (captured
    /// at kill time), so cluster-wide totals stay monotone across chaos.
    retired: Vec<StatsSnapshot>,
}

impl StressCluster {
    /// Starts `n` daemons on ephemeral loopback ports with `replication`-way
    /// plan replication and installs membership epoch 1 on all of them.
    /// `configure` tweaks each daemon's config (cache files, queue depths)
    /// before it starts.
    pub fn start(
        n: usize,
        replication: u32,
        configure: impl Fn(usize, &mut ServiceConfig),
    ) -> StressCluster {
        assert!(n > 0, "a cluster needs at least one daemon");
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let mut config = ServiceConfig {
                addr: "127.0.0.1:0".into(),
                ring_replication: replication,
                ..ServiceConfig::default()
            };
            configure(i, &mut config);
            let server = Server::start(config.clone()).expect("cluster daemon start");
            nodes.push(ClusterNode {
                addr: server.addr().to_string(),
                config,
                server: Some(server),
                retired: Vec::new(),
            });
        }
        let vnodes = nodes[0].config.ring_vnodes;
        let mut cluster = StressCluster { vnodes, replication, epoch: 0, nodes };
        cluster.push_ring();
        cluster
    }

    /// Live member addresses in node-index order — [`ClusterClient`] seeds.
    pub fn addrs(&self) -> Vec<String> {
        self.nodes.iter().filter(|n| n.server.is_some()).map(|n| n.addr.clone()).collect()
    }

    /// Node `i`'s current address (changes when it rejoins).
    pub fn addr(&self, i: usize) -> &str {
        &self.nodes[i].addr
    }

    /// The membership epoch the harness last installed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current ring, expanded exactly as the daemons and clients
    /// expand it.
    pub fn ring(&self) -> Ring {
        Ring::build(RingInfo {
            epoch: self.epoch,
            vnodes: self.vnodes,
            replication: self.replication,
            members: self.addrs(),
        })
    }

    /// The node index of `fp`'s primary owner on the current ring.
    pub fn primary_index(&self, fp: u64) -> usize {
        let ring = self.ring();
        let primary = ring.primary(fp).expect("cluster has live members").to_string();
        self.nodes.iter().position(|n| n.addr == primary).expect("primary is a cluster node")
    }

    /// True when node `i` is live and among `fp`'s ring owners.
    pub fn is_owner(&self, i: usize, fp: u64) -> bool {
        self.nodes[i].server.is_some() && self.ring().is_owner(fp, &self.nodes[i].addr)
    }

    /// Direct access to a live daemon's in-process service (stats).
    pub fn service(&self, i: usize) -> &PlanService {
        self.nodes[i].server.as_ref().expect("node is live").service()
    }

    /// One counter summed across every daemon that ever ran: the live
    /// ones now plus the final snapshot of every killed incarnation.
    /// Monotone across kill/rejoin chaos.
    pub fn total(&self, field: impl Fn(&StatsSnapshot) -> u64) -> u64 {
        self.nodes
            .iter()
            .flat_map(|n| {
                n.retired.iter().cloned().chain(n.server.as_ref().map(|s| s.service().stats()))
            })
            .map(|stats| field(&stats))
            .sum()
    }

    /// Kills node `i` (full daemon shutdown) and installs the shrunk
    /// membership on the survivors.
    pub fn kill(&mut self, i: usize) {
        let mut server = self.nodes[i].server.take().expect("node already dead");
        let last_words = server.service().stats();
        server.shutdown();
        self.nodes[i].retired.push(last_words);
        self.push_ring();
    }

    /// Restarts a killed node `i` on a fresh port with its original config
    /// (same cache file, if any) and installs the grown membership on
    /// every live daemon, the rejoiner included.
    pub fn rejoin(&mut self, i: usize) {
        assert!(self.nodes[i].server.is_none(), "node {i} is still alive");
        let mut config = self.nodes[i].config.clone();
        config.addr = "127.0.0.1:0".into();
        let server = Server::start(config).expect("cluster daemon rejoin");
        self.nodes[i].addr = server.addr().to_string();
        self.nodes[i].server = Some(server);
        self.push_ring();
    }

    /// Shuts every live daemon down. Also runs on drop.
    pub fn shutdown(&mut self) {
        for node in &mut self.nodes {
            if let Some(mut server) = node.server.take() {
                server.shutdown();
            }
        }
    }

    /// Installs the next membership epoch on every live daemon.
    fn push_ring(&mut self) {
        self.epoch += 1;
        let info = RingInfo {
            epoch: self.epoch,
            vnodes: self.vnodes,
            replication: self.replication,
            members: self.addrs(),
        };
        for node in self.nodes.iter().filter(|n| n.server.is_some()) {
            let mut client = Client::connect(&*node.addr).expect("ring install connect");
            let installed = client.install_ring(&info, &node.addr).expect("ring install");
            assert!(installed, "daemon {} rejected membership epoch {}", node.addr, info.epoch);
        }
    }
}

impl Drop for StressCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drives a schedule sequentially through one ring-aware [`ClusterClient`]
/// (deterministic order), retrying through busy frames and falling back to
/// a cold plan when a replan's prior is unknown cluster-wide. Panics on
/// any other error — stress traffic is all well-formed.
pub fn drive_cluster(seeds: &[String], ops: &[StressOp], retry: &RetryPolicy) -> Vec<StepOutcome> {
    let mut client = ClusterClient::connect(seeds).expect("cluster client connect");
    ops.iter().map(|&op| cluster_step(&mut client, op, retry)).collect()
}

fn cluster_step(client: &mut ClusterClient, op: StressOp, retry: &RetryPolicy) -> StepOutcome {
    for attempt in 0..retry.max_attempts.max(1) {
        let result = match op {
            StressOp::Hot(i) => {
                let req = hot_request(i);
                client.plan(&req.graph, &req.cluster, &req.options)
            }
            StressOp::OneOff(i) => {
                let req = one_off_request(i);
                client.plan(&req.graph, &req.cluster, &req.options)
            }
            StressOp::Replan(i) => {
                let req = hot_request(i);
                let delta = replan_delta(i);
                match client.replan(req.fingerprint(), &delta) {
                    Ok(reply) => Ok(reply.plan),
                    // No daemon holds the prior: cold fallback on the
                    // post-delta cluster, as with a single daemon.
                    Err(e) if e.kind == "unknown_fingerprint" => {
                        let cluster = delta.apply(&req.cluster).expect("chaos delta is valid");
                        client.plan(&req.graph, &cluster, &req.options)
                    }
                    Err(e) => Err(e),
                }
            }
        };
        match result {
            Ok(reply) => {
                return StepOutcome {
                    op,
                    source: reply.source.clone(),
                    bits: ReplyBits::of(&reply),
                }
            }
            Err(e) if e.is_busy() && attempt + 1 < retry.max_attempts => {
                std::thread::sleep(std::time::Duration::from_millis(
                    retry.delay_ms(attempt, e.retry_after_ms),
                ));
            }
            Err(e) => panic!("cluster {op:?}: {e}"),
        }
    }
    unreachable!("the loop returns or panics within max_attempts")
}

/// The canonical request line for a stress request (the service-level
/// entry benches and in-process tests feed to `handle_line`).
pub fn request_line(req: &StressRequest, id: u64) -> String {
    hap_codec::Value::obj(vec![
        ("op", hap_codec::Value::Str("plan".into())),
        ("id", hap_codec::Value::int(id)),
        ("graph", req.graph.encode()),
        ("cluster", req.cluster.encode()),
        ("options", req.options.encode()),
    ])
    .render()
}
