//! Elastic replanning: resolving a `replan` request against the daemon's
//! memory of prior requests.
//!
//! A replan names its prior plan by fingerprint and describes the cluster
//! change as a [`ClusterDelta`]. The cache stores only the *plan* under
//! that fingerprint (deliberately — entries must stay small), so the
//! daemon additionally remembers the request triple `(graph, cluster,
//! options)` of recently planned fingerprints in a bounded FIFO
//! [`ReplanIndex`]. A replan needs both halves: the triple to rebuild the
//! request on the post-delta cluster, and the cached plan to seed
//! synthesis warm and to diff against. Either half missing — never
//! planned, expired, or evicted — answers with a typed
//! `unknown_fingerprint` frame, and clients fall back to a cold `plan`.
//!
//! The index survives restarts: every persisted cache record embeds the
//! request triple as a `"req"` field ([`hap_codec::persist_line_with_req`])
//! and boot rebuilds the index from the log, verifying each recovered
//! triple actually fingerprints to its record's key before trusting it.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use hap_cluster::{ClusterDelta, ClusterSpec};
use hap_codec::{
    request_fingerprint_values, Decode, Encode, Value, WireError, UNKNOWN_FINGERPRINT_KIND,
};

use crate::cache::CachedPlan;
use crate::dispatch::Shared;

/// The remembered request behind a fingerprint.
pub(crate) struct RequestTriple {
    pub graph: Value,
    pub cluster: Value,
    pub options: Value,
}

impl RequestTriple {
    /// The triple in its wire/persist object form — a cache record's
    /// `"req"` field and a `replicate` frame's `"req"` field alike.
    pub(crate) fn encode_req(&self) -> Value {
        Value::obj(vec![
            ("graph", self.graph.clone()),
            ("cluster", self.cluster.clone()),
            ("options", self.options.clone()),
        ])
    }

    /// Decodes the object form back into a triple. Returns `None` when a
    /// field is missing — callers treat a malformed triple as absent.
    pub(crate) fn decode_req(v: &Value) -> Option<RequestTriple> {
        Some(RequestTriple {
            graph: v.get("graph")?.clone(),
            cluster: v.get("cluster")?.clone(),
            options: v.get("options")?.clone(),
        })
    }
}

/// A bounded FIFO map from request fingerprint to its request triple.
///
/// Insertion order is eviction order: replans target *recent* plans, and
/// FIFO keeps the structure O(1) without the cache's sharded-LRU weight.
pub(crate) struct ReplanIndex {
    cap: usize,
    map: HashMap<u64, Arc<RequestTriple>>,
    order: VecDeque<u64>,
}

impl ReplanIndex {
    pub fn new(cap: usize) -> Self {
        ReplanIndex { cap: cap.max(1), map: HashMap::new(), order: VecDeque::new() }
    }

    /// Remembers `fp → triple`, evicting the oldest entry at capacity.
    /// Re-recording a known fingerprint is a no-op (the triple is a pure
    /// function of the fingerprint).
    pub fn record(&mut self, fp: u64, triple: Arc<RequestTriple>) {
        if self.map.contains_key(&fp) {
            return;
        }
        if self.map.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        self.map.insert(fp, triple);
        self.order.push_back(fp);
    }

    pub fn get(&self, fp: u64) -> Option<Arc<RequestTriple>> {
        self.map.get(&fp).cloned()
    }

    /// True when the fingerprint is already recorded (lets callers skip
    /// building a triple on the hot path).
    pub fn contains(&self, fp: u64) -> bool {
        self.map.contains_key(&fp)
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.map.len()
    }
}

/// A replan resolved to a concrete planning request: the prior request's
/// graph and options, the post-delta cluster, the new fingerprint, and the
/// prior plan to seed synthesis with and diff against.
pub(crate) struct PreparedReplan {
    pub fp: u64,
    pub triple: Arc<RequestTriple>,
    pub prior: Arc<CachedPlan>,
}

/// Resolves a replan request: looks up the prior request and plan, applies
/// the delta, fingerprints the post-delta request, and records it in the
/// index so replans chain. Every failure is a typed [`WireError`].
pub(crate) fn prepare(
    shared: &Shared,
    prior_fp: u64,
    delta: &ClusterDelta,
) -> Result<PreparedReplan, WireError> {
    let prior_triple =
        crate::sync::lock_recover(&shared.replans).get(prior_fp).ok_or_else(|| {
            WireError::new(
                UNKNOWN_FINGERPRINT_KIND,
                format!(
                    "no request recorded for {}; plan it cold first",
                    hap_codec::render_fingerprint(prior_fp)
                ),
            )
        })?;
    let prior = shared.cache.get(prior_fp).ok_or_else(|| {
        WireError::new(
            UNKNOWN_FINGERPRINT_KIND,
            format!(
                "plan {} expired or was evicted; plan it cold first",
                hap_codec::render_fingerprint(prior_fp)
            ),
        )
    })?;
    let prior_cluster = ClusterSpec::decode(&prior_triple.cluster).map_err(WireError::from)?;
    let next_cluster = delta.apply(&prior_cluster).map_err(|e| WireError::from(&e))?;
    let triple = Arc::new(RequestTriple {
        graph: prior_triple.graph.clone(),
        cluster: next_cluster.encode(),
        options: prior_triple.options.clone(),
    });
    let fp = request_fingerprint_values(&triple.graph, &triple.cluster, &triple.options);
    crate::sync::lock_recover(&shared.replans).record(fp, triple.clone());
    Ok(PreparedReplan { fp, triple, prior })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triple(tag: u64) -> Arc<RequestTriple> {
        Arc::new(RequestTriple {
            graph: Value::int(tag),
            cluster: Value::int(tag),
            options: Value::int(tag),
        })
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut index = ReplanIndex::new(2);
        index.record(1, triple(1));
        index.record(2, triple(2));
        index.record(3, triple(3));
        assert_eq!(index.len(), 2);
        assert!(index.get(1).is_none());
        assert!(index.get(2).is_some());
        assert!(index.get(3).is_some());
    }

    #[test]
    fn re_recording_does_not_duplicate() {
        let mut index = ReplanIndex::new(2);
        index.record(1, triple(1));
        index.record(1, triple(1));
        index.record(2, triple(2));
        index.record(3, triple(3));
        // fp 1 was recorded once, so it is the FIFO victim exactly once.
        assert_eq!(index.len(), 2);
        assert!(index.get(1).is_none());
    }
}
