//! Cluster-mode peer plumbing: the daemon's view of the installed ring
//! and a small pool of connections + threads for talking to peers.
//!
//! A daemon in `hap-cluster` mode holds at most one [`Ring`] (the latest
//! installed membership epoch) plus the address it is known by on that
//! ring. Peer traffic — proxied misses and plan replication — runs on a
//! [`PeerPool`]: pooled line-protocol TCP connections per peer address,
//! driven by a few lazily-spawned job threads so the event-loop thread
//! never blocks on a peer's socket. Threads spawn on first use: a daemon
//! that never joins a ring keeps its exact single-daemon thread census.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use hap_codec::RingInfo;

use crate::ring::Ring;
use crate::sync::{lock_recover, wait_recover};

/// How long a peer connect may take before the proxy falls back to local
/// synthesis.
const PEER_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// How long one peer round trip may take. Generous: the owner may be
/// synthesizing the plan this very request asked for.
const PEER_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Idle pooled connections kept per peer address.
const MAX_IDLE_PER_PEER: usize = 4;

/// Upper bound on lazily-spawned peer job threads.
const MAX_PEER_THREADS: usize = 4;

/// The daemon's cluster membership: the latest installed ring and the
/// address this daemon occupies on it. `None` until a membership is
/// installed — the daemon then behaves exactly as a single daemon.
pub(crate) struct ClusterState {
    ring: Mutex<Option<(Arc<Ring>, String)>>,
    pub peers: PeerPool,
}

impl ClusterState {
    pub fn new() -> ClusterState {
        ClusterState { ring: Mutex::new(None), peers: PeerPool::new() }
    }

    /// The installed ring and this daemon's own ring address, if any.
    pub fn current(&self) -> Option<(Arc<Ring>, String)> {
        lock_recover(&self.ring).clone()
    }

    /// The installed membership epoch (0 = no ring).
    pub fn epoch(&self) -> u64 {
        lock_recover(&self.ring).as_ref().map(|(r, _)| r.epoch()).unwrap_or(0)
    }

    /// Installs `info` iff its epoch exceeds the current one (epochs
    /// totally order memberships; an equal or older record is a stale
    /// duplicate). Returns whether the record was installed.
    pub fn install(&self, info: RingInfo, self_addr: String) -> bool {
        let mut guard = lock_recover(&self.ring);
        let current = guard.as_ref().map(|(r, _)| r.epoch()).unwrap_or(0);
        if info.epoch <= current || info.is_empty() {
            return false;
        }
        *guard = Some((Arc::new(Ring::build(info)), self_addr));
        true
    }
}

/// One pooled line-protocol connection to a peer daemon.
struct PeerConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl PeerConn {
    fn connect(addr: &str) -> io::Result<PeerConn> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "peer address resolves to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&resolved, PEER_CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(PEER_READ_TIMEOUT))?;
        let writer = stream.try_clone()?;
        Ok(PeerConn { reader: BufReader::new(stream), writer })
    }

    /// Sends one request line and reads one response line.
    fn round_trip(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed the connection"));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

type PeerJob = Box<dyn FnOnce() + Send>;

struct JobState {
    queue: VecDeque<PeerJob>,
    threads: usize,
    idle: usize,
    stopping: bool,
}

struct JobQueue {
    state: Mutex<JobState>,
    cvar: Condvar,
}

/// Pooled peer connections plus the lazily-spawned threads that drive
/// them. Everything is best-effort: a failed peer round trip surfaces as
/// an `io::Error` and the caller falls back (local synthesis for proxies,
/// skip for replication).
pub(crate) struct PeerPool {
    conns: Mutex<HashMap<String, Vec<PeerConn>>>,
    jobs: Arc<JobQueue>,
}

impl PeerPool {
    pub fn new() -> PeerPool {
        PeerPool {
            conns: Mutex::new(HashMap::new()),
            jobs: Arc::new(JobQueue {
                state: Mutex::new(JobState {
                    queue: VecDeque::new(),
                    threads: 0,
                    idle: 0,
                    stopping: false,
                }),
                cvar: Condvar::new(),
            }),
        }
    }

    /// One request/response round trip with `addr`, reusing a pooled
    /// connection when one exists. A reused connection that fails (the
    /// peer restarted, the pooled socket went stale) is retried once on a
    /// fresh connection before the error surfaces.
    pub fn call(&self, addr: &str, line: &str) -> io::Result<String> {
        let pooled = lock_recover(&self.conns).get_mut(addr).and_then(Vec::pop);
        if let Some(mut conn) = pooled {
            if let Ok(response) = conn.round_trip(line) {
                self.check_in(addr, conn);
                return Ok(response);
            }
        }
        let mut conn = PeerConn::connect(addr)?;
        let response = conn.round_trip(line)?;
        self.check_in(addr, conn);
        Ok(response)
    }

    fn check_in(&self, addr: &str, conn: PeerConn) {
        let mut conns = lock_recover(&self.conns);
        let pool = conns.entry(addr.to_string()).or_default();
        if pool.len() < MAX_IDLE_PER_PEER {
            pool.push(conn);
        }
    }

    /// Runs `job` on a peer thread, spawning one (up to the cap) when none
    /// is idle. Jobs submitted after [`PeerPool::stop`] are dropped.
    pub fn spawn(&self, job: PeerJob) {
        let mut state = lock_recover(&self.jobs.state);
        if state.stopping {
            return;
        }
        state.queue.push_back(job);
        if state.idle == 0 && state.threads < MAX_PEER_THREADS {
            state.threads += 1;
            let jobs = Arc::clone(&self.jobs);
            let spawned = std::thread::Builder::new()
                .name("hap-peer".into())
                .spawn(move || worker_loop(&jobs));
            if spawned.is_err() {
                // Spawn failure: undo the census bump; queued jobs run on
                // whatever threads already exist (or never, if none do —
                // peer traffic is best-effort).
                state.threads -= 1;
            }
        }
        drop(state);
        self.jobs.cvar.notify_one();
    }

    /// Stops the job threads and drops pooled connections. Idempotent;
    /// called from `PlanService::stop`.
    pub fn stop(&self) {
        {
            let mut state = lock_recover(&self.jobs.state);
            state.stopping = true;
            state.queue.clear();
        }
        self.jobs.cvar.notify_all();
        lock_recover(&self.conns).clear();
    }
}

fn worker_loop(jobs: &JobQueue) {
    let mut state = lock_recover(&jobs.state);
    loop {
        if let Some(job) = state.queue.pop_front() {
            drop(state);
            // A panicking job must not take the thread (and its census
            // slot) down with it.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            state = lock_recover(&jobs.state);
            continue;
        }
        if state.stopping {
            state.threads -= 1;
            return;
        }
        state.idle += 1;
        state = wait_recover(&jobs.cvar, state);
        state.idle -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    #[test]
    fn pool_runs_jobs_and_stops_idempotently() {
        let pool = PeerPool::new();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            pool.spawn(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while ran.load(Ordering::SeqCst) < 8 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ran.load(Ordering::SeqCst), 8);
        pool.stop();
        pool.stop();
        // Post-stop jobs are dropped, not queued forever.
        pool.spawn(Box::new(|| panic!("must not run")));
    }

    #[test]
    fn cluster_state_installs_only_newer_epochs() {
        let state = ClusterState::new();
        assert!(state.current().is_none());
        let info = |epoch| RingInfo {
            epoch,
            vnodes: 8,
            replication: 2,
            members: vec!["a:1".into(), "b:2".into()],
        };
        assert!(state.install(info(2), "a:1".into()));
        assert_eq!(state.epoch(), 2);
        assert!(!state.install(info(2), "a:1".into()), "equal epoch is stale");
        assert!(!state.install(info(1), "a:1".into()), "older epoch is stale");
        assert!(!state.install(RingInfo::empty(8, 2), "a:1".into()), "empty ring never installs");
        assert!(state.install(info(3), "b:2".into()));
        let (ring, self_addr) = state.current().unwrap();
        assert_eq!(ring.epoch(), 3);
        assert_eq!(self_addr, "b:2");
    }
}
