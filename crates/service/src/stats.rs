//! The `stats` wire snapshot and the daemon's internal counters.

use std::sync::atomic::{AtomicU64, Ordering};

use hap_codec::{Decode, Encode, Value};

/// Counters exposed by the `stats` request. `in_flight`, `entries`, and
/// `open_connections` are gauges sampled at snapshot time; the rest are
/// monotonic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Cached plans currently held.
    pub entries: u64,
    /// Requests answered straight from the cache.
    pub hits: u64,
    /// Requests that found no cached plan.
    pub misses: u64,
    /// Requests that joined an in-flight synthesis instead of starting one.
    pub coalesced: u64,
    /// Syntheses actually executed.
    pub synthesized: u64,
    /// Cache evictions.
    pub evictions: u64,
    /// Misses that were seeded from a neighbor's cached plan.
    pub warm_seeded: u64,
    /// Requests that returned an error frame.
    pub errors: u64,
    /// Syntheses currently running or queued.
    pub in_flight: u64,
    /// Requests shed with a `busy` frame (queue-depth admission control).
    pub shed: u64,
    /// Synthesized plans the cache's admission gate declined to store.
    pub admission_rejected: u64,
    /// Cache entries reclaimed by TTL expiry.
    pub expired: u64,
    /// Successful `replan` requests (elastic replanning after a cluster
    /// delta), whatever source answered them.
    pub replanned: u64,
    /// Connections currently registered with the event loop.
    pub open_connections: u64,
    /// Most connections ever registered at once.
    pub peak_connections: u64,
    /// Largest partial request line buffered on any connection (bytes).
    pub read_buf_hwm: u64,
    /// Largest response backlog queued toward any connection (bytes).
    pub write_buf_hwm: u64,
    /// Connections closed by the idle-timeout sweep.
    pub idle_closed: u64,
    /// Failed persistence operations (appends, compactions, re-probes)
    /// since boot. Nonzero with `persistence_degraded` back at 0 means an
    /// outage happened and healed.
    pub persist_errors: u64,
    /// Gauge (0/1): 1 while the persistence log is degraded and the cache
    /// is memory-only (the daemon keeps serving; appends re-probe).
    pub persistence_degraded: u64,
    /// Synthesis jobs that panicked and were isolated (each one answered
    /// its leader and followers with a typed `internal` error frame).
    pub panics: u64,
    /// Request traces recorded since boot (all-time, not just the ones the
    /// trace ring still retains). Zero when telemetry is disabled.
    pub traces_recorded: u64,
    /// Latency samples recorded into the `metrics` histograms since boot.
    /// Zero when telemetry is disabled.
    pub metrics_samples: u64,
    /// Plan/replan misses forwarded to the fingerprint's ring owner
    /// (`hap-cluster` mode; the owner is the ring-wide single-flight
    /// leader).
    pub proxied: u64,
    /// Requests answered with a typed `not_owner` redirect because the
    /// client routed on a stale ring epoch.
    pub redirected: u64,
    /// Plans received from peers via the `replicate` verb.
    pub replicated_in: u64,
    /// Plans this daemon pushed to peer owners after synthesis.
    pub replicated_out: u64,
    /// Gauge: the installed ring's membership epoch (0 = no ring,
    /// single-daemon behavior).
    pub ring_epoch: u64,
}

impl StatsSnapshot {
    /// Every field as a `(wire key, value)` pair, in wire order — the one
    /// list `encode`, the Prometheus renderer, and `hap-client --assert`
    /// key validation all share, so a new counter cannot appear in one
    /// surface and be missing from another.
    pub fn fields(&self) -> [(&'static str, u64); 28] {
        [
            ("entries", self.entries),
            ("hits", self.hits),
            ("misses", self.misses),
            ("coalesced", self.coalesced),
            ("synthesized", self.synthesized),
            ("evictions", self.evictions),
            ("warm_seeded", self.warm_seeded),
            ("errors", self.errors),
            ("in_flight", self.in_flight),
            ("shed", self.shed),
            ("admission_rejected", self.admission_rejected),
            ("expired", self.expired),
            ("replanned", self.replanned),
            ("open_connections", self.open_connections),
            ("peak_connections", self.peak_connections),
            ("read_buf_hwm", self.read_buf_hwm),
            ("write_buf_hwm", self.write_buf_hwm),
            ("idle_closed", self.idle_closed),
            ("persist_errors", self.persist_errors),
            ("persistence_degraded", self.persistence_degraded),
            ("panics", self.panics),
            ("traces_recorded", self.traces_recorded),
            ("metrics_samples", self.metrics_samples),
            ("proxied", self.proxied),
            ("redirected", self.redirected),
            ("replicated_in", self.replicated_in),
            ("replicated_out", self.replicated_out),
            ("ring_epoch", self.ring_epoch),
        ]
    }
}

impl Encode for StatsSnapshot {
    fn encode(&self) -> Value {
        Value::obj(self.fields().into_iter().map(|(k, v)| (k, Value::int(v))).collect())
    }
}

impl Decode for StatsSnapshot {
    fn decode(v: &Value) -> Result<Self, hap_codec::CodecError> {
        // Keys gained after PR 4 (the overload counters), PR 6 (the
        // event-loop gauges), PR 8 (the durability/panic counters), PR 9
        // (the telemetry totals), and PR 10 (the cluster counters) decode
        // leniently: a stats frame from an older daemon simply reports
        // them as zero.
        let lenient = |key: &str| match v.get(key) {
            None => Ok(0),
            Some(x) => x.as_u64(),
        };
        Ok(StatsSnapshot {
            entries: v.field("entries")?.as_u64()?,
            hits: v.field("hits")?.as_u64()?,
            misses: v.field("misses")?.as_u64()?,
            coalesced: v.field("coalesced")?.as_u64()?,
            synthesized: v.field("synthesized")?.as_u64()?,
            evictions: v.field("evictions")?.as_u64()?,
            warm_seeded: v.field("warm_seeded")?.as_u64()?,
            errors: v.field("errors")?.as_u64()?,
            in_flight: v.field("in_flight")?.as_u64()?,
            shed: lenient("shed")?,
            admission_rejected: lenient("admission_rejected")?,
            expired: lenient("expired")?,
            replanned: lenient("replanned")?,
            open_connections: lenient("open_connections")?,
            peak_connections: lenient("peak_connections")?,
            read_buf_hwm: lenient("read_buf_hwm")?,
            write_buf_hwm: lenient("write_buf_hwm")?,
            idle_closed: lenient("idle_closed")?,
            persist_errors: lenient("persist_errors")?,
            persistence_degraded: lenient("persistence_degraded")?,
            panics: lenient("panics")?,
            traces_recorded: lenient("traces_recorded")?,
            metrics_samples: lenient("metrics_samples")?,
            proxied: lenient("proxied")?,
            redirected: lenient("redirected")?,
            replicated_in: lenient("replicated_in")?,
            replicated_out: lenient("replicated_out")?,
            ring_epoch: lenient("ring_epoch")?,
        })
    }
}

/// Monotonic request counters, bumped from whatever thread handles the
/// request (loop thread for inline answers, workers for deferred ones).
#[derive(Default)]
pub(crate) struct Counters {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub coalesced: AtomicU64,
    pub synthesized: AtomicU64,
    pub warm_seeded: AtomicU64,
    pub errors: AtomicU64,
    pub shed: AtomicU64,
    pub replanned: AtomicU64,
    /// Synthesis jobs caught panicking by dispatch's `catch_unwind`.
    pub panics: AtomicU64,
    /// Misses forwarded to their ring owner (`hap-cluster` mode).
    pub proxied: AtomicU64,
    /// Stale-epoch requests answered with a `not_owner` redirect.
    pub redirected: AtomicU64,
    /// Plans accepted from peers via the `replicate` verb.
    pub replicated_in: AtomicU64,
    /// Plans pushed to peer owners after local synthesis.
    pub replicated_out: AtomicU64,
}

/// Event-loop gauges, owned by the service so `stats` works both with and
/// without a TCP transport (an in-process service reports zeros).
#[derive(Default)]
pub(crate) struct NetGauges {
    pub open_connections: AtomicU64,
    pub peak_connections: AtomicU64,
    pub read_buf_hwm: AtomicU64,
    pub write_buf_hwm: AtomicU64,
    pub idle_closed: AtomicU64,
}

impl NetGauges {
    /// Raises a high-water-mark gauge to at least `value`.
    pub fn raise(gauge: &AtomicU64, value: u64) {
        gauge.fetch_max(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_is_lenient_for_frames_from_older_daemons() {
        // A PR-5-era frame: overload counters present, no event-loop
        // gauges.
        let old = "{\"entries\":1,\"hits\":2,\"misses\":3,\"coalesced\":4,\"synthesized\":5,\
                   \"evictions\":6,\"warm_seeded\":7,\"errors\":8,\"in_flight\":9,\"shed\":10,\
                   \"admission_rejected\":11,\"expired\":12}";
        let snap = StatsSnapshot::decode(&hap_codec::parse(old).unwrap()).unwrap();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.shed, 10);
        assert_eq!(snap.replanned, 0);
        assert_eq!(snap.open_connections, 0);
        assert_eq!(snap.peak_connections, 0);
        assert_eq!(snap.idle_closed, 0);
        assert_eq!(snap.persist_errors, 0);
        assert_eq!(snap.persistence_degraded, 0);
        assert_eq!(snap.panics, 0);
        assert_eq!(snap.traces_recorded, 0);
        assert_eq!(snap.metrics_samples, 0);
        assert_eq!(snap.proxied, 0);
        assert_eq!(snap.redirected, 0);
        assert_eq!(snap.ring_epoch, 0);
    }

    #[test]
    fn encode_decode_round_trips_every_field() {
        let snap = StatsSnapshot {
            entries: 1,
            hits: 2,
            misses: 3,
            coalesced: 4,
            synthesized: 5,
            evictions: 6,
            warm_seeded: 7,
            errors: 8,
            in_flight: 9,
            shed: 10,
            admission_rejected: 11,
            expired: 12,
            replanned: 18,
            open_connections: 13,
            peak_connections: 14,
            read_buf_hwm: 15,
            write_buf_hwm: 16,
            idle_closed: 17,
            persist_errors: 19,
            persistence_degraded: 1,
            panics: 20,
            traces_recorded: 21,
            metrics_samples: 22,
            proxied: 23,
            redirected: 24,
            replicated_in: 25,
            replicated_out: 26,
            ring_epoch: 27,
        };
        let back = StatsSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back, snap);
    }
}
