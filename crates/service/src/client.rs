//! A blocking line-protocol client for the planning daemon.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use hap::HapOptions;
use hap_cluster::ClusterSpec;
use hap_codec::{parse, parse_fingerprint, Decode, Encode, Value, WireError};
use hap_graph::Graph;
use hap_synthesis::{DistProgram, ShardingRatios};

use crate::server::StatsSnapshot;

/// A plan returned over the wire.
#[derive(Clone, Debug)]
pub struct PlanReply {
    /// The request's content fingerprint (the cache key).
    pub fingerprint: u64,
    /// `cache`, `synthesized`, or `coalesced`.
    pub source: String,
    /// The synthesized program.
    pub program: DistProgram,
    /// Per-segment sharding ratios.
    pub ratios: ShardingRatios,
    /// Cost-model estimate of the per-iteration time, bit-preserved.
    pub estimated_time: f64,
    /// Alternating-optimization rounds the synthesis performed.
    pub rounds: usize,
}

/// One connection to a `hap-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to the daemon.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, next_id: 1 })
    }

    fn round_trip(&mut self, mut fields: Vec<(&str, Value)>) -> Result<Value, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        fields.insert(1, ("id", Value::int(id)));
        let frame = Value::obj(fields).render();
        let io_err = |e: std::io::Error| WireError::new("io", e.to_string());
        self.writer.write_all(frame.as_bytes()).map_err(io_err)?;
        self.writer.write_all(b"\n").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(io_err)?;
        if n == 0 {
            return Err(WireError::new("io", "server closed the connection"));
        }
        let v = parse(line.trim_end()).map_err(WireError::from)?;
        let ok = v.field("ok").and_then(|x| x.as_bool()).map_err(WireError::from)?;
        if !ok {
            let err = v.field("error").map_err(WireError::from)?;
            let decoded = WireError::decode(err).map_err(WireError::from)?;
            return Err(decoded);
        }
        let got = v.field("id").and_then(|x| x.as_u64()).map_err(WireError::from)?;
        if got != id {
            return Err(WireError::new("protocol", format!("response id {got}, expected {id}")));
        }
        Ok(v)
    }

    /// Requests a plan for `(graph, cluster, options)`.
    pub fn plan(
        &mut self,
        graph: &Graph,
        cluster: &ClusterSpec,
        options: &HapOptions,
    ) -> Result<PlanReply, WireError> {
        let v = self.round_trip(vec![
            ("op", Value::Str("plan".into())),
            ("graph", graph.encode()),
            ("cluster", cluster.encode()),
            ("options", options.encode()),
        ])?;
        let fingerprint = parse_fingerprint(
            v.field("fingerprint").and_then(|x| x.as_str()).map_err(WireError::from)?,
        )
        .map_err(WireError::from)?;
        let source =
            v.field("source").and_then(|x| x.as_str()).map_err(WireError::from)?.to_string();
        let plan = v.field("plan").map_err(WireError::from)?;
        Ok(PlanReply {
            fingerprint,
            source,
            program: DistProgram::decode(plan.field("program").map_err(WireError::from)?)
                .map_err(WireError::from)?,
            ratios: ShardingRatios::decode(plan.field("ratios").map_err(WireError::from)?)
                .map_err(WireError::from)?,
            estimated_time: plan
                .field("estimated_time")
                .and_then(|x| x.as_f64())
                .map_err(WireError::from)?,
            rounds: plan.field("rounds").and_then(|x| x.as_usize()).map_err(WireError::from)?,
        })
    }

    /// Fetches the daemon's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, WireError> {
        let v = self.round_trip(vec![("op", Value::Str("stats".into()))])?;
        StatsSnapshot::decode(v.field("stats").map_err(WireError::from)?).map_err(WireError::from)
    }

    /// Asks the daemon to shut down (acknowledged before it stops).
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        self.round_trip(vec![("op", Value::Str("shutdown".into()))]).map(|_| ())
    }
}
