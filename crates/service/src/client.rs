//! A blocking line-protocol client for the planning daemon, plus the
//! ring-aware [`ClusterClient`] that routes requests across a cluster of
//! daemons by fingerprint ownership.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use hap::HapOptions;
use hap_cluster::{ClusterDelta, ClusterSpec};
use hap_codec::{
    is_stream_frame, parse, parse_fingerprint, render_fingerprint, request_fingerprint_values,
    Decode, Encode, PlanDiff, RingInfo, StreamDecoder, StreamEvent, Value, WireError,
};
use hap_graph::Graph;
use hap_synthesis::{DistProgram, ShardingRatios};

use crate::ring::Ring;
use crate::stats::StatsSnapshot;
use crate::telemetry::{decode_trace, MetricsSnapshot};
use hap_telemetry::RequestTrace;

/// A plan returned over the wire.
#[derive(Clone, Debug)]
pub struct PlanReply {
    /// The request's content fingerprint (the cache key).
    pub fingerprint: u64,
    /// `cache`, `synthesized`, or `coalesced`.
    pub source: String,
    /// The synthesized program.
    pub program: DistProgram,
    /// Per-segment sharding ratios.
    pub ratios: ShardingRatios,
    /// Cost-model estimate of the per-iteration time, bit-preserved.
    pub estimated_time: f64,
    /// Alternating-optimization rounds the synthesis performed.
    pub rounds: usize,
}

/// A replanned plan: the post-delta plan plus the daemon's diff against
/// the prior plan.
#[derive(Clone, Debug)]
pub struct ReplanReply {
    /// The plan for the post-delta cluster (bit-identical to what cold
    /// synthesis on that cluster would return).
    pub plan: PlanReply,
    /// What changed relative to the prior plan.
    pub diff: PlanDiff,
}

/// How [`Client::plan_with_retry`] behaves when the daemon sheds load.
///
/// On a `busy` frame the client sleeps and retries: the delay starts at
/// the frame's `retry_after_ms` hint when present (the daemon knows its
/// backlog) or `base_delay_ms` otherwise, doubles per consecutive busy
/// reply (exponential backoff), and is capped at `max_delay_ms`.
///
/// Each delay is additionally *jittered* by a deterministic ±50% factor
/// derived from `jitter_seed` and the attempt number. Without jitter,
/// every client shed by the same busy wave computes the same schedule and
/// re-stampedes the queue in lockstep; distinct seeds decorrelate the
/// retry times while keeping any single client fully reproducible. The
/// daemon's `retry_after_ms` hint is a *floor*: jitter and the cap never
/// push a delay below it.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts before giving up and returning the busy error.
    pub max_attempts: u32,
    /// First-retry delay when the daemon sent no hint.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay (raised to the daemon's hint when
    /// the hint exceeds it).
    pub max_delay_ms: u64,
    /// Seed decorrelating this client's retry schedule from other
    /// clients'. Same seed ⇒ same schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 8, base_delay_ms: 10, max_delay_ms: 2_000, jitter_seed: 0 }
    }
}

/// SplitMix64: a tiny, well-mixed hash for the jitter stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based): the hint (or
    /// the base) scaled by `2^attempt`, jittered to `[0.5x, 1.5x)` by a
    /// deterministic function of `(jitter_seed, attempt)`, capped at
    /// `max_delay_ms`, and floored at the daemon's hint.
    pub fn delay_ms(&self, attempt: u32, hint_ms: Option<u64>) -> u64 {
        let base = hint_ms.unwrap_or(self.base_delay_ms).max(1);
        let exponential = base.saturating_mul(1u64 << attempt.min(20));
        // Factor in [0.5, 1.5): 53 mixed bits → [0,1), shifted down 0.5.
        let mixed = splitmix64(self.jitter_seed ^ ((attempt as u64) << 32));
        let unit = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = ((exponential as f64) * (0.5 + unit)).round() as u64;
        // The hint is a floor even over the cap: the daemon said "not
        // before then", and retrying earlier is a wasted round trip.
        let floor = hint_ms.unwrap_or(0);
        jittered.clamp(floor, self.max_delay_ms.max(floor))
    }
}

/// One connection to a `hap-serve` daemon.
pub struct Client {
    /// The daemon's resolved address, kept so the retrying request paths
    /// can reconnect after a dropped connection.
    addr: std::net::SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Busy frames absorbed by `plan_with_retry` so far.
    busy_retries: u64,
    /// Connection drops `plan_with_retry`/`replan_with_retry` have
    /// reconnected through so far.
    io_retries: u64,
    /// Stream chunk frames reassembled so far.
    stream_chunks: u64,
    /// The membership epoch stamped onto plan/replan requests (`None` =
    /// unstamped). A stamp tells the daemon "I routed with this ring":
    /// at a different epoch than the daemon's own, the daemon answers
    /// with a `not_owner` redirect instead of proxying.
    ring_epoch: Option<u64>,
}

impl Client {
    /// Connects to the daemon.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?;
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            addr,
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
            busy_retries: 0,
            io_retries: 0,
            stream_chunks: 0,
            ring_epoch: None,
        })
    }

    /// Sets (or clears) the membership epoch stamped onto plan/replan
    /// requests. Used by [`ClusterClient`]; plain single-daemon clients
    /// leave requests unstamped.
    pub fn set_ring_epoch(&mut self, epoch: Option<u64>) {
        self.ring_epoch = epoch;
    }

    /// Replaces a dead connection with a fresh one to the same daemon.
    /// Request ids keep counting up (the id only has to be unique per
    /// request on its connection).
    fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        Ok(())
    }

    /// Busy frames this connection has retried through (observability for
    /// tests and the CLI).
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// Connection drops the retrying request paths have reconnected
    /// through (observability: proves a retry actually resent over a new
    /// connection).
    pub fn io_retries(&self) -> u64 {
        self.io_retries
    }

    /// Stream chunk frames this connection has reassembled (observability:
    /// proves streamed responses actually arrived chunked).
    pub fn stream_chunks(&self) -> u64 {
        self.stream_chunks
    }

    fn read_frame(&mut self) -> Result<Value, WireError> {
        let io_err = |e: std::io::Error| WireError::new("io", e.to_string());
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(io_err)?;
        if n == 0 {
            return Err(WireError::new("io", "server closed the connection"));
        }
        if !line.ends_with('\n') {
            // `read_line` hit EOF mid-line: the daemon (or the network)
            // dropped the connection partway through a response. That is a
            // transport failure, not a malformed frame — surfacing it as a
            // parse error would make it look permanent to retry logic.
            return Err(WireError::new("io", "connection closed mid-response"));
        }
        parse(line.trim_end()).map_err(WireError::from)
    }

    fn round_trip(&mut self, mut fields: Vec<(&str, Value)>) -> Result<Value, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        fields.insert(1, ("id", Value::int(id)));
        let frame = Value::obj(fields).render();
        let io_err = |e: std::io::Error| WireError::new("io", e.to_string());
        self.writer.write_all(frame.as_bytes()).map_err(io_err)?;
        self.writer.write_all(b"\n").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut v = self.read_frame()?;
        // A streaming response arrives as chunk frames terminated by a
        // `done` frame; the reassembled payload is the canonical response
        // line. Error frames are never streamed, so a plain frame here is
        // handled identically whether or not streaming was requested.
        if is_stream_frame(&v) {
            let mut decoder = StreamDecoder::new(id);
            loop {
                match decoder.feed(&v).map_err(WireError::from)? {
                    StreamEvent::Chunk => {
                        self.stream_chunks += 1;
                        v = self.read_frame()?;
                    }
                    StreamEvent::Done(payload) => {
                        v = parse(&payload).map_err(WireError::from)?;
                        break;
                    }
                }
            }
        }
        let ok = v.field("ok").and_then(|x| x.as_bool()).map_err(WireError::from)?;
        if !ok {
            let err = v.field("error").map_err(WireError::from)?;
            let decoded = WireError::decode(err).map_err(WireError::from)?;
            return Err(decoded);
        }
        let got = v.field("id").and_then(|x| x.as_u64()).map_err(WireError::from)?;
        if got != id {
            return Err(WireError::new("protocol", format!("response id {got}, expected {id}")));
        }
        Ok(v)
    }

    /// Requests a plan for `(graph, cluster, options)`.
    pub fn plan(
        &mut self,
        graph: &Graph,
        cluster: &ClusterSpec,
        options: &HapOptions,
    ) -> Result<PlanReply, WireError> {
        self.plan_with_ttl(graph, cluster, options, None)
    }

    /// [`Client::plan`] with a cache TTL request: the daemon expires the
    /// synthesized plan `ttl_ms` milliseconds after caching it.
    pub fn plan_with_ttl(
        &mut self,
        graph: &Graph,
        cluster: &ClusterSpec,
        options: &HapOptions,
        ttl_ms: Option<u64>,
    ) -> Result<PlanReply, WireError> {
        self.plan_opts(graph, cluster, options, ttl_ms, false)
    }

    /// [`Client::plan`] over the chunked streaming transport: the request
    /// advertises `"stream": true` and the daemon sends the plan response
    /// as chunk frames, reassembled here. The reassembled reply is
    /// byte-identical to the unstreamed response — streaming only changes
    /// the framing, never the payload.
    pub fn plan_streamed(
        &mut self,
        graph: &Graph,
        cluster: &ClusterSpec,
        options: &HapOptions,
    ) -> Result<PlanReply, WireError> {
        self.plan_opts(graph, cluster, options, None, true)
    }

    /// The general plan request: optional cache TTL, optional streaming.
    pub fn plan_opts(
        &mut self,
        graph: &Graph,
        cluster: &ClusterSpec,
        options: &HapOptions,
        ttl_ms: Option<u64>,
        stream: bool,
    ) -> Result<PlanReply, WireError> {
        let mut fields = vec![
            ("op", Value::Str("plan".into())),
            ("graph", graph.encode()),
            ("cluster", cluster.encode()),
            ("options", options.encode()),
        ];
        if let Some(ms) = ttl_ms {
            // Fail cleanly instead of hitting the codec's exact-integer
            // assert (the daemon would reject it anyway).
            if ms > crate::config::MAX_TTL_MS {
                return Err(WireError::new(
                    "decode",
                    format!("ttl_ms {ms} exceeds the maximum {}", crate::config::MAX_TTL_MS),
                ));
            }
            fields.push(("ttl_ms", Value::int(ms)));
        }
        if stream {
            fields.push(("stream", Value::Bool(true)));
        }
        if let Some(epoch) = self.ring_epoch {
            fields.push(("epoch", Value::int(epoch)));
        }
        let v = self.round_trip(fields)?;
        decode_plan_reply(&v)
    }

    /// Re-plans a previously planned request after a cluster change: the
    /// daemon applies `delta` to the prior request's cluster, seeds the
    /// synthesis with the prior plan, and returns the post-delta plan plus
    /// a diff. A typed `unknown_fingerprint` error means the daemon no
    /// longer holds the prior (expired, evicted, or restarted) — fall back
    /// to [`Client::plan`].
    pub fn replan(&mut self, prior: u64, delta: &ClusterDelta) -> Result<ReplanReply, WireError> {
        self.replan_opts(prior, delta, None, false)
    }

    /// The general replan request: optional cache TTL, optional streaming.
    pub fn replan_opts(
        &mut self,
        prior: u64,
        delta: &ClusterDelta,
        ttl_ms: Option<u64>,
        stream: bool,
    ) -> Result<ReplanReply, WireError> {
        let mut fields = vec![
            ("op", Value::Str("replan".into())),
            ("prior", Value::Str(render_fingerprint(prior))),
            ("delta", delta.encode()),
        ];
        if let Some(ms) = ttl_ms {
            if ms > crate::config::MAX_TTL_MS {
                return Err(WireError::new(
                    "decode",
                    format!("ttl_ms {ms} exceeds the maximum {}", crate::config::MAX_TTL_MS),
                ));
            }
            fields.push(("ttl_ms", Value::int(ms)));
        }
        if stream {
            fields.push(("stream", Value::Bool(true)));
        }
        if let Some(epoch) = self.ring_epoch {
            fields.push(("epoch", Value::int(epoch)));
        }
        let v = self.round_trip(fields)?;
        let plan = decode_plan_reply(&v)?;
        let diff = PlanDiff::decode(v.field("replan").map_err(WireError::from)?)
            .map_err(WireError::from)?;
        Ok(ReplanReply { plan, diff })
    }

    /// [`Client::replan`] that rides out daemon overload and connection
    /// drops exactly like [`Client::plan_with_retry`].
    pub fn replan_with_retry(
        &mut self,
        prior: u64,
        delta: &ClusterDelta,
        ttl_ms: Option<u64>,
        policy: &RetryPolicy,
    ) -> Result<ReplanReply, WireError> {
        let mut attempt = 0u32;
        loop {
            match self.replan_opts(prior, delta, ttl_ms, false) {
                Err(e) if e.is_busy() && attempt + 1 < policy.max_attempts => {
                    let delay = policy.delay_ms(attempt, e.retry_after_ms);
                    self.busy_retries += 1;
                    attempt += 1;
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
                Err(e) if e.kind == "io" && attempt + 1 < policy.max_attempts => {
                    self.retry_io(&e, &mut attempt, policy)?;
                }
                other => return other,
            }
        }
    }

    /// Shared connection-drop recovery for the retrying request paths:
    /// reconnect (with backoff between failed reconnects) and let the
    /// caller resend. Safe because plan/replan are pure functions of the
    /// request — a resend either hits the cache (the daemon finished the
    /// first attempt after the drop) or synthesizes the identical plan.
    fn retry_io(
        &mut self,
        err: &WireError,
        attempt: &mut u32,
        policy: &RetryPolicy,
    ) -> Result<(), WireError> {
        self.io_retries += 1;
        let delay = policy.delay_ms(*attempt, None);
        *attempt += 1;
        std::thread::sleep(std::time::Duration::from_millis(delay));
        self.reconnect()
            .map_err(|re| WireError::new("io", format!("{}; reconnect failed: {re}", err.message)))
    }

    /// [`Client::plan`] that rides out daemon overload and connection
    /// drops: `busy` frames are retried with exponential backoff honoring
    /// the daemon's `retry_after_ms` hint (see [`RetryPolicy`]), and a
    /// connection reset or EOF mid-response reconnects and resends (plans
    /// are pure and idempotent, so a resend is always safe — at worst it
    /// becomes a cache hit). Any other error — and busy or I/O failures
    /// persisting past `max_attempts` — is returned as-is.
    pub fn plan_with_retry(
        &mut self,
        graph: &Graph,
        cluster: &ClusterSpec,
        options: &HapOptions,
        ttl_ms: Option<u64>,
        policy: &RetryPolicy,
    ) -> Result<PlanReply, WireError> {
        self.plan_with_retry_opts(graph, cluster, options, ttl_ms, false, policy)
    }

    /// [`Client::plan_with_retry`] with an optional streaming transport
    /// (busy frames are never streamed, so retry handling is unchanged).
    pub fn plan_with_retry_opts(
        &mut self,
        graph: &Graph,
        cluster: &ClusterSpec,
        options: &HapOptions,
        ttl_ms: Option<u64>,
        stream: bool,
        policy: &RetryPolicy,
    ) -> Result<PlanReply, WireError> {
        let mut attempt = 0u32;
        loop {
            match self.plan_opts(graph, cluster, options, ttl_ms, stream) {
                Err(e) if e.is_busy() && attempt + 1 < policy.max_attempts => {
                    let delay = policy.delay_ms(attempt, e.retry_after_ms);
                    self.busy_retries += 1;
                    attempt += 1;
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
                Err(e) if e.kind == "io" && attempt + 1 < policy.max_attempts => {
                    self.retry_io(&e, &mut attempt, policy)?;
                }
                other => return other,
            }
        }
    }

    /// Fetches the daemon's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, WireError> {
        self.stats_with_raw().map(|(snapshot, _)| snapshot)
    }

    /// [`Client::stats`] plus the raw `stats` object from the wire.
    /// [`StatsSnapshot::decode`] is deliberately lenient — a key a daemon
    /// predates reads as 0 — so callers asserting on specific keys (the
    /// CLI's `--assert`) consult the raw frame to distinguish "absent"
    /// from "zero".
    pub fn stats_with_raw(&mut self) -> Result<(StatsSnapshot, Value), WireError> {
        let v = self.round_trip(vec![("op", Value::Str("stats".into()))])?;
        let raw = v.field("stats").map_err(WireError::from)?.clone();
        let snapshot = StatsSnapshot::decode(&raw).map_err(WireError::from)?;
        Ok((snapshot, raw))
    }

    /// Fetches the daemon's ring view: the membership record (empty at
    /// epoch 0 when none is installed), the address the daemon occupies
    /// on it, and `false` for `installed` (nothing was sent to install).
    pub fn ring(&mut self) -> Result<(RingInfo, String, bool), WireError> {
        let v = self.round_trip(vec![("op", Value::Str("ring".into()))])?;
        decode_ring_reply(&v)
    }

    /// Installs a membership record on the daemon, telling it which ring
    /// address is its own. Returns whether the daemon adopted the record
    /// (only a strictly newer epoch replaces the current ring).
    pub fn install_ring(&mut self, info: &RingInfo, self_addr: &str) -> Result<bool, WireError> {
        let v = self.round_trip(vec![
            ("op", Value::Str("ring".into())),
            ("ring", info.encode()),
            ("self", Value::Str(self_addr.into())),
        ])?;
        decode_ring_reply(&v).map(|(_, _, installed)| installed)
    }

    /// Fetches the daemon's latency histograms: one series of
    /// `count/p50/p90/p99/max/sum` per verb × outcome. Empty when the
    /// daemon has telemetry disabled (or predates the `metrics` verb —
    /// decode is lenient).
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, WireError> {
        let v = self.round_trip(vec![("op", Value::Str("metrics".into()))])?;
        MetricsSnapshot::decode(v.field("metrics").map_err(WireError::from)?)
            .map_err(WireError::from)
    }

    /// Fetches up to `n` recent completed request traces, newest first,
    /// keeping only requests that took at least `min_ms` (0 = all).
    pub fn traces(&mut self, n: usize, min_ms: u64) -> Result<Vec<RequestTrace>, WireError> {
        let v = self.round_trip(vec![
            ("op", Value::Str("trace".into())),
            ("n", Value::int(n as u64)),
            ("min_ms", Value::int(min_ms)),
        ])?;
        let Value::Arr(items) = v.field("traces").map_err(WireError::from)? else {
            return Err(WireError::new("decode", "`traces` is not an array"));
        };
        items.iter().map(|t| decode_trace(t).map_err(WireError::from)).collect()
    }

    /// Asks the daemon to shut down (acknowledged before it stops).
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        self.round_trip(vec![("op", Value::Str("shutdown".into()))]).map(|_| ())
    }
}

/// Decodes a `ring` response: `(membership, daemon's own ring address,
/// whether an install was adopted)`.
fn decode_ring_reply(v: &Value) -> Result<(RingInfo, String, bool), WireError> {
    let info =
        RingInfo::decode(v.field("ring").map_err(WireError::from)?).map_err(WireError::from)?;
    let self_addr = v.field("self").and_then(|x| x.as_str()).map_err(WireError::from)?.to_string();
    let installed = v.field("installed").and_then(|x| x.as_bool()).map_err(WireError::from)?;
    Ok((info, self_addr, installed))
}

/// How many routing attempts (redirect follows + failovers) a
/// [`ClusterClient`] request makes before surfacing the last error.
const MAX_ROUTE_ATTEMPTS: usize = 4;

/// A ring-aware client for a cluster of planning daemons.
///
/// Routes each request to the fingerprint's ring owner locally (the same
/// consistent hash the daemons use), stamping the membership epoch it
/// routed with. A daemon whose ring view disagrees answers with a typed
/// `not_owner` redirect carrying the owner it believes in — the client
/// follows the redirect, refreshes its membership from the new daemon,
/// and re-sends, bounded by [`MAX_ROUTE_ATTEMPTS`]. A dead daemon fails
/// over to the fingerprint's next replica owner. With no ring installed
/// anywhere the client degrades to seed-list routing, which a
/// single-daemon deployment makes exact.
pub struct ClusterClient {
    /// Daemon addresses given at connect time — membership bootstrap and
    /// the routing fallback when no ring is installed.
    seeds: Vec<String>,
    /// The latest membership this client has learned, as a built ring.
    ring: Option<Ring>,
    /// One pooled connection per daemon address.
    conns: HashMap<String, Client>,
    /// `not_owner` redirects followed (observability for tests).
    redirects_followed: u64,
    /// Dead-daemon failovers performed (observability for tests).
    failovers: u64,
}

impl ClusterClient {
    /// Connects to a cluster by its seed addresses and learns the current
    /// membership from whichever seeds answer. Unreachable seeds are
    /// tolerated — they may be the daemons a later ring epoch removed.
    pub fn connect(seeds: &[String]) -> Result<ClusterClient, WireError> {
        if seeds.is_empty() {
            return Err(WireError::new("decode", "cluster client needs at least one seed address"));
        }
        let mut client = ClusterClient {
            seeds: seeds.to_vec(),
            ring: None,
            conns: HashMap::new(),
            redirects_followed: 0,
            failovers: 0,
        };
        client.refresh_ring();
        Ok(client)
    }

    /// Re-learns the membership from every reachable seed, keeping the
    /// highest epoch seen. Best-effort: with nothing reachable the
    /// current view (possibly none) stands.
    pub fn refresh_ring(&mut self) {
        for addr in self.seeds.clone() {
            self.refresh_ring_from(&addr);
        }
    }

    /// Asks one daemon for its membership and adopts it if newer.
    fn refresh_ring_from(&mut self, addr: &str) {
        let fetched = match self.client_for(addr) {
            Ok(client) => client.ring(),
            Err(_) => return,
        };
        match fetched {
            Ok((info, _, _)) => self.adopt(info),
            // A failed ring query means a dead pooled connection as often
            // as a dead daemon; drop it so the next use reconnects.
            Err(_) => {
                self.conns.remove(addr);
            }
        }
    }

    fn adopt(&mut self, info: RingInfo) {
        if info.is_empty() {
            return;
        }
        if self.ring.as_ref().is_none_or(|r| info.epoch > r.epoch()) {
            self.ring = Some(Ring::build(info));
        }
    }

    /// The membership epoch this client routes with (0 = none learned).
    pub fn ring_epoch(&self) -> u64 {
        self.ring.as_ref().map_or(0, Ring::epoch)
    }

    /// `not_owner` redirects this client has followed.
    pub fn redirects_followed(&self) -> u64 {
        self.redirects_followed
    }

    /// Dead-daemon failovers this client has performed.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    fn client_for(&mut self, addr: &str) -> Result<&mut Client, WireError> {
        use std::collections::hash_map::Entry;
        match self.conns.entry(addr.to_string()) {
            Entry::Occupied(entry) => Ok(entry.into_mut()),
            Entry::Vacant(entry) => {
                let client =
                    Client::connect(addr).map_err(|e| WireError::new("io", e.to_string()))?;
                Ok(entry.insert(client))
            }
        }
    }

    /// Where a fingerprint's request goes: its ring owner, else (no ring)
    /// a deterministic seed.
    fn route(&self, fp: u64) -> String {
        if let Some(ring) = &self.ring {
            if let Some(primary) = ring.primary(fp) {
                return primary.to_string();
            }
        }
        self.seeds[(fp % self.seeds.len() as u64) as usize].clone()
    }

    /// The next address to try after `dead` failed: the fingerprint's
    /// next replica owner, else the next seed.
    fn failover_target(&self, dead: &str, fp: u64) -> String {
        if let Some(ring) = &self.ring {
            if let Some(next) = ring.owners(fp).into_iter().find(|o| *o != dead) {
                return next.to_string();
            }
        }
        let next =
            self.seeds.iter().position(|s| s == dead).map_or(0, |i| (i + 1) % self.seeds.len());
        self.seeds[next].clone()
    }

    /// Routes one already-fingerprinted request, following redirects and
    /// failing over dead daemons, bounded by [`MAX_ROUTE_ATTEMPTS`].
    fn route_request<T>(
        &mut self,
        fp: u64,
        mut send: impl FnMut(&mut Client) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        let mut target = self.route(fp);
        let mut last_err = WireError::new("io", "cluster routing made no attempts");
        for _ in 0..MAX_ROUTE_ATTEMPTS {
            let epoch = self.ring_epoch();
            let client = match self.client_for(&target) {
                Ok(client) => client,
                Err(err) => {
                    self.failovers += 1;
                    last_err = err;
                    target = self.failover_target(&target, fp);
                    continue;
                }
            };
            client.set_ring_epoch((epoch > 0).then_some(epoch));
            match send(client) {
                Err(err) if err.is_not_owner() => {
                    self.redirects_followed += 1;
                    // The daemon told us who owns the fingerprint on its
                    // (different-epoch) ring: go there, and learn that
                    // ring so later requests route correctly first try.
                    if let Some(owner) = err.owner.clone() {
                        target = owner;
                        self.refresh_ring_from(&target);
                    } else {
                        self.refresh_ring();
                        target = self.route(fp);
                    }
                    last_err = err;
                }
                Err(err) if err.kind == "io" => {
                    self.conns.remove(&target);
                    self.failovers += 1;
                    last_err = err;
                    // The daemon may be dead for good: learn the epoch that
                    // removed it (survivors hold it) so later requests stop
                    // routing here, then fail over for this one.
                    self.refresh_ring();
                    let rerouted = self.route(fp);
                    target = if rerouted == target {
                        self.failover_target(&target, fp)
                    } else {
                        rerouted
                    };
                }
                other => return other,
            }
        }
        Err(last_err)
    }

    /// Requests a plan, routed to the request fingerprint's ring owner.
    pub fn plan(
        &mut self,
        graph: &Graph,
        cluster: &ClusterSpec,
        options: &HapOptions,
    ) -> Result<PlanReply, WireError> {
        let fp = request_fingerprint_values(&graph.encode(), &cluster.encode(), &options.encode());
        self.route_request(fp, |client| client.plan(graph, cluster, options))
    }

    /// Replans after a cluster change, routed to the *prior* fingerprint's
    /// ring owner (which holds the prior request and plan). A typed
    /// `unknown_fingerprint` error passes through — fall back to
    /// [`ClusterClient::plan`] exactly as with a single daemon.
    pub fn replan(&mut self, prior: u64, delta: &ClusterDelta) -> Result<ReplanReply, WireError> {
        self.route_request(prior, |client| client.replan(prior, delta))
    }

    /// Fetches one daemon's counters (cluster stats are per-daemon).
    pub fn stats_of(&mut self, addr: &str) -> Result<StatsSnapshot, WireError> {
        self.client_for(addr)?.stats()
    }
}

/// Decodes the shared plan-response shape (`plan` and `replan` frames).
fn decode_plan_reply(v: &Value) -> Result<PlanReply, WireError> {
    let fingerprint = parse_fingerprint(
        v.field("fingerprint").and_then(|x| x.as_str()).map_err(WireError::from)?,
    )
    .map_err(WireError::from)?;
    let source = v.field("source").and_then(|x| x.as_str()).map_err(WireError::from)?.to_string();
    let plan = v.field("plan").map_err(WireError::from)?;
    Ok(PlanReply {
        fingerprint,
        source,
        program: DistProgram::decode(plan.field("program").map_err(WireError::from)?)
            .map_err(WireError::from)?,
        ratios: ShardingRatios::decode(plan.field("ratios").map_err(WireError::from)?)
            .map_err(WireError::from)?,
        estimated_time: plan
            .field("estimated_time")
            .and_then(|x| x.as_f64())
            .map_err(WireError::from)?,
        rounds: plan.field("rounds").and_then(|x| x.as_usize()).map_err(WireError::from)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_the_schedule() {
        let a = RetryPolicy { jitter_seed: 42, ..RetryPolicy::default() };
        let b = RetryPolicy { jitter_seed: 42, ..RetryPolicy::default() };
        for attempt in 0..8 {
            assert_eq!(a.delay_ms(attempt, None), b.delay_ms(attempt, None));
            assert_eq!(a.delay_ms(attempt, Some(25)), b.delay_ms(attempt, Some(25)));
        }
    }

    #[test]
    fn distinct_seeds_decorrelate_two_clients() {
        // Two clients shed by the same busy wave see the same hints; with
        // distinct seeds their sleep schedules must diverge (lockstep
        // would re-stampede the daemon).
        let a = RetryPolicy { jitter_seed: 1, max_delay_ms: 1 << 40, ..RetryPolicy::default() };
        let b = RetryPolicy { jitter_seed: 2, max_delay_ms: 1 << 40, ..RetryPolicy::default() };
        let schedule_a: Vec<u64> = (0..8).map(|i| a.delay_ms(i, Some(25))).collect();
        let schedule_b: Vec<u64> = (0..8).map(|i| b.delay_ms(i, Some(25))).collect();
        let differing = schedule_a.iter().zip(&schedule_b).filter(|(x, y)| x != y).count();
        assert!(differing >= 6, "schedules barely diverge: {schedule_a:?} vs {schedule_b:?}");
    }

    #[test]
    fn delays_stay_in_the_jitter_envelope() {
        let policy = RetryPolicy {
            jitter_seed: 7,
            base_delay_ms: 10,
            max_delay_ms: 1 << 40,
            ..RetryPolicy::default()
        };
        for attempt in 0..12u32 {
            let exponential = 10u64 << attempt;
            let d = policy.delay_ms(attempt, None);
            assert!(
                d >= exponential / 2 && d <= exponential + exponential / 2 + 1,
                "attempt {attempt}: {d} outside [{}, {}]",
                exponential / 2,
                exponential + exponential / 2
            );
        }
    }

    #[test]
    fn hint_is_a_floor_even_over_the_cap() {
        let policy = RetryPolicy { max_delay_ms: 50, ..RetryPolicy::default() };
        for seed in 0..32u64 {
            let p = RetryPolicy { jitter_seed: seed, ..policy };
            for attempt in 0..6 {
                // Jitter can halve the exponential, but never below the
                // daemon's hint.
                assert!(p.delay_ms(attempt, Some(40)) >= 40);
                // And the cap yields to the hint when the hint is larger.
                assert!(p.delay_ms(attempt, Some(200)) >= 200);
            }
        }
    }

    #[test]
    fn cap_still_bounds_unhinted_delays() {
        let policy = RetryPolicy { jitter_seed: 3, max_delay_ms: 100, ..RetryPolicy::default() };
        for attempt in 0..20 {
            assert!(policy.delay_ms(attempt, None) <= 100);
        }
    }
}
