//! The daemon's request brain, independent of any transport: feed it a
//! request line, get response bytes. The TCP event loop, the benches, and
//! the in-process tests all go through [`PlanService`].

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use hap_cluster::ClusterDelta;
use hap_codec::{
    encode_stream, parse, parse_fingerprint, render_fingerprint, request_fingerprint_values,
    Decode, Encode, PlanDiff, RingInfo, Value, WireError, UNKNOWN_FINGERPRINT_KIND,
};
use mini_rayon::ThreadPool;

use hap_synthesis::SynthProfile;
use hap_telemetry::{Outcome, SpanKind, TraceBuilder, Verb};

use crate::cache::{load_cache_with_requests, CachePolicy, CachedPlan, PersistLog, PlanCache};
use crate::config::{ServiceConfig, MAX_TTL_MS};
use crate::dispatch::{self, Attach, PlanResult, QueueState, Shared, Slot};
use crate::peer::ClusterState;
use crate::replan::{self, ReplanIndex, RequestTriple};
use crate::stats::{Counters, NetGauges, StatsSnapshot};
use crate::sync::lock_recover;
use crate::telemetry::{
    encode_profile, encode_trace, outcome_for_error, outcome_for_source, PendingTrace,
    ProfileIndex, Telemetry,
};

/// A transport callback receiving rendered response bytes for a request
/// whose synthesis resolved after [`PlanService::submit`] returned, plus
/// the request's trace (sealed by the transport once the bytes flush).
/// Runs on the resolving worker's thread; must be quick (enqueue + wake).
pub(crate) type Deliver = Box<dyn FnOnce(Vec<u8>, Option<PendingTrace>) + Send>;

/// How a plan response was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// Answered from the cache.
    Cache,
    /// This request ran the synthesis.
    Synthesized,
    /// Joined another request's in-flight synthesis.
    Coalesced,
}

impl PlanSource {
    fn as_str(self) -> &'static str {
        match self {
            PlanSource::Cache => "cache",
            PlanSource::Synthesized => "synthesized",
            PlanSource::Coalesced => "coalesced",
        }
    }
}

/// What [`PlanService::submit`] did with a request line.
pub(crate) enum Submission {
    /// The response is complete: one or more newline-terminated frames,
    /// plus the request's trace for the transport to seal at flush time.
    Ready { bytes: Vec<u8>, shutdown: bool, trace: Option<PendingTrace> },
    /// A synthesis is in flight; the `deliver` callback will produce the
    /// bytes (and the trace) on a worker thread when it resolves.
    Pending,
}

/// Packages a trace builder with its outcome for the transport to seal.
fn seal(tb: Option<TraceBuilder>, outcome: Outcome) -> Option<PendingTrace> {
    tb.map(|builder| PendingTrace { builder, outcome })
}

/// Runs `f` under an `encode` span.
fn encode_span<T>(tb: &mut Option<TraceBuilder>, f: impl FnOnce() -> T) -> T {
    if let Some(tb) = tb.as_mut() {
        tb.begin(SpanKind::Encode);
    }
    let out = f();
    if let Some(tb) = tb.as_mut() {
        tb.end();
    }
    out
}

/// Everything a successful replan resolves to: where the plan came from,
/// the rebased fingerprint, the plan itself, the instruction-level diff
/// against the prior plan, and (when requested) the synthesis profile.
type ReplanValues = (PlanSource, u64, Arc<CachedPlan>, PlanDiff, Option<Arc<SynthProfile>>);

/// Fetches the recorded synthesis profile for `fp` when anyone wants it:
/// as the response's `"profile"` field (`want`) and/or folded into the
/// trace as annotations (`synthesized` — the profile describes work this
/// very request waited on). Requests that want neither never touch the
/// profile lock; in particular, telemetry-off cache hits stay lock-free.
fn profile_for(
    shared: &Shared,
    fp: u64,
    want: bool,
    synthesized: bool,
    tb: &mut Option<TraceBuilder>,
) -> Option<Arc<SynthProfile>> {
    if !(want || (synthesized && tb.is_some())) {
        return None;
    }
    let profile = lock_recover(&shared.profiles).get(fp)?;
    if synthesized {
        if let Some(tb) = tb.as_mut() {
            for (key, value) in profile.entries() {
                tb.annotate(key, value);
            }
        }
    }
    want.then_some(profile)
}

/// Folds the dispatch slot's timing marks into the trace: the queue wait
/// and (when a worker actually ran) the synthesis itself. A request that
/// resolved without a worker — shed, shutdown race, cache race — gets its
/// whole slot residency as queue wait.
fn attach_slot_spans(tb: &mut Option<TraceBuilder>, slot: &Slot) {
    let Some(tb) = tb.as_mut() else { return };
    let (queued, started, resolved) = dispatch::slot_marks(slot);
    if started > 0 {
        tb.span(SpanKind::QueueWait, queued, started);
        tb.span(SpanKind::Synthesis, started, resolved);
    } else if resolved > 0 {
        tb.span(SpanKind::QueueWait, queued, resolved);
    }
}

/// The multi-tenant planning service: content-addressed cache,
/// single-flight synthesis, fixed worker pool.
pub struct PlanService {
    shared: Arc<Shared>,
    gauges: Arc<NetGauges>,
    worker_width: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl PlanService {
    /// Builds the service: loads (and compacts) the persistence log when
    /// configured, then starts the synthesis workers. Pool width follows
    /// mini-rayon's parallelism accounting (`workers` threads, `0` = all
    /// cores); each worker pulls one job at a time, so a slow synthesis
    /// never stalls queued work behind a batch barrier, and each job's
    /// wave-parallel A\* fans out over the vendored mini-rayon pool in
    /// turn (`options.synth.threads`).
    ///
    /// A log that fails to *decode* (interior corruption) refuses to boot
    /// — silently dropping persisted state would hide data loss (the
    /// torn-tail case a crash leaves behind is recovered, not fatal; see
    /// [`load_cache`]). A log that decodes but cannot be *rewritten or
    /// reopened* (disk full, permissions) starts the service in degraded
    /// memory-only persistence instead of failing: the daemon is the
    /// availability-critical piece, the log is not.
    pub fn new(config: ServiceConfig) -> Result<Self, WireError> {
        let policy = CachePolicy {
            admission: config.cache_admission,
            default_ttl: config.default_ttl_ms.map(std::time::Duration::from_millis),
        };
        let cache = PlanCache::with_policy(config.cache_capacity, policy);
        // The replan index remembers as many request triples as the cache
        // holds plans: a fingerprint whose plan is still cached should
        // normally still be replannable. The profile index follows the
        // same sizing — a cached plan's synthesis profile should still be
        // reportable.
        let replans = Arc::new(Mutex::new(ReplanIndex::new(config.cache_capacity)));
        let mut persist = None;
        if let Some(path) = &config.cache_path {
            // Rebuild the replan index alongside the cache: each record's
            // embedded request triple is trusted only if it fingerprints
            // back to the record's own key (a mismatched triple would make
            // a later replan rebase the wrong request).
            load_cache_with_requests(&cache, path, &mut |fp, req| {
                let Some(triple) = RequestTriple::decode_req(&req) else { return };
                if request_fingerprint_values(&triple.graph, &triple.cluster, &triple.options) == fp
                {
                    lock_recover(&replans).record(fp, Arc::new(triple));
                }
            })
            .map_err(WireError::from)?;
            persist = Some(PersistLog::start_with_index(
                &cache,
                path.clone(),
                config.fsync,
                replans.clone(),
            ));
        }
        let profiles = Mutex::new(ProfileIndex::new(config.cache_capacity));
        let telemetry = Arc::new(Telemetry::new(&config));
        let shared = Arc::new(Shared {
            config,
            cache,
            replans,
            cluster: ClusterState::new(),
            inflight: Mutex::new(HashMap::new()),
            queue: (
                Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
                Condvar::new(),
            ),
            counters: Counters::default(),
            persist,
            telemetry,
            profiles,
        });
        let width = ThreadPool::new(shared.config.workers).threads().max(1);
        let workers = (0..width)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || dispatch::worker_loop(&shared))
            })
            .collect();
        Ok(PlanService {
            shared,
            gauges: Arc::new(NetGauges::default()),
            worker_width: width,
            workers: Mutex::new(workers),
        })
    }

    /// The service's configuration.
    pub(crate) fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Synthesis worker threads running.
    pub fn worker_count(&self) -> usize {
        self.worker_width
    }

    /// The event-loop gauges (shared with the transport that updates
    /// them; zeros for a transportless in-process service).
    pub(crate) fn net_gauges(&self) -> Arc<NetGauges> {
        self.gauges.clone()
    }

    /// Handles one request line; returns the response line (no trailing
    /// newline) and whether the request asked the daemon to shut down.
    ///
    /// This is the synchronous path: a cache miss parks the calling
    /// thread until the synthesis resolves. `"stream": true` is ignored
    /// here — streaming is transport framing, and this entry point *is*
    /// the canonical unstreamed encoding. The request's trace is sealed
    /// here too (there is no later flush to wait for).
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        let mut tb = self.shared.telemetry.builder();
        match self.handle_parsed(line, &mut tb) {
            Ok((response, outcome, shutdown)) => {
                let rendered = encode_span(&mut tb, || response.render());
                self.shared.telemetry.finish(tb, outcome);
                (rendered, shutdown)
            }
            Err((id, err)) => {
                self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                let rendered = encode_span(&mut tb, || error_frame(id, &err).render());
                self.shared.telemetry.finish(tb, outcome_for_error(&err));
                (rendered, false)
            }
        }
    }

    fn handle_parsed(
        &self,
        line: &str,
        tb: &mut Option<TraceBuilder>,
    ) -> Result<(Value, Outcome, bool), (u64, WireError)> {
        if let Some(tb) = tb.as_mut() {
            tb.begin(SpanKind::Decode);
        }
        let req = Request::parse(line)?;
        if let Some(tb) = tb.as_mut() {
            tb.set_request(req.id, req.op.verb());
        }
        match req.op {
            ReqOp::Plan(plan) => {
                let (source, fp, result, profile) = self.plan_values_traced(
                    &plan.graph,
                    &plan.cluster,
                    &plan.options,
                    plan.ttl_ms,
                    plan.profile,
                    tb,
                );
                let plan_arc = result.map_err(|e| (req.id, e))?;
                Ok((
                    plan_frame_with(req.id, fp, source, &plan_arc, None, profile.as_deref()),
                    outcome_for_source(source),
                    false,
                ))
            }
            ReqOp::Replan(rp) => {
                let (source, fp, plan, diff, profile) = self
                    .replan_values_traced(rp.prior, &rp.delta, rp.ttl_ms, rp.profile, tb)
                    .map_err(|e| (req.id, e))?;
                Ok((
                    plan_frame_with(req.id, fp, source, &plan, Some(&diff), profile.as_deref()),
                    Outcome::Replan,
                    false,
                ))
            }
            ReqOp::Stats => Ok((self.stats_frame(req.id), Outcome::Ok, false)),
            ReqOp::Metrics => Ok((self.metrics_frame(req.id), Outcome::Ok, false)),
            ReqOp::Trace { n, min_ms } => {
                Ok((self.trace_frame(req.id, n, min_ms), Outcome::Ok, false))
            }
            ReqOp::Ring(install) => Ok((self.ring_frame(req.id, install), Outcome::Ok, false)),
            ReqOp::Replicate(rep) => Ok((self.replicate_frame(req.id, *rep), Outcome::Ok, false)),
            ReqOp::Shutdown => Ok((ok_frame(req.id), Outcome::Ok, true)),
        }
    }

    /// Remembers the request triple behind a fingerprint so a later
    /// `replan` can rebuild it. Cheap when already recorded.
    fn record_request(&self, fp: u64, graph: &Value, cluster: &Value, options: &Value) {
        let mut index = lock_recover(&self.shared.replans);
        if !index.contains(fp) {
            index.record(
                fp,
                Arc::new(RequestTriple {
                    graph: graph.clone(),
                    cluster: cluster.clone(),
                    options: options.clone(),
                }),
            );
        }
    }

    /// The planning core: cache lookup, single-flight dedup, queue + wait.
    /// Exposed for in-process callers (tests, benches) that want to skip
    /// the socket but exercise the identical path.
    pub fn plan_values(
        &self,
        graph: &Value,
        cluster: &Value,
        options: &Value,
    ) -> (PlanSource, u64, PlanResult) {
        self.plan_values_with_ttl(graph, cluster, options, None)
    }

    /// [`PlanService::plan_values`] with a per-request cache TTL.
    pub fn plan_values_with_ttl(
        &self,
        graph: &Value,
        cluster: &Value,
        options: &Value,
        ttl_ms: Option<u64>,
    ) -> (PlanSource, u64, PlanResult) {
        let (source, fp, result, _) =
            self.plan_values_traced(graph, cluster, options, ttl_ms, false, &mut None);
        (source, fp, result)
    }

    /// The traced planning core: [`PlanService::plan_values_with_ttl`]
    /// plus span bookkeeping and the optional synthesis profile
    /// (`want_profile` = the request carried `"profile": true`).
    fn plan_values_traced(
        &self,
        graph: &Value,
        cluster: &Value,
        options: &Value,
        ttl_ms: Option<u64>,
        want_profile: bool,
        tb: &mut Option<TraceBuilder>,
    ) -> (PlanSource, u64, PlanResult, Option<Arc<SynthProfile>>) {
        let shared = &self.shared;
        let fp = request_fingerprint_values(graph, cluster, options);
        self.record_request(fp, graph, cluster, options);
        if let Some(tb) = tb.as_mut() {
            tb.begin(SpanKind::CacheLookup);
        }
        if let Some(plan) = shared.cache.get(fp) {
            shared.counters.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(tb) = tb.as_mut() {
                tb.end();
            }
            let profile = profile_for(shared, fp, want_profile, false, tb);
            return (PlanSource::Cache, fp, Ok(plan), profile);
        }
        shared.counters.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(tb) = tb.as_mut() {
            tb.end();
        }
        let (source, result) =
            match dispatch::attach(shared, fp, graph, cluster, options, ttl_ms, None) {
                Attach::Resolved(source, result) => (source, result),
                Attach::Leader(slot) => {
                    let result = dispatch::wait_sync(&slot);
                    attach_slot_spans(tb, &slot);
                    (PlanSource::Synthesized, result)
                }
                Attach::Follower(slot) => {
                    let result = dispatch::wait_sync(&slot);
                    attach_slot_spans(tb, &slot);
                    (PlanSource::Coalesced, result)
                }
            };
        let profile = match &result {
            Ok(_) => profile_for(shared, fp, want_profile, true, tb),
            Err(_) => None,
        };
        (source, fp, result, profile)
    }

    /// Replans a previously planned request after a cluster change: the
    /// prior plan (named by its request fingerprint) is re-costed on the
    /// post-delta cluster and seeds the synthesis as its incumbent, so an
    /// unchanged-optimal plan is confirmed at replay cost instead of
    /// re-searched. Returns the plan for the post-delta request — always
    /// bit-identical to what cold synthesis on that cluster would produce
    /// (warm seeds only survive exact cost ties) — plus the machine-
    /// readable [`PlanDiff`] against the prior plan.
    pub fn replan_values(
        &self,
        prior_fp: u64,
        delta: &ClusterDelta,
    ) -> Result<(PlanSource, u64, Arc<CachedPlan>, PlanDiff), WireError> {
        self.replan_values_with_ttl(prior_fp, delta, None)
    }

    /// [`PlanService::replan_values`] with a per-request cache TTL.
    pub fn replan_values_with_ttl(
        &self,
        prior_fp: u64,
        delta: &ClusterDelta,
        ttl_ms: Option<u64>,
    ) -> Result<(PlanSource, u64, Arc<CachedPlan>, PlanDiff), WireError> {
        self.replan_values_traced(prior_fp, delta, ttl_ms, false, &mut None)
            .map(|(source, fp, plan, diff, _)| (source, fp, plan, diff))
    }

    /// The traced replanning core (see [`PlanService::plan_values_traced`]).
    fn replan_values_traced(
        &self,
        prior_fp: u64,
        delta: &ClusterDelta,
        ttl_ms: Option<u64>,
        want_profile: bool,
        tb: &mut Option<TraceBuilder>,
    ) -> Result<ReplanValues, WireError> {
        let shared = &self.shared;
        let prep = replan::prepare(shared, prior_fp, delta)?;
        if let Some(tb) = tb.as_mut() {
            tb.begin(SpanKind::CacheLookup);
        }
        if let Some(plan) = shared.cache.get(prep.fp) {
            shared.counters.hits.fetch_add(1, Ordering::Relaxed);
            shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
            if let Some(tb) = tb.as_mut() {
                tb.end();
            }
            let profile = profile_for(shared, prep.fp, want_profile, false, tb);
            let diff = replan_diff(prior_fp, &prep.prior, &plan);
            return Ok((PlanSource::Cache, prep.fp, plan, diff, profile));
        }
        shared.counters.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(tb) = tb.as_mut() {
            tb.end();
        }
        let (source, result) = match dispatch::attach(
            shared,
            prep.fp,
            &prep.triple.graph,
            &prep.triple.cluster,
            &prep.triple.options,
            ttl_ms,
            Some(prep.prior.clone()),
        ) {
            Attach::Resolved(source, result) => (source, result),
            Attach::Leader(slot) => {
                let result = dispatch::wait_sync(&slot);
                attach_slot_spans(tb, &slot);
                (PlanSource::Synthesized, result)
            }
            Attach::Follower(slot) => {
                let result = dispatch::wait_sync(&slot);
                attach_slot_spans(tb, &slot);
                (PlanSource::Coalesced, result)
            }
        };
        let plan = result?;
        shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
        let profile = profile_for(shared, prep.fp, want_profile, true, tb);
        let diff = replan_diff(prior_fp, &prep.prior, &plan);
        Ok((source, prep.fp, plan, diff, profile))
    }

    /// The asynchronous request path used by the event loop: never blocks
    /// the calling thread on a synthesis. Inline-answerable requests
    /// (cache hits, stats, shutdown, malformed frames, shed) return
    /// [`Submission::Ready`]; a queued or joined synthesis returns
    /// [`Submission::Pending`] and `deliver` later receives the rendered
    /// response bytes on the resolving worker's thread.
    ///
    /// `tb` is the transport's trace builder (already carrying the
    /// `accept`/`frame` spans); it travels with the request and comes
    /// back — as [`Submission::Ready::trace`] or through `deliver` — for
    /// the transport to seal once the bytes flush.
    pub(crate) fn submit(
        &self,
        line: &str,
        mut tb: Option<TraceBuilder>,
        deliver: Deliver,
    ) -> Submission {
        if let Some(tb) = tb.as_mut() {
            tb.begin(SpanKind::Decode);
        }
        let req = match Request::parse(line) {
            Ok(req) => req,
            Err((id, err)) => {
                let bytes = encode_span(&mut tb, || self.render_error(id, &err));
                return Submission::Ready {
                    bytes,
                    shutdown: false,
                    trace: seal(tb, outcome_for_error(&err)),
                };
            }
        };
        let id = req.id;
        if let Some(tb) = tb.as_mut() {
            tb.set_request(id, req.op.verb());
        }
        match req.op {
            ReqOp::Stats => {
                let bytes = encode_span(&mut tb, || frame_bytes(&self.stats_frame(id)));
                Submission::Ready { bytes, shutdown: false, trace: seal(tb, Outcome::Ok) }
            }
            ReqOp::Metrics => {
                let bytes = encode_span(&mut tb, || frame_bytes(&self.metrics_frame(id)));
                Submission::Ready { bytes, shutdown: false, trace: seal(tb, Outcome::Ok) }
            }
            ReqOp::Trace { n, min_ms } => {
                let bytes = encode_span(&mut tb, || frame_bytes(&self.trace_frame(id, n, min_ms)));
                Submission::Ready { bytes, shutdown: false, trace: seal(tb, Outcome::Ok) }
            }
            ReqOp::Ring(install) => {
                let bytes = encode_span(&mut tb, || frame_bytes(&self.ring_frame(id, install)));
                Submission::Ready { bytes, shutdown: false, trace: seal(tb, Outcome::Ok) }
            }
            ReqOp::Replicate(rep) => {
                let bytes = encode_span(&mut tb, || frame_bytes(&self.replicate_frame(id, *rep)));
                Submission::Ready { bytes, shutdown: false, trace: seal(tb, Outcome::Ok) }
            }
            ReqOp::Shutdown => {
                let bytes = encode_span(&mut tb, || frame_bytes(&ok_frame(id)));
                Submission::Ready { bytes, shutdown: true, trace: seal(tb, Outcome::Ok) }
            }
            ReqOp::Plan(plan) => {
                let shared = &self.shared;
                let stream_chunk = plan.stream.then_some(shared.config.stream_chunk_bytes);
                let want_profile = plan.profile;
                let fp = request_fingerprint_values(&plan.graph, &plan.cluster, &plan.options);
                self.record_request(fp, &plan.graph, &plan.cluster, &plan.options);
                if let Some(tb) = tb.as_mut() {
                    tb.begin(SpanKind::CacheLookup);
                }
                if let Some(cached) = shared.cache.get(fp) {
                    shared.counters.hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(tb) = tb.as_mut() {
                        tb.end();
                    }
                    let profile = profile_for(shared, fp, want_profile, false, &mut tb);
                    let bytes = encode_span(&mut tb, || {
                        plan_bytes(
                            id,
                            fp,
                            PlanSource::Cache,
                            &cached,
                            None,
                            profile.as_deref(),
                            stream_chunk,
                        )
                    });
                    return Submission::Ready {
                        bytes,
                        shutdown: false,
                        trace: seal(tb, Outcome::Hit),
                    };
                }
                shared.counters.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(tb) = tb.as_mut() {
                    tb.end();
                }
                // Cluster routing: a miss on a fingerprint another daemon
                // owns is proxied to that owner (ring-wide single-flight:
                // only the owner synthesizes). A request stamped with a
                // *different* membership epoch than ours gets a typed
                // `not_owner` redirect instead — routing disagreements
                // bounce back to the client rather than chaining
                // daemon-to-daemon forwards.
                if let Some((ring, self_addr)) = shared.cluster.current() {
                    if let Some(owner) =
                        ring.primary(fp).filter(|p| *p != self_addr).map(str::to_string)
                    {
                        if plan.epoch.is_some_and(|stamp| stamp != ring.epoch()) {
                            shared.counters.redirected.fetch_add(1, Ordering::Relaxed);
                            let err = WireError::not_owner(owner, ring.epoch());
                            let bytes =
                                encode_span(&mut tb, || frame_bytes(&error_frame(id, &err)));
                            return Submission::Ready {
                                bytes,
                                shutdown: false,
                                trace: seal(tb, outcome_for_error(&err)),
                            };
                        }
                        shared.counters.proxied.fetch_add(1, Ordering::Relaxed);
                        self.proxy_plan(
                            id,
                            fp,
                            plan,
                            owner,
                            ring.epoch(),
                            stream_chunk,
                            tb,
                            deliver,
                        );
                        return Submission::Pending;
                    }
                }
                let attach = dispatch::attach(
                    shared,
                    fp,
                    &plan.graph,
                    &plan.cluster,
                    &plan.options,
                    plan.ttl_ms,
                    None,
                );
                let (slot, source) = match attach {
                    // A leadership cache race resolves as a hit, exactly
                    // like the sync path's re-probe.
                    Attach::Resolved(source, Ok(cached)) => {
                        let profile = profile_for(shared, fp, want_profile, false, &mut tb);
                        let bytes = encode_span(&mut tb, || {
                            plan_bytes(
                                id,
                                fp,
                                source,
                                &cached,
                                None,
                                profile.as_deref(),
                                stream_chunk,
                            )
                        });
                        return Submission::Ready {
                            bytes,
                            shutdown: false,
                            trace: seal(tb, outcome_for_source(source)),
                        };
                    }
                    Attach::Resolved(_, Err(err)) => {
                        let bytes = encode_span(&mut tb, || self.render_error(id, &err));
                        return Submission::Ready {
                            bytes,
                            shutdown: false,
                            trace: seal(tb, outcome_for_error(&err)),
                        };
                    }
                    Attach::Leader(slot) => (slot, PlanSource::Synthesized),
                    Attach::Follower(slot) => (slot, PlanSource::Coalesced),
                };
                // Subscribe a response renderer: each request renders with
                // its own id, source, and streaming preference when the
                // shared synthesis resolves.
                let sub_shared = self.shared.clone();
                let sub_slot = slot.clone();
                dispatch::subscribe(
                    &slot,
                    Box::new(move |result: &PlanResult| {
                        let mut tb = tb;
                        attach_slot_spans(&mut tb, &sub_slot);
                        let (bytes, outcome) = match result {
                            Ok(plan) => {
                                let profile =
                                    profile_for(&sub_shared, fp, want_profile, true, &mut tb);
                                let bytes = encode_span(&mut tb, || {
                                    plan_bytes(
                                        id,
                                        fp,
                                        source,
                                        plan,
                                        None,
                                        profile.as_deref(),
                                        stream_chunk,
                                    )
                                });
                                (bytes, outcome_for_source(source))
                            }
                            Err(err) => {
                                sub_shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                                let bytes =
                                    encode_span(&mut tb, || frame_bytes(&error_frame(id, err)));
                                (bytes, outcome_for_error(err))
                            }
                        };
                        deliver(bytes, seal(tb, outcome));
                    }),
                );
                Submission::Pending
            }
            ReqOp::Replan(rp) => {
                let shared = &self.shared;
                let stream_chunk = rp.stream.then_some(shared.config.stream_chunk_bytes);
                let want_profile = rp.profile;
                // Cluster routing keys on the *prior* fingerprint: its
                // ring owner holds the request triple and plan (pushed
                // along with every replication), so the rebase runs there.
                let route = shared.cluster.current().and_then(|(ring, self_addr)| {
                    ring.primary(rp.prior)
                        .filter(|p| *p != self_addr)
                        .map(|owner| (owner.to_string(), ring.epoch()))
                });
                if let Some((owner, ring_epoch)) = &route {
                    if rp.epoch.is_some_and(|stamp| stamp != *ring_epoch) {
                        shared.counters.redirected.fetch_add(1, Ordering::Relaxed);
                        let err = WireError::not_owner(owner.clone(), *ring_epoch);
                        let bytes = encode_span(&mut tb, || frame_bytes(&error_frame(id, &err)));
                        return Submission::Ready {
                            bytes,
                            shutdown: false,
                            trace: seal(tb, outcome_for_error(&err)),
                        };
                    }
                }
                let prep = match replan::prepare(shared, rp.prior, &rp.delta) {
                    Ok(prep) => prep,
                    Err(err) => {
                        // A fingerprint this daemon never saw (or let
                        // expire) may still live at its ring owner.
                        if err.kind == UNKNOWN_FINGERPRINT_KIND {
                            if let Some((owner, ring_epoch)) = route {
                                shared.counters.proxied.fetch_add(1, Ordering::Relaxed);
                                self.proxy_replan(
                                    id,
                                    rp,
                                    owner,
                                    ring_epoch,
                                    stream_chunk,
                                    None,
                                    tb,
                                    deliver,
                                );
                                return Submission::Pending;
                            }
                        }
                        let bytes = encode_span(&mut tb, || self.render_error(id, &err));
                        return Submission::Ready {
                            bytes,
                            shutdown: false,
                            trace: seal(tb, outcome_for_error(&err)),
                        };
                    }
                };
                let prior_fp = rp.prior;
                let fp = prep.fp;
                if let Some(tb) = tb.as_mut() {
                    tb.begin(SpanKind::CacheLookup);
                }
                if let Some(cached) = shared.cache.get(fp) {
                    shared.counters.hits.fetch_add(1, Ordering::Relaxed);
                    shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
                    if let Some(tb) = tb.as_mut() {
                        tb.end();
                    }
                    let profile = profile_for(shared, fp, want_profile, false, &mut tb);
                    let diff = replan_diff(prior_fp, &prep.prior, &cached);
                    let bytes = encode_span(&mut tb, || {
                        plan_bytes(
                            id,
                            fp,
                            PlanSource::Cache,
                            &cached,
                            Some(&diff),
                            profile.as_deref(),
                            stream_chunk,
                        )
                    });
                    return Submission::Ready {
                        bytes,
                        shutdown: false,
                        trace: seal(tb, Outcome::Replan),
                    };
                }
                shared.counters.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(tb) = tb.as_mut() {
                    tb.end();
                }
                // The rebased plan is not cached here and the prior's ring
                // owner is another daemon: the synthesis belongs to the
                // owner (ring-wide single-flight). The local preparation
                // rides along as the fallback if the owner is unreachable.
                if let Some((owner, ring_epoch)) = route {
                    shared.counters.proxied.fetch_add(1, Ordering::Relaxed);
                    self.proxy_replan(
                        id,
                        rp,
                        owner,
                        ring_epoch,
                        stream_chunk,
                        Some(prep),
                        tb,
                        deliver,
                    );
                    return Submission::Pending;
                }
                let attach = dispatch::attach(
                    shared,
                    fp,
                    &prep.triple.graph,
                    &prep.triple.cluster,
                    &prep.triple.options,
                    rp.ttl_ms,
                    Some(prep.prior.clone()),
                );
                let (slot, source) = match attach {
                    Attach::Resolved(source, Ok(cached)) => {
                        shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
                        let profile = profile_for(shared, fp, want_profile, false, &mut tb);
                        let diff = replan_diff(prior_fp, &prep.prior, &cached);
                        let bytes = encode_span(&mut tb, || {
                            plan_bytes(
                                id,
                                fp,
                                source,
                                &cached,
                                Some(&diff),
                                profile.as_deref(),
                                stream_chunk,
                            )
                        });
                        return Submission::Ready {
                            bytes,
                            shutdown: false,
                            trace: seal(tb, Outcome::Replan),
                        };
                    }
                    Attach::Resolved(_, Err(err)) => {
                        let bytes = encode_span(&mut tb, || self.render_error(id, &err));
                        return Submission::Ready {
                            bytes,
                            shutdown: false,
                            trace: seal(tb, outcome_for_error(&err)),
                        };
                    }
                    Attach::Leader(slot) => (slot, PlanSource::Synthesized),
                    Attach::Follower(slot) => (slot, PlanSource::Coalesced),
                };
                let sub_shared = self.shared.clone();
                let sub_slot = slot.clone();
                let prior_plan = prep.prior.clone();
                dispatch::subscribe(
                    &slot,
                    Box::new(move |result: &PlanResult| {
                        let mut tb = tb;
                        attach_slot_spans(&mut tb, &sub_slot);
                        let (bytes, outcome) = match result {
                            Ok(plan) => {
                                sub_shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
                                let profile =
                                    profile_for(&sub_shared, fp, want_profile, true, &mut tb);
                                let diff = replan_diff(prior_fp, &prior_plan, plan);
                                let bytes = encode_span(&mut tb, || {
                                    plan_bytes(
                                        id,
                                        fp,
                                        source,
                                        plan,
                                        Some(&diff),
                                        profile.as_deref(),
                                        stream_chunk,
                                    )
                                });
                                (bytes, Outcome::Replan)
                            }
                            Err(err) => {
                                sub_shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                                let bytes =
                                    encode_span(&mut tb, || frame_bytes(&error_frame(id, err)));
                                (bytes, outcome_for_error(err))
                            }
                        };
                        deliver(bytes, seal(tb, outcome));
                    }),
                );
                Submission::Pending
            }
        }
    }

    pub(crate) fn render_error(&self, id: u64, err: &WireError) -> Vec<u8> {
        self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        frame_bytes(&error_frame(id, err))
    }

    fn stats_frame(&self, id: u64) -> Value {
        Value::obj(vec![
            ("id", Value::int(id)),
            ("ok", Value::Bool(true)),
            ("stats", self.stats().encode()),
        ])
    }

    /// `{"id":N,"ok":true,"metrics":{...}}` — the latency histograms.
    fn metrics_frame(&self, id: u64) -> Value {
        Value::obj(vec![
            ("id", Value::int(id)),
            ("ok", Value::Bool(true)),
            ("metrics", self.shared.telemetry.metrics_snapshot().encode()),
        ])
    }

    /// `{"id":N,"ok":true,"traces":[...]}` — the most recent completed
    /// request traces, newest first.
    fn trace_frame(&self, id: u64, n: usize, min_ms: u64) -> Value {
        let traces = self
            .shared
            .telemetry
            .recent_traces(n, min_ms)
            .iter()
            .map(|t| encode_trace(t))
            .collect();
        Value::obj(vec![
            ("id", Value::int(id)),
            ("ok", Value::Bool(true)),
            ("traces", Value::Arr(traces)),
        ])
    }

    /// `{"id":N,"ok":true,"ring":{...},"self":...,"installed":...}` — the
    /// daemon's current ring view, after applying an install if the
    /// request carried one. Installs are idempotent and monotonic: only a
    /// strictly newer membership epoch replaces the current ring, and the
    /// response always reports the ring the daemon actually holds.
    fn ring_frame(&self, id: u64, install: Option<Box<RingInstall>>) -> Value {
        let shared = &self.shared;
        let installed = match install {
            None => false,
            Some(ri) => shared.cluster.install(ri.info, ri.self_addr),
        };
        let (ring, self_addr) = match shared.cluster.current() {
            Some((ring, addr)) => (ring.info().clone(), addr),
            None => (
                RingInfo::empty(shared.config.ring_vnodes, shared.config.ring_replication),
                String::new(),
            ),
        };
        Value::obj(vec![
            ("id", Value::int(id)),
            ("ok", Value::Bool(true)),
            ("ring", ring.encode()),
            ("self", Value::Str(self_addr)),
            ("installed", Value::Bool(installed)),
        ])
    }

    /// Stores a peer-replicated plan: cache insert, replan-index record
    /// (when the pushed triple verifies against the fingerprint), and a
    /// persistence append — an acknowledged replica survives this
    /// daemon's restart too. Never counts as a synthesis: replication
    /// moves plans, it does not create them.
    fn replicate_frame(&self, id: u64, rep: ReplicateRequest) -> Value {
        let shared = &self.shared;
        shared.counters.replicated_in.fetch_add(1, Ordering::Relaxed);
        // Trust the pushed triple only if it fingerprints back to the
        // record's key — the same rule boot recovery applies to the log.
        let req = rep.req.filter(|req| {
            RequestTriple::decode_req(req).is_some_and(|t| {
                request_fingerprint_values(&t.graph, &t.cluster, &t.options) == rep.fp
            })
        });
        if let Some(req) = &req {
            if let Some(triple) = RequestTriple::decode_req(req) {
                lock_recover(&shared.replans).record(rep.fp, Arc::new(triple));
            }
        }
        let plan = Arc::new(rep.plan);
        let verdict = shared.cache.insert(rep.fp, plan.clone());
        if !matches!(verdict, crate::cache::Admission::Rejected { .. }) {
            if let Some(persist) = &shared.persist {
                let _ = persist.append_with_req(&shared.cache, rep.fp, plan.as_ref(), req.as_ref());
            }
        }
        ok_frame(id)
    }

    /// Forwards a missed `plan` to the fingerprint's ring owner on a peer
    /// thread. The owner's canonical response line is relayed unchanged
    /// (re-chunked locally when the client streams); an unreachable or
    /// ownership-denying owner falls back to local synthesis — a routing
    /// failure degrades to single-daemon behavior, never to an error.
    #[allow(clippy::too_many_arguments)]
    fn proxy_plan(
        &self,
        id: u64,
        fp: u64,
        plan: Box<PlanRequest>,
        owner: String,
        epoch: u64,
        stream_chunk: Option<usize>,
        tb: Option<TraceBuilder>,
        deliver: Deliver,
    ) {
        let shared = self.shared.clone();
        // The forward is the same request stamped with our ring epoch and
        // never streamed — streaming is client-transport framing, applied
        // locally to the owner's canonical line.
        let mut fields = vec![
            ("op", Value::Str("plan".into())),
            ("id", Value::int(id)),
            ("graph", plan.graph.clone()),
            ("cluster", plan.cluster.clone()),
            ("options", plan.options.clone()),
        ];
        if let Some(ttl) = plan.ttl_ms {
            fields.push(("ttl_ms", Value::int(ttl)));
        }
        if plan.profile {
            fields.push(("profile", Value::Bool(true)));
        }
        fields.push(("epoch", Value::int(epoch)));
        let line = Value::obj(fields).render();
        self.shared.cluster.peers.spawn(Box::new(move || {
            let reply = shared
                .cluster
                .peers
                .call(&owner, &line)
                .ok()
                .and_then(|resp| classify_proxy_reply(&resp).map(|r| (resp, r)));
            match reply {
                Some((resp, ProxyReply::Pass { outcome, is_plan })) => {
                    let mut tb = tb;
                    let bytes =
                        encode_span(&mut tb, || proxied_bytes(id, resp, is_plan, stream_chunk));
                    deliver(bytes, seal(tb, outcome));
                }
                // The owner denied ownership, was unreachable, or answered
                // garbage: synthesize locally.
                _ => plan_attach_deliver(
                    &shared,
                    id,
                    fp,
                    &plan.graph,
                    &plan.cluster,
                    &plan.options,
                    plan.ttl_ms,
                    plan.profile,
                    stream_chunk,
                    None,
                    tb,
                    deliver,
                ),
            }
        }));
    }

    /// Forwards a `replan` to the prior fingerprint's ring owner, exactly
    /// as [`PlanService::proxy_plan`] forwards a `plan`. When this daemon
    /// could prepare the rebase locally (`fallback`), an unreachable owner
    /// degrades to a local warm-seeded synthesis; otherwise the request
    /// fails with the `unknown_fingerprint` it would have failed with on
    /// a single daemon.
    #[allow(clippy::too_many_arguments)]
    fn proxy_replan(
        &self,
        id: u64,
        rp: Box<ReplanRequest>,
        owner: String,
        epoch: u64,
        stream_chunk: Option<usize>,
        fallback: Option<replan::PreparedReplan>,
        tb: Option<TraceBuilder>,
        deliver: Deliver,
    ) {
        let shared = self.shared.clone();
        let mut fields = vec![
            ("op", Value::Str("replan".into())),
            ("id", Value::int(id)),
            ("prior", Value::Str(render_fingerprint(rp.prior))),
            ("delta", rp.delta.encode()),
        ];
        if let Some(ttl) = rp.ttl_ms {
            fields.push(("ttl_ms", Value::int(ttl)));
        }
        if rp.profile {
            fields.push(("profile", Value::Bool(true)));
        }
        fields.push(("epoch", Value::int(epoch)));
        let line = Value::obj(fields).render();
        self.shared.cluster.peers.spawn(Box::new(move || {
            let reply = shared
                .cluster
                .peers
                .call(&owner, &line)
                .ok()
                .and_then(|resp| classify_proxy_reply(&resp).map(|r| (resp, r)));
            match reply {
                Some((resp, ProxyReply::Pass { outcome, is_plan })) => {
                    let mut tb = tb;
                    let bytes =
                        encode_span(&mut tb, || proxied_bytes(id, resp, is_plan, stream_chunk));
                    deliver(bytes, seal(tb, outcome));
                }
                _ => match fallback {
                    Some(prep) => plan_attach_deliver(
                        &shared,
                        id,
                        prep.fp,
                        &prep.triple.graph,
                        &prep.triple.cluster,
                        &prep.triple.options,
                        rp.ttl_ms,
                        rp.profile,
                        stream_chunk,
                        Some((rp.prior, prep.prior.clone())),
                        tb,
                        deliver,
                    ),
                    None => {
                        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                        let err = WireError::new(
                            UNKNOWN_FINGERPRINT_KIND,
                            format!(
                                "no request recorded for {} here and its ring owner is \
                                 unreachable; plan it cold first",
                                render_fingerprint(rp.prior)
                            ),
                        );
                        let mut tb = tb;
                        let bytes = encode_span(&mut tb, || frame_bytes(&error_frame(id, &err)));
                        deliver(bytes, seal(tb, outcome_for_error(&err)));
                    }
                },
            }
        }));
    }

    /// A consistent stats snapshot: every gauge is sampled exactly once,
    /// in one pass, so the frame's `entries`/`in_flight`/telemetry totals
    /// describe the same instant instead of racing each other between
    /// field reads.
    pub fn stats(&self) -> StatsSnapshot {
        let shared = &self.shared;
        let (entries, evictions, admission_rejected, expired) = shared.cache.stats_sample();
        let in_flight = lock_recover(&shared.inflight).len() as u64;
        let (traces_recorded, metrics_samples) = shared.telemetry.totals();
        StatsSnapshot {
            entries,
            hits: shared.counters.hits.load(Ordering::Relaxed),
            misses: shared.counters.misses.load(Ordering::Relaxed),
            coalesced: shared.counters.coalesced.load(Ordering::Relaxed),
            synthesized: shared.counters.synthesized.load(Ordering::Relaxed),
            evictions,
            warm_seeded: shared.counters.warm_seeded.load(Ordering::Relaxed),
            errors: shared.counters.errors.load(Ordering::Relaxed),
            in_flight,
            shed: shared.counters.shed.load(Ordering::Relaxed),
            admission_rejected,
            expired,
            replanned: shared.counters.replanned.load(Ordering::Relaxed),
            persist_errors: shared.persist.as_ref().map(PersistLog::errors).unwrap_or(0),
            persistence_degraded: shared.persist.as_ref().is_some_and(PersistLog::degraded) as u64,
            panics: shared.counters.panics.load(Ordering::Relaxed),
            open_connections: self.gauges.open_connections.load(Ordering::Relaxed),
            peak_connections: self.gauges.peak_connections.load(Ordering::Relaxed),
            read_buf_hwm: self.gauges.read_buf_hwm.load(Ordering::Relaxed),
            write_buf_hwm: self.gauges.write_buf_hwm.load(Ordering::Relaxed),
            idle_closed: self.gauges.idle_closed.load(Ordering::Relaxed),
            traces_recorded,
            metrics_samples,
            proxied: shared.counters.proxied.load(Ordering::Relaxed),
            redirected: shared.counters.redirected.load(Ordering::Relaxed),
            replicated_in: shared.counters.replicated_in.load(Ordering::Relaxed),
            replicated_out: shared.counters.replicated_out.load(Ordering::Relaxed),
            ring_epoch: shared.cluster.epoch(),
        }
    }

    /// The telemetry hub, for the transport's span stamping and trace
    /// sealing.
    pub(crate) fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// Drains the queue and stops the workers, then flushes any unsynced
    /// appends. Idempotent. A worker that somehow died of an un-isolated
    /// panic is logged as a failed join, never propagated — shutdown must
    /// always complete.
    pub fn stop(&self) {
        let (queue, cvar) = &self.shared.queue;
        lock_recover(queue).shutdown = true;
        cvar.notify_all();
        for handle in lock_recover(&self.workers).drain(..) {
            let _ = handle.join();
        }
        self.shared.cluster.peers.stop();
        if let Some(persist) = &self.shared.persist {
            persist.sync();
        }
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Request parsing shared by the sync and async paths
// ---------------------------------------------------------------------------

struct PlanRequest {
    graph: Value,
    cluster: Value,
    options: Value,
    ttl_ms: Option<u64>,
    stream: bool,
    /// `"profile": true` — include the synthesis profile in the response.
    profile: bool,
    /// The ring epoch the sender routed with, if it routed at all. A
    /// stamp at a different epoch than this daemon's means the sender's
    /// ring view is inconsistent with ours — answered with a `not_owner`
    /// redirect instead of a proxy, so ownership disagreements never
    /// chain daemon-to-daemon forwards.
    epoch: Option<u64>,
}

struct ReplanRequest {
    /// Fingerprint of the previously planned request to start from.
    prior: u64,
    /// How the cluster changed since that plan.
    delta: ClusterDelta,
    ttl_ms: Option<u64>,
    stream: bool,
    /// `"profile": true` — include the synthesis profile in the response.
    profile: bool,
    /// See [`PlanRequest::epoch`]. A replan routes by `prior` — the
    /// daemon owning the prior fingerprint holds its triple and plan.
    epoch: Option<u64>,
}

/// A `ring` request carrying a membership record to install.
struct RingInstall {
    info: RingInfo,
    /// The address this daemon occupies on that ring (daemons do not
    /// guess their own externally-routable address).
    self_addr: String,
}

/// A peer's `replicate` push: store this plan under this fingerprint.
struct ReplicateRequest {
    fp: u64,
    plan: CachedPlan,
    /// The request triple behind `fp`, when the sender still had it —
    /// lets the replica answer replans against the fingerprint too.
    req: Option<Value>,
}

enum ReqOp {
    Plan(Box<PlanRequest>),
    Replan(Box<ReplanRequest>),
    Stats,
    Metrics,
    Trace {
        n: usize,
        min_ms: u64,
    },
    /// Query (`None`) or install (`Some`) the cluster membership ring.
    Ring(Option<Box<RingInstall>>),
    /// A peer replicating a freshly synthesized plan to this daemon.
    Replicate(Box<ReplicateRequest>),
    Shutdown,
}

impl ReqOp {
    /// The request's verb, for telemetry labeling.
    fn verb(&self) -> Verb {
        match self {
            ReqOp::Plan(_) => Verb::Plan,
            ReqOp::Replan(_) => Verb::Replan,
            ReqOp::Stats => Verb::Stats,
            ReqOp::Metrics => Verb::Metrics,
            ReqOp::Trace { .. } => Verb::Trace,
            ReqOp::Ring(_) => Verb::Ring,
            ReqOp::Replicate(_) => Verb::Replicate,
            ReqOp::Shutdown => Verb::Shutdown,
        }
    }
}

struct Request {
    id: u64,
    op: ReqOp,
}

impl Request {
    fn parse(line: &str) -> Result<Request, (u64, WireError)> {
        let v = parse(line).map_err(|e| (0, WireError::from(e)))?;
        let id = v.get("id").and_then(|x| x.as_u64().ok()).unwrap_or(0);
        let op = v
            .get("op")
            .and_then(|x| x.as_str().ok())
            .ok_or_else(|| (id, WireError::new("decode", "missing `op`")))?;
        match op {
            "plan" => {
                let fetch = |key: &str| v.field(key).cloned().map_err(|e| (id, WireError::from(e)));
                let (graph, cluster, options) =
                    (fetch("graph")?, fetch("cluster")?, fetch("options")?);
                let (ttl_ms, stream, profile, epoch) = parse_ttl_stream(&v, id)?;
                Ok(Request {
                    id,
                    op: ReqOp::Plan(Box::new(PlanRequest {
                        graph,
                        cluster,
                        options,
                        ttl_ms,
                        stream,
                        profile,
                        epoch,
                    })),
                })
            }
            "replan" => {
                // Decode the delta at parse time: a malformed delta is a
                // protocol error, answered before any lookups run.
                let prior = v
                    .field("prior")
                    .and_then(|x| x.as_str())
                    .and_then(parse_fingerprint)
                    .map_err(|e| (id, WireError::from(e)))?;
                let delta_value = v.field("delta").map_err(|e| (id, WireError::from(e)))?;
                let delta =
                    ClusterDelta::decode(delta_value).map_err(|e| (id, WireError::from(e)))?;
                let (ttl_ms, stream, profile, epoch) = parse_ttl_stream(&v, id)?;
                Ok(Request {
                    id,
                    op: ReqOp::Replan(Box::new(ReplanRequest {
                        prior,
                        delta,
                        ttl_ms,
                        stream,
                        profile,
                        epoch,
                    })),
                })
            }
            "ring" => {
                // `{"op":"ring"}` queries; adding `"ring"` + `"self"`
                // installs that membership record on this daemon.
                let install = match v.get("ring") {
                    None | Some(Value::Null) => None,
                    Some(ring) => {
                        let info = RingInfo::decode(ring).map_err(|e| (id, WireError::from(e)))?;
                        let self_addr = v
                            .field("self")
                            .and_then(|x| x.as_str())
                            .map_err(|e| (id, WireError::from(e)))?
                            .to_string();
                        Some(Box::new(RingInstall { info, self_addr }))
                    }
                };
                Ok(Request { id, op: ReqOp::Ring(install) })
            }
            "replicate" => {
                let fp = v
                    .field("fp")
                    .and_then(|x| x.as_str())
                    .and_then(parse_fingerprint)
                    .map_err(|e| (id, WireError::from(e)))?;
                let plan_value = v.field("plan").map_err(|e| (id, WireError::from(e)))?;
                let plan = CachedPlan::decode(plan_value).map_err(|e| (id, WireError::from(e)))?;
                let req = match v.get("req") {
                    None | Some(Value::Null) => None,
                    Some(req) => Some(req.clone()),
                };
                Ok(Request {
                    id,
                    op: ReqOp::Replicate(Box::new(ReplicateRequest { fp, plan, req })),
                })
            }
            "stats" => Ok(Request { id, op: ReqOp::Stats }),
            "metrics" => Ok(Request { id, op: ReqOp::Metrics }),
            "trace" => {
                // Both fields optional: `n` caps how many recent traces
                // come back (default 16), `min_ms` keeps only requests at
                // least that slow (default 0 = all).
                let n = match v.get("n") {
                    None | Some(Value::Null) => 16,
                    Some(x) => x.as_usize().map_err(|e| (id, WireError::from(e)))?,
                };
                let min_ms = match v.get("min_ms") {
                    None | Some(Value::Null) => 0,
                    Some(x) => x.as_u64().map_err(|e| (id, WireError::from(e)))?,
                };
                Ok(Request { id, op: ReqOp::Trace { n, min_ms } })
            }
            "shutdown" => Ok(Request { id, op: ReqOp::Shutdown }),
            other => Err((id, WireError::new("decode", format!("unknown op `{other}`")))),
        }
    }
}

/// The optional `ttl_ms`, `stream`, `profile`, and `epoch` request
/// fields, shared by `plan` and `replan`.
#[allow(clippy::type_complexity)]
fn parse_ttl_stream(
    v: &Value,
    id: u64,
) -> Result<(Option<u64>, bool, bool, Option<u64>), (u64, WireError)> {
    // Optional cache-lifetime request: how long the synthesized plan
    // should stay valid (a tenant planning for a cluster it is about to
    // decommission bounds its own footprint).
    let ttl_ms = match v.get("ttl_ms") {
        None | Some(Value::Null) => None,
        Some(ms) => {
            let ms = ms.as_u64().map_err(|e| (id, WireError::from(e)))?;
            // Reject before any work: an unbounded TTL times 1e6 (ns)
            // would leave the codec's exact-integer range and panic the
            // persisting worker.
            if ms > MAX_TTL_MS {
                return Err((
                    id,
                    WireError::new(
                        "decode",
                        format!("ttl_ms {ms} exceeds the maximum {MAX_TTL_MS}"),
                    ),
                ));
            }
            Some(ms)
        }
    };
    let stream = match v.get("stream") {
        None | Some(Value::Null) => false,
        Some(flag) => flag.as_bool().map_err(|e| (id, WireError::from(e)))?,
    };
    let profile = match v.get("profile") {
        None | Some(Value::Null) => false,
        Some(flag) => flag.as_bool().map_err(|e| (id, WireError::from(e)))?,
    };
    // The sender's ring epoch, stamped by ring-routing clients and by
    // daemon-to-daemon proxy forwards.
    let epoch = match v.get("epoch") {
        None | Some(Value::Null) => None,
        Some(e) => Some(e.as_u64().map_err(|e| (id, WireError::from(e)))?),
    };
    Ok((ttl_ms, stream, profile, epoch))
}

// ---------------------------------------------------------------------------
// Cluster proxying
// ---------------------------------------------------------------------------

/// What a proxied owner's response line means for the local request.
enum ProxyReply {
    /// Relay the line to the client.
    Pass {
        outcome: Outcome,
        /// A successful plan-bearing frame — the only shape that streams.
        is_plan: bool,
    },
    /// The peer denies owning the fingerprint (our ring view is stale, or
    /// its is): fall back rather than relay the denial.
    NotOwner,
}

/// Classifies the owner's response line. `None` — unparseable or not a
/// response frame — is treated like an I/O failure by callers.
fn classify_proxy_reply(resp: &str) -> Option<ProxyReply> {
    let v = parse(resp).ok()?;
    let ok = v.get("ok")?.as_bool().ok()?;
    if !ok {
        let err = WireError::decode(v.get("error")?).ok()?;
        if err.is_not_owner() {
            return Some(ProxyReply::NotOwner);
        }
        return Some(ProxyReply::Pass { outcome: outcome_for_error(&err), is_plan: false });
    }
    let outcome = if v.get("replan").is_some() {
        Outcome::Replan
    } else {
        match v.get("source").and_then(|s| s.as_str().ok()) {
            Some("cache") => Outcome::Hit,
            Some("coalesced") => Outcome::Coalesced,
            _ => Outcome::Miss,
        }
    };
    Some(ProxyReply::Pass { outcome, is_plan: v.get("plan").is_some() })
}

/// The wire bytes relayed for a proxied response: the owner's canonical
/// line as-is — or, when the client asked to stream and the line is a
/// successful plan frame, its locally chunked encoding. Canonical JSON
/// makes the relay byte-identical to a locally rendered response.
fn proxied_bytes(id: u64, line: String, is_plan: bool, stream_chunk: Option<usize>) -> Vec<u8> {
    match stream_chunk {
        Some(chunk) if is_plan => {
            let mut bytes = Vec::with_capacity(line.len() + line.len() / 8);
            for frame in encode_stream(id, &line, chunk) {
                bytes.extend_from_slice(frame.as_bytes());
                bytes.push(b'\n');
            }
            bytes
        }
        _ => {
            let mut bytes = line.into_bytes();
            bytes.push(b'\n');
            bytes
        }
    }
}

/// The local-resolution tail shared by every proxy fallback: re-probe the
/// cache (the plan may have arrived — replication, a raced request —
/// since the routing decision), then attach to the single-flight dispatch
/// and deliver the rendered response when it resolves. `prior` carries a
/// replan's prior plan: it seeds the synthesis warm and produces the
/// response's `replan` diff.
#[allow(clippy::too_many_arguments)]
fn plan_attach_deliver(
    shared: &Arc<Shared>,
    id: u64,
    fp: u64,
    graph: &Value,
    cluster: &Value,
    options: &Value,
    ttl_ms: Option<u64>,
    want_profile: bool,
    stream_chunk: Option<usize>,
    prior: Option<(u64, Arc<CachedPlan>)>,
    mut tb: Option<TraceBuilder>,
    deliver: Deliver,
) {
    if let Some(cached) = shared.cache.get(fp) {
        shared.counters.hits.fetch_add(1, Ordering::Relaxed);
        if prior.is_some() {
            shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
        }
        let profile = profile_for(shared, fp, want_profile, false, &mut tb);
        let diff = prior.as_ref().map(|(pfp, pplan)| replan_diff(*pfp, pplan, &cached));
        let outcome = if prior.is_some() { Outcome::Replan } else { Outcome::Hit };
        let bytes = encode_span(&mut tb, || {
            plan_bytes(
                id,
                fp,
                PlanSource::Cache,
                &cached,
                diff.as_ref(),
                profile.as_deref(),
                stream_chunk,
            )
        });
        deliver(bytes, seal(tb, outcome));
        return;
    }
    let warm = prior.as_ref().map(|(_, plan)| plan.clone());
    let (slot, source) = match dispatch::attach(shared, fp, graph, cluster, options, ttl_ms, warm) {
        Attach::Resolved(source, Ok(cached)) => {
            if prior.is_some() {
                shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
            }
            let profile = profile_for(shared, fp, want_profile, false, &mut tb);
            let diff = prior.as_ref().map(|(pfp, pplan)| replan_diff(*pfp, pplan, &cached));
            let outcome =
                if prior.is_some() { Outcome::Replan } else { outcome_for_source(source) };
            let bytes = encode_span(&mut tb, || {
                plan_bytes(id, fp, source, &cached, diff.as_ref(), profile.as_deref(), stream_chunk)
            });
            deliver(bytes, seal(tb, outcome));
            return;
        }
        Attach::Resolved(_, Err(err)) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            let bytes = encode_span(&mut tb, || frame_bytes(&error_frame(id, &err)));
            deliver(bytes, seal(tb, outcome_for_error(&err)));
            return;
        }
        Attach::Leader(slot) => (slot, PlanSource::Synthesized),
        Attach::Follower(slot) => (slot, PlanSource::Coalesced),
    };
    let sub_shared = shared.clone();
    let sub_slot = slot.clone();
    dispatch::subscribe(
        &slot,
        Box::new(move |result: &PlanResult| {
            let mut tb = tb;
            attach_slot_spans(&mut tb, &sub_slot);
            let (bytes, outcome) = match result {
                Ok(plan) => {
                    if prior.is_some() {
                        sub_shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
                    }
                    let profile = profile_for(&sub_shared, fp, want_profile, true, &mut tb);
                    let diff = prior.as_ref().map(|(pfp, pplan)| replan_diff(*pfp, pplan, plan));
                    let outcome =
                        if prior.is_some() { Outcome::Replan } else { outcome_for_source(source) };
                    let bytes = encode_span(&mut tb, || {
                        plan_bytes(
                            id,
                            fp,
                            source,
                            plan,
                            diff.as_ref(),
                            profile.as_deref(),
                            stream_chunk,
                        )
                    });
                    (bytes, outcome)
                }
                Err(err) => {
                    sub_shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    let bytes = encode_span(&mut tb, || frame_bytes(&error_frame(id, err)));
                    (bytes, outcome_for_error(err))
                }
            };
            deliver(bytes, seal(tb, outcome));
        }),
    );
}

// ---------------------------------------------------------------------------
// Frame rendering
// ---------------------------------------------------------------------------

/// `{"id":N,"ok":false,"error":{...}}`.
pub(crate) fn error_frame(id: u64, err: &WireError) -> Value {
    Value::obj(vec![("id", Value::int(id)), ("ok", Value::Bool(false)), ("error", err.encode())])
}

/// `{"id":N,"ok":true}`.
fn ok_frame(id: u64) -> Value {
    Value::obj(vec![("id", Value::int(id)), ("ok", Value::Bool(true))])
}

/// The replan response's diff: compares cached plans by their canonical
/// instruction encodings and by the plan-level (ratio-final) estimated
/// times — the same numbers the response frames carry.
fn replan_diff(prior_fp: u64, prior: &CachedPlan, next: &CachedPlan) -> PlanDiff {
    PlanDiff::between(
        prior_fp,
        &prior.program,
        prior.estimated_time,
        &next.program,
        next.estimated_time,
    )
}

/// `{"id":N,"ok":true,"fingerprint":...,"source":...,"plan":{...}}`,
/// optionally extended with a `replan` diff field (the response shape of
/// the `replan` verb) and/or a `profile` field (when the request carried
/// `"profile": true` and the synthesis profile is still indexed).
fn plan_frame_with(
    id: u64,
    fp: u64,
    source: PlanSource,
    plan: &CachedPlan,
    diff: Option<&PlanDiff>,
    profile: Option<&SynthProfile>,
) -> Value {
    let mut fields = vec![
        ("id", Value::int(id)),
        ("ok", Value::Bool(true)),
        ("fingerprint", Value::Str(render_fingerprint(fp))),
        ("source", Value::Str(source.as_str().into())),
        (
            "plan",
            Value::obj(vec![
                ("rounds", plan.rounds.encode()),
                ("estimated_time", Value::Num(plan.estimated_time)),
                ("ratios", plan.ratios.encode()),
                ("program", plan.program.encode()),
            ]),
        ),
    ];
    if let Some(diff) = diff {
        fields.push(("replan", diff.encode()));
    }
    if let Some(profile) = profile {
        fields.push(("profile", encode_profile(profile)));
    }
    Value::obj(fields)
}

/// One rendered frame plus its newline.
pub(crate) fn frame_bytes(frame: &Value) -> Vec<u8> {
    let mut bytes = frame.render().into_bytes();
    bytes.push(b'\n');
    bytes
}

/// The wire bytes of a successful plan response: the canonical single
/// line, or — when the request advertised `"stream": true` — its chunked
/// encoding. The stream payload *is* the canonical line, so reassembly is
/// byte-identical to the unstreamed response.
pub(crate) fn plan_bytes(
    id: u64,
    fp: u64,
    source: PlanSource,
    plan: &CachedPlan,
    diff: Option<&PlanDiff>,
    profile: Option<&SynthProfile>,
    stream_chunk: Option<usize>,
) -> Vec<u8> {
    let line = plan_frame_with(id, fp, source, plan, diff, profile).render();
    match stream_chunk {
        None => {
            let mut bytes = line.into_bytes();
            bytes.push(b'\n');
            bytes
        }
        Some(chunk) => {
            let mut bytes = Vec::with_capacity(line.len() + line.len() / 8);
            for frame in encode_stream(id, &line, chunk) {
                bytes.extend_from_slice(frame.as_bytes());
                bytes.push(b'\n');
            }
            bytes
        }
    }
}
