//! The daemon's request brain, independent of any transport: feed it a
//! request line, get response bytes. The TCP event loop, the benches, and
//! the in-process tests all go through [`PlanService`].

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use hap_cluster::ClusterDelta;
use hap_codec::{
    encode_stream, parse, parse_fingerprint, render_fingerprint, request_fingerprint_values,
    Decode, Encode, PlanDiff, Value, WireError,
};
use mini_rayon::ThreadPool;

use crate::cache::{load_cache, CachePolicy, CachedPlan, PersistLog, PlanCache};
use crate::config::{ServiceConfig, MAX_TTL_MS};
use crate::dispatch::{self, Attach, PlanResult, QueueState, Shared};
use crate::replan::{self, ReplanIndex, RequestTriple};
use crate::stats::{Counters, NetGauges, StatsSnapshot};
use crate::sync::lock_recover;

/// A transport callback receiving rendered response bytes for a request
/// whose synthesis resolved after [`PlanService::submit`] returned. Runs
/// on the resolving worker's thread; must be quick (enqueue + wake).
pub(crate) type Deliver = Box<dyn FnOnce(Vec<u8>) + Send>;

/// How a plan response was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// Answered from the cache.
    Cache,
    /// This request ran the synthesis.
    Synthesized,
    /// Joined another request's in-flight synthesis.
    Coalesced,
}

impl PlanSource {
    fn as_str(self) -> &'static str {
        match self {
            PlanSource::Cache => "cache",
            PlanSource::Synthesized => "synthesized",
            PlanSource::Coalesced => "coalesced",
        }
    }
}

/// What [`PlanService::submit`] did with a request line.
pub(crate) enum Submission {
    /// The response is complete: one or more newline-terminated frames.
    Ready { bytes: Vec<u8>, shutdown: bool },
    /// A synthesis is in flight; the `deliver` callback will produce the
    /// bytes on a worker thread when it resolves.
    Pending,
}

/// The multi-tenant planning service: content-addressed cache,
/// single-flight synthesis, fixed worker pool.
pub struct PlanService {
    shared: Arc<Shared>,
    gauges: Arc<NetGauges>,
    worker_width: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl PlanService {
    /// Builds the service: loads (and compacts) the persistence log when
    /// configured, then starts the synthesis workers. Pool width follows
    /// mini-rayon's parallelism accounting (`workers` threads, `0` = all
    /// cores); each worker pulls one job at a time, so a slow synthesis
    /// never stalls queued work behind a batch barrier, and each job's
    /// wave-parallel A\* fans out over the vendored mini-rayon pool in
    /// turn (`options.synth.threads`).
    ///
    /// A log that fails to *decode* (interior corruption) refuses to boot
    /// — silently dropping persisted state would hide data loss (the
    /// torn-tail case a crash leaves behind is recovered, not fatal; see
    /// [`load_cache`]). A log that decodes but cannot be *rewritten or
    /// reopened* (disk full, permissions) starts the service in degraded
    /// memory-only persistence instead of failing: the daemon is the
    /// availability-critical piece, the log is not.
    pub fn new(config: ServiceConfig) -> Result<Self, WireError> {
        let policy = CachePolicy {
            admission: config.cache_admission,
            default_ttl: config.default_ttl_ms.map(std::time::Duration::from_millis),
        };
        let cache = PlanCache::with_policy(config.cache_capacity, policy);
        let mut persist = None;
        if let Some(path) = &config.cache_path {
            load_cache(&cache, path).map_err(WireError::from)?;
            persist = Some(PersistLog::start(&cache, path.clone(), config.fsync));
        }
        // The replan index remembers as many request triples as the cache
        // holds plans: a fingerprint whose plan is still cached should
        // normally still be replannable.
        let replans = Mutex::new(ReplanIndex::new(config.cache_capacity));
        let shared = Arc::new(Shared {
            config,
            cache,
            replans,
            inflight: Mutex::new(HashMap::new()),
            queue: (
                Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
                Condvar::new(),
            ),
            counters: Counters::default(),
            persist,
        });
        let width = ThreadPool::new(shared.config.workers).threads().max(1);
        let workers = (0..width)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || dispatch::worker_loop(&shared))
            })
            .collect();
        Ok(PlanService {
            shared,
            gauges: Arc::new(NetGauges::default()),
            worker_width: width,
            workers: Mutex::new(workers),
        })
    }

    /// The service's configuration.
    pub(crate) fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Synthesis worker threads running.
    pub fn worker_count(&self) -> usize {
        self.worker_width
    }

    /// The event-loop gauges (shared with the transport that updates
    /// them; zeros for a transportless in-process service).
    pub(crate) fn net_gauges(&self) -> Arc<NetGauges> {
        self.gauges.clone()
    }

    /// Handles one request line; returns the response line (no trailing
    /// newline) and whether the request asked the daemon to shut down.
    ///
    /// This is the synchronous path: a cache miss parks the calling
    /// thread until the synthesis resolves. `"stream": true` is ignored
    /// here — streaming is transport framing, and this entry point *is*
    /// the canonical unstreamed encoding.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        match self.handle_parsed(line) {
            Ok((response, shutdown)) => (response.render(), shutdown),
            Err((id, err)) => {
                self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                (error_frame(id, &err).render(), false)
            }
        }
    }

    fn handle_parsed(&self, line: &str) -> Result<(Value, bool), (u64, WireError)> {
        let req = Request::parse(line)?;
        match req.op {
            ReqOp::Plan(plan) => {
                let (source, fp, result) = self.plan_values_with_ttl(
                    &plan.graph,
                    &plan.cluster,
                    &plan.options,
                    plan.ttl_ms,
                );
                let plan_arc = result.map_err(|e| (req.id, e))?;
                Ok((plan_frame(req.id, fp, source, &plan_arc), false))
            }
            ReqOp::Replan(rp) => {
                let (source, fp, plan, diff) = self
                    .replan_values_with_ttl(rp.prior, &rp.delta, rp.ttl_ms)
                    .map_err(|e| (req.id, e))?;
                Ok((plan_frame_with(req.id, fp, source, &plan, Some(&diff)), false))
            }
            ReqOp::Stats => Ok((self.stats_frame(req.id), false)),
            ReqOp::Shutdown => Ok((ok_frame(req.id), true)),
        }
    }

    /// Remembers the request triple behind a fingerprint so a later
    /// `replan` can rebuild it. Cheap when already recorded.
    fn record_request(&self, fp: u64, graph: &Value, cluster: &Value, options: &Value) {
        let mut index = lock_recover(&self.shared.replans);
        if !index.contains(fp) {
            index.record(
                fp,
                Arc::new(RequestTriple {
                    graph: graph.clone(),
                    cluster: cluster.clone(),
                    options: options.clone(),
                }),
            );
        }
    }

    /// The planning core: cache lookup, single-flight dedup, queue + wait.
    /// Exposed for in-process callers (tests, benches) that want to skip
    /// the socket but exercise the identical path.
    pub fn plan_values(
        &self,
        graph: &Value,
        cluster: &Value,
        options: &Value,
    ) -> (PlanSource, u64, PlanResult) {
        self.plan_values_with_ttl(graph, cluster, options, None)
    }

    /// [`PlanService::plan_values`] with a per-request cache TTL.
    pub fn plan_values_with_ttl(
        &self,
        graph: &Value,
        cluster: &Value,
        options: &Value,
        ttl_ms: Option<u64>,
    ) -> (PlanSource, u64, PlanResult) {
        let shared = &self.shared;
        let fp = request_fingerprint_values(graph, cluster, options);
        self.record_request(fp, graph, cluster, options);
        if let Some(plan) = shared.cache.get(fp) {
            shared.counters.hits.fetch_add(1, Ordering::Relaxed);
            return (PlanSource::Cache, fp, Ok(plan));
        }
        shared.counters.misses.fetch_add(1, Ordering::Relaxed);
        match dispatch::attach(shared, fp, graph, cluster, options, ttl_ms, None) {
            Attach::Resolved(source, result) => (source, fp, result),
            Attach::Leader(slot) => (PlanSource::Synthesized, fp, dispatch::wait_sync(&slot)),
            Attach::Follower(slot) => (PlanSource::Coalesced, fp, dispatch::wait_sync(&slot)),
        }
    }

    /// Replans a previously planned request after a cluster change: the
    /// prior plan (named by its request fingerprint) is re-costed on the
    /// post-delta cluster and seeds the synthesis as its incumbent, so an
    /// unchanged-optimal plan is confirmed at replay cost instead of
    /// re-searched. Returns the plan for the post-delta request — always
    /// bit-identical to what cold synthesis on that cluster would produce
    /// (warm seeds only survive exact cost ties) — plus the machine-
    /// readable [`PlanDiff`] against the prior plan.
    pub fn replan_values(
        &self,
        prior_fp: u64,
        delta: &ClusterDelta,
    ) -> Result<(PlanSource, u64, Arc<CachedPlan>, PlanDiff), WireError> {
        self.replan_values_with_ttl(prior_fp, delta, None)
    }

    /// [`PlanService::replan_values`] with a per-request cache TTL.
    pub fn replan_values_with_ttl(
        &self,
        prior_fp: u64,
        delta: &ClusterDelta,
        ttl_ms: Option<u64>,
    ) -> Result<(PlanSource, u64, Arc<CachedPlan>, PlanDiff), WireError> {
        let shared = &self.shared;
        let prep = replan::prepare(shared, prior_fp, delta)?;
        if let Some(plan) = shared.cache.get(prep.fp) {
            shared.counters.hits.fetch_add(1, Ordering::Relaxed);
            shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
            let diff = replan_diff(prior_fp, &prep.prior, &plan);
            return Ok((PlanSource::Cache, prep.fp, plan, diff));
        }
        shared.counters.misses.fetch_add(1, Ordering::Relaxed);
        let (source, result) = match dispatch::attach(
            shared,
            prep.fp,
            &prep.triple.graph,
            &prep.triple.cluster,
            &prep.triple.options,
            ttl_ms,
            Some(prep.prior.clone()),
        ) {
            Attach::Resolved(source, result) => (source, result),
            Attach::Leader(slot) => (PlanSource::Synthesized, dispatch::wait_sync(&slot)),
            Attach::Follower(slot) => (PlanSource::Coalesced, dispatch::wait_sync(&slot)),
        };
        let plan = result?;
        shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
        let diff = replan_diff(prior_fp, &prep.prior, &plan);
        Ok((source, prep.fp, plan, diff))
    }

    /// The asynchronous request path used by the event loop: never blocks
    /// the calling thread on a synthesis. Inline-answerable requests
    /// (cache hits, stats, shutdown, malformed frames, shed) return
    /// [`Submission::Ready`]; a queued or joined synthesis returns
    /// [`Submission::Pending`] and `deliver` later receives the rendered
    /// response bytes on the resolving worker's thread.
    pub(crate) fn submit(&self, line: &str, deliver: Deliver) -> Submission {
        let req = match Request::parse(line) {
            Ok(req) => req,
            Err((id, err)) => {
                return Submission::Ready { bytes: self.render_error(id, &err), shutdown: false }
            }
        };
        let id = req.id;
        match req.op {
            ReqOp::Stats => {
                Submission::Ready { bytes: frame_bytes(&self.stats_frame(id)), shutdown: false }
            }
            ReqOp::Shutdown => {
                Submission::Ready { bytes: frame_bytes(&ok_frame(id)), shutdown: true }
            }
            ReqOp::Plan(plan) => {
                let shared = &self.shared;
                let stream_chunk = plan.stream.then_some(shared.config.stream_chunk_bytes);
                let fp = request_fingerprint_values(&plan.graph, &plan.cluster, &plan.options);
                self.record_request(fp, &plan.graph, &plan.cluster, &plan.options);
                if let Some(cached) = shared.cache.get(fp) {
                    shared.counters.hits.fetch_add(1, Ordering::Relaxed);
                    return Submission::Ready {
                        bytes: plan_bytes(id, fp, PlanSource::Cache, &cached, None, stream_chunk),
                        shutdown: false,
                    };
                }
                shared.counters.misses.fetch_add(1, Ordering::Relaxed);
                let attach = dispatch::attach(
                    shared,
                    fp,
                    &plan.graph,
                    &plan.cluster,
                    &plan.options,
                    plan.ttl_ms,
                    None,
                );
                let (slot, source) = match attach {
                    // A leadership cache race resolves as a hit, exactly
                    // like the sync path's re-probe.
                    Attach::Resolved(source, Ok(cached)) => {
                        return Submission::Ready {
                            bytes: plan_bytes(id, fp, source, &cached, None, stream_chunk),
                            shutdown: false,
                        }
                    }
                    Attach::Resolved(_, Err(err)) => {
                        return Submission::Ready {
                            bytes: self.render_error(id, &err),
                            shutdown: false,
                        }
                    }
                    Attach::Leader(slot) => (slot, PlanSource::Synthesized),
                    Attach::Follower(slot) => (slot, PlanSource::Coalesced),
                };
                // Subscribe a response renderer: each request renders with
                // its own id, source, and streaming preference when the
                // shared synthesis resolves.
                let counters_shared = self.shared.clone();
                dispatch::subscribe(
                    &slot,
                    Box::new(move |result: &PlanResult| {
                        let bytes = match result {
                            Ok(plan) => plan_bytes(id, fp, source, plan, None, stream_chunk),
                            Err(err) => {
                                counters_shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                                frame_bytes(&error_frame(id, err))
                            }
                        };
                        deliver(bytes);
                    }),
                );
                Submission::Pending
            }
            ReqOp::Replan(rp) => {
                let shared = &self.shared;
                let stream_chunk = rp.stream.then_some(shared.config.stream_chunk_bytes);
                let prep = match replan::prepare(shared, rp.prior, &rp.delta) {
                    Ok(prep) => prep,
                    Err(err) => {
                        return Submission::Ready {
                            bytes: self.render_error(id, &err),
                            shutdown: false,
                        }
                    }
                };
                let prior_fp = rp.prior;
                let fp = prep.fp;
                if let Some(cached) = shared.cache.get(fp) {
                    shared.counters.hits.fetch_add(1, Ordering::Relaxed);
                    shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
                    let diff = replan_diff(prior_fp, &prep.prior, &cached);
                    return Submission::Ready {
                        bytes: plan_bytes(
                            id,
                            fp,
                            PlanSource::Cache,
                            &cached,
                            Some(&diff),
                            stream_chunk,
                        ),
                        shutdown: false,
                    };
                }
                shared.counters.misses.fetch_add(1, Ordering::Relaxed);
                let attach = dispatch::attach(
                    shared,
                    fp,
                    &prep.triple.graph,
                    &prep.triple.cluster,
                    &prep.triple.options,
                    rp.ttl_ms,
                    Some(prep.prior.clone()),
                );
                let (slot, source) = match attach {
                    Attach::Resolved(source, Ok(cached)) => {
                        shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
                        let diff = replan_diff(prior_fp, &prep.prior, &cached);
                        return Submission::Ready {
                            bytes: plan_bytes(id, fp, source, &cached, Some(&diff), stream_chunk),
                            shutdown: false,
                        };
                    }
                    Attach::Resolved(_, Err(err)) => {
                        return Submission::Ready {
                            bytes: self.render_error(id, &err),
                            shutdown: false,
                        }
                    }
                    Attach::Leader(slot) => (slot, PlanSource::Synthesized),
                    Attach::Follower(slot) => (slot, PlanSource::Coalesced),
                };
                let counters_shared = self.shared.clone();
                let prior_plan = prep.prior.clone();
                dispatch::subscribe(
                    &slot,
                    Box::new(move |result: &PlanResult| {
                        let bytes = match result {
                            Ok(plan) => {
                                counters_shared.counters.replanned.fetch_add(1, Ordering::Relaxed);
                                let diff = replan_diff(prior_fp, &prior_plan, plan);
                                plan_bytes(id, fp, source, plan, Some(&diff), stream_chunk)
                            }
                            Err(err) => {
                                counters_shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                                frame_bytes(&error_frame(id, err))
                            }
                        };
                        deliver(bytes);
                    }),
                );
                Submission::Pending
            }
        }
    }

    pub(crate) fn render_error(&self, id: u64, err: &WireError) -> Vec<u8> {
        self.shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        frame_bytes(&error_frame(id, err))
    }

    fn stats_frame(&self, id: u64) -> Value {
        Value::obj(vec![
            ("id", Value::int(id)),
            ("ok", Value::Bool(true)),
            ("stats", self.stats().encode()),
        ])
    }

    /// A consistent stats snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let shared = &self.shared;
        StatsSnapshot {
            entries: shared.cache.len() as u64,
            hits: shared.counters.hits.load(Ordering::Relaxed),
            misses: shared.counters.misses.load(Ordering::Relaxed),
            coalesced: shared.counters.coalesced.load(Ordering::Relaxed),
            synthesized: shared.counters.synthesized.load(Ordering::Relaxed),
            evictions: shared.cache.evictions(),
            warm_seeded: shared.counters.warm_seeded.load(Ordering::Relaxed),
            errors: shared.counters.errors.load(Ordering::Relaxed),
            in_flight: lock_recover(&shared.inflight).len() as u64,
            shed: shared.counters.shed.load(Ordering::Relaxed),
            admission_rejected: shared.cache.rejected(),
            expired: shared.cache.expired(),
            replanned: shared.counters.replanned.load(Ordering::Relaxed),
            persist_errors: shared.persist.as_ref().map(PersistLog::errors).unwrap_or(0),
            persistence_degraded: shared.persist.as_ref().is_some_and(PersistLog::degraded) as u64,
            panics: shared.counters.panics.load(Ordering::Relaxed),
            open_connections: self.gauges.open_connections.load(Ordering::Relaxed),
            peak_connections: self.gauges.peak_connections.load(Ordering::Relaxed),
            read_buf_hwm: self.gauges.read_buf_hwm.load(Ordering::Relaxed),
            write_buf_hwm: self.gauges.write_buf_hwm.load(Ordering::Relaxed),
            idle_closed: self.gauges.idle_closed.load(Ordering::Relaxed),
        }
    }

    /// Drains the queue and stops the workers, then flushes any unsynced
    /// appends. Idempotent. A worker that somehow died of an un-isolated
    /// panic is logged as a failed join, never propagated — shutdown must
    /// always complete.
    pub fn stop(&self) {
        let (queue, cvar) = &self.shared.queue;
        lock_recover(queue).shutdown = true;
        cvar.notify_all();
        for handle in lock_recover(&self.workers).drain(..) {
            let _ = handle.join();
        }
        if let Some(persist) = &self.shared.persist {
            persist.sync();
        }
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Request parsing shared by the sync and async paths
// ---------------------------------------------------------------------------

struct PlanRequest {
    graph: Value,
    cluster: Value,
    options: Value,
    ttl_ms: Option<u64>,
    stream: bool,
}

struct ReplanRequest {
    /// Fingerprint of the previously planned request to start from.
    prior: u64,
    /// How the cluster changed since that plan.
    delta: ClusterDelta,
    ttl_ms: Option<u64>,
    stream: bool,
}

enum ReqOp {
    Plan(Box<PlanRequest>),
    Replan(Box<ReplanRequest>),
    Stats,
    Shutdown,
}

struct Request {
    id: u64,
    op: ReqOp,
}

impl Request {
    fn parse(line: &str) -> Result<Request, (u64, WireError)> {
        let v = parse(line).map_err(|e| (0, WireError::from(e)))?;
        let id = v.get("id").and_then(|x| x.as_u64().ok()).unwrap_or(0);
        let op = v
            .get("op")
            .and_then(|x| x.as_str().ok())
            .ok_or_else(|| (id, WireError::new("decode", "missing `op`")))?;
        match op {
            "plan" => {
                let fetch = |key: &str| v.field(key).cloned().map_err(|e| (id, WireError::from(e)));
                let (graph, cluster, options) =
                    (fetch("graph")?, fetch("cluster")?, fetch("options")?);
                let (ttl_ms, stream) = parse_ttl_stream(&v, id)?;
                Ok(Request {
                    id,
                    op: ReqOp::Plan(Box::new(PlanRequest {
                        graph,
                        cluster,
                        options,
                        ttl_ms,
                        stream,
                    })),
                })
            }
            "replan" => {
                // Decode the delta at parse time: a malformed delta is a
                // protocol error, answered before any lookups run.
                let prior = v
                    .field("prior")
                    .and_then(|x| x.as_str())
                    .and_then(parse_fingerprint)
                    .map_err(|e| (id, WireError::from(e)))?;
                let delta_value = v.field("delta").map_err(|e| (id, WireError::from(e)))?;
                let delta =
                    ClusterDelta::decode(delta_value).map_err(|e| (id, WireError::from(e)))?;
                let (ttl_ms, stream) = parse_ttl_stream(&v, id)?;
                Ok(Request {
                    id,
                    op: ReqOp::Replan(Box::new(ReplanRequest { prior, delta, ttl_ms, stream })),
                })
            }
            "stats" => Ok(Request { id, op: ReqOp::Stats }),
            "shutdown" => Ok(Request { id, op: ReqOp::Shutdown }),
            other => Err((id, WireError::new("decode", format!("unknown op `{other}`")))),
        }
    }
}

/// The optional `ttl_ms` and `stream` request fields, shared by `plan`
/// and `replan`.
fn parse_ttl_stream(v: &Value, id: u64) -> Result<(Option<u64>, bool), (u64, WireError)> {
    // Optional cache-lifetime request: how long the synthesized plan
    // should stay valid (a tenant planning for a cluster it is about to
    // decommission bounds its own footprint).
    let ttl_ms = match v.get("ttl_ms") {
        None | Some(Value::Null) => None,
        Some(ms) => {
            let ms = ms.as_u64().map_err(|e| (id, WireError::from(e)))?;
            // Reject before any work: an unbounded TTL times 1e6 (ns)
            // would leave the codec's exact-integer range and panic the
            // persisting worker.
            if ms > MAX_TTL_MS {
                return Err((
                    id,
                    WireError::new(
                        "decode",
                        format!("ttl_ms {ms} exceeds the maximum {MAX_TTL_MS}"),
                    ),
                ));
            }
            Some(ms)
        }
    };
    let stream = match v.get("stream") {
        None | Some(Value::Null) => false,
        Some(flag) => flag.as_bool().map_err(|e| (id, WireError::from(e)))?,
    };
    Ok((ttl_ms, stream))
}

// ---------------------------------------------------------------------------
// Frame rendering
// ---------------------------------------------------------------------------

/// `{"id":N,"ok":false,"error":{...}}`.
pub(crate) fn error_frame(id: u64, err: &WireError) -> Value {
    Value::obj(vec![("id", Value::int(id)), ("ok", Value::Bool(false)), ("error", err.encode())])
}

/// `{"id":N,"ok":true}`.
fn ok_frame(id: u64) -> Value {
    Value::obj(vec![("id", Value::int(id)), ("ok", Value::Bool(true))])
}

/// The replan response's diff: compares cached plans by their canonical
/// instruction encodings and by the plan-level (ratio-final) estimated
/// times — the same numbers the response frames carry.
fn replan_diff(prior_fp: u64, prior: &CachedPlan, next: &CachedPlan) -> PlanDiff {
    PlanDiff::between(
        prior_fp,
        &prior.program,
        prior.estimated_time,
        &next.program,
        next.estimated_time,
    )
}

/// `{"id":N,"ok":true,"fingerprint":...,"source":...,"plan":{...}}`.
fn plan_frame(id: u64, fp: u64, source: PlanSource, plan: &CachedPlan) -> Value {
    plan_frame_with(id, fp, source, plan, None)
}

/// [`plan_frame`], optionally extended with a `replan` diff field — the
/// response shape of the `replan` verb.
fn plan_frame_with(
    id: u64,
    fp: u64,
    source: PlanSource,
    plan: &CachedPlan,
    diff: Option<&PlanDiff>,
) -> Value {
    let mut fields = vec![
        ("id", Value::int(id)),
        ("ok", Value::Bool(true)),
        ("fingerprint", Value::Str(render_fingerprint(fp))),
        ("source", Value::Str(source.as_str().into())),
        (
            "plan",
            Value::obj(vec![
                ("rounds", plan.rounds.encode()),
                ("estimated_time", Value::Num(plan.estimated_time)),
                ("ratios", plan.ratios.encode()),
                ("program", plan.program.encode()),
            ]),
        ),
    ];
    if let Some(diff) = diff {
        fields.push(("replan", diff.encode()));
    }
    Value::obj(fields)
}

/// One rendered frame plus its newline.
pub(crate) fn frame_bytes(frame: &Value) -> Vec<u8> {
    let mut bytes = frame.render().into_bytes();
    bytes.push(b'\n');
    bytes
}

/// The wire bytes of a successful plan response: the canonical single
/// line, or — when the request advertised `"stream": true` — its chunked
/// encoding. The stream payload *is* the canonical line, so reassembly is
/// byte-identical to the unstreamed response.
pub(crate) fn plan_bytes(
    id: u64,
    fp: u64,
    source: PlanSource,
    plan: &CachedPlan,
    diff: Option<&PlanDiff>,
    stream_chunk: Option<usize>,
) -> Vec<u8> {
    let line = plan_frame_with(id, fp, source, plan, diff).render();
    match stream_chunk {
        None => {
            let mut bytes = line.into_bytes();
            bytes.push(b'\n');
            bytes
        }
        Some(chunk) => {
            let mut bytes = Vec::with_capacity(line.len() + line.len() / 8);
            for frame in encode_stream(id, &line, chunk) {
                bytes.extend_from_slice(frame.as_bytes());
                bytes.push(b'\n');
            }
            bytes
        }
    }
}
