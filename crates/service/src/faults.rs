//! Seeded failpoint registry for deterministic fault injection.
//!
//! The durability-critical paths of the service — log appends, atomic
//! compaction, synthesis dispatch — consult this registry at named
//! *failpoints* before performing the real operation. In production the
//! registry is empty and each consultation is a single relaxed atomic
//! load; under test, a harness arms a failpoint with a [`Fault`] and the
//! next consultation (after an optional skip count) observes it exactly
//! once:
//!
//! * [`Fault::Error`] — the operation fails with an injected I/O error
//!   (ENOSPC, EIO, ...), as if the disk refused it.
//! * [`Fault::ShortWrite`] — only the first `n` bytes of the payload
//!   reach the file before the operation fails: a torn write, the
//!   on-disk state a crash mid-`write(2)` leaves behind.
//! * [`Fault::Panic`] — the consulting thread panics, simulating a bug
//!   in a synthesis job (dispatch must isolate it).
//!
//! Faults are one-shot: firing disarms the point, so a retry after the
//! injected failure behaves like a healed disk — which is exactly the
//! recovery path the torture tests need to exercise.
//!
//! The registry is process-global (the code under test reaches it through
//! free functions), so tests that arm faults must serialize: hold the
//! guard returned by [`exclusive`] for the duration of the test. The
//! guard clears the registry on acquisition *and* on drop, so a panicking
//! test cannot leak an armed fault into the next one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Failpoint in [`crate::PersistLog`] appends, consulted once per record
/// before the bytes are written.
pub const APPEND_WRITE: &str = "persist.append.write";
/// Failpoint before compaction creates the temporary file.
pub const COMPACT_CREATE: &str = "persist.compact.create";
/// Failpoint before each record write during compaction.
pub const COMPACT_WRITE: &str = "persist.compact.write";
/// Failpoint before compaction fsyncs the temporary file.
pub const COMPACT_FSYNC: &str = "persist.compact.fsync";
/// Failpoint before compaction renames the temporary file over the log.
pub const COMPACT_RENAME: &str = "persist.compact.rename";
/// Failpoint before compaction fsyncs the log's parent directory (the
/// rename has already happened: the new log is live).
pub const COMPACT_DIR_FSYNC: &str = "persist.compact.dir_fsync";
/// Failpoint at the head of every synthesis job, inside the dispatch
/// layer's `catch_unwind` boundary. Arm with [`Fault::Panic`] to test
/// panic isolation.
pub const SYNTHESIZE: &str = "dispatch.synthesize";

/// What an armed failpoint does when it fires.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Fail the operation with this I/O error; no bytes are written.
    Error(std::io::ErrorKind, String),
    /// Write only the first `n` bytes of the operation's payload, then
    /// fail — a torn write.
    ShortWrite(usize),
    /// Panic on the consulting thread with this message.
    Panic(String),
}

impl Fault {
    pub(crate) fn into_io_error(self) -> std::io::Error {
        match self {
            Fault::Error(kind, msg) => std::io::Error::new(kind, format!("injected fault: {msg}")),
            Fault::ShortWrite(n) => std::io::Error::other(format!(
                "injected fault: torn write ({n} bytes reached the disk)"
            )),
            Fault::Panic(msg) => {
                panic!("injected fault: {msg}")
            }
        }
    }
}

/// An armed failpoint: fires on the `(skip + 1)`-th consultation, once.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Consultations to let pass before firing (0 = fire on the next one).
    pub skip: u64,
    /// The fault to inject when firing.
    pub fault: Fault,
}

impl FaultSpec {
    /// Fires on the next consultation.
    pub fn now(fault: Fault) -> Self {
        FaultSpec { skip: 0, fault }
    }

    /// Fires on the `(skip + 1)`-th consultation.
    pub fn after(skip: u64, fault: Fault) -> Self {
        FaultSpec { skip, fault }
    }
}

/// Armed-point count, kept in sync with the registry map so the
/// production fast path is one relaxed load and no lock.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, FaultSpec>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FaultSpec>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> MutexGuard<'static, HashMap<String, FaultSpec>> {
    // A test that panicked while holding the lock poisons it; the map is
    // still consistent (every mutation is a single insert/remove), so
    // recover rather than cascade the poison.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `point` with `spec`, replacing any previous arming of the same
/// point. Tests must hold the [`exclusive`] guard while arming.
pub fn arm(point: &str, spec: FaultSpec) {
    let mut map = lock_registry();
    map.insert(point.to_string(), spec);
    ARMED.store(map.len(), Ordering::Release);
}

/// Disarms every failpoint.
pub fn clear() {
    let mut map = lock_registry();
    map.clear();
    ARMED.store(0, Ordering::Release);
}

/// Consults a failpoint: `None` in production (nothing armed) or while
/// the armed spec is still skipping; `Some(fault)` exactly once when it
/// fires. Callers apply the fault to their own operation.
pub(crate) fn hit(point: &str) -> Option<Fault> {
    if ARMED.load(Ordering::Acquire) == 0 {
        return None;
    }
    let mut map = lock_registry();
    match map.get_mut(point) {
        None => None,
        Some(spec) if spec.skip > 0 => {
            spec.skip -= 1;
            None
        }
        Some(_) => {
            let spec = map.remove(point).expect("armed spec vanished under the registry lock");
            ARMED.store(map.len(), Ordering::Release);
            Some(spec.fault)
        }
    }
}

/// Consults a failpoint that can only panic (dispatch's synthesis entry).
/// A non-`Panic` fault armed here still aborts the job — it panics with
/// the injected error's message — so a mis-armed test fails loudly
/// instead of silently passing.
pub(crate) fn check_panic(point: &str) {
    if let Some(fault) = hit(point) {
        match fault {
            Fault::Panic(msg) => panic!("injected fault: {msg}"),
            other => panic!("injected fault: {:?} armed at panic-only point {point}", other),
        }
    }
}

/// Serializes fault-injecting tests. The registry is process-global and
/// `cargo test` runs tests on parallel threads, so any test that arms a
/// fault must hold this guard from before the first [`arm`] until its
/// last assertion. The registry is cleared when the guard is acquired and
/// again when it drops.
pub fn exclusive() -> ExclusiveFaults {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner);
    clear();
    ExclusiveFaults { _guard: guard }
}

/// Guard returned by [`exclusive`]; clears the registry on drop.
pub struct ExclusiveFaults {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for ExclusiveFaults {
    fn drop(&mut self) {
        clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_are_one_shot_and_respect_skip() {
        let _x = exclusive();
        assert!(hit("p").is_none(), "unarmed point must not fire");
        arm("p", FaultSpec::after(2, Fault::Error(std::io::ErrorKind::Other, "boom".into())));
        assert!(hit("p").is_none(), "skip 2: first consult passes");
        assert!(hit("q").is_none(), "other points never fire");
        assert!(hit("p").is_none(), "skip 2: second consult passes");
        let fired = hit("p");
        assert!(matches!(fired, Some(Fault::Error(..))), "third consult fires: {fired:?}");
        assert!(hit("p").is_none(), "one-shot: disarmed after firing");
    }

    #[test]
    fn exclusive_guard_clears_on_drop() {
        {
            let _x = exclusive();
            arm("leak", FaultSpec::now(Fault::ShortWrite(3)));
        }
        let _x = exclusive();
        assert!(hit("leak").is_none(), "guard drop must disarm leftovers");
    }
}
