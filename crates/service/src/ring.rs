//! The consistent-hash ring that assigns plan fingerprints to daemons.
//!
//! A `hap-cluster` deployment places every member daemon on a hash circle
//! at `vnodes` points (tokens); a fingerprint is owned by the first
//! `replication` *distinct* members clockwise from the fingerprint's own
//! point. Both hashes reuse the codec's FNV-1a primitive — the same one
//! that content-addresses requests — finished with a splitmix64
//! avalanche (see [`mix64`]) so near-identical member strings still land
//! well-spread tokens.
//!
//! The ring is a pure function of a [`RingInfo`] membership record: every
//! holder of the same record (daemons, clients, tests) expands it to the
//! same token map and therefore computes the same owners for every
//! fingerprint. Only the membership travels on the wire.
//!
//! Consistency property (pinned by the proptests below): adding one member
//! only moves fingerprints *to* the new member, and removing one only moves
//! the fingerprints it owned — unrelated fingerprints never change primary
//! owner. That bounds the cache churn of a join/leave to the joining or
//! leaving node's share of the keyspace.

use hap_codec::RingInfo;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over raw bytes — the same digest `hap_codec` uses for content
/// fingerprints, inlined here so the ring never drifts from it.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Finalizing avalanche (splitmix64's mixer). FNV-1a diffuses
/// trailing-byte differences into the low-order bits only, and ring
/// positions compare on the *high* bits — without this, two members
/// differing just in the port ("host:7641" vs "host:7642", the normal
/// co-hosted deployment) land near-adjacent tokens, a rejoined daemon
/// inherits its predecessor's arcs almost verbatim, and the ownership
/// spread skews far off 1/N.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The point on the circle where a fingerprint lives.
fn key_point(fp: u64) -> u64 {
    mix64(fnv1a64(&fp.to_le_bytes()))
}

/// The token of one virtual node of one member.
fn vnode_token(addr: &str, vnode: u32) -> u64 {
    let mut bytes = Vec::with_capacity(addr.len() + 12);
    bytes.extend_from_slice(addr.as_bytes());
    bytes.push(b'#');
    bytes.extend_from_slice(vnode.to_string().as_bytes());
    mix64(fnv1a64(&bytes))
}

/// An expanded consistent-hash ring: the sorted token map plus the
/// membership record it was built from.
#[derive(Clone, Debug)]
pub struct Ring {
    info: RingInfo,
    /// `(token, member index)`, sorted by token (ties broken by index so
    /// the expansion is deterministic even on token collisions).
    tokens: Vec<(u64, u32)>,
}

impl Ring {
    /// Expands a membership record into a ring. An empty membership yields
    /// a ring that owns nothing (`owners` returns no members).
    pub fn build(info: RingInfo) -> Ring {
        let vnodes = info.vnodes.max(1);
        let mut tokens = Vec::with_capacity(info.members.len() * vnodes as usize);
        for (idx, addr) in info.members.iter().enumerate() {
            for vnode in 0..vnodes {
                tokens.push((vnode_token(addr, vnode), idx as u32));
            }
        }
        tokens.sort_unstable();
        Ring { info, tokens }
    }

    /// The membership record this ring expands.
    pub fn info(&self) -> &RingInfo {
        &self.info
    }

    /// The membership epoch (0 = no ring installed).
    pub fn epoch(&self) -> u64 {
        self.info.epoch
    }

    /// The first `min(replication, members)` distinct members clockwise
    /// from the fingerprint's point: its owners, primary first.
    pub fn owners(&self, fp: u64) -> Vec<&str> {
        self.owners_k(fp, self.info.replication.max(1) as usize)
    }

    /// Like [`Ring::owners`] with an explicit owner count.
    pub fn owners_k(&self, fp: u64, k: usize) -> Vec<&str> {
        let members = self.info.members.len();
        let want = k.min(members);
        let mut out: Vec<&str> = Vec::with_capacity(want);
        if want == 0 {
            return out;
        }
        let point = key_point(fp);
        let start = self.tokens.partition_point(|&(token, _)| token < point);
        let mut picked = vec![false; members];
        for step in 0..self.tokens.len() {
            let (_, idx) = self.tokens[(start + step) % self.tokens.len()];
            if !picked[idx as usize] {
                picked[idx as usize] = true;
                out.push(self.info.members[idx as usize].as_str());
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The fingerprint's primary owner — the ring-wide single-flight
    /// leader. `None` only on an empty ring.
    pub fn primary(&self, fp: u64) -> Option<&str> {
        let point = key_point(fp);
        if self.tokens.is_empty() {
            return None;
        }
        let start = self.tokens.partition_point(|&(token, _)| token < point);
        let (_, idx) = self.tokens[start % self.tokens.len()];
        Some(self.info.members[idx as usize].as_str())
    }

    /// True when `addr` is among the fingerprint's owners.
    pub fn is_owner(&self, fp: u64, addr: &str) -> bool {
        self.owners(fp).contains(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn info(n: usize, vnodes: u32, replication: u32) -> RingInfo {
        RingInfo {
            epoch: 1,
            vnodes,
            replication,
            members: (0..n).map(|i| format!("10.0.0.{i}:7641")).collect(),
        }
    }

    #[test]
    fn owners_are_distinct_and_primary_first() {
        let ring = Ring::build(info(5, 64, 3));
        for fp in 0..256u64 {
            let owners = ring.owners(fp);
            assert_eq!(owners.len(), 3);
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "owners must be distinct members");
            assert_eq!(ring.primary(fp), Some(owners[0]));
            assert!(ring.is_owner(fp, owners[2]));
        }
    }

    #[test]
    fn replication_clamps_to_membership() {
        let ring = Ring::build(info(2, 64, 3));
        assert_eq!(ring.owners(42).len(), 2);
        let empty = Ring::build(RingInfo::empty(64, 2));
        assert!(empty.owners(42).is_empty());
        assert_eq!(empty.primary(42), None);
    }

    #[test]
    fn same_membership_same_owners() {
        // Two independent expansions of one record agree everywhere — the
        // property that lets clients route without asking the daemons.
        let a = Ring::build(info(4, 64, 2));
        let b = Ring::build(info(4, 64, 2));
        for fp in 0..512u64 {
            assert_eq!(a.owners(fp), b.owners(fp));
        }
    }

    #[test]
    fn co_hosted_members_spread_fairly() {
        // Members differing only in the port (one host, many daemons) must
        // still split the keyspace near 1/N — this is the deployment the
        // mix64 finalizer exists for, and the geometry behind the churn
        // tests in tests/cluster.rs.
        for trial in 0..10u32 {
            let base = 40_000 + trial * 7;
            let members: Vec<String> = (0..2).map(|i| format!("127.0.0.1:{}", base + i)).collect();
            let ring = Ring::build(RingInfo {
                epoch: 1,
                vnodes: 64,
                replication: 1,
                members: members.clone(),
            });
            let first =
                (0..256u64).filter(|&fp| ring.primary(fp) == Some(members[0].as_str())).count();
            assert!(
                (64..=192).contains(&first),
                "co-hosted 2-member ring splits 256 fps {first}/{} (fair 128)",
                256 - first
            );
        }
    }

    proptest! {
        /// Ownership spread: with 64 vnodes, every member's share of random
        /// fingerprints stays within generous bounds of the fair 1/N.
        #[test]
        fn ownership_spread_is_bounded(
            n in 2usize..=6,
            fps in proptest::collection::vec(0u64..u64::MAX, 512),
        ) {
            let ring = Ring::build(info(n, 64, 1));
            let mut counts = vec![0usize; n];
            for &fp in &fps {
                let primary = ring.primary(fp).unwrap();
                let idx = ring.info().members.iter().position(|m| m == primary).unwrap();
                counts[idx] += 1;
            }
            let fair = fps.len() as f64 / n as f64;
            for (idx, &count) in counts.iter().enumerate() {
                prop_assert!(
                    (count as f64) < fair * 3.0,
                    "member {idx} owns {count}/{} fingerprints (fair share {fair:.0})",
                    fps.len()
                );
                prop_assert!(
                    (count as f64) > fair / 8.0,
                    "member {idx} owns only {count}/{} fingerprints (fair share {fair:.0})",
                    fps.len()
                );
            }
        }

        /// Join moves keys only *to* the new member; every fingerprint whose
        /// owner changed is now owned by the joiner.
        #[test]
        fn join_moves_only_minimal_ranges(
            n in 2usize..=5,
            fps in proptest::collection::vec(0u64..u64::MAX, 256),
        ) {
            let before = Ring::build(info(n, 64, 1));
            let mut grown = info(n, 64, 1);
            grown.members.push("10.0.1.99:7641".into());
            grown.epoch = 2;
            let after = Ring::build(grown);
            for &fp in &fps {
                let old = before.primary(fp).unwrap();
                let new = after.primary(fp).unwrap();
                prop_assert!(
                    new == old || new == "10.0.1.99:7641",
                    "fingerprint {fp:#x} moved {old} -> {new} on an unrelated join"
                );
            }
        }

        /// Leave moves only the leaver's keys; fingerprints the leaver did
        /// not own keep their primary.
        #[test]
        fn leave_moves_only_the_leavers_keys(
            n in 3usize..=6,
            leaver in 0usize..3,
            fps in proptest::collection::vec(0u64..u64::MAX, 256),
        ) {
            let before = Ring::build(info(n, 64, 1));
            let gone = before.info().members[leaver % n].clone();
            let mut shrunk = info(n, 64, 1);
            shrunk.members.retain(|m| *m != gone);
            shrunk.epoch = 2;
            let after = Ring::build(shrunk);
            for &fp in &fps {
                let old = before.primary(fp).unwrap();
                if old != gone {
                    prop_assert_eq!(
                        after.primary(fp).unwrap(), old,
                        "fingerprint {:#x} changed owner though {} never owned it", fp, gone
                    );
                }
            }
        }
    }
}
