//! Model segmentation for per-segment sharding ratios (paper Sec. 5.2).
//!
//! "We partition the tensors in the model, E, into g segments ... The
//! segment division can be either specified by the user (such as using the
//! layers of the model) or determined using a partition algorithm such as
//! METIS (which minimizes the tensor size on the cuts while balancing the
//! size of partitions)."
//!
//! User-specified segmentation is provided by
//! `hap_graph::GraphBuilder::begin_segment`; this crate provides the
//! automatic alternative: a dynamic program over the topological order that
//! minimizes cut tensor bytes while balancing per-segment flops — the same
//! objective METIS pursues, specialized to the chain-like structure of DNN
//! training graphs.

mod chain;

pub use chain::{apply_partition, chain_partition, PartitionStats};
