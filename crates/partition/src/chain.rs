//! Balanced min-cut chain partitioning.

use hap_graph::Graph;

/// Statistics of a computed partition.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionStats {
    /// Bytes of tensors crossing segment boundaries.
    pub cut_bytes: u64,
    /// Per-segment flops.
    pub segment_flops: Vec<f64>,
}

/// Partitions the graph's nodes into `g` contiguous topological intervals.
///
/// Returns a segment id per node. The dynamic program minimizes
/// `cut_bytes / total_bytes + imbalance / average_segment_flops`, i.e. it
/// prefers cutting where few/small tensors are live while keeping segment
/// flops balanced (the METIS-style objective of paper Sec. 5.2).
///
/// `g` is clamped to the node count; `g == 1` returns all zeros.
pub fn chain_partition(graph: &Graph, g: usize) -> Vec<usize> {
    let n = graph.len();
    if n == 0 {
        return Vec::new();
    }
    let g = g.clamp(1, n);
    if g == 1 {
        return vec![0; n];
    }

    // Boundary cut bytes: tensors produced before `b` consumed at/after `b`.
    let mut cut = vec![0f64; n + 1];
    for node in graph.nodes() {
        for &input in &node.inputs {
            // The edge (input -> node) crosses boundaries input+1 ..= node.id.
            let bytes = graph.node_bytes(input) as f64;
            for c in &mut cut[(input + 1)..=node.id] {
                *c += bytes;
            }
        }
    }
    let total_bytes: f64 = cut.iter().sum::<f64>().max(1.0);

    // Prefix flops for balance scoring.
    let mut prefix = vec![0f64; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + graph.node_flops(i);
    }
    let avg = (prefix[n] / g as f64).max(1.0);

    let score = |from: usize, to: usize| -> f64 {
        // Segment covering nodes [from, to): boundary cut at `from` (free for
        // from == 0) plus flops-imbalance penalty.
        let cut_term = if from == 0 { 0.0 } else { cut[from] / total_bytes };
        let flops = prefix[to] - prefix[from];
        cut_term + (flops - avg).abs() / avg / g as f64
    };

    // dp[k][i]: best cost splitting nodes [0, i) into k+1 segments.
    const INF: f64 = f64::INFINITY;
    let mut dp = vec![vec![INF; n + 1]; g];
    let mut back = vec![vec![0usize; n + 1]; g];
    for (i, d) in dp[0].iter_mut().enumerate().skip(1) {
        *d = score(0, i);
    }
    for k in 1..g {
        for i in (k + 1)..=n {
            for j in k..i {
                if dp[k - 1][j] < INF {
                    let c = dp[k - 1][j] + score(j, i);
                    if c < dp[k][i] {
                        dp[k][i] = c;
                        back[k][i] = j;
                    }
                }
            }
        }
    }

    // Reconstruct boundaries.
    let mut bounds = vec![n];
    let mut i = n;
    for k in (1..g).rev() {
        i = back[k][i];
        bounds.push(i);
    }
    bounds.reverse();

    let mut assignment = vec![0usize; n];
    let mut seg = 0usize;
    let mut next_bound = bounds[0];
    let mut bound_iter = bounds.iter().skip(1);
    for (id, a) in assignment.iter_mut().enumerate() {
        while id >= next_bound {
            seg += 1;
            next_bound = *bound_iter.next().unwrap_or(&n.saturating_add(1));
        }
        *a = seg;
    }
    assignment
}

/// Applies an assignment to the graph and reports partition statistics.
pub fn apply_partition(graph: &mut Graph, assignment: &[usize]) -> PartitionStats {
    for (id, &seg) in assignment.iter().enumerate() {
        graph.set_segment(id, seg);
    }
    let segments = assignment.iter().max().map_or(1, |m| m + 1);
    let mut segment_flops = vec![0f64; segments];
    for node in graph.nodes() {
        segment_flops[assignment[node.id]] += graph.node_flops(node.id);
    }
    let mut cut_bytes = 0u64;
    for node in graph.nodes() {
        for &input in &node.inputs {
            if assignment[input] != assignment[node.id] {
                cut_bytes += graph.node_bytes(input) as u64;
            }
        }
    }
    PartitionStats { cut_bytes, segment_flops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_graph::GraphBuilder;

    fn deep_mlp(layers: usize, width: usize) -> Graph {
        let mut g = GraphBuilder::new();
        let mut x = g.placeholder("x", vec![64, width]);
        for i in 0..layers {
            let w = g.parameter(&format!("w{i}"), vec![width, width]);
            x = g.matmul(x, w);
            x = g.relu(x);
        }
        let l = g.sum_all(x);
        g.build_training(l).unwrap()
    }

    #[test]
    fn single_segment_is_trivial() {
        let g = deep_mlp(3, 16);
        let a = chain_partition(&g, 1);
        assert!(a.iter().all(|&s| s == 0));
    }

    #[test]
    fn segments_are_contiguous_and_complete() {
        let g = deep_mlp(6, 16);
        let a = chain_partition(&g, 4);
        assert_eq!(a.len(), g.len());
        // Contiguity: segment ids are non-decreasing along topo order.
        for w in a.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
        assert_eq!(*a.last().unwrap(), 3);
    }

    #[test]
    fn flops_are_roughly_balanced() {
        let mut g = deep_mlp(8, 32);
        let a = chain_partition(&g, 4);
        let stats = apply_partition(&mut g, &a);
        let total: f64 = stats.segment_flops.iter().sum();
        let avg = total / 4.0;
        for &f in &stats.segment_flops {
            assert!(f < 2.5 * avg, "segment flops {f} vs avg {avg}");
        }
    }

    #[test]
    fn more_segments_than_nodes_is_clamped() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x", vec![4, 4]);
        let l = b.sum_all(x);
        let g = b.build_training(l).unwrap();
        let a = chain_partition(&g, 100);
        assert_eq!(a.len(), g.len());
        assert!(*a.iter().max().unwrap() < g.len());
    }

    #[test]
    fn applied_partition_updates_graph_segments() {
        let mut g = deep_mlp(4, 16);
        let a = chain_partition(&g, 2);
        apply_partition(&mut g, &a);
        assert_eq!(g.segment_count(), 2);
    }
}
