//! Benchmark model builders (paper Sec. 7.1, Table 1).
//!
//! The four evaluation workloads of the paper, built as single-device
//! training graphs:
//!
//! | Model     | Task                 | Parameters (paper) | Parameters (here) |
//! |-----------|----------------------|--------------------|-------------------|
//! | VGG19     | image classification | 133 M              | ~139 M            |
//! | ViT       | image classification | 54 M               | ~57 M             |
//! | BERT-Base | language model       | 102 M              | ~102 M            |
//! | BERT-MoE  | language model       | 84 + 36m M         | ~74 + 36m M       |
//!
//! Small deviations come from classifier-head details the paper does not
//! specify (see each builder's docs); `cargo run -p hap-bench --bin table1`
//! prints the exact counts. Every builder also has a `tiny()` configuration
//! for tests and functional-equivalence checks.
//!
//! Following the paper's convention, BERT-MoE "scales with the number of
//! devices": the expert count per MoE layer equals the device count, adding
//! ≈36 M parameters per device.

mod bert;
mod micro;
mod vgg;
mod vit;

pub use bert::{bert_base, bert_moe, BertConfig, MoeConfig};
pub use micro::{mlp, transformer_layer, MlpConfig, TransformerConfig};
pub use vgg::{vgg19, VggConfig};
pub use vit::{vit, VitConfig};

use hap_graph::Graph;

/// The paper's benchmark suite (Fig. 13/14/15/16).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Benchmark {
    /// VGG19 CNN.
    Vgg19,
    /// Vision Transformer.
    Vit,
    /// BERT-Base language model.
    BertBase,
    /// BERT with GShard-style MoE layers (scales with device count).
    BertMoe,
}

impl Benchmark {
    /// All four benchmarks in paper order.
    pub fn all() -> [Benchmark; 4] {
        [Benchmark::Vgg19, Benchmark::Vit, Benchmark::BertBase, Benchmark::BertMoe]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Vgg19 => "VGG19",
            Benchmark::Vit => "ViT",
            Benchmark::BertBase => "BERT-Base",
            Benchmark::BertMoe => "BERT-MoE",
        }
    }

    /// Per-device batch size under the paper's weak scaling ("per-device
    /// batch size 32 for BERT-MoE and 64 for other models").
    pub fn per_device_batch(&self) -> usize {
        match self {
            Benchmark::BertMoe => 32,
            _ => 64,
        }
    }

    /// Builds the paper-scale training graph for a cluster of `devices`
    /// virtual devices (weak scaling: global batch = per-device batch x m;
    /// BERT-MoE additionally scales its expert count with m).
    pub fn build(&self, devices: usize) -> Graph {
        let batch = self.per_device_batch() * devices;
        match self {
            Benchmark::Vgg19 => vgg19(&VggConfig { batch, ..VggConfig::paper() }),
            Benchmark::Vit => vit(&VitConfig { batch, ..VitConfig::paper() }),
            Benchmark::BertBase => bert_base(&BertConfig { batch, ..BertConfig::paper() }),
            Benchmark::BertMoe => bert_moe(&MoeConfig::paper_scaled(devices)),
        }
    }

    /// Builds a scaled-down graph with the same structure (for fast tests
    /// and functional verification).
    pub fn build_tiny(&self, devices: usize) -> Graph {
        match self {
            Benchmark::Vgg19 => vgg19(&VggConfig::tiny()),
            Benchmark::Vit => vit(&VitConfig::tiny()),
            Benchmark::BertBase => bert_base(&BertConfig::tiny()),
            Benchmark::BertMoe => bert_moe(&MoeConfig::tiny(devices.max(2))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameter_counts() {
        // Paper Table 1 within 10%: VGG19 133M, ViT 54M, BERT-Base 102M.
        let vgg = vgg19(&VggConfig::paper()).parameter_count() as f64;
        assert!((vgg - 133e6).abs() / 133e6 < 0.10, "VGG19 params {vgg}");
        let vit_params = vit(&VitConfig::paper()).parameter_count() as f64;
        assert!((vit_params - 54e6).abs() / 54e6 < 0.10, "ViT params {vit_params}");
        let bert = bert_base(&BertConfig::paper()).parameter_count() as f64;
        assert!((bert - 102e6).abs() / 102e6 < 0.10, "BERT params {bert}");
    }

    #[test]
    fn moe_scales_with_devices() {
        let m8 = bert_moe(&MoeConfig::paper_scaled(8)).parameter_count() as f64;
        let m16 = bert_moe(&MoeConfig::paper_scaled(16)).parameter_count() as f64;
        let added_per_device = (m16 - m8) / 8.0;
        assert!(
            (added_per_device - 36e6).abs() / 36e6 < 0.15,
            "expected ~36M per device, got {added_per_device}"
        );
    }

    #[test]
    fn all_benchmarks_build_and_validate() {
        for b in Benchmark::all() {
            let g = b.build_tiny(4);
            g.validate().unwrap();
            assert!(g.loss().is_some(), "{} has no loss", b.name());
            assert!(!g.required_outputs().is_empty());
            assert!(g.parameter_count() > 0);
        }
    }

    #[test]
    fn weak_scaling_batch() {
        let g8 = Benchmark::BertBase.build(8);
        let g16 = Benchmark::BertBase.build(16);
        // The input batch dimension doubles.
        let b8 = g8.node(0).shape.dims()[0];
        let b16 = g16.node(0).shape.dims()[0];
        assert_eq!(b16, 2 * b8);
    }
}
