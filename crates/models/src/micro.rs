//! Micro-models: MLP and a single Transformer layer.
//!
//! Used by the Fig. 2 motivation experiment (a Transformer layer on a 2x
//! P100 + 2x A100 cluster with varying hidden width), by examples, and by
//! functional-equivalence tests.

use hap_graph::{Graph, GraphBuilder, NodeId};

/// Configuration of a small multi-layer perceptron.
#[derive(Clone, Debug)]
pub struct MlpConfig {
    /// Batch size.
    pub batch: usize,
    /// Input feature width.
    pub input: usize,
    /// Hidden widths, one per layer.
    pub hidden: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl MlpConfig {
    /// A tiny configuration for tests.
    pub fn tiny() -> Self {
        MlpConfig { batch: 16, input: 8, hidden: vec![16, 12], classes: 4 }
    }
}

/// Builds an MLP classifier training graph.
pub fn mlp(cfg: &MlpConfig) -> Graph {
    let mut g = GraphBuilder::new();
    let x = g.placeholder("x", vec![cfg.batch, cfg.input]);
    let labels = g.label("labels", vec![cfg.batch]);
    let mut h = x;
    let mut width = cfg.input;
    for (i, &next) in cfg.hidden.iter().enumerate() {
        let w = g.parameter(&format!("w{i}"), vec![width, next]);
        let b = g.parameter(&format!("b{i}"), vec![next]);
        h = g.matmul(h, w);
        h = g.bias_add(h, b);
        h = g.relu(h);
        width = next;
    }
    let w_out = g.parameter("w_out", vec![width, cfg.classes]);
    let logits = g.matmul(h, w_out);
    let loss = g.cross_entropy(logits, labels);
    g.build_training(loss).expect("mlp differentiates")
}

/// Configuration of a Transformer encoder stack.
#[derive(Clone, Debug)]
pub struct TransformerConfig {
    /// Batch size.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward width.
    pub ffn: usize,
}

impl TransformerConfig {
    /// The Fig. 2 motivation workload at a given hidden width.
    pub fn fig2(hidden: usize) -> Self {
        TransformerConfig { batch: 64, seq: 128, hidden, heads: 8, ffn: 4 * hidden }
    }

    /// A tiny configuration for tests (heads == hidden so any head-dim
    /// shard is aligned).
    pub fn tiny() -> Self {
        TransformerConfig { batch: 4, seq: 6, hidden: 8, heads: 8, ffn: 16 }
    }
}

/// Appends one pre-norm Transformer encoder layer to the builder, returning
/// the output node.
///
/// Shared by the ViT and BERT builders; each call starts a new model
/// segment so the segmented load balancer can assign per-layer ratios.
pub fn append_transformer_layer(
    g: &mut GraphBuilder,
    x: NodeId,
    cfg: &TransformerConfig,
    layer: usize,
) -> NodeId {
    let h = cfg.hidden;
    g.begin_segment();
    let ln1 = g.layer_norm(x);
    let wq = g.parameter(&format!("l{layer}.wq"), vec![h, h]);
    let wk = g.parameter(&format!("l{layer}.wk"), vec![h, h]);
    let wv = g.parameter(&format!("l{layer}.wv"), vec![h, h]);
    let q = g.linear(ln1, wq);
    let k = g.linear(ln1, wk);
    let v = g.linear(ln1, wv);
    let att = g.attention(q, k, v, cfg.heads);
    let wo = g.parameter(&format!("l{layer}.wo"), vec![h, h]);
    let proj = g.linear(att, wo);
    let res1 = g.add(x, proj);
    let ln2 = g.layer_norm(res1);
    let w1 = g.parameter(&format!("l{layer}.ffn1"), vec![h, cfg.ffn]);
    let b1 = g.parameter(&format!("l{layer}.ffn1b"), vec![cfg.ffn]);
    let w2 = g.parameter(&format!("l{layer}.ffn2"), vec![cfg.ffn, h]);
    let ff = g.linear(ln2, w1);
    let ff = g.bias_add(ff, b1);
    let ff = g.gelu(ff);
    let ff = g.linear(ff, w2);
    g.add(res1, ff)
}

/// Builds a single-layer Transformer training graph (Fig. 2 workload).
pub fn transformer_layer(cfg: &TransformerConfig) -> Graph {
    let mut g = GraphBuilder::new();
    let x = g.placeholder("x", vec![cfg.batch, cfg.seq, cfg.hidden]);
    let labels = g.label("labels", vec![cfg.batch, cfg.seq]);
    let y = append_transformer_layer(&mut g, x, cfg, 0);
    let w_out = g.parameter("w_out", vec![cfg.hidden, 32]);
    let logits = g.linear(y, w_out);
    let loss = g.cross_entropy(logits, labels);
    g.build_training(loss).expect("transformer differentiates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_builds() {
        let g = mlp(&MlpConfig::tiny());
        g.validate().unwrap();
        assert_eq!(g.parameters().len(), 5);
        assert_eq!(g.required_outputs().len(), 6);
    }

    #[test]
    fn transformer_layer_builds_with_segments() {
        let g = transformer_layer(&TransformerConfig::tiny());
        g.validate().unwrap();
        assert_eq!(g.segment_count(), 2); // embedding segment + layer segment
        assert_eq!(g.parameters().len(), 8);
    }

    #[test]
    fn fig2_hidden_width_scales_params() {
        let small = transformer_layer(&TransformerConfig::fig2(256));
        let large = transformer_layer(&TransformerConfig::fig2(512));
        assert!(large.parameter_count() > 3 * small.parameter_count());
    }
}
