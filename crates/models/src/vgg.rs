//! VGG19 (Simonyan & Zisserman) for image classification.

use hap_graph::{Graph, GraphBuilder};

/// VGG19 configuration.
#[derive(Clone, Debug)]
pub struct VggConfig {
    /// Global batch size.
    pub batch: usize,
    /// Input image side (images are square).
    pub image: usize,
    /// Input channels.
    pub channels: usize,
    /// Number of classes.
    pub classes: usize,
    /// Width multiplier base (64 for the real network).
    pub width: usize,
    /// Classifier hidden width (4096 for the real network).
    pub fc_width: usize,
}

impl VggConfig {
    /// Paper-scale VGG19 (~139 M parameters; the paper's Table 1 reports
    /// 133 M — the difference is the unspecified classifier head, here
    /// `flatten -> 4096 -> 4096 -> 10` on 224x224 inputs as in the original
    /// network with a CIFAR-10 class count).
    pub fn paper() -> Self {
        VggConfig { batch: 64, image: 224, channels: 3, classes: 10, width: 64, fc_width: 4096 }
    }

    /// Tiny VGG-shaped network for tests (8x8 inputs, 2 blocks).
    pub fn tiny() -> Self {
        VggConfig { batch: 4, image: 8, channels: 3, classes: 4, width: 4, fc_width: 16 }
    }
}

/// Builds the VGG19 training graph.
///
/// The 16 convolution layers follow the standard
/// `[2x64, 2x128, 4x256, 4x512, 4x512]` block structure with 3x3 kernels and
/// 2x2 max-pooling between blocks; blocks are model segments. The `tiny`
/// configuration shrinks to two blocks so the spatial size stays positive.
pub fn vgg19(cfg: &VggConfig) -> Graph {
    let mut g = GraphBuilder::new();
    let mut x = g.placeholder("image", vec![cfg.batch, cfg.channels, cfg.image, cfg.image]);
    let labels = g.label("labels", vec![cfg.batch]);

    let full_blocks: Vec<Vec<usize>> = vec![
        vec![cfg.width; 2],
        vec![cfg.width * 2; 2],
        vec![cfg.width * 4; 4],
        vec![cfg.width * 8; 4],
        vec![cfg.width * 8; 4],
    ];
    // Shrink for small inputs: each block halves the spatial size.
    let max_blocks = (cfg.image as f64).log2().floor() as usize;
    let blocks: Vec<Vec<usize>> = full_blocks.into_iter().take(max_blocks.max(1)).collect();

    let mut in_ch = cfg.channels;
    let mut side = cfg.image;
    for (bi, block) in blocks.iter().enumerate() {
        g.begin_segment();
        for (ci, &out_ch) in block.iter().enumerate() {
            let w = g.parameter(&format!("b{bi}.conv{ci}"), vec![out_ch, in_ch, 3, 3]);
            x = g.conv2d(x, w, 1, 1);
            x = g.relu(x);
            in_ch = out_ch;
        }
        x = g.maxpool(x, 2);
        side /= 2;
    }

    g.begin_segment();
    let flat = g.flatten(x);
    let flat_width = in_ch * side * side;
    let w1 = g.parameter("fc1", vec![flat_width, cfg.fc_width]);
    let b1 = g.parameter("fc1b", vec![cfg.fc_width]);
    let w2 = g.parameter("fc2", vec![cfg.fc_width, cfg.fc_width]);
    let b2 = g.parameter("fc2b", vec![cfg.fc_width]);
    let w3 = g.parameter("fc3", vec![cfg.fc_width, cfg.classes]);
    let mut h = g.matmul(flat, w1);
    h = g.bias_add(h, b1);
    h = g.relu(h);
    h = g.matmul(h, w2);
    h = g.bias_add(h, b2);
    h = g.relu(h);
    let logits = g.matmul(h, w3);
    let loss = g.cross_entropy(logits, labels);
    g.build_training(loss).expect("vgg differentiates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_parameter_count() {
        let g = vgg19(&VggConfig::paper());
        let p = g.parameter_count() as f64;
        // Convs ~20M + fc 25088*4096 + 4096^2 + 4096*10 ~ 139.6M.
        assert!(p > 130e6 && p < 145e6, "params {p}");
    }

    #[test]
    fn tiny_builds_and_has_conv_structure() {
        let g = vgg19(&VggConfig::tiny());
        g.validate().unwrap();
        let convs =
            g.nodes().iter().filter(|n| matches!(n.op, hap_graph::Op::Conv2d { .. })).count();
        assert_eq!(convs, 8, "three tiny blocks: 2 + 2 + 4 convs");
        assert!(g.segment_count() >= 3);
    }

    #[test]
    fn fc_layers_dominate_parameters() {
        // The communication-heavy fully-connected layers the paper discusses
        // in Sec. 7.2 hold most of VGG19's parameters.
        let g = vgg19(&VggConfig::paper());
        let fc: usize =
            g.nodes().iter().filter(|n| n.name.starts_with("fc")).map(|n| n.shape.numel()).sum();
        assert!(fc as f64 / g.parameter_count() as f64 > 0.8);
    }
}
