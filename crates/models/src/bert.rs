//! BERT-Base and BERT-MoE language models.

use hap_graph::{Graph, GraphBuilder, NodeId};

use crate::micro::{append_transformer_layer, TransformerConfig};

/// BERT configuration.
#[derive(Clone, Debug)]
pub struct BertConfig {
    /// Global batch size (sequences).
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward width.
    pub ffn: usize,
    /// Encoder depth.
    pub layers: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

impl BertConfig {
    /// Paper-scale BERT-Base (~102 M parameters, matching Table 1: a
    /// 12-layer, 768-wide encoder with an 11264-token vocabulary for
    /// WikiText-2, equal-size input embedding and output head).
    pub fn paper() -> Self {
        BertConfig {
            batch: 64,
            seq: 128,
            hidden: 768,
            heads: 12,
            ffn: 3072,
            layers: 12,
            vocab: 11264,
        }
    }

    /// Tiny BERT for tests.
    pub fn tiny() -> Self {
        BertConfig { batch: 4, seq: 6, hidden: 8, heads: 8, ffn: 16, layers: 2, vocab: 32 }
    }
}

/// MoE configuration: BERT with every `moe_every`-th feed-forward replaced
/// by a GShard-style MoE layer.
#[derive(Clone, Debug)]
pub struct MoeConfig {
    /// The base encoder.
    pub bert: BertConfig,
    /// Experts per MoE layer.
    pub experts: usize,
    /// Expert feed-forward width.
    pub expert_hidden: usize,
    /// Replace one in every `moe_every` layers (2 in the paper, following
    /// GShard).
    pub moe_every: usize,
}

impl MoeConfig {
    /// The paper's device-scaled BERT-MoE: experts per layer = device count,
    /// 6 MoE layers, ~36 M parameters per device (Table 1's `84 + 36m`), and
    /// per-device batch 32 under weak scaling.
    pub fn paper_scaled(devices: usize) -> Self {
        MoeConfig {
            bert: BertConfig { batch: 32 * devices, ..BertConfig::paper() },
            experts: devices.max(2),
            expert_hidden: 3900,
            moe_every: 2,
        }
    }

    /// Paper-scale MoE with an explicit expert count, keeping the token
    /// count proportional to the expert count (the Fig. 17 protocol: "to
    /// maintain the same load of each expert, we keep the number of tokens
    /// proportional to the number of experts").
    pub fn with_experts(experts: usize, tokens_per_expert: usize) -> Self {
        let seq = 128;
        let batch = (experts * tokens_per_expert).div_ceil(seq).max(1);
        MoeConfig {
            bert: BertConfig { batch, ..BertConfig::paper() },
            experts,
            expert_hidden: 3900,
            moe_every: 2,
        }
    }

    /// Tiny MoE for tests.
    pub fn tiny(experts: usize) -> Self {
        MoeConfig { bert: BertConfig::tiny(), experts, expert_hidden: 16, moe_every: 2 }
    }
}

/// Builds the BERT-Base training graph (masked-LM-style objective: token
/// embeddings -> encoder -> vocabulary logits -> cross-entropy).
pub fn bert_base(cfg: &BertConfig) -> Graph {
    build_bert(cfg, None)
}

/// Builds the BERT-MoE training graph.
///
/// MoE layers follow GShard: a softmax gate routes each token to its top
/// expert, tokens are dispatched into per-expert capacity buckets
/// (`capacity = tokens / experts`), expert FFNs run as batched matmuls over
/// the expert dimension, and outputs are combined back. Gates are
/// stop-gradient through dispatch/combine (the standard simplification), so
/// gate projections participate in the forward pass but are frozen.
pub fn bert_moe(cfg: &MoeConfig) -> Graph {
    build_bert(&cfg.bert, Some(cfg))
}

fn build_bert(cfg: &BertConfig, moe: Option<&MoeConfig>) -> Graph {
    let mut g = GraphBuilder::new();
    let ids = g.placeholder("tokens", vec![cfg.batch, cfg.seq]);
    let labels = g.label("labels", vec![cfg.batch, cfg.seq]);
    let table = g.parameter("embedding", vec![cfg.vocab, cfg.hidden]);
    let mut h = g.embedding(ids, table);
    let tcfg = TransformerConfig {
        batch: cfg.batch,
        seq: cfg.seq,
        hidden: cfg.hidden,
        heads: cfg.heads,
        ffn: cfg.ffn,
    };
    for layer in 0..cfg.layers {
        let use_moe = moe.is_some_and(|m| (layer + 1) % m.moe_every == 0);
        if let (true, Some(m)) = (use_moe, moe) {
            h = append_attention_block(&mut g, h, &tcfg, layer);
            h = moe_ffn(&mut g, h, &tcfg, layer, m.experts, m.expert_hidden);
        } else {
            h = append_transformer_layer(&mut g, h, &tcfg, layer);
        }
    }
    g.begin_segment();
    let norm = g.layer_norm(h);
    let w_head = g.parameter("lm_head", vec![cfg.hidden, cfg.vocab]);
    let logits = g.linear(norm, w_head);
    let loss = g.cross_entropy(logits, labels);
    g.build_training(loss).expect("bert differentiates")
}

/// The attention half of a Transformer layer (used when the FFN half is
/// replaced by an MoE layer).
fn append_attention_block(
    g: &mut GraphBuilder,
    x: NodeId,
    cfg: &TransformerConfig,
    layer: usize,
) -> NodeId {
    let h = cfg.hidden;
    g.begin_segment();
    let ln1 = g.layer_norm(x);
    let wq = g.parameter(&format!("l{layer}.wq"), vec![h, h]);
    let wk = g.parameter(&format!("l{layer}.wk"), vec![h, h]);
    let wv = g.parameter(&format!("l{layer}.wv"), vec![h, h]);
    let q = g.linear(ln1, wq);
    let k = g.linear(ln1, wk);
    let v = g.linear(ln1, wv);
    let att = g.attention(q, k, v, cfg.heads);
    let wo = g.parameter(&format!("l{layer}.wo"), vec![h, h]);
    let proj = g.linear(att, wo);
    g.add(x, proj)
}

/// A GShard-style MoE feed-forward block.
fn moe_ffn(
    g: &mut GraphBuilder,
    x: NodeId,
    cfg: &TransformerConfig,
    layer: usize,
    experts: usize,
    expert_hidden: usize,
) -> NodeId {
    let h = cfg.hidden;
    let tokens = cfg.batch * cfg.seq;
    let capacity = (tokens / experts).max(1);
    let ln = g.layer_norm(x);
    let wg = g.parameter(&format!("l{layer}.gate"), vec![h, experts]);
    let gate_logits = g.linear(ln, wg);
    let gates = g.softmax(gate_logits);
    let xd = g.dispatch(ln, gates, experts, capacity);
    let w1 = g.parameter(&format!("l{layer}.expert_w1"), vec![experts, h, expert_hidden]);
    let w2 = g.parameter(&format!("l{layer}.expert_w2"), vec![experts, expert_hidden, h]);
    let he = g.bmm(xd, w1, false, false);
    let he = g.gelu(he);
    let ye = g.bmm(he, w2, false, false);
    let y = g.combine(ye, gates);
    g.add(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_paper_params() {
        let g = bert_base(&BertConfig::paper());
        let p = g.parameter_count() as f64;
        // 12 x 7.08M encoder + 2 x 8.65M embedding/head ~ 102.4M.
        assert!((p - 102e6).abs() / 102e6 < 0.05, "params {p}");
    }

    #[test]
    fn moe_has_expert_parameters() {
        let g = bert_moe(&MoeConfig::tiny(4));
        let experts: Vec<_> = g
            .nodes()
            .iter()
            .filter(|n| n.role == hap_graph::Role::Param && n.name.contains("expert_w"))
            .collect();
        assert_eq!(experts.len(), 2, "one MoE layer in a 2-layer tiny model");
        assert_eq!(experts[0].shape.dims()[0], 4);
        g.validate().unwrap();
    }

    #[test]
    fn moe_contains_dispatch_and_combine() {
        let g = bert_moe(&MoeConfig::tiny(2));
        assert!(g.nodes().iter().any(|n| matches!(n.op, hap_graph::Op::Dispatch { .. })));
        assert!(g.nodes().iter().any(|n| matches!(n.op, hap_graph::Op::Combine)));
    }

    #[test]
    fn fig17_token_scaling() {
        let a = MoeConfig::with_experts(4, 256);
        let b = MoeConfig::with_experts(8, 256);
        assert_eq!(b.bert.batch, 2 * a.bert.batch);
    }

    #[test]
    fn frozen_gates_get_no_updates() {
        let g = bert_moe(&MoeConfig::tiny(2));
        let gate_updates = g
            .nodes()
            .iter()
            .filter(|n| n.role == hap_graph::Role::Updated)
            .filter(|n| g.node(n.inputs[0]).name.contains("gate"))
            .count();
        assert_eq!(gate_updates, 0);
        // But expert weights do learn.
        let expert_updates = g
            .nodes()
            .iter()
            .filter(|n| n.role == hap_graph::Role::Updated)
            .filter(|n| g.node(n.inputs[0]).name.contains("expert"))
            .count();
        assert_eq!(expert_updates, 2);
    }
}
