//! Vision Transformer (Dosovitskiy et al.) for image classification.

use hap_graph::{Graph, GraphBuilder};

use crate::micro::{append_transformer_layer, TransformerConfig};

/// ViT configuration.
#[derive(Clone, Debug)]
pub struct VitConfig {
    /// Global batch size.
    pub batch: usize,
    /// Number of image patches (sequence length).
    pub seq: usize,
    /// Flattened patch dimension (`channels * patch * patch`).
    pub patch_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward width.
    pub ffn: usize,
    /// Encoder depth.
    pub layers: usize,
    /// Number of classes.
    pub classes: usize,
}

impl VitConfig {
    /// Paper-scale ViT (~57 M parameters vs Table 1's 54 M; the paper does
    /// not give the exact variant — this is an 8-layer, 768-wide encoder on
    /// 8x8 patches of CIFAR-10 images).
    pub fn paper() -> Self {
        VitConfig {
            batch: 64,
            seq: 64,
            patch_dim: 48,
            hidden: 768,
            heads: 12,
            ffn: 3072,
            layers: 8,
            classes: 10,
        }
    }

    /// Tiny ViT for tests.
    pub fn tiny() -> Self {
        VitConfig {
            batch: 4,
            seq: 4,
            patch_dim: 6,
            hidden: 8,
            heads: 8,
            ffn: 16,
            layers: 2,
            classes: 4,
        }
    }

    /// Paper configuration at a different depth (the Fig. 19 overhead sweep
    /// varies `nlayers` of the ViT model).
    pub fn with_layers(layers: usize) -> Self {
        VitConfig { layers, ..VitConfig::paper() }
    }
}

/// Builds the ViT training graph.
///
/// Patch extraction happens outside the graph (the input placeholder is
/// `[batch, patches, patch_dim]`); classification uses a token-level
/// cross-entropy (labels broadcast over patches), which keeps the op set
/// closed while preserving the compute/communication structure of the
/// classifier head.
pub fn vit(cfg: &VitConfig) -> Graph {
    let mut g = GraphBuilder::new();
    let x = g.placeholder("patches", vec![cfg.batch, cfg.seq, cfg.patch_dim]);
    let labels = g.label("labels", vec![cfg.batch, cfg.seq]);
    let w_embed = g.parameter("patch_embed", vec![cfg.patch_dim, cfg.hidden]);
    let mut h = g.linear(x, w_embed);
    let tcfg = TransformerConfig {
        batch: cfg.batch,
        seq: cfg.seq,
        hidden: cfg.hidden,
        heads: cfg.heads,
        ffn: cfg.ffn,
    };
    for layer in 0..cfg.layers {
        h = append_transformer_layer(&mut g, h, &tcfg, layer);
    }
    g.begin_segment();
    let norm = g.layer_norm(h);
    let w_head = g.parameter("head", vec![cfg.hidden, cfg.classes]);
    let logits = g.linear(norm, w_head);
    let loss = g.cross_entropy(logits, labels);
    g.build_training(loss).expect("vit differentiates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_parameter_count() {
        let g = vit(&VitConfig::paper());
        let p = g.parameter_count() as f64;
        // 8 layers x ~7.08M + embed + head ~ 57M.
        assert!(p > 50e6 && p < 60e6, "params {p}");
    }

    #[test]
    fn depth_sweep_changes_graph_size() {
        let shallow = vit(&VitConfig::with_layers(2));
        let deep = vit(&VitConfig::with_layers(8));
        assert!(deep.len() > 3 * shallow.len());
        assert_eq!(deep.segment_count(), 8 + 2);
    }

    #[test]
    fn tiny_builds() {
        let g = vit(&VitConfig::tiny());
        g.validate().unwrap();
        assert!(g.loss().is_some());
    }
}
