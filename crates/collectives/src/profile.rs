//! Collective profiling: measure, then fit linear models.
//!
//! "comm(i)(B) is determined based on the collective operation type, the
//! sharding ratio B, and NCCL's profiling data on the cluster's network. We
//! run each collective operation on the cluster with tensors of different
//! sizes and fit the latency and bandwidth in a linear model. comm(i)(B) is
//! then estimated using the fitted model, with the input of the tensor size
//! of the largest shard." — paper Sec. 3.2.
//!
//! One nuance: the padded collectives' time scales with the *largest shard*
//! (padding makes every chunk that big), while grouped Broadcast scales with
//! the *total* bytes — this difference is precisely the trade-off of paper
//! Sec. 2.5.1, so each category is fitted and estimated against its own
//! governing size.

use std::collections::HashMap;

use hap_cluster::{fit_linear, LinearModel};

use crate::kinds::CollKind;
use crate::time::GroundTruthNet;

/// Fitted linear models per collective category for a fixed participant
/// count.
#[derive(Clone, Debug)]
pub struct CommProfile {
    /// Number of participants the profile was taken with.
    pub participants: usize,
    models: HashMap<CollKind, LinearModel>,
}

impl CommProfile {
    /// Estimated time of a collective.
    ///
    /// `largest_shard_bytes` is the padded chunk size (for All-Reduce, the
    /// replica size); `total_bytes` is the sum of all shards, which governs
    /// the grouped-Broadcast implementation.
    pub fn estimate(&self, kind: CollKind, largest_shard_bytes: f64, total_bytes: f64) -> f64 {
        if self.participants <= 1 {
            return 0.0;
        }
        let x = governing_size(kind, largest_shard_bytes, total_bytes);
        self.models.get(&kind).map(|m| m.time(x)).unwrap_or(0.0)
    }

    /// The fitted model for one category.
    pub fn model(&self, kind: CollKind) -> Option<&LinearModel> {
        self.models.get(&kind)
    }
}

/// Which byte count the fitted model of `kind` is parameterized on.
fn governing_size(kind: CollKind, largest: f64, total: f64) -> f64 {
    match kind {
        CollKind::GroupedBroadcast => total,
        _ => largest,
    }
}

/// Profiles every collective category on `net` with `participants` devices.
///
/// Sizes sweep 64 KiB – 64 MiB per shard (even shards, as NCCL profiling
/// would use); each sample's x-coordinate is that category's governing size.
pub fn profile_collectives(net: &GroundTruthNet, participants: usize) -> CommProfile {
    let mut models = HashMap::new();
    let m = participants.max(1);
    let sizes: Vec<f64> = (0..=10).map(|i| 64.0 * 1024.0 * (2f64).powi(i)).collect();
    for kind in CollKind::all() {
        let samples: Vec<(f64, f64)> = sizes
            .iter()
            .map(|&shard| {
                let shards = vec![shard; m];
                let x = governing_size(kind, shard, shard * m as f64);
                (x, net.collective_time(kind, &shards))
            })
            .collect();
        models.insert(kind, fit_linear(&samples));
    }
    CommProfile { participants, models }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::NetworkParams;

    fn profile() -> CommProfile {
        profile_collectives(&GroundTruthNet::new(NetworkParams::paper_cloud()), 8)
    }

    #[test]
    fn estimates_are_close_to_truth_at_profiled_sizes() {
        let net = GroundTruthNet::new(NetworkParams::paper_cloud());
        let p = profile();
        for kind in CollKind::all() {
            let shard = 4.0 * 1024.0 * 1024.0;
            let truth = net.collective_time(kind, &[shard; 8]);
            let est = p.estimate(kind, shard, shard * 8.0);
            let rel = (truth - est).abs() / truth;
            assert!(rel < 0.25, "{kind}: est {est} vs truth {truth}");
        }
    }

    #[test]
    fn fitted_model_stays_in_band_below_profiled_range() {
        // The ground-truth per-message time is affine in size (latency +
        // saturation offset + bytes/bandwidth), so the least-squares fit
        // tracks it closely even far below the profiled 64 KiB floor. The
        // systematic Fig. 18 underestimation enters through the simulator's
        // per-op overheads (asserted in hap-simulator), not here.
        let net = GroundTruthNet::new(NetworkParams::paper_cloud());
        let p = profile();
        let shard = 4.0 * 1024.0;
        let truth = net.collective_time(CollKind::AllReduce, &[shard; 8]);
        let est = p.estimate(CollKind::AllReduce, shard, shard * 8.0);
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.5, "est {est} vs truth {truth} (rel {rel})");
    }

    #[test]
    fn single_participant_estimates_zero() {
        let net = GroundTruthNet::new(NetworkParams::paper_cloud());
        let p = profile_collectives(&net, 1);
        assert_eq!(p.estimate(CollKind::AllReduce, 1e6, 1e6), 0.0);
    }

    #[test]
    fn grouped_broadcast_estimate_tracks_total_not_max() {
        let p = profile();
        // Same max shard, different totals: grouped estimate must change.
        let skewed = p.estimate(CollKind::GroupedBroadcast, 4e6, 4.2e6);
        let even = p.estimate(CollKind::GroupedBroadcast, 4e6, 32e6);
        assert!(even > skewed);
        // Padded estimate ignores total.
        let a = p.estimate(CollKind::AllGatherPadded, 4e6, 4.2e6);
        let b = p.estimate(CollKind::AllGatherPadded, 4e6, 32e6);
        assert_eq!(a, b);
    }

    #[test]
    fn estimator_reproduces_fig4_crossover() {
        // With the fitted models, padded all-gather beats grouped broadcast
        // on even shards and loses on heavily skewed ones.
        let p = profile();
        let total = 4.0 * 1024.0 * 1024.0;
        let even_max = total / 8.0;
        assert!(
            p.estimate(CollKind::AllGatherPadded, even_max, total)
                < p.estimate(CollKind::GroupedBroadcast, even_max, total)
        );
        let skew_max = total * 0.95;
        assert!(
            p.estimate(CollKind::GroupedBroadcast, skew_max, total)
                < p.estimate(CollKind::AllGatherPadded, skew_max, total)
        );
    }
}
