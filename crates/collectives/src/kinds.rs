//! Collective operation categories.

use std::fmt;

/// The collective communication categories HAP schedules (paper Fig. 1 plus
/// the grouped-Broadcast alternative of Sec. 2.5.1).
///
/// Sharding dimensions are not part of the category: communication time
/// depends only on the participating byte counts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CollKind {
    /// Elementwise sum of same-sized replicas on all devices.
    AllReduce,
    /// Concatenation of shards using the NCCL-style padded implementation
    /// (shards are padded to the largest shard, then trimmed).
    AllGatherPadded,
    /// Concatenation of shards using one Broadcast per shard inside a group
    /// call: no padding, but one kernel launch per participant.
    GroupedBroadcast,
    /// All-Reduce followed by sharding, implemented efficiently (padded to
    /// even chunks like the padded All-Gather).
    ReduceScatter,
    /// Re-shards a tensor from one dimension to another.
    AllToAll,
}

impl CollKind {
    /// All categories, for profiling sweeps.
    pub fn all() -> [CollKind; 5] {
        [
            CollKind::AllReduce,
            CollKind::AllGatherPadded,
            CollKind::GroupedBroadcast,
            CollKind::ReduceScatter,
            CollKind::AllToAll,
        ]
    }
}

impl fmt::Display for CollKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollKind::AllReduce => "all-reduce",
            CollKind::AllGatherPadded => "all-gather(padded)",
            CollKind::GroupedBroadcast => "all-gather(grouped-broadcast)",
            CollKind::ReduceScatter => "reduce-scatter",
            CollKind::AllToAll => "all-to-all",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_kind() {
        let kinds = CollKind::all();
        assert_eq!(kinds.len(), 5);
        let mut names: Vec<String> = kinds.iter().map(|k| k.to_string()).collect();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
