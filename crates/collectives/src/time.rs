//! Ground-truth collective timing.
//!
//! This is the reproduction's stand-in for NCCL on a real fabric: ring-based
//! algorithms with per-message latency, per-kernel launch overhead, and a
//! saturating bandwidth curve. It is deliberately *nonlinear* in message
//! size — the linear model HAP fits over it (paper Sec. 3.2) then exhibits
//! the same systematic underestimation the paper reports in Fig. 18.

use crate::kinds::CollKind;

/// Physical characteristics of the bottleneck link between participants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkParams {
    /// Per-message latency in seconds.
    pub latency: f64,
    /// Peak bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Message size (bytes) at which half the peak bandwidth is achieved.
    pub saturation_bytes: f64,
    /// Kernel-launch overhead per collective call in seconds.
    pub launch_overhead: f64,
}

impl NetworkParams {
    /// Parameters matching the paper's 10.4 Gbps public-cloud fabric.
    pub fn paper_cloud() -> Self {
        NetworkParams {
            latency: 50e-6,
            bandwidth: 10.4e9 / 8.0,
            saturation_bytes: 256.0 * 1024.0,
            launch_overhead: 30e-6,
        }
    }

    /// Parameters for an NVLink-class intra-machine link.
    pub fn nvlink() -> Self {
        NetworkParams {
            latency: 10e-6,
            bandwidth: 300e9,
            saturation_bytes: 1024.0 * 1024.0,
            launch_overhead: 10e-6,
        }
    }

    /// Effective bandwidth for a message of `bytes` (saturating curve).
    pub fn effective_bandwidth(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return self.bandwidth;
        }
        self.bandwidth * bytes / (bytes + self.saturation_bytes)
    }

    /// Time to move one message of `bytes` point to point.
    pub fn message_time(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return self.latency;
        }
        self.latency + bytes / self.effective_bandwidth(bytes)
    }
}

/// Ground-truth timing of collectives over a given link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroundTruthNet {
    /// Link characteristics.
    pub params: NetworkParams,
}

impl GroundTruthNet {
    /// Creates a ground-truth net over the given link parameters.
    pub fn new(params: NetworkParams) -> Self {
        GroundTruthNet { params }
    }

    /// Time for a collective of the given kind over per-device shard sizes.
    ///
    /// For [`CollKind::AllReduce`], `shard_bytes` holds the (equal) replica
    /// size on each device; for the shard-oriented collectives it holds each
    /// device's shard in bytes. `shard_bytes.len()` is the participant count.
    pub fn collective_time(&self, kind: CollKind, shard_bytes: &[f64]) -> f64 {
        let m = shard_bytes.len();
        if m <= 1 {
            return 0.0;
        }
        let p = &self.params;
        let total: f64 = shard_bytes.iter().sum();
        let max = shard_bytes.iter().cloned().fold(0.0, f64::max);
        match kind {
            CollKind::AllReduce => {
                // Ring all-reduce: 2(m-1) steps, chunks of S/m.
                let s = max; // replicas are equal; use the largest defensively
                let chunk = s / m as f64;
                p.launch_overhead + 2.0 * (m as f64 - 1.0) * p.message_time(chunk)
            }
            CollKind::AllGatherPadded => {
                // Shards padded to the max: ring of (m-1) steps moving `max`.
                p.launch_overhead + (m as f64 - 1.0) * p.message_time(max)
            }
            CollKind::ReduceScatter => {
                // Padded ring reduce-scatter: (m-1) steps of the padded chunk.
                p.launch_overhead + (m as f64 - 1.0) * p.message_time(max)
            }
            CollKind::GroupedBroadcast => {
                // One broadcast per shard inside a group call; each pays a
                // launch but transfers only its own bytes (no padding).
                shard_bytes.iter().map(|&s| p.launch_overhead + p.message_time(s)).sum::<f64>()
            }
            CollKind::AllToAll => {
                // Pairwise exchange: (m-1) rounds; each round moves roughly
                // max_shard/m from the most loaded device.
                let chunk = max / m as f64;
                let _ = total;
                p.launch_overhead + (m as f64 - 1.0) * p.message_time(chunk)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> GroundTruthNet {
        GroundTruthNet::new(NetworkParams::paper_cloud())
    }

    #[test]
    fn single_participant_is_free() {
        assert_eq!(net().collective_time(CollKind::AllReduce, &[1e6]), 0.0);
    }

    #[test]
    fn all_reduce_moves_twice_the_data_of_all_gather() {
        let shards = [4e6, 4e6, 4e6, 4e6];
        let ar = net().collective_time(CollKind::AllReduce, &shards);
        let ag = net().collective_time(CollKind::AllGatherPadded, &[1e6, 1e6, 1e6, 1e6]);
        // All-reduce of the replicated 4 MB tensor should be roughly twice an
        // all-gather whose shards reassemble the same tensor.
        assert!(ar > 1.5 * ag, "ar {ar} vs ag {ag}");
        assert!(ar < 3.0 * ag, "ar {ar} vs ag {ag}");
    }

    #[test]
    fn padded_wins_when_even_grouped_wins_when_skewed() {
        // The Fig. 4 crossover: 4 MB tensor over 4 devices.
        let total = 4.0 * 1024.0 * 1024.0;
        let even = [total / 4.0; 4];
        let padded_even = net().collective_time(CollKind::AllGatherPadded, &even);
        let grouped_even = net().collective_time(CollKind::GroupedBroadcast, &even);
        assert!(padded_even < grouped_even, "even shards should favor padded");

        let rest = total * 0.04 / 3.0;
        let skewed = [total * 0.96, rest, rest, rest];
        let padded_skew = net().collective_time(CollKind::AllGatherPadded, &skewed);
        let grouped_skew = net().collective_time(CollKind::GroupedBroadcast, &skewed);
        assert!(grouped_skew < padded_skew, "skewed shards should favor grouped broadcast");
    }

    #[test]
    fn bandwidth_saturates() {
        let p = NetworkParams::paper_cloud();
        assert!(p.effective_bandwidth(1e3) < 0.1 * p.bandwidth);
        assert!(p.effective_bandwidth(1e9) > 0.99 * p.bandwidth);
    }

    #[test]
    fn times_monotone_in_size() {
        let n = net();
        for kind in CollKind::all() {
            let small = n.collective_time(kind, &[1e5; 4]);
            let large = n.collective_time(kind, &[1e7; 4]);
            assert!(large > small, "{kind} not monotone");
        }
    }

    #[test]
    fn empty_shards_still_pay_latency_in_grouped() {
        let n = net();
        let t = n.collective_time(CollKind::GroupedBroadcast, &[4e6, 0.0, 0.0, 0.0]);
        let single = n.collective_time(CollKind::GroupedBroadcast, &[4e6]);
        let _ = single;
        assert!(t > n.params.launch_overhead * 3.0);
    }
}
