//! Functional (data-movement) implementations of collectives.
//!
//! These operate on one tensor per simulated device and implement the exact
//! semantics of paper Fig. 1, including uneven shard sizes. The functional
//! SPMD executor uses them to verify that synthesized distributed programs
//! are equivalent to the single-device program.

use hap_tensor::{Tensor, TensorError};

/// Concatenates per-device shards along `dim`, returning the recovered full
/// tensor replicated on every device.
pub fn all_gather(shards: &[Tensor], dim: usize) -> Result<Vec<Tensor>, TensorError> {
    let full = Tensor::concat(shards, dim)?;
    Ok(vec![full; shards.len()])
}

/// Elementwise-sums per-device replicas, returning the sum on every device.
pub fn all_reduce(replicas: &[Tensor]) -> Result<Vec<Tensor>, TensorError> {
    let mut acc = replicas[0].clone();
    for r in &replicas[1..] {
        acc = acc.add(r)?;
    }
    Ok(vec![acc; replicas.len()])
}

/// Sums replicas then shards the result along `dim` with the given sizes.
pub fn reduce_scatter(
    replicas: &[Tensor],
    dim: usize,
    sizes: &[usize],
) -> Result<Vec<Tensor>, TensorError> {
    let mut acc = replicas[0].clone();
    for r in &replicas[1..] {
        acc = acc.add(r)?;
    }
    acc.split_sizes(dim, sizes)
}

/// Re-shards a tensor sharded on `from_dim` into shards along `to_dim` with
/// the given target sizes.
pub fn all_to_all(
    shards: &[Tensor],
    from_dim: usize,
    to_dim: usize,
    target_sizes: &[usize],
) -> Result<Vec<Tensor>, TensorError> {
    let full = Tensor::concat(shards, from_dim)?;
    full.split_sizes(to_dim, target_sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gather_uneven_roundtrip() {
        let full = Tensor::arange(vec![7, 3]);
        let shards = full.split_sizes(0, &[4, 1, 2]).unwrap();
        let gathered = all_gather(&shards, 0).unwrap();
        assert_eq!(gathered.len(), 3);
        for g in gathered {
            assert!(g.allclose(&full, 0.0));
        }
    }

    #[test]
    fn all_reduce_sums() {
        let a = Tensor::full(vec![2, 2], 1.0);
        let b = Tensor::full(vec![2, 2], 2.0);
        let c = Tensor::full(vec![2, 2], 3.0);
        let out = all_reduce(&[a, b, c]).unwrap();
        for t in out {
            assert!(t.allclose(&Tensor::full(vec![2, 2], 6.0), 0.0));
        }
    }

    #[test]
    fn reduce_scatter_equals_all_reduce_then_split() {
        let a = Tensor::randn(vec![6, 2], 1);
        let b = Tensor::randn(vec![6, 2], 2);
        let summed = a.add(&b).unwrap();
        let expect = summed.split_sizes(0, &[4, 2]).unwrap();
        let got = reduce_scatter(&[a, b], 0, &[4, 2]).unwrap();
        for (e, g) in expect.iter().zip(got.iter()) {
            assert!(e.allclose(g, 1e-6));
        }
    }

    #[test]
    fn all_to_all_changes_shard_dim() {
        let full = Tensor::arange(vec![4, 6]);
        let row_shards = full.split_sizes(0, &[3, 1]).unwrap();
        let col_shards = all_to_all(&row_shards, 0, 1, &[2, 4]).unwrap();
        let expect = full.split_sizes(1, &[2, 4]).unwrap();
        for (e, g) in expect.iter().zip(col_shards.iter()) {
            assert!(e.allclose(g, 0.0));
        }
    }

    #[test]
    fn zero_sized_shards_participate() {
        let full = Tensor::arange(vec![5]);
        let shards = full.split_sizes(0, &[5, 0, 0]).unwrap();
        let gathered = all_gather(&shards, 0).unwrap();
        assert!(gathered[2].allclose(&full, 0.0));
    }
}
