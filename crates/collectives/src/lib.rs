//! Collective communication for HAP: cost models and data movement.
//!
//! Two views of the same collectives (paper Secs. 2.2, 2.5.1, 3.2):
//!
//! * a **ground-truth time model** ([`GroundTruthNet`]) with per-message
//!   latency, kernel-launch overhead and bandwidth saturation — the
//!   stand-in for NCCL on the 10.4 Gbps testbed. The discrete-event
//!   simulator treats this as "reality";
//! * a **fitted linear model** ([`CommProfile`]) obtained by running each
//!   collective at several sizes and least-squares fitting
//!   `time = latency + bytes/bandwidth`, exactly the paper's profiling
//!   step. The synthesizer and load balancer only ever see the fitted
//!   model, which is why the cost model can (and does, Fig. 18)
//!   systematically underestimate reality.
//!
//! The functional implementations in [`data`] actually move tensor shards
//! between simulated devices so synthesized programs can be executed and
//! checked for semantic equivalence.

mod data;
mod kinds;
mod profile;
mod time;

pub use data::{all_gather, all_reduce, all_to_all, reduce_scatter};
pub use kinds::CollKind;
pub use profile::{profile_collectives, CommProfile};
pub use time::{GroundTruthNet, NetworkParams};
