//! One function per table/figure of the paper's evaluation (Sec. 7).
//!
//! Model depths are reduced relative to the paper (4 encoder layers instead
//! of 12, 64-pixel VGG inputs instead of 224) so a full sweep finishes in
//! minutes on a laptop; per-layer structure, batch scaling and cluster
//! shapes follow the paper exactly, and Fig. 19 covers depth scaling
//! explicitly. EXPERIMENTS.md records paper-vs-measured for every series.

use std::time::Instant;

use hap::prelude::*;
use hap_balancer::estimate_time;
use hap_baselines::Baseline;
use hap_cluster::ClusterSpec;
use hap_collectives::{profile_collectives, CollKind, GroundTruthNet, NetworkParams};
use hap_graph::Graph;
use hap_models::{
    bert_base, bert_moe, transformer_layer, vgg19, vit, Benchmark, BertConfig, MoeConfig,
    TransformerConfig, VggConfig, VitConfig,
};

use crate::{
    harness_options, net_for, print_row, run_baseline, run_hap, run_hap_with, sim_options,
};

/// Harness-scale variant of a benchmark model (paper shapes, reduced depth).
pub fn harness_model(b: Benchmark, gpus: usize) -> Graph {
    let batch = b.per_device_batch() * gpus;
    match b {
        Benchmark::Vgg19 => vgg19(&VggConfig { batch, image: 64, ..VggConfig::paper() }),
        Benchmark::Vit => vit(&VitConfig { batch, layers: 4, ..VitConfig::paper() }),
        Benchmark::BertBase => bert_base(&BertConfig { batch, layers: 4, ..BertConfig::paper() }),
        // Every layer carries an MoE block so the harness-depth model keeps
        // the paper's expert-parameter share (12-layer / 6-MoE at full depth).
        Benchmark::BertMoe => bert_moe(&MoeConfig {
            bert: BertConfig { batch, layers: 4, ..BertConfig::paper() },
            experts: gpus.max(2),
            expert_hidden: 3900,
            moe_every: 1,
        }),
    }
}

/// Table 1: benchmark models and parameter counts.
pub fn table1() {
    println!("== Table 1: benchmark models ==");
    println!("{:<12} {:>22} {:>18}", "model", "task", "params (M)");
    let rows: [(&str, &str, f64); 4] = [
        ("VGG19", "Image Classification", vgg19(&VggConfig::paper()).parameter_count() as f64),
        ("ViT", "Image Classification", vit(&VitConfig::paper()).parameter_count() as f64),
        ("BERT-Base", "Language Model", bert_base(&BertConfig::paper()).parameter_count() as f64),
        (
            "BERT-MoE(m=8)",
            "Language Model",
            bert_moe(&MoeConfig::paper_scaled(8)).parameter_count() as f64,
        ),
    ];
    for (name, task, p) in rows {
        println!("{name:<12} {task:>22} {:>18.1}", p / 1e6);
    }
    println!("paper: VGG19 133M, ViT 54M, BERT-Base 102M, BERT-MoE 84+36m M\n");
}

/// Fig. 2: CP vs EV sharding under different computation-to-communication
/// ratios (Transformer layer on 2xP100 + 2xA100, hidden width swept).
pub fn fig02() {
    println!("== Fig. 2: CP vs EV sharding ratios (Transformer, 2xP100 + 2xA100) ==");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "batch", "comp/comm", "CP (ms)", "EV (ms)", "winner"
    );
    let cluster = ClusterSpec::fig2_cluster();
    let devices = cluster.virtual_devices(Granularity::PerGpu);
    let net = net_for(&cluster);
    let profile = profile_collectives(&net, devices.len());
    // The paper sweeps the computation-to-communication ratio by changing
    // the hidden width; under our network calibration both computation and
    // gradient bytes scale quadratically with the width, so the batch size
    // is the lever that actually moves the ratio (computation scales with
    // it, parameter synchronization does not).
    for batch in [4usize, 8, 16, 32, 64, 128, 256] {
        let graph = transformer_layer(&TransformerConfig { batch, ..TransformerConfig::fig2(768) });
        // The paper's motivating setup shards tensors across the GPUs
        // (intra-op parallelism with All-Gather/Reduce-Scatter, whose time
        // follows the largest shard). The ZeRO-style baseline program has
        // exactly that shape.
        let Ok(plan) = hap_baselines::build_baseline(
            hap_baselines::Baseline::DeepSpeed,
            &graph,
            &cluster,
            Granularity::PerGpu,
        ) else {
            continue;
        };
        let segs = graph.segment_count();
        let cp = vec![cluster.proportional_ratios(Granularity::PerGpu); segs];
        let ev = vec![cluster.even_ratios(Granularity::PerGpu); segs];
        let t_cp = estimate_time(&graph, &plan.program, &devices, &profile, &cp);
        let t_ev = estimate_time(&graph, &plan.program, &devices, &profile, &ev);
        // Computation-to-communication ratio on the slowest device under EV.
        let stages = hap_balancer::stage_breakdown(&graph, &plan.program, &devices, &profile, &ev);
        let comp: f64 = stages.iter().map(|s| s.comp.iter().cloned().fold(0.0, f64::max)).sum();
        let comm: f64 = stages.iter().map(|s| s.comm).sum();
        let ratio = if comm > 0.0 { comp / comm } else { f64::INFINITY };
        println!(
            "{batch:<8} {ratio:>12.2} {:>12.2} {:>12.2} {:>12}",
            t_cp * 1e3,
            t_ev * 1e3,
            if t_cp < t_ev { "CP" } else { "EV" }
        );
    }
    println!("paper: CP wins when computation dominates; EV wins when communication does\n");
}

/// Fig. 4: padded All-Gather vs grouped Broadcast bandwidth under skew.
pub fn fig04() {
    println!("== Fig. 4: All-Gather implementations on uneven shards (4 MB, 4 devices) ==");
    println!("{:<10} {:>16} {:>18}", "max ratio", "padded (GB/s)", "grouped (GB/s)");
    let net = GroundTruthNet::new(NetworkParams::paper_cloud());
    let total = 4.0 * 1024.0 * 1024.0;
    let m = 4usize;
    for step in 0..=14 {
        let r = 0.3 + step as f64 * 0.05;
        if r > 1.0 {
            break;
        }
        let rest = total * (1.0 - r) / (m as f64 - 1.0);
        let mut shards = vec![total * r];
        shards.extend(std::iter::repeat_n(rest, m - 1));
        let t_pad = net.collective_time(CollKind::AllGatherPadded, &shards);
        let t_grp = net.collective_time(CollKind::GroupedBroadcast, &shards);
        println!("{r:<10.2} {:>16.3} {:>18.3}", total / t_pad / 1e9, total / t_grp / 1e9);
    }
    println!("paper: padded wins near-even; grouped wins under heavy skew (crossover ~0.5)\n");
}

/// Fig. 11: the A* walk-through example.
pub fn fig11() {
    println!("== Fig. 11: synthesis walk-through (loss = sum(x . w)) ==");
    let mut g = GraphBuilder::new();
    let x = g.placeholder("e1", vec![4096, 1024]);
    let w = g.parameter("e2", vec![1024, 512]);
    let y = g.matmul(x, w);
    let loss = g.sum_all(y);
    let graph = g.build_forward();
    let _ = (x, w, y, loss);
    let cluster = ClusterSpec::fig17_cluster();
    let plan = hap::parallelize(
        &graph,
        &cluster,
        &HapOptions { max_rounds: 1, ..harness_options(Granularity::PerGpu) },
    )
    .expect("fig11 synthesizes");
    print!("{}", plan.listing());
    println!("estimated time: {:.3} ms", plan.estimated_time * 1e3);
    println!("paper: data-parallel program (placeholder-shard(0), parameter(), matmul, sum)\n");
}

fn speed_table(title: &str, clusters: &[(usize, ClusterSpec)], baselines: &[Baseline]) {
    println!("{title}");
    let granularity = Granularity::PerMachine;
    for b in Benchmark::all() {
        println!("--- {} (per-iteration seconds) ---", b.name());
        let labels: Vec<String> = clusters.iter().map(|(g, _)| format!("{g} GPUs")).collect();
        print_row("system", &labels);
        let mut hap_cells = Vec::new();
        let mut base_cells: Vec<Vec<String>> = vec![Vec::new(); baselines.len()];
        for (gpus, cluster) in clusters {
            let graph = harness_model(b, *gpus);
            hap_cells.push(run_hap(&graph, cluster, granularity).display());
            for (i, &bl) in baselines.iter().enumerate() {
                base_cells[i].push(run_baseline(bl, &graph, cluster, granularity).display());
            }
        }
        print_row("HAP", &hap_cells);
        for (i, &bl) in baselines.iter().enumerate() {
            print_row(bl.name(), &base_cells[i]);
        }
    }
    println!();
}

/// Fig. 13: per-iteration time on the heterogeneous cluster (8-64 GPUs).
pub fn fig13() {
    let clusters: Vec<(usize, ClusterSpec)> =
        [1usize, 2, 4, 8].iter().map(|&k| (8 * k, ClusterSpec::paper_heterogeneous(k))).collect();
    speed_table(
        "== Fig. 13: heterogeneous cluster (2x V100-machines + 6x P100-machines) ==",
        &clusters,
        &Baseline::all(),
    );
    println!("paper: HAP wins everywhere; up to 2.41x over DP on VGG19; DP OOMs on BERT-MoE\n");
}

/// Fig. 14: per-iteration time on the homogeneous cluster (8-32 GPUs).
pub fn fig14() {
    let clusters: Vec<(usize, ClusterSpec)> =
        [2usize, 4, 6, 8].iter().map(|&k| (4 * k, ClusterSpec::paper_homogeneous(k))).collect();
    speed_table(
        "== Fig. 14: homogeneous cluster (4x P100-machines) ==",
        &clusters,
        &[Baseline::DpEv, Baseline::DeepSpeed, Baseline::Tag],
    );
    println!("paper: HAP still wins (217%/19%/22%/13% over best baseline per model)\n");
}

/// Fig. 15: ablation — DP-EV vs +Q (synthesizer) vs +B (balancer) vs +C
/// (communication optimization), as throughput relative to full HAP.
pub fn fig15() {
    println!("== Fig. 15: ablation (throughput % of full HAP, heterogeneous 16 GPUs) ==");
    println!("{:<12} {:>10} {:>10} {:>10} {:>10}", "model", "DP-EV", "+Q", "+B", "+C(full)");
    let cluster = ClusterSpec::paper_heterogeneous(2);
    let granularity = Granularity::PerMachine;
    for b in Benchmark::all() {
        let graph = harness_model(b, 16);
        let base = harness_options(granularity);
        // +Q: synthesized program, no load balancing, no comm optimization.
        let q = HapOptions {
            balance: false,
            synth: SynthConfig { grouped_broadcast: false, sfb: false, ..base.synth },
            ..base.clone()
        };
        // +B: add the LP balancer.
        let qb = HapOptions {
            balance: true,
            synth: SynthConfig { grouped_broadcast: false, sfb: false, ..base.synth },
            ..base.clone()
        };
        // +C: full HAP (grouped broadcast + SFB rules).
        let qbc = base.clone();
        let t_dp = run_baseline(Baseline::DpEv, &graph, &cluster, granularity).iteration_time;
        let t_q = run_hap_with(&graph, &cluster, &q).iteration_time;
        let t_qb = run_hap_with(&graph, &cluster, &qb).iteration_time;
        let t_qbc = run_hap_with(&graph, &cluster, &qbc).iteration_time;
        let full = t_qbc.unwrap_or(f64::NAN);
        let pct = |t: Option<f64>| match t {
            Some(t) if t > 0.0 => format!("{:.0}", full / t * 100.0),
            _ => "OOM".into(),
        };
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}",
            b.name(),
            pct(t_dp),
            pct(t_q),
            pct(t_qb),
            "100"
        );
    }
    println!("paper: the synthesizer (Q) contributes most; C is small at mild heterogeneity\n");
}

/// Fig. 16: HAP on the whole heterogeneous cluster vs training two models
/// concurrently on its homogeneous halves.
pub fn fig16() {
    println!("== Fig. 16: HAP vs concurrent homogeneous subclusters ==");
    println!("{:<12} {:>16} {:>16} {:>12}", "model", "conc V100 (%)", "conc P100 (%)", "HAP (%)");
    let k = 2usize; // GPUs per machine
    let whole = ClusterSpec::paper_heterogeneous(k);
    let v100s = ClusterSpec::new(
        (0..2)
            .map(|_| hap::cluster::Machine::nvlink(hap::cluster::DeviceType::v100(), k))
            .collect(),
        whole.inter_bandwidth,
        whole.inter_latency,
    );
    let p100s = ClusterSpec::new(
        (0..6).map(|_| hap::cluster::Machine::pcie(hap::cluster::DeviceType::p100(), k)).collect(),
        whole.inter_bandwidth,
        whole.inter_latency,
    );
    let granularity = Granularity::PerMachine;
    for b in Benchmark::all() {
        let thr = |cluster: &ClusterSpec, gpus: usize| -> f64 {
            let graph = harness_model(b, gpus);
            let samples = (b.per_device_batch() * gpus) as f64;
            match run_hap(&graph, cluster, granularity).iteration_time {
                Some(t) => samples / t,
                None => 0.0,
            }
        };
        let t_v = thr(&v100s, 2 * k);
        let t_p = thr(&p100s, 6 * k);
        let t_h = thr(&whole, 8 * k);
        let total = t_v + t_p;
        println!(
            "{:<12} {:>16.1} {:>16.1} {:>12.1}",
            b.name(),
            t_v / total * 100.0,
            t_p / total * 100.0,
            t_h / total * 100.0
        );
    }
    println!("paper: HAP reaches 64-96% of the concurrent total while training ONE model\n");
}

/// Fig. 17: BERT-MoE with uneven expert placement vs padded experts.
pub fn fig17() {
    println!("== Fig. 17: uneven expert placement (2xA100 + 2xP100) ==");
    println!("{:<10} {:>14} {:>16}", "experts", "HAP (s)", "DeepSpeed (s)");
    let cluster = ClusterSpec::fig17_cluster();
    let granularity = Granularity::PerGpu;
    let devices = 4usize;
    for experts in (4..=32).step_by(4) {
        let small = |experts: usize| MoeConfig {
            bert: BertConfig {
                batch: experts * 2, // tokens proportional to experts
                layers: 2,
                ..BertConfig::paper()
            },
            experts,
            expert_hidden: 3900,
            moe_every: 2,
        };
        let hap_graph = bert_moe(&small(experts));
        let hap_t = run_hap(&hap_graph, &cluster, granularity);
        // DeepSpeed pads the expert count to a multiple of the device count,
        // with the same token load.
        let padded = experts.div_ceil(devices) * devices;
        let mut ds_cfg = small(padded);
        ds_cfg.bert.batch = experts * 2;
        let ds_graph = bert_moe(&ds_cfg);
        let ds_t = run_baseline(Baseline::DeepSpeed, &ds_graph, &cluster, granularity);
        println!("{experts:<10} {:>14} {:>16}", hap_t.display(), ds_t.display());
    }
    println!("paper: HAP is smooth in the expert count and up to 64% faster; DeepSpeed steps\n");
}

/// Fig. 18: cost-model estimated vs simulated ("actual") time.
pub fn fig18() {
    println!("== Fig. 18: cost model accuracy (BERT variants) ==");
    println!("{:<26} {:>14} {:>14}", "config", "estimated (s)", "actual (s)");
    let cluster = ClusterSpec::paper_heterogeneous(2);
    let granularity = Granularity::PerMachine;
    let mut points = Vec::new();
    for layers in [2usize, 3, 4] {
        for hidden in [384usize, 768] {
            for seq in [64usize, 128] {
                let graph = bert_base(&BertConfig {
                    batch: 64 * 16,
                    layers,
                    hidden,
                    heads: 12,
                    ffn: hidden * 4,
                    seq,
                    vocab: 11264,
                });
                let r = run_hap(&graph, &cluster, granularity);
                if let Some(actual) = r.iteration_time {
                    println!(
                        "{:<26} {:>14.4} {:>14.4}",
                        format!("L{layers} h{hidden} s{seq}"),
                        r.estimated_time,
                        actual
                    );
                    points.push((r.estimated_time, actual));
                }
            }
        }
    }
    let r = pearson(&points);
    let under = points.iter().filter(|(e, a)| e <= a).count();
    println!(
        "Pearson r = {r:.3}; {under}/{} configs underestimated (paper: r = 0.970, \
         systematic underestimation)\n",
        points.len()
    );
}

/// Fig. 19: program synthesis time vs model depth.
pub fn fig19() {
    println!("== Fig. 19: program synthesis time vs ViT depth ==");
    println!("{:<8} {:>8} {:>14}", "layers", "nodes", "synth (s)");
    let cluster = ClusterSpec::paper_heterogeneous(1);
    for layers in [2usize, 4, 8, 12, 16, 24] {
        let graph = vit(&VitConfig { batch: 64 * 8, layers, ..VitConfig::paper() });
        let t0 = Instant::now();
        let opts = HapOptions { max_rounds: 1, ..harness_options(Granularity::PerMachine) };
        let ok = hap::parallelize(&graph, &cluster, &opts).is_ok();
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{layers:<8} {:>8} {:>14.2}{}",
            graph.len(),
            dt,
            if ok { "" } else { "  (failed)" }
        );
    }
    println!("paper: superlinear growth, a few seconds at 24 layers\n");
}

/// Pearson correlation coefficient of (x, y) pairs.
pub fn pearson(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = points.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = points.iter().map(|(x, _)| (x - mx) * (x - mx)).sum();
    let vy: f64 = points.iter().map(|(_, y)| (y - my) * (y - my)).sum();
    cov / (vx.sqrt() * vy.sqrt())
}

/// The deterministic simulated-vs-estimated options (re-exported for bins).
pub fn options_note() {
    let _ = (sim_options(), net_for(&ClusterSpec::fig17_cluster()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_perfect_line_is_one() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        assert!((pearson(&pts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn harness_models_build() {
        for b in Benchmark::all() {
            let g = harness_model(b, 8);
            g.validate().unwrap();
            assert!(g.parameter_count() > 0);
        }
    }
}
