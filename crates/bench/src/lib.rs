//! Shared harness for regenerating every table and figure of the HAP paper.
//!
//! Each `fig*`/`table1` binary prints the same rows/series the paper
//! reports; `cargo bench` runs them all through the `figures` bench target.
//! Absolute numbers come from the simulation substrate (see DESIGN.md §2),
//! so the *shapes* — who wins, by what factor, where crossovers fall — are
//! the reproduction targets, not the absolute milliseconds.

pub mod figures;

use hap::prelude::*;
use hap_baselines::{build_baseline, Baseline};
use hap_cluster::ClusterSpec;
use hap_collectives::{GroundTruthNet, NetworkParams};
use hap_graph::Graph;
use hap_simulator::{memory_footprint, simulate_time, SimOptions, SimResult};

/// Simulation noise/seed used across all figures (deterministic).
pub fn sim_options() -> SimOptions {
    SimOptions { noise: 0.03, seed: 2024, ..SimOptions::default() }
}

/// The ground-truth network for a cluster spec.
pub fn net_for(cluster: &ClusterSpec) -> GroundTruthNet {
    GroundTruthNet::new(NetworkParams {
        latency: cluster.inter_latency,
        bandwidth: cluster.inter_bandwidth,
        ..NetworkParams::paper_cloud()
    })
}

/// Synthesis worker threads for the harness: the `HAP_THREADS` environment
/// variable when set (e.g. `HAP_THREADS=1` for a sequential baseline run),
/// otherwise `0` = all available cores. Synthesized plans are identical for
/// every value; only figure wall-clock time changes.
pub fn synth_threads() -> usize {
    std::env::var("HAP_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Prints the synthesis thread configuration once at the top of a figure
/// binary, so sweep logs record how the planner ran.
pub fn announce_threads() {
    let configured = synth_threads();
    let effective = if configured == 0 { mini_rayon::available_parallelism() } else { configured };
    println!(
        "synthesis threads: {effective}{}",
        if configured == 0 { " (auto; override with HAP_THREADS)" } else { " (HAP_THREADS)" }
    );
}

/// Synthesis options used by the harness: a tighter refinement budget so a
/// full figure sweep stays in minutes.
pub fn harness_options(granularity: Granularity) -> HapOptions {
    HapOptions {
        granularity,
        max_rounds: 3,
        synth: SynthConfig {
            time_budget_secs: 2.0,
            stall_expansions: 2_000,
            threads: synth_threads(),
            ..Default::default()
        },
        ..HapOptions::default()
    }
}

/// Result of running one system on one workload.
#[derive(Clone, Debug)]
pub struct SystemResult {
    /// Simulated per-iteration seconds, or `None` on out-of-memory.
    pub iteration_time: Option<f64>,
    /// The cost-model estimate (HAP only; baselines report 0).
    pub estimated_time: f64,
}

impl SystemResult {
    /// Renders like the paper's bar charts: seconds or `OOM`.
    pub fn display(&self) -> String {
        match self.iteration_time {
            Some(t) => format!("{t:.3}"),
            None => "OOM".into(),
        }
    }
}

/// Runs HAP end to end on a workload and simulates the result.
pub fn run_hap(graph: &Graph, cluster: &ClusterSpec, granularity: Granularity) -> SystemResult {
    run_hap_with(graph, cluster, &harness_options(granularity))
}

/// Runs HAP with explicit options (used by the Fig. 15 ablation).
pub fn run_hap_with(graph: &Graph, cluster: &ClusterSpec, opts: &HapOptions) -> SystemResult {
    match hap::parallelize(graph, cluster, opts) {
        Ok(plan) => {
            let mem = plan.memory();
            if !mem.fits() {
                return SystemResult { iteration_time: None, estimated_time: plan.estimated_time };
            }
            let sim = plan.simulate(&net_for(cluster), &sim_options());
            SystemResult {
                iteration_time: Some(sim.iteration_time),
                estimated_time: plan.estimated_time,
            }
        }
        Err(_) => SystemResult { iteration_time: None, estimated_time: 0.0 },
    }
}

/// Runs a baseline system on a workload and simulates the result.
pub fn run_baseline(
    baseline: Baseline,
    graph: &Graph,
    cluster: &ClusterSpec,
    granularity: Granularity,
) -> SystemResult {
    let devices = cluster.virtual_devices(granularity);
    match build_baseline(baseline, graph, cluster, granularity) {
        Ok(plan) => {
            let mem = memory_footprint(graph, &plan.program, &devices, &plan.ratios);
            if !mem.fits() {
                return SystemResult { iteration_time: None, estimated_time: 0.0 };
            }
            let sim: SimResult = simulate_time(
                graph,
                &plan.program,
                &devices,
                &net_for(cluster),
                &plan.ratios,
                &sim_options(),
            );
            SystemResult { iteration_time: Some(sim.iteration_time), estimated_time: 0.0 }
        }
        Err(_) => SystemResult { iteration_time: None, estimated_time: 0.0 },
    }
}

/// Prints one formatted series row.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<14}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_models::Benchmark;

    #[test]
    fn harness_runs_one_cell() {
        let graph = Benchmark::Vit.build_tiny(4);
        let cluster = ClusterSpec::fig17_cluster();
        let hap = run_hap(&graph, &cluster, Granularity::PerGpu);
        assert!(hap.iteration_time.is_some());
        let dp = run_baseline(Baseline::DpEv, &graph, &cluster, Granularity::PerGpu);
        assert!(dp.iteration_time.is_some());
    }
}
