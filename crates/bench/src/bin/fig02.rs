//! Regenerates the paper's Fig. 02 series; see EXPERIMENTS.md.
fn main() {
    hap_bench::figures::fig02();
}
