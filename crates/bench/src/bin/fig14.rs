//! Regenerates the paper's Fig. 14 series; see EXPERIMENTS.md.
fn main() {
    hap_bench::figures::fig14();
}
