//! Regenerates the paper's Fig. 16 series; see EXPERIMENTS.md.
fn main() {
    hap_bench::announce_threads();
    hap_bench::figures::fig16();
}
