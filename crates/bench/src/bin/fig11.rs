//! Regenerates the paper's Fig. 11 series; see EXPERIMENTS.md.
fn main() {
    hap_bench::announce_threads();
    hap_bench::figures::fig11();
}
