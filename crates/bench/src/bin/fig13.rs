//! Regenerates the paper's Fig. 13 series; see EXPERIMENTS.md.
fn main() {
    hap_bench::announce_threads();
    hap_bench::figures::fig13();
}
