//! Regenerates the paper's table1 series; see EXPERIMENTS.md.
fn main() {
    hap_bench::figures::table1();
}
