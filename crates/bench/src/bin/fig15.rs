//! Regenerates the paper's Fig. 15 series; see EXPERIMENTS.md.
fn main() {
    hap_bench::announce_threads();
    hap_bench::figures::fig15();
}
