//! Regenerates the paper's Fig. 04 series; see EXPERIMENTS.md.
fn main() {
    hap_bench::figures::fig04();
}
