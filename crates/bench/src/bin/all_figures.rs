//! Regenerates every table and figure of the paper in one run.
use hap_bench::figures as f;

fn main() {
    hap_bench::announce_threads();
    f::table1();
    f::fig02();
    f::fig04();
    f::fig11();
    f::fig13();
    f::fig14();
    f::fig15();
    f::fig16();
    f::fig17();
    f::fig18();
    f::fig19();
}
