//! CI regression gate over the machine-readable bench report.
//!
//! Usage: `bench_check <BENCH_synthesis.json> <reference-file>`
//!
//! Reads the JSON report written by the micro-bench harness (see the
//! `criterion` shim's `HAP_BENCH_JSON` support), extracts the
//! `synthesis/expand_hot_path` median, and fails (exit 1) when it exceeds
//! 2x the checked-in reference value — the cost-table hot path must never
//! quietly fall back to recomputation. Also prints the table-vs-direct
//! speedup when both series are present, so the CI log shows the current
//! ratio at a glance.

use std::process::ExitCode;

/// The bench whose median the gate gates.
const GATED_BENCH: &str = "synthesis/expand_hot_path";
/// The allocating baseline it is compared against (informational).
const BASELINE_BENCH: &str = "synthesis/expand_hot_path_direct";
/// Maximum allowed regression versus the reference median.
const MAX_REGRESSION: f64 = 2.0;

/// Extracts `"median_ns"` of the entry with the given `"id"` from the flat
/// report schema (`{"benches": [{"id": ..., "median_ns": ...}, ...]}`).
fn median_for(json: &str, id: &str) -> Option<f64> {
    let entry = json.find(&format!("\"id\": \"{id}\""))?;
    let rest = &json[entry..];
    let key = "\"median_ns\": ";
    let tail = &rest[rest.find(key)? + key.len()..];
    let end = tail.find(|c: char| !c.is_ascii_digit() && c != '.')?;
    tail[..end].parse().ok()
}

/// Parses the reference file: the first non-comment, non-empty line is the
/// reference median in nanoseconds.
fn parse_reference(text: &str) -> Option<f64> {
    text.lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .and_then(|l| l.parse().ok())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(report_path), Some(ref_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_check <BENCH_synthesis.json> <reference-file>");
        return ExitCode::FAILURE;
    };
    let report = match std::fs::read_to_string(&report_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_check: cannot read {report_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reference = match std::fs::read_to_string(&ref_path).map(|s| parse_reference(&s)) {
        Ok(Some(v)) => v,
        _ => {
            eprintln!("bench_check: no reference value in {ref_path}");
            return ExitCode::FAILURE;
        }
    };
    let Some(median) = median_for(&report, GATED_BENCH) else {
        eprintln!("bench_check: {GATED_BENCH} missing from {report_path}");
        return ExitCode::FAILURE;
    };
    if let Some(direct) = median_for(&report, BASELINE_BENCH) {
        println!(
            "bench_check: {GATED_BENCH} = {median:.0} ns, direct = {direct:.0} ns \
             (tables {:.2}x faster)",
            direct / median
        );
    }
    let limit = reference * MAX_REGRESSION;
    if median > limit {
        eprintln!(
            "bench_check: FAIL — {GATED_BENCH} median {median:.0} ns exceeds \
             {MAX_REGRESSION}x the reference {reference:.0} ns (limit {limit:.0} ns)"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_check: OK — {median:.0} ns within {MAX_REGRESSION}x of reference {reference:.0} ns"
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benches": [
    {"id": "tensor/matmul_64", "median_ns": 35884.0},
    {"id": "synthesis/expand_hot_path", "median_ns": 224960.1, "units_per_iter": 2837.0, "units_per_sec": 12611127.4},
    {"id": "synthesis/expand_hot_path_direct", "median_ns": 454539.5, "units_per_iter": 2837.0, "units_per_sec": 6241481.8}
  ]
}"#;

    #[test]
    fn extracts_the_gated_median() {
        assert_eq!(median_for(SAMPLE, GATED_BENCH), Some(224960.1));
        assert_eq!(median_for(SAMPLE, BASELINE_BENCH), Some(454539.5));
        assert_eq!(median_for(SAMPLE, "no/such_bench"), None);
    }

    #[test]
    fn reference_skips_comments() {
        assert_eq!(parse_reference("# comment\n\n300000\n"), Some(300000.0));
        assert_eq!(parse_reference("# only comments\n"), None);
    }
}
