//! CI regression gate over the machine-readable bench report.
//!
//! Usage: `bench_check <BENCH_synthesis.json> <gates-file>`
//!
//! Reads the JSON report written by the micro-bench harness (see the
//! `criterion` shim's `HAP_BENCH_JSON` support) and fails (exit 1) when a
//! gated bench's median exceeds 2x its checked-in reference.
//!
//! # Adaptive gating
//!
//! Raw medians drift with CI host speed, so the gates file may name a
//! *calibration* bench (`tensor/matmul_64` — pure compute, insensitive to
//! the code paths under gate). Every limit scales by
//! `measured(calibration) / reference(calibration)`, clamped to
//! `[0.25, 4]`: a host that runs the calibration loop 2x slower is allowed
//! 2x slower hot paths, while a pathological calibration sample cannot
//! stretch a limit past 4x. Without a calibration line (or when the
//! calibration bench is missing from the report) the scale is 1 — the old
//! fixed-threshold behavior.
//!
//! # Gates file format
//!
//! One entry per non-comment line:
//!
//! ```text
//! calibration tensor/matmul_64 30000
//! synthesis/expand_hot_path 300000
//! service/cache_hit_bert_tiny 800000
//! ratio service/cache_admission_churn service/cache_plain_lru_churn 1.10
//! ```
//!
//! A `ratio A B L` line gates the *relative* cost of two benches from the
//! same report: `median(A) / median(B)` must not exceed `L`. Both medians
//! come from one run on one host, so no calibration applies — this is how
//! "feature X adds < N% overhead over baseline Y" claims stay enforced.
//!
//! A legacy bare-number line is still accepted as the
//! `synthesis/expand_hot_path` reference.

use std::process::ExitCode;

/// The allocating expand baseline (informational speedup print).
const HOT_PATH_BENCH: &str = "synthesis/expand_hot_path";
const HOT_PATH_DIRECT: &str = "synthesis/expand_hot_path_direct";
/// The plan-cache pair (informational speedup print).
const CACHE_HIT_BENCH: &str = "service/cache_hit_bert_tiny";
const CACHE_COLD_BENCH: &str = "service/plan_bert_tiny_cold";
/// Maximum allowed regression versus the (scaled) reference median.
const MAX_REGRESSION: f64 = 2.0;
/// Calibration scale clamp.
const SCALE_RANGE: (f64, f64) = (0.25, 4.0);

/// Extracts `"median_ns"` of the entry with the given `"id"` from the flat
/// report schema (`{"benches": [{"id": ..., "median_ns": ...}, ...]}`).
fn median_for(json: &str, id: &str) -> Option<f64> {
    let entry = json.find(&format!("\"id\": \"{id}\""))?;
    let rest = &json[entry..];
    let key = "\"median_ns\": ";
    let tail = &rest[rest.find(key)? + key.len()..];
    let end = tail.find(|c: char| !c.is_ascii_digit() && c != '.')?;
    tail[..end].parse().ok()
}

/// The parsed gates file.
struct Gates {
    /// `(bench id, reference median ns)` used to normalize for host speed.
    calibration: Option<(String, f64)>,
    /// `(bench id, reference median ns)` pairs to gate.
    gates: Vec<(String, f64)>,
    /// `(numerator id, denominator id, max ratio)` relative gates.
    ratios: Vec<(String, String, f64)>,
}

/// Parses the gates file (see module docs). `None` when nothing is gated
/// or a line is malformed.
fn parse_gates(text: &str) -> Option<Gates> {
    let mut out = Gates { calibration: None, gates: Vec::new(), ratios: Vec::new() };
    for line in text.lines().map(str::trim) {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Legacy format: a bare number is the expand-hot-path reference.
        if let Ok(v) = line.parse::<f64>() {
            out.gates.push((HOT_PATH_BENCH.to_string(), v));
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some("calibration"), Some(id), Some(v), None, None) => {
                out.calibration = Some((id.to_string(), v.parse().ok()?));
            }
            (Some("ratio"), Some(num), Some(den), Some(limit), None) => {
                out.ratios.push((num.to_string(), den.to_string(), limit.parse().ok()?));
            }
            (Some(id), Some(v), None, None, None) => {
                out.gates.push((id.to_string(), v.parse().ok()?));
            }
            _ => return None,
        }
    }
    if out.gates.is_empty() && out.ratios.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// The host-speed scale factor derived from the calibration bench.
fn calibration_scale(report: &str, gates: &Gates) -> f64 {
    let Some((id, reference)) = &gates.calibration else { return 1.0 };
    let Some(measured) = median_for(report, id) else {
        eprintln!("bench_check: calibration bench {id} missing from report; scale = 1");
        return 1.0;
    };
    let raw = measured / reference;
    let scale = raw.clamp(SCALE_RANGE.0, SCALE_RANGE.1);
    println!(
        "bench_check: calibration {id} = {measured:.0} ns vs reference {reference:.0} ns \
         (scale {scale:.2}{})",
        if raw != scale { ", clamped" } else { "" }
    );
    scale
}

/// Prints the speedup between a fast/slow bench pair when both series are
/// in the report (informational; the gate is on the fast one).
fn print_speedup(report: &str, fast: &str, slow: &str, label: &str) {
    if let (Some(f), Some(s)) = (median_for(report, fast), median_for(report, slow)) {
        println!("bench_check: {label}: {fast} = {f:.0} ns, {slow} = {s:.0} ns ({:.0}x)", s / f);
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(report_path), Some(ref_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_check <BENCH_synthesis.json> <gates-file>");
        return ExitCode::FAILURE;
    };
    let report = match std::fs::read_to_string(&report_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_check: cannot read {report_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let gates = match std::fs::read_to_string(&ref_path).map(|s| parse_gates(&s)) {
        Ok(Some(g)) => g,
        _ => {
            eprintln!("bench_check: no usable gates in {ref_path}");
            return ExitCode::FAILURE;
        }
    };

    print_speedup(&report, HOT_PATH_BENCH, HOT_PATH_DIRECT, "tables vs direct");
    print_speedup(&report, CACHE_HIT_BENCH, CACHE_COLD_BENCH, "plan cache");

    let scale = calibration_scale(&report, &gates);
    let mut failed = false;
    for (num, den, limit) in &gates.ratios {
        // Ratio gates compare two medians from the same run on the same
        // host: no calibration scaling applies.
        match (median_for(&report, num), median_for(&report, den)) {
            (Some(a), Some(b)) if b > 0.0 => {
                let ratio = a / b;
                if ratio > *limit {
                    eprintln!(
                        "bench_check: FAIL — {num} / {den} = {ratio:.3} exceeds the \
                         {limit} ratio limit ({a:.0} ns vs {b:.0} ns)"
                    );
                    failed = true;
                } else {
                    println!(
                        "bench_check: OK — {num} / {den} = {ratio:.3} within the \
                         {limit} ratio limit ({a:.0} ns vs {b:.0} ns)"
                    );
                }
            }
            _ => {
                eprintln!(
                    "bench_check: FAIL — ratio gate {num} / {den} needs both benches \
                     in {report_path}"
                );
                failed = true;
            }
        }
    }
    for (id, reference) in &gates.gates {
        let Some(median) = median_for(&report, id) else {
            eprintln!("bench_check: FAIL — gated bench {id} missing from {report_path}");
            failed = true;
            continue;
        };
        let limit = reference * MAX_REGRESSION * scale;
        if median > limit {
            eprintln!(
                "bench_check: FAIL — {id} median {median:.0} ns exceeds {MAX_REGRESSION}x \
                 the reference {reference:.0} ns at host scale {scale:.2} (limit {limit:.0} ns)"
            );
            failed = true;
        } else {
            println!(
                "bench_check: OK — {id} median {median:.0} ns within limit {limit:.0} ns \
                 (reference {reference:.0} ns, scale {scale:.2})"
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benches": [
    {"id": "tensor/matmul_64", "median_ns": 35884.0},
    {"id": "synthesis/expand_hot_path", "median_ns": 224960.1, "units_per_iter": 2837.0, "units_per_sec": 12611127.4},
    {"id": "synthesis/expand_hot_path_direct", "median_ns": 454539.5, "units_per_iter": 2837.0, "units_per_sec": 6241481.8},
    {"id": "service/cache_hit_bert_tiny", "median_ns": 411235.0},
    {"id": "service/plan_bert_tiny_cold", "median_ns": 516677000.0}
  ]
}"#;

    #[test]
    fn extracts_medians() {
        assert_eq!(median_for(SAMPLE, HOT_PATH_BENCH), Some(224960.1));
        assert_eq!(median_for(SAMPLE, HOT_PATH_DIRECT), Some(454539.5));
        assert_eq!(median_for(SAMPLE, CACHE_HIT_BENCH), Some(411235.0));
        assert_eq!(median_for(SAMPLE, "no/such_bench"), None);
    }

    #[test]
    fn legacy_bare_number_still_gates_the_hot_path() {
        let gates = parse_gates("# comment\n\n300000\n").unwrap();
        assert!(gates.calibration.is_none());
        assert_eq!(gates.gates, vec![(HOT_PATH_BENCH.to_string(), 300000.0)]);
        assert!(parse_gates("# only comments\n").is_none());
    }

    #[test]
    fn new_format_parses_calibration_and_gates() {
        let text = "# gates\ncalibration tensor/matmul_64 30000\n\
                    synthesis/expand_hot_path 300000\nservice/cache_hit_bert_tiny 800000\n";
        let gates = parse_gates(text).unwrap();
        assert_eq!(gates.calibration, Some(("tensor/matmul_64".to_string(), 30000.0)));
        assert_eq!(gates.gates.len(), 2);
        assert_eq!(gates.gates[1], ("service/cache_hit_bert_tiny".to_string(), 800000.0));
        assert!(parse_gates("calibration only_two_fields\n").is_none());
        assert!(parse_gates("# nothing gated\ncalibration tensor/matmul_64 1\n").is_none());
    }

    #[test]
    fn ratio_lines_parse_and_other_shapes_fail() {
        let text = "calibration tensor/matmul_64 30000\n\
                    ratio service/cache_admission_churn service/cache_plain_lru_churn 1.10\n\
                    synthesis/expand_hot_path 300000\n";
        let gates = parse_gates(text).unwrap();
        assert_eq!(gates.ratios.len(), 1);
        assert_eq!(gates.ratios[0].0, "service/cache_admission_churn");
        assert_eq!(gates.ratios[0].1, "service/cache_plain_lru_churn");
        assert_eq!(gates.ratios[0].2, 1.10);
        assert_eq!(gates.gates.len(), 1);
        // A ratio-only gates file is usable.
        assert!(parse_gates("ratio a b 1.5\n").is_some());
        // Malformed ratio lines are rejected, not ignored.
        assert!(parse_gates("ratio a b\n").is_none());
        assert!(parse_gates("ratio a b not_a_number\n").is_none());
        assert!(parse_gates("ratio a b 1.5 extra\n").is_none());
    }

    #[test]
    fn calibration_scales_and_clamps() {
        let gates = parse_gates("calibration tensor/matmul_64 35884\n300000\n").unwrap();
        // Measured == reference -> scale 1.
        assert!((calibration_scale(SAMPLE, &gates) - 1.0).abs() < 1e-9);
        // A very fast reference host would scale up without bound; the
        // clamp caps it at 4x (and 0.25x on the slow side).
        let fast = parse_gates("calibration tensor/matmul_64 10\n300000\n").unwrap();
        assert_eq!(calibration_scale(SAMPLE, &fast), 4.0);
        let slow = parse_gates("calibration tensor/matmul_64 100000000\n300000\n").unwrap();
        assert_eq!(calibration_scale(SAMPLE, &slow), 0.25);
        // Missing calibration bench -> neutral scale.
        let missing = parse_gates("calibration no/such_bench 10\n300000\n").unwrap();
        assert_eq!(calibration_scale(SAMPLE, &missing), 1.0);
    }
}
