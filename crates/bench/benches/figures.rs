//! `cargo bench` target that regenerates every table and figure.
//!
//! Not a criterion harness: the "benchmark" here is the paper's evaluation
//! itself. Output is the same series the `fig*` binaries print.
use hap_bench::figures as f;

fn main() {
    // `cargo bench` passes --bench; ignore arguments.
    f::table1();
    f::fig02();
    f::fig04();
    f::fig11();
    f::fig13();
    f::fig14();
    f::fig15();
    f::fig16();
    f::fig17();
    f::fig18();
    f::fig19();
}
