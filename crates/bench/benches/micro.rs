//! Criterion micro-benchmarks for HAP's building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hap_balancer::{estimate_time, optimize_ratios, round_shards};
use hap_cluster::{ClusterSpec, Granularity};
use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
use hap_lp::{Problem, Relation};
use hap_models::{bert_base, transformer_layer, BertConfig, TransformerConfig};
use hap_synthesis::{synthesize, synthesize_with_theory, HotPathBench, SynthConfig, Theory};
use hap_tensor::Tensor;

fn bench_tensor(c: &mut Criterion) {
    let a = Tensor::randn(vec![64, 64], 1);
    let b = Tensor::randn(vec![64, 64], 2);
    c.bench_function("tensor/matmul_64", |bench| {
        bench.iter(|| black_box(&a).matmul(black_box(&b)).unwrap())
    });
    let t = Tensor::randn(vec![1024, 64], 3);
    c.bench_function("tensor/split_concat_1024x64", |bench| {
        bench.iter(|| {
            let parts = black_box(&t).split_sizes(0, &[300, 500, 224]).unwrap();
            Tensor::concat(&parts, 0).unwrap()
        })
    });
}

fn bench_lp(c: &mut Criterion) {
    c.bench_function("lp/balancer_shaped_8dev_6stage", |bench| {
        bench.iter(|| {
            let m = 8;
            let stages = 6;
            let n = m + 1 + stages;
            let mut obj = vec![0.0; n];
            obj[m] = 3.0;
            for i in 0..stages {
                obj[m + 1 + i] = 1.0;
            }
            let mut p = Problem::minimize(obj);
            let mut simplex = vec![0.0; n];
            simplex[..m].fill(1.0);
            p.constrain(simplex, Relation::Eq, 1.0);
            for j in 0..m {
                let mut row = vec![0.0; n];
                row[j] = 1.0;
                row[m] = -1.0;
                p.constrain(row, Relation::Le, 0.0);
            }
            for i in 0..stages {
                for j in 0..m {
                    let mut row = vec![0.0; n];
                    row[j] = 1.0 + (i + j) as f64 * 0.1;
                    row[m + 1 + i] = -1.0;
                    p.constrain(row, Relation::Le, 0.0);
                }
            }
            black_box(p.solve().unwrap())
        })
    });
    c.bench_function("lp/round_shards_64dev", |bench| {
        let ratios: Vec<f64> = (0..64).map(|i| 1.0 + (i % 7) as f64).collect();
        let total: f64 = ratios.iter().sum();
        let ratios: Vec<f64> = ratios.iter().map(|r| r / total).collect();
        bench.iter(|| black_box(round_shards(2048, black_box(&ratios))))
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let graph = transformer_layer(&TransformerConfig {
        batch: 512,
        seq: 128,
        hidden: 256,
        heads: 8,
        ffn: 1024,
    });
    let cluster = ClusterSpec::paper_heterogeneous(1);
    let devices = cluster.virtual_devices(Granularity::PerMachine);
    let net = GroundTruthNet::new(NetworkParams::paper_cloud());
    let profile = profile_collectives(&net, devices.len());
    let ratios = vec![cluster.proportional_ratios(Granularity::PerMachine); graph.segment_count()];

    c.bench_function("synthesis/theory_build_transformer", |bench| {
        bench.iter(|| black_box(Theory::build(black_box(&graph))))
    });
    let cfg = SynthConfig { time_budget_secs: 0.0, ..SynthConfig::default() };
    c.bench_function("synthesis/greedy_program_transformer", |bench| {
        bench.iter(|| black_box(synthesize(&graph, &devices, &profile, &ratios, &cfg).unwrap()))
    });
    let q = synthesize(&graph, &devices, &profile, &ratios, &cfg).unwrap();
    c.bench_function("balancer/lp_ratios_transformer", |bench| {
        bench.iter(|| black_box(optimize_ratios(&graph, &q, &devices, &profile).unwrap()))
    });
    c.bench_function("balancer/estimate_transformer", |bench| {
        bench.iter(|| black_box(estimate_time(&graph, &q, &devices, &profile, &ratios)))
    });
}

fn bench_parallel_synthesis(c: &mut Criterion) {
    // The wave-parallel A* at 1 vs 4 worker threads on the BERT tiny config.
    // The expansion budget is fixed and the stall cutoff disabled, so every
    // thread count performs the identical (deterministic) search — the two
    // series differ only in wall-clock time, which is exactly the speedup
    // the parallel frontier is supposed to buy on multi-core hosts.
    let graph = bert_base(&BertConfig::tiny());
    let cluster = ClusterSpec::paper_heterogeneous(1);
    let devices = cluster.virtual_devices(Granularity::PerMachine);
    let net = GroundTruthNet::new(NetworkParams::paper_cloud());
    let profile = profile_collectives(&net, devices.len());
    let ratios = vec![cluster.proportional_ratios(Granularity::PerMachine); graph.segment_count()];
    let theory = Theory::build(&graph);
    for threads in [1usize, 4] {
        let cfg = SynthConfig {
            threads,
            time_budget_secs: 600.0,
            max_expansions: 4_096,
            stall_expansions: usize::MAX,
            ..SynthConfig::default()
        };
        c.bench_function(&format!("synthesis/parallel_bert_tiny_t{threads}"), |bench| {
            bench.iter(|| {
                black_box(
                    synthesize_with_theory(&graph, &theory, &devices, &profile, &ratios, &cfg)
                        .unwrap(),
                )
            })
        });
    }
}

fn bench_expand_hot_path(c: &mut Criterion) {
    // The isolated A* inner loop — cost lookup + candidate generation over
    // a frozen workload of reachable states, no frontier, no dominance map,
    // no thread pool — through the production cost tables and through the
    // direct (pre-table, allocating) CostModel path. The ratio of the two
    // medians is the table speedup; `bench_check` gates the tables variant
    // against a checked-in reference. Both runs produce bit-identical
    // checksums (asserted here and in the synthesis crate's property tests).
    let graph = bert_base(&BertConfig::tiny());
    // A 16-GPU heterogeneous cluster (the paper's larger settings): cost
    // rows are 16 wide, so the per-expansion arithmetic carries the weight
    // it does in production-scale searches.
    let cluster = ClusterSpec::paper_heterogeneous(4);
    let devices = cluster.virtual_devices(Granularity::PerGpu);
    let net = GroundTruthNet::new(NetworkParams::paper_cloud());
    let profile = profile_collectives(&net, devices.len());
    let ratios = vec![cluster.proportional_ratios(Granularity::PerGpu); graph.segment_count()];
    let workload = HotPathBench::new(graph, devices, profile, ratios, 256);
    let apps = workload.applications() as f64;
    assert_eq!(workload.run(true).1, workload.run(false).1, "table vs direct cost drift");
    assert_eq!(workload.run(true).1, workload.run_arena().1, "arena vs allocating apply drift");
    c.bench_function_with_units("synthesis/expand_hot_path", apps, |bench| {
        bench.iter(|| black_box(workload.run(true)))
    });
    c.bench_function_with_units("synthesis/expand_hot_path_direct", apps, |bench| {
        bench.iter(|| black_box(workload.run(false)))
    });
    // The same inner loop through the recycling arena `expand` uses in
    // production. A `ratio` line in bench_gates.ref holds it to within 10%
    // of the allocating variant — state recycling must never cost.
    c.bench_function_with_units("synthesis/expand_hot_path_arena", apps, |bench| {
        bench.iter(|| black_box(workload.run_arena()))
    });
}

fn bench_plan_service(c: &mut Criterion) {
    // The plan service's two extremes on the same BERT-tiny request line:
    //
    // * `service/plan_bert_tiny_cold` — a fresh daemon pays full synthesis
    //   (plus service bring-up, which is noise next to the search);
    // * `service/cache_hit_bert_tiny` — the same request answered from the
    //   content-addressed cache: parse the frame, fingerprint the canonical
    //   bytes, look up, render the response. No graph decode, no synthesis.
    //
    // The ratio of the two medians is the cache's speedup; `bench_check`
    // prints it and gates the hit path against a checked-in reference. The
    // acceptance bar for this subsystem is a >= 100x ratio.
    use hap_codec::{Encode, Value};
    use hap_service::{PlanService, ServiceConfig};

    let graph = bert_base(&BertConfig::tiny());
    let cluster = ClusterSpec::fig17_cluster();
    let opts = hap::HapOptions::default();
    let line = Value::obj(vec![
        ("op", Value::Str("plan".into())),
        ("id", Value::int(1)),
        ("graph", graph.encode()),
        ("cluster", cluster.encode()),
        ("options", opts.encode()),
    ])
    .render();

    c.bench_function("service/plan_bert_tiny_cold", |bench| {
        bench.iter(|| {
            let service = PlanService::new(ServiceConfig::default()).unwrap();
            let (response, _) = service.handle_line(black_box(&line));
            assert!(response.contains("\"source\":\"synthesized\""));
            response
        })
    });

    let service = PlanService::new(ServiceConfig::default()).unwrap();
    let (warmup, _) = service.handle_line(&line);
    assert!(warmup.contains("\"source\":\"synthesized\""));
    c.bench_function("service/cache_hit_bert_tiny", |bench| {
        bench.iter(|| {
            let (response, _) = service.handle_line(black_box(&line));
            debug_assert!(response.contains("\"source\":\"cache\""));
            response
        })
    });

    // The identical hit path on a daemon with telemetry disabled: the
    // paired `ratio` gate in bench_gates.ref holds request tracing and
    // histogram recording to <= 5% of the hit cost — a few clock reads
    // and relaxed atomics, nothing more.
    let quiet =
        PlanService::new(ServiceConfig { telemetry: false, ..ServiceConfig::default() }).unwrap();
    let (warmup, _) = quiet.handle_line(&line);
    assert!(warmup.contains("\"source\":\"synthesized\""));
    c.bench_function("service/cache_hit_bert_tiny_no_telemetry", |bench| {
        bench.iter(|| {
            let (response, _) = quiet.handle_line(black_box(&line));
            debug_assert!(response.contains("\"source\":\"cache\""));
            response
        })
    });
}

fn bench_replan(c: &mut Criterion) {
    // Elastic replanning after a device loss vs paying cold synthesis on
    // the shrunken cluster:
    //
    // * `service/replan_bert_tiny` — a warmed daemon answers the `replan`
    //   verb in elastic steady state: membership flaps re-resolve the
    //   same delta, so each frame pays the full replan path — parse,
    //   prior-triple lookup, delta application, fingerprint rebase onto
    //   the post-delta cluster, plan fetch, instruction-level diff,
    //   response render — with the post-delta plan already content-
    //   addressed in the cache. Only a delta's *first* occurrence pays
    //   (warm-seeded) synthesis, and that cost is the cold baseline's.
    // * `service/replan_bert_tiny_cold_delta` — a fresh daemon plans the
    //   identical post-delta cluster from scratch.
    //
    // The ratio of the two medians is what elasticity buys over
    // re-planning from zero; `bench_check` gates it at 0.10 — the
    // subsystem's acceptance bar is a >= 10x speedup.
    use hap_cluster::ClusterDelta;
    use hap_codec::{render_fingerprint, request_fingerprint, Encode, Value};
    use hap_service::{PlanService, ServiceConfig};

    let graph = bert_base(&BertConfig::tiny());
    let cluster = ClusterSpec::fig17_cluster();
    let opts = hap::HapOptions::default();
    let plan_line = |cluster: &ClusterSpec| {
        Value::obj(vec![
            ("op", Value::Str("plan".into())),
            ("id", Value::int(1)),
            ("graph", graph.encode()),
            ("cluster", cluster.encode()),
            ("options", opts.encode()),
        ])
        .render()
    };
    let delta = ClusterDelta::device_loss(1, 1);
    let replan_line = Value::obj(vec![
        ("op", Value::Str("replan".into())),
        ("id", Value::int(2)),
        ("prior", Value::Str(render_fingerprint(request_fingerprint(&graph, &cluster, &opts)))),
        ("delta", delta.encode()),
    ])
    .render();

    // Warm the daemon with the prior plan, then pay the delta's first
    // occurrence (warm-seeded synthesis) outside the timed loop.
    let service = PlanService::new(ServiceConfig::default()).unwrap();
    let (warmup, _) = service.handle_line(&plan_line(&cluster));
    assert!(warmup.contains("\"source\":\"synthesized\""));
    let (first, _) = service.handle_line(&replan_line);
    assert!(first.contains("\"source\":\"synthesized\"") && first.contains("\"replan\":"));

    c.bench_function("service/replan_bert_tiny", |bench| {
        bench.iter(|| {
            let (response, _) = service.handle_line(black_box(&replan_line));
            debug_assert!(response.contains("\"source\":\"cache\""));
            debug_assert!(response.contains("\"replan\":"));
            response
        })
    });

    let lost = delta.apply(&cluster).unwrap();
    let cold_line = plan_line(&lost);
    c.bench_function("service/replan_bert_tiny_cold_delta", |bench| {
        bench.iter(|| {
            let service = PlanService::new(ServiceConfig::default()).unwrap();
            let (response, _) = service.handle_line(black_box(&cold_line));
            assert!(response.contains("\"source\":\"synthesized\""));
            response
        })
    });
}

fn bench_cache_admission(c: &mut Criterion) {
    // The admission policy's overhead against the plain-LRU baseline it
    // replaced, measured on the cache's own churn loop: a full cache
    // serving a burst of hits plus a trickle of new-entry offers (the
    // admission gate's actual decision point). Identical workloads, only
    // `CachePolicy::admission` differs; `bench_check` gates the ratio at
    // 1.10 — the cost-aware policy must stay within 10% of plain LRU.
    use hap_service::{CachePolicy, CachedPlan, PlanCache};
    use hap_synthesis::DistProgram;
    use std::sync::Arc;

    const CAPACITY: usize = 1024;
    const HITS_PER_ITER: usize = 512;
    const OFFERS_PER_ITER: usize = 16;
    let plan = |fp: u64| {
        Arc::new(CachedPlan {
            program: DistProgram::default(),
            ratios: vec![vec![0.25; 4]],
            estimated_time: 1.0,
            rounds: 1,
            graph_fp: fp,
            opts_fp: 1,
            features: [4.0, 1e13, 1e9, 1e-5],
            synthesis_nanos: 50_000_000,
            size_bytes: 2_000,
            ttl_nanos: None,
        })
    };
    for admission in [true, false] {
        let cache = PlanCache::with_policy(CAPACITY, CachePolicy { admission, default_ttl: None });
        for fp in 0..CAPACITY as u64 {
            cache.insert(fp, plan(fp));
        }
        let mut next_fp = CAPACITY as u64;
        let name = if admission {
            "service/cache_admission_churn"
        } else {
            "service/cache_plain_lru_churn"
        };
        c.bench_function_with_units(name, (HITS_PER_ITER + OFFERS_PER_ITER) as f64, |bench| {
            bench.iter(|| {
                let mut served = 0usize;
                for i in 0..HITS_PER_ITER {
                    let fp = (i * 97) as u64 % CAPACITY as u64;
                    served += usize::from(black_box(cache.get(black_box(fp))).is_some());
                }
                for _ in 0..OFFERS_PER_ITER {
                    // Equal-density offers: the gate runs its comparison
                    // and admits, exercising the full decision path.
                    let verdict = cache.insert(next_fp, plan(next_fp));
                    black_box(&verdict);
                    next_fp += 1;
                }
                served
            })
        });
    }
}

criterion_group!(
    benches,
    bench_tensor,
    bench_lp,
    bench_synthesis,
    bench_parallel_synthesis,
    bench_expand_hot_path,
    bench_plan_service,
    bench_replan,
    bench_cache_admission
);
criterion_main!(benches);
