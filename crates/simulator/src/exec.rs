//! Functional SPMD execution and equivalence checking.

use std::collections::HashMap;

use hap_balancer::round_shards;
use hap_collectives::{all_gather, all_reduce, all_to_all, reduce_scatter};
use hap_graph::{eval_single_device, Graph, NodeId, Op, Placement, Tensor};
use hap_synthesis::{CollectiveInstr, DistInstr, DistProgram, Prop, PropSet, ShardingRatios};

/// Functional execution failures.
#[derive(Debug)]
pub enum ExecError {
    /// A leaf had no feed.
    MissingFeed(NodeId),
    /// An instruction consumed a distributed tensor that was never produced.
    MissingValue(NodeId, Placement),
    /// Underlying kernel failure.
    Eval(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MissingFeed(n) => write!(f, "missing feed for leaf {n}"),
            ExecError::MissingValue(n, p) => {
                write!(f, "instruction needs ({n} | {p}) which was never produced")
            }
            ExecError::Eval(e) => write!(f, "kernel failure: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A distributed tensor: one instance per device.
#[derive(Clone, Debug)]
struct DistTensor {
    shards: Vec<Tensor>,
}

/// The executor's event-dedup structure: every produced
/// `(node, placement)` pair, keyed through the synthesis crate's canonical
/// [`PropSet`] (the same sorted-arena machinery the A\* interner and the
/// baselines walker use — closing the ROADMAP "the simulator remains"
/// item) with the tensor payloads in a parallel vector at the matching
/// sorted index. Membership is one binary search; a node's placements are
/// a contiguous [`PropSet::node_props`] slice, which also makes output
/// reconstruction *deterministic* — the old `HashMap` picked whichever
/// placement its randomized iteration order surfaced first.
#[derive(Default)]
struct DistValues {
    keys: PropSet,
    tensors: Vec<DistTensor>,
}

impl DistValues {
    /// The tensor produced for `p`, if any.
    fn get(&self, p: &Prop) -> Option<&DistTensor> {
        self.keys.props().binary_search(p).ok().map(|idx| &self.tensors[idx])
    }

    /// Records `p -> t`, overwriting any earlier production (mirroring the
    /// pre-port `HashMap::insert` semantics).
    fn insert(&mut self, p: Prop, t: DistTensor) {
        match self.keys.props().binary_search(&p) {
            Ok(idx) => self.tensors[idx] = t,
            Err(idx) => {
                let inserted = self.keys.insert(p);
                debug_assert!(inserted, "binary search said absent");
                self.tensors.insert(idx, t);
            }
        }
    }

    /// The canonically-first placement produced for `node`, with its
    /// tensor: the deterministic choice for output reconstruction.
    fn first_for_node(&self, node: NodeId) -> Option<(Placement, &DistTensor)> {
        let slice = self.keys.node_props(node);
        let &(_, placement) = slice.first()?;
        self.get(&(node, placement)).map(|t| (placement, t))
    }
}

/// The reconstructed values of every produced (node, placement) pair.
pub struct EquivReport {
    /// Per-output relative error: `max|dist - ref| / (1 + max|ref|)`.
    ///
    /// Relative to the reference magnitude because f32 summation-order
    /// differences between the sharded and single-device programs grow with
    /// tensor magnitude (a sum-reduced loss over a large batch is big).
    pub output_errors: Vec<(NodeId, f32)>,
    /// The largest relative error across required outputs.
    pub max_error: f32,
}

/// Executes a distributed program functionally on `m` devices.
///
/// Returns the reconstructed reference tensor for every required output of
/// the graph (loss and updated parameters): replicas are taken from device
/// 0 after cross-checking, shards are concatenated, partial sums are summed.
pub fn execute_functional(
    graph: &Graph,
    program: &DistProgram,
    feeds: &HashMap<NodeId, Tensor>,
    ratios: &ShardingRatios,
    m: usize,
) -> Result<HashMap<NodeId, Tensor>, ExecError> {
    let mut values = DistValues::default();
    let row_for = |node: NodeId| -> &[f64] {
        let seg = graph.node(node).segment.min(ratios.len() - 1);
        &ratios[seg]
    };

    for instr in &program.instrs {
        match instr {
            DistInstr::Leaf { node, placement } => {
                let full = match graph.node(*node).op {
                    Op::Ones => Tensor::ones(graph.node(*node).shape.dims().to_vec()),
                    _ => feeds.get(node).ok_or(ExecError::MissingFeed(*node))?.clone(),
                };
                let shards = match placement {
                    Placement::Replicated => vec![full; m],
                    Placement::Shard(d) => {
                        let extent = full.shape().dims()[*d];
                        let sizes = round_shards(extent, row_for(*node));
                        full.split_sizes(*d, &sizes).map_err(|e| ExecError::Eval(e.to_string()))?
                    }
                    Placement::PartialSum => {
                        return Err(ExecError::Eval("leaves cannot be partial".into()))
                    }
                };
                values.insert((*node, *placement), DistTensor { shards });
            }
            DistInstr::Compute { node, rule } => {
                let n = graph.node(*node);
                let mut inputs: Vec<&DistTensor> = Vec::with_capacity(n.inputs.len());
                for (&input, &placement) in n.inputs.iter().zip(rule.inputs.iter()) {
                    inputs.push(
                        values
                            .get(&(input, placement))
                            .ok_or(ExecError::MissingValue(input, placement))?,
                    );
                }
                let mut shards = Vec::with_capacity(m);
                for j in 0..m {
                    let local: Vec<&Tensor> = inputs.iter().map(|t| &t.shards[j]).collect();
                    let op = localized_op(&n.op, rule.output, row_for(*node), j);
                    let out = hap_graph::eval_op(&op, &local)
                        .map_err(|e| ExecError::Eval(format!("{}: {e}", n.name)))?;
                    shards.push(out);
                }
                values.insert((*node, rule.output), DistTensor { shards });
            }
            DistInstr::Collective { node, kind } => {
                let input_p = kind.input_placement();
                let input =
                    values.get(&(*node, input_p)).ok_or(ExecError::MissingValue(*node, input_p))?;
                let extent_of = |d: usize| graph.node(*node).shape.dims()[d];
                let out_shards = match kind {
                    CollectiveInstr::AllReduce => all_reduce(&input.shards),
                    CollectiveInstr::AllGather { dim, .. } => all_gather(&input.shards, *dim),
                    CollectiveInstr::ReduceScatter { dim } => {
                        let sizes = round_shards(extent_of(*dim), row_for(*node));
                        reduce_scatter(&input.shards, *dim, &sizes)
                    }
                    CollectiveInstr::AllToAll { from, to } => {
                        let sizes = round_shards(extent_of(*to), row_for(*node));
                        all_to_all(&input.shards, *from, *to, &sizes)
                    }
                }
                .map_err(|e| ExecError::Eval(e.to_string()))?;
                values.insert((*node, kind.output_placement()), DistTensor { shards: out_shards });
            }
        }
    }

    // Reconstruct required outputs from the canonically-first placement
    // each node was produced under (deterministic; every placement of a
    // correct program reconstructs the same value up to float rounding).
    let mut out = HashMap::new();
    for o in graph.required_outputs() {
        let Some((placement, dist)) = values.first_for_node(o) else {
            continue;
        };
        let tensor = reconstruct(dist, placement, o, graph)?;
        out.insert(o, tensor);
    }
    Ok(out)
}

/// Recovers the reference tensor from a distributed tensor.
fn reconstruct(
    dist: &DistTensor,
    placement: Placement,
    node: NodeId,
    graph: &Graph,
) -> Result<Tensor, ExecError> {
    match placement {
        Placement::Replicated => Ok(dist.shards[0].clone()),
        Placement::Shard(d) => Tensor::concat(&dist.shards, d)
            .map_err(|e| ExecError::Eval(format!("gather of node {node}: {e}"))),
        Placement::PartialSum => {
            let mut acc = dist.shards[0].clone();
            for s in &dist.shards[1..] {
                acc = acc.add(s).map_err(|e| ExecError::Eval(e.to_string()))?;
            }
            let _ = graph;
            Ok(acc)
        }
    }
}

/// Adjusts op attributes that depend on the local shard (MoE capacities).
fn localized_op(op: &Op, output: Placement, row: &[f64], device: usize) -> Op {
    match (op, output) {
        (Op::Dispatch { experts, capacity }, Placement::Shard(1)) => {
            let local = round_shards(*capacity, row);
            Op::Dispatch { experts: *experts, capacity: local[device] }
        }
        (Op::CombineGrad { experts, capacity }, Placement::Shard(1)) => {
            let local = round_shards(*capacity, row);
            Op::CombineGrad { experts: *experts, capacity: local[device] }
        }
        _ => op.clone(),
    }
}

/// Runs the single-device program and the distributed program on the same
/// feeds and compares every required output.
pub fn verify_equivalence(
    graph: &Graph,
    program: &DistProgram,
    feeds: &HashMap<NodeId, Tensor>,
    ratios: &ShardingRatios,
    m: usize,
) -> Result<EquivReport, ExecError> {
    let reference = eval_single_device(graph, feeds).map_err(|e| ExecError::Eval(e.to_string()))?;
    let distributed = execute_functional(graph, program, feeds, ratios, m)?;
    let mut output_errors = Vec::new();
    let mut max_error = 0f32;
    for o in graph.required_outputs() {
        let dist = distributed.get(&o).ok_or(ExecError::MissingValue(o, Placement::Replicated))?;
        let abs = dist.max_abs_diff(&reference[o]).map_err(|e| ExecError::Eval(e.to_string()))?;
        let scale = reference[o].data().iter().fold(0f32, |m, v| m.max(v.abs()));
        let rel = abs / (1.0 + scale);
        max_error = max_error.max(rel);
        output_errors.push((o, rel));
    }
    Ok(EquivReport { output_errors, max_error })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_cluster::{ClusterSpec, Granularity};
    use hap_collectives::{profile_collectives, GroundTruthNet, NetworkParams};
    use hap_graph::{GraphBuilder, Role};
    use hap_synthesis::{synthesize, SynthConfig};

    fn feeds_for(graph: &Graph, seed: u64, classes: usize) -> HashMap<NodeId, Tensor> {
        let mut feeds = HashMap::new();
        for n in graph.nodes() {
            match n.role {
                Role::Input | Role::Param => {
                    feeds.insert(n.id, Tensor::randn(n.shape.dims().to_vec(), seed + n.id as u64));
                }
                Role::Label => {
                    let t = Tensor::randn(n.shape.dims().to_vec(), seed + n.id as u64).map(|v| {
                        ((v + 0.5) * classes as f32).floor().clamp(0.0, classes as f32 - 1.0)
                    });
                    feeds.insert(n.id, t);
                }
                _ => {}
            }
        }
        feeds
    }

    #[test]
    fn synthesized_mlp_training_is_equivalent() {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![16, 6]);
        let w1 = g.parameter("w1", vec![6, 12]);
        let b1 = g.parameter("b1", vec![12]);
        let w2 = g.parameter("w2", vec![12, 4]);
        let labels = g.label("y", vec![16]);
        let h = g.matmul(x, w1);
        let h = g.bias_add(h, b1);
        let h = g.relu(h);
        let logits = g.matmul(h, w2);
        let loss = g.cross_entropy(logits, labels);
        let graph = g.build_training(loss).unwrap();

        let cluster = ClusterSpec::fig17_cluster();
        let devices = cluster.virtual_devices(Granularity::PerGpu);
        let profile =
            profile_collectives(&GroundTruthNet::new(NetworkParams::paper_cloud()), devices.len());
        let ratios = vec![cluster.proportional_ratios(Granularity::PerGpu)];
        let q = synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        let feeds = feeds_for(&graph, 5, 4);
        let report = verify_equivalence(&graph, &q, &feeds, &ratios, 4).unwrap();
        assert!(
            report.max_error < 1e-3,
            "max error {} in program:\n{}",
            report.max_error,
            q.listing(&graph)
        );
    }

    #[test]
    fn forced_sharded_program_is_equivalent() {
        // Hand-build a tensor-parallel program: w sharded on columns,
        // all-gather before the loss.
        use hap_graph::Placement::{Replicated, Shard};
        use hap_graph::Rule;
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![6, 8]);
        let w = g.parameter("w", vec![8, 10]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_forward();
        let program = DistProgram {
            instrs: vec![
                DistInstr::Leaf { node: x, placement: Replicated },
                DistInstr::Leaf { node: w, placement: Shard(1) },
                DistInstr::Compute {
                    node: y,
                    rule: Rule::new(vec![Replicated, Shard(1)], Shard(1)),
                },
                DistInstr::Collective {
                    node: y,
                    kind: CollectiveInstr::AllGather { dim: 1, grouped: true },
                },
                DistInstr::Compute { node: l, rule: Rule::new(vec![Replicated], Replicated) },
            ],
            estimated_time: 0.0,
        };
        let feeds = feeds_for(&graph, 9, 4);
        // Uneven ratios stress the rounding path.
        let ratios = vec![vec![0.5, 0.3, 0.1, 0.1]];
        let reference = eval_single_device(&graph, &feeds).unwrap();
        let out = execute_functional(&graph, &program, &feeds, &ratios, 4).unwrap();
        let _ = reference;
        // The loss is replicated; compare against single-device.
        let single = eval_single_device(&graph, &feeds).unwrap();
        assert!(out[&l].allclose(&single[l], 1e-4));
    }

    #[test]
    fn missing_value_is_reported() {
        use hap_graph::Placement::Replicated;
        use hap_graph::Rule;
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![4, 4]);
        let l = g.sum_all(x);
        let graph = g.build_forward();
        let program = DistProgram {
            instrs: vec![
                // x is never materialized.
                DistInstr::Compute { node: l, rule: Rule::new(vec![Replicated], Replicated) },
            ],
            estimated_time: 0.0,
        };
        let feeds = feeds_for(&graph, 1, 4);
        let err = execute_functional(&graph, &program, &feeds, &vec![vec![0.5, 0.5]], 2);
        assert!(matches!(err, Err(ExecError::MissingValue(_, _))));
    }

    #[test]
    fn dist_values_dedup_matches_a_hashmap_reference() {
        // The PropSet-backed structure must behave exactly like the
        // pre-port HashMap for membership, overwrite, and lookup — walked
        // over a pseudo-random op sequence covering collisions, repeats,
        // and all placement kinds.
        let marker = |v: f32| DistTensor { shards: vec![Tensor::ones(vec![1]).map(|_| v)] };
        let value_of = |t: &DistTensor| t.shards[0].data()[0];
        let mut ours = DistValues::default();
        let mut reference: HashMap<(NodeId, Placement), f32> = HashMap::new();
        let mut mix = 0xDEADBEEFu64;
        for step in 0..4_000u32 {
            mix = mix.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let node = (mix >> 8) as usize % 37;
            let placement = match (mix >> 16) % 4 {
                0 => Placement::Replicated,
                1 => Placement::PartialSum,
                d => Placement::Shard((d - 2) as usize),
            };
            if mix.is_multiple_of(3) {
                let v = step as f32;
                ours.insert((node, placement), marker(v));
                reference.insert((node, placement), v);
            } else {
                let got = ours.get(&(node, placement)).map(value_of);
                assert_eq!(got, reference.get(&(node, placement)).copied(), "step {step}");
            }
        }
        // Full-membership sweep at the end.
        for (&key, &v) in &reference {
            assert_eq!(ours.get(&key).map(value_of), Some(v));
        }
        assert_eq!(ours.keys.len(), reference.len());
    }

    #[test]
    fn execute_functional_is_bit_identical_across_runs() {
        // The reconstruct path used to pick an arbitrary placement out of
        // HashMap iteration order (randomized per process); the canonical
        // PropSet slice makes output selection deterministic. Two
        // independent executions must agree to the bit.
        let build = || {
            let mut g = GraphBuilder::new();
            let x = g.placeholder("x", vec![16, 6]);
            let w = g.parameter("w", vec![6, 4]);
            let labels = g.label("y", vec![16]);
            let h = g.matmul(x, w);
            let loss = g.cross_entropy(h, labels);
            g.build_training(loss).unwrap()
        };
        let graph = build();
        let cluster = ClusterSpec::fig17_cluster();
        let devices = cluster.virtual_devices(Granularity::PerGpu);
        let profile =
            profile_collectives(&GroundTruthNet::new(NetworkParams::paper_cloud()), devices.len());
        let ratios = vec![cluster.proportional_ratios(Granularity::PerGpu)];
        let q = synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        let feeds = feeds_for(&graph, 3, 4);
        let a = execute_functional(&graph, &q, &feeds, &ratios, 4).unwrap();
        let graph_b = build();
        let b = execute_functional(&graph_b, &q, &feeds, &ratios, 4).unwrap();
        assert_eq!(a.len(), b.len());
        for (node, ta) in &a {
            let tb = &b[node];
            assert_eq!(ta.shape().dims(), tb.shape().dims());
            for (va, vb) in ta.data().iter().zip(tb.data().iter()) {
                assert_eq!(va.to_bits(), vb.to_bits(), "output {node} drifted");
            }
        }
    }

    #[test]
    fn reduce_scatter_path_is_equivalent() {
        use hap_graph::Placement::{PartialSum, Shard};
        use hap_graph::Rule;
        // x sharded on the contraction dim: matmul produces partial sums,
        // reduce-scatter shards them, sum of shard-sums equals the loss.
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![6, 8]);
        let w = g.parameter("w", vec![8, 10]);
        let y = g.matmul(x, w);
        let l = g.sum_all(y);
        let graph = g.build_forward();
        let program = DistProgram {
            instrs: vec![
                DistInstr::Leaf { node: x, placement: Shard(1) },
                DistInstr::Leaf { node: w, placement: Shard(0) },
                DistInstr::Compute {
                    node: y,
                    rule: Rule::new(vec![Shard(1), Shard(0)], PartialSum),
                },
                DistInstr::Collective { node: y, kind: CollectiveInstr::ReduceScatter { dim: 0 } },
                DistInstr::Compute { node: l, rule: Rule::new(vec![Shard(0)], PartialSum) },
            ],
            estimated_time: 0.0,
        };
        let feeds = feeds_for(&graph, 13, 4);
        let ratios = vec![vec![0.4, 0.3, 0.2, 0.1]];
        let out = execute_functional(&graph, &program, &feeds, &ratios, 4).unwrap();
        let single = eval_single_device(&graph, &feeds).unwrap();
        assert!(out[&l].allclose(&single[l], 1e-3), "got {:?} want {:?}", out[&l], single[l]);
    }
}
