//! Discrete-event performance simulation ("actual" per-iteration time).
//!
//! This is the reproduction's replacement for running the training job on
//! the physical testbed. Unlike the linear cost model inside HAP, the
//! simulator prices:
//!
//! * per-kernel launch overheads on every device,
//! * a size-dependent compute-efficiency curve (small kernels do not reach
//!   profiled flops),
//! * nonlinear ground-truth collective times over the *actual* (rounded,
//!   possibly skewed) shard sizes, and
//! * optional multiplicative measurement noise.
//!
//! Estimated-vs-actual scatter over these two models reproduces the Fig. 18
//! cost-model-accuracy experiment, including its underestimation bias.

use hap_balancer::round_shards;
use hap_cluster::VirtualDevice;
use hap_collectives::{CollKind, GroundTruthNet};
use hap_graph::{CompScaling, Graph};
use hap_synthesis::{CollectiveInstr, DistInstr, DistProgram, ShardingRatios};

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Simulation options.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Per-kernel launch overhead in seconds (per op, per device).
    pub launch_overhead: f64,
    /// Kernel flops at which a device reaches half its profiled throughput.
    pub efficiency_half_flops: f64,
    /// Multiplicative noise amplitude (0 disables noise).
    pub noise: f64,
    /// RNG seed for the noise.
    pub seed: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { launch_overhead: 8e-6, efficiency_half_flops: 2e8, noise: 0.0, seed: 0 }
    }
}

/// Result of simulating one training iteration.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Simulated per-iteration wall time in seconds.
    pub iteration_time: f64,
    /// Total computation seconds per device (busy time).
    pub compute_time: Vec<f64>,
    /// Total communication seconds.
    pub comm_time: f64,
    /// Number of synchronization stages.
    pub stages: usize,
}

/// Simulates the per-iteration time of a distributed program.
pub fn simulate_time(
    graph: &Graph,
    program: &DistProgram,
    devices: &[VirtualDevice],
    net: &GroundTruthNet,
    ratios: &ShardingRatios,
    opts: &SimOptions,
) -> SimResult {
    let m = devices.len();
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let noise = |rng: &mut ChaCha8Rng| -> f64 {
        if opts.noise > 0.0 {
            1.0 + rng.random_range(-opts.noise..opts.noise)
        } else {
            1.0
        }
    };
    let row_for = |node: usize| -> &[f64] {
        let seg = graph.node(node).segment.min(ratios.len() - 1);
        &ratios[seg]
    };
    let intra = devices
        .iter()
        .filter(|d| d.gpus > 1 && d.intra_bandwidth.is_finite())
        .map(|d| 2.0 / d.intra_bandwidth)
        .fold(0.0, f64::max);

    let mut total = 0.0f64;
    let mut comm_time = 0.0f64;
    let mut compute_time = vec![0.0f64; m];
    let mut stage = vec![0.0f64; m];
    let mut stages = 1usize;

    for instr in &program.instrs {
        match instr {
            DistInstr::Leaf { .. } => {}
            DistInstr::Compute { node, rule } => {
                let flops = graph.node_flops(*node);
                let row = row_for(*node);
                for j in 0..m {
                    let local_flops = match rule.comp_scaling() {
                        CompScaling::Sharded => flops * row[j],
                        CompScaling::Replicated => flops,
                    };
                    if local_flops <= 0.0 {
                        continue;
                    }
                    // Small kernels do not reach profiled throughput.
                    let eff = local_flops / (local_flops + opts.efficiency_half_flops);
                    let t = (opts.launch_overhead + local_flops / (devices[j].flops * eff))
                        * noise(&mut rng);
                    stage[j] += t;
                    compute_time[j] += t;
                }
            }
            DistInstr::Collective { node, kind } => {
                let makespan = stage.iter().cloned().fold(0.0, f64::max);
                total += makespan;
                stage.iter_mut().for_each(|s| *s = 0.0);
                stages += 1;

                let bytes = graph.node_bytes(*node) as f64;
                let row = row_for(*node);
                // Actual shard byte sizes, after integer rounding of a
                // representative extent.
                let shard_bytes: Vec<f64> = match kind {
                    CollectiveInstr::AllReduce => vec![bytes; m],
                    _ => {
                        let dim = match kind {
                            CollectiveInstr::AllGather { dim, .. }
                            | CollectiveInstr::ReduceScatter { dim } => *dim,
                            CollectiveInstr::AllToAll { to, .. } => *to,
                            CollectiveInstr::AllReduce => unreachable!(),
                        };
                        let extent = graph.node(*node).shape.dims()[dim];
                        let sizes = round_shards(extent, row);
                        sizes.iter().map(|&s| bytes * s as f64 / extent.max(1) as f64).collect()
                    }
                };
                let cat = match kind {
                    CollectiveInstr::AllReduce => CollKind::AllReduce,
                    CollectiveInstr::AllGather { grouped: false, .. } => CollKind::AllGatherPadded,
                    CollectiveInstr::AllGather { grouped: true, .. } => CollKind::GroupedBroadcast,
                    CollectiveInstr::ReduceScatter { .. } => CollKind::ReduceScatter,
                    CollectiveInstr::AllToAll { .. } => CollKind::AllToAll,
                };
                let t = (net.collective_time(cat, &shard_bytes) + bytes * intra) * noise(&mut rng);
                comm_time += t;
                total += t;
            }
        }
    }
    total += stage.iter().cloned().fold(0.0, f64::max);

    SimResult { iteration_time: total, compute_time, comm_time, stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hap_balancer::estimate_time;
    use hap_cluster::{ClusterSpec, Granularity};
    use hap_collectives::{profile_collectives, NetworkParams};
    use hap_graph::GraphBuilder;
    use hap_synthesis::{synthesize, SynthConfig};

    fn setup() -> (Graph, DistProgram, Vec<VirtualDevice>, ShardingRatios) {
        let mut g = GraphBuilder::new();
        let x = g.placeholder("x", vec![262144, 256]);
        let w = g.parameter("w", vec![256, 256]);
        let labels = g.label("y", vec![262144]);
        let h = g.matmul(x, w);
        let loss = g.cross_entropy(h, labels);
        let graph = g.build_training(loss).unwrap();
        let cluster = ClusterSpec::fig17_cluster();
        let devices = cluster.virtual_devices(Granularity::PerGpu);
        let profile =
            profile_collectives(&GroundTruthNet::new(NetworkParams::paper_cloud()), devices.len());
        let ratios = vec![cluster.proportional_ratios(Granularity::PerGpu)];
        let q = synthesize(&graph, &devices, &profile, &ratios, &SynthConfig::default()).unwrap();
        (graph, q, devices, ratios)
    }

    #[test]
    fn simulated_time_exceeds_linear_estimate() {
        // The ground truth includes launch overheads and saturation the
        // fitted linear model misses: actual >= estimated (Fig. 18 bias).
        let (graph, q, devices, ratios) = setup();
        let net = GroundTruthNet::new(NetworkParams::paper_cloud());
        let profile = profile_collectives(&net, devices.len());
        let est = estimate_time(&graph, &q, &devices, &profile, &ratios);
        let sim = simulate_time(&graph, &q, &devices, &net, &ratios, &SimOptions::default());
        assert!(
            sim.iteration_time > est * 0.95,
            "sim {} should not be far below estimate {est}",
            sim.iteration_time
        );
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let (graph, q, devices, ratios) = setup();
        let net = GroundTruthNet::new(NetworkParams::paper_cloud());
        let opts = SimOptions { noise: 0.05, seed: 7, ..SimOptions::default() };
        let a = simulate_time(&graph, &q, &devices, &net, &ratios, &opts);
        let b = simulate_time(&graph, &q, &devices, &net, &ratios, &opts);
        assert_eq!(a.iteration_time, b.iteration_time);
        let c = simulate_time(&graph, &q, &devices, &net, &ratios, &SimOptions { seed: 8, ..opts });
        assert_ne!(a.iteration_time, c.iteration_time);
    }

    #[test]
    fn simulated_timelines_are_bit_identical_across_reruns() {
        // Regression pin for the PropSet port of the executor's dedup
        // structure (and any future bookkeeping change): the discrete-event
        // timeline is pure f64 arithmetic over the program and must not
        // move by a bit between runs, graph rebuilds, or noise seeds.
        let (graph, q, devices, ratios) = setup();
        let net = GroundTruthNet::new(NetworkParams::paper_cloud());
        let opts = SimOptions { noise: 0.03, seed: 11, ..SimOptions::default() };
        let a = simulate_time(&graph, &q, &devices, &net, &ratios, &opts);
        let (graph2, _, _, _) = setup();
        let b = simulate_time(&graph2, &q, &devices, &net, &ratios, &opts);
        assert_eq!(a.iteration_time.to_bits(), b.iteration_time.to_bits());
        assert_eq!(a.comm_time.to_bits(), b.comm_time.to_bits());
        assert_eq!(a.stages, b.stages);
        for (ca, cb) in a.compute_time.iter().zip(b.compute_time.iter()) {
            assert_eq!(ca.to_bits(), cb.to_bits());
        }
    }

    #[test]
    fn stage_count_matches_program() {
        let (graph, q, devices, ratios) = setup();
        let net = GroundTruthNet::new(NetworkParams::paper_cloud());
        let sim = simulate_time(&graph, &q, &devices, &net, &ratios, &SimOptions::default());
        assert_eq!(sim.stages, q.collective_count() + 1);
    }

    #[test]
    fn skewed_ratios_slow_down_padded_collectives() {
        let (graph, q, devices, _) = setup();
        if q.collective_count() == 0 {
            return; // nothing to compare
        }
        let net = GroundTruthNet::new(NetworkParams::paper_cloud());
        let even = vec![vec![0.25; 4]];
        let skew = vec![vec![0.85, 0.05, 0.05, 0.05]];
        let t_even = simulate_time(&graph, &q, &devices, &net, &even, &SimOptions::default());
        let t_skew = simulate_time(&graph, &q, &devices, &net, &skew, &SimOptions::default());
        assert!(t_skew.comm_time >= t_even.comm_time * 0.99);
    }
}
